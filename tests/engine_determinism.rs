//! Determinism contract of the allocation-free chunk-engine fast path: the
//! scratch arena with [`Trace::Off`] must be **bit identical** to the fully
//! instrumented trace path — on the hand-computed golden timelines and
//! across a 60-point cross-validated design-space sweep.
//!
//! The fast path and the trace path share one event loop, so any
//! divergence here means the refactor changed scheduling semantics, not
//! just instrumentation.

use libra::core::comm::{Collective, CommModel, GroupSpan};
use libra::core::cost::CostModel;
use libra::core::eval::{validate_plan, Analytical, CommPlan, EvalBackend};
use libra::core::network::NetworkShape;
use libra::core::opt::Objective;
use libra::core::scenario::Session;
use libra::core::sweep::{FnWorkload, SweepGrid, SweepWorkload};
use libra::core::workload::CommOp;
use libra::core::LibraError;
use libra::sim::collective::{
    run_batch_ext, run_collective, BatchExt, CollectiveJob, EngineScratch, FixedOrder, JobSpec,
    Trace,
};
use libra::sim::event::ps_to_secs;
use libra::sim::EventSimBackend;

/// The pre-optimization engine, preserved verbatim as a test oracle: every
/// phase builds owned [`CollectiveJob`]s (span clones included) and runs
/// the fully instrumented trace path on a fresh arena — exactly what
/// `EventSimBackend::eval_plan` did before the scratch fast path existed.
struct TracePathEventSim {
    chunks: usize,
}

impl EvalBackend for TracePathEventSim {
    fn name(&self) -> &str {
        "event-sim-trace-path"
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        validate_plan(n_dims, bw, plan)?;
        let mut total = 0.0f64;
        for phase in &plan.phases {
            if phase.repeat == 0 {
                continue;
            }
            let jobs: Vec<CollectiveJob> = phase
                .ops
                .iter()
                .filter(|op| op.bytes > 0.0 && !op.span.is_trivial())
                .map(|op| CollectiveJob {
                    collective: op.collective,
                    bytes: op.bytes,
                    span: op.span.clone(),
                    chunks: self.chunks,
                    release: 0,
                })
                .collect();
            if jobs.is_empty() {
                continue;
            }
            let res = run_batch_ext(n_dims, bw, &BatchExt::none(), &jobs, &mut FixedOrder);
            total += phase.repeat as f64 * ps_to_secs(res.makespan());
        }
        Ok(total)
    }
}

/// Fig. 9 golden timeline: the fast path reproduces the trace path's
/// pinned makespan and finish times bit-for-bit, while collecting nothing.
#[test]
fn fast_path_matches_fig9_golden_timeline() {
    const G: u64 = 1_000_000_000;
    let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
    let traced =
        run_collective(2, &[10.0, 10.0], Collective::AllReduce, 4e9, &span, 2, &mut FixedOrder);
    assert_eq!(traced.makespan(), 600 * G, "golden timeline moved — not a fast-path issue");

    let mut scratch = EngineScratch::new();
    let makespan = scratch.run_jobs(
        2,
        &[10.0, 10.0],
        &BatchExt::none(),
        [JobSpec {
            collective: Collective::AllReduce,
            bytes: 4e9,
            span: &span,
            chunks: 2,
            release: 0,
        }],
        &mut FixedOrder,
        Trace::Off,
    );
    assert_eq!(makespan, 600 * G);
    assert_eq!(scratch.finish_times(), traced.finish.as_slice());
    assert!(scratch.records().is_empty());
    // The O(1) usage accumulators agree with the golden busy intervals:
    // dim 0 streams continuously 0 → 600 G, dim 1 serves 4 × 25 G stages.
    let usages: Vec<_> = scratch.dim_usages().collect();
    assert_eq!(usages[0].busy_ps, 600 * G);
    assert_eq!((usages[0].first_start, usages[0].last_end), (0, 600 * G));
    assert_eq!(usages[1].busy_ps, 100 * G);
    assert_eq!(usages[1].stages, 4);
}

/// 2-node-ring α-β golden: with per-stage overhead the fast path still
/// matches the trace path exactly (0.24 s = analytical 0.2 s + 4 α).
#[test]
fn fast_path_matches_two_node_ring_alpha_beta_golden() {
    let span = GroupSpan::new(vec![(0, 2)]);
    let alpha_ps = 10_000_000_000; // 10 ms per ring stage
    let ext = BatchExt { stage_overhead_ps: vec![alpha_ps], offload_dims: vec![] };
    let job = CollectiveJob {
        collective: Collective::AllReduce,
        bytes: 2e9,
        span: span.clone(),
        chunks: 2,
        release: 0,
    };
    let traced = run_batch_ext(1, &[10.0], &ext, std::slice::from_ref(&job), &mut FixedOrder);
    assert!((ps_to_secs(traced.makespan()) - 0.24).abs() < 1e-12, "α-β golden moved");

    let mut scratch = EngineScratch::new();
    let makespan =
        scratch.run_jobs(1, &[10.0], &ext, [JobSpec::from(&job)], &mut FixedOrder, Trace::Off);
    assert_eq!(makespan, traced.makespan());
    assert_eq!(scratch.finish_times(), traced.finish.as_slice());
}

/// A 60-point cross-validated sweep prices every grid point under the new
/// scratch-arena backend and the preserved trace-path oracle at **zero
/// tolerance**: all 60 comparisons must agree bit-for-bit.
#[test]
fn sixty_point_sweep_fast_path_is_bit_identical_to_trace_path() {
    let allreduce = |name: &'static str, gb: f64| {
        FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
        .with_plan(move |shape: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                gb * 1e9,
                GroupSpan::full(shape),
            )]))
        })
    };
    let grid = SweepGrid::new()
        .with_shape("RI(4)_SW(8)".parse().unwrap())
        .with_shape("FC(8)_SW(4)".parse().unwrap())
        .with_shape("RI(4)_FC(4)_SW(4)".parse().unwrap())
        .with_budgets([100.0, 250.0, 400.0, 550.0, 700.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost]);
    let wls = [allreduce("ar-2g", 2.0), allreduce("ar-8g", 8.0)];
    assert_eq!(grid.len(wls.len()), 60);

    let fast = EventSimBackend::new(16);
    let trace = TracePathEventSim { chunks: 16 };
    let cm = CostModel::default();
    let report = Session::new(&cm).with_tolerance(0.0).run(&grid, &wls, &[&trace, &fast]);
    assert!(report.sweep.errors.is_empty());
    let divergence = &report.divergence.pairs[0];
    assert!(divergence.backend_errors.is_empty());
    assert_eq!(divergence.points.len(), 60);
    for p in &divergence.points {
        assert_eq!(
            p.baseline_secs.to_bits(),
            p.reference_secs.to_bits(),
            "fast path diverged from trace path at {:?}: {} vs {}",
            p.point,
            p.baseline_secs,
            p.reference_secs
        );
    }
    assert_eq!(divergence.max_rel_error(), 0.0);
    assert!(report.divergence.within_tolerance());

    // Sanity: the trace-path oracle itself brackets the analytical model —
    // i.e. it really is the old backend, not a stub.
    let ana = Analytical::new();
    let plan = wls[0].comm_plan(&grid.shapes()[0]).unwrap().unwrap();
    let bw = [50.0, 50.0];
    let t_trace = trace.eval_plan(2, &bw, &plan).unwrap();
    let t_ana = ana.eval_plan(2, &bw, &plan).unwrap();
    assert!(t_trace >= t_ana * (1.0 - 1e-12));
}
