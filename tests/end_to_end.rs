//! End-to-end integration tests spanning every crate: workload generation →
//! time modeling → optimization → simulation → file round-trips.

use libra::core::comm::CommModel;
use libra::core::cost::CostModel;
use libra::core::network::NetworkShape;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::presets;
use libra::core::time::estimate;
use libra::core::workload::TrainingLoop;
use libra::sim::training::{simulate_training, TrainingSimConfig};
use libra::workloads::format::{from_wl, to_wl};
use libra::workloads::zoo::{workload_for, PaperModel};

fn optimize_model(
    model: PaperModel,
    shape: &NetworkShape,
    total: f64,
    objective: Objective,
) -> (opt::Design, opt::Design) {
    let w = workload_for(model, shape).expect("workload builds");
    let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
    let cm = CostModel::default();
    let targets = vec![(1.0, expr)];
    let design = opt::optimize(&DesignRequest {
        shape,
        targets: targets.clone(),
        objective,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .expect("optimizer solves");
    let equal = opt::evaluate(shape, &targets, &opt::equal_bw(shape.ndims(), total), &cm);
    (design, equal)
}

/// PerfOptBW never loses to EqualBW, for every Table II model on the
/// representative topology.
#[test]
fn perf_opt_never_loses_on_4d_4k() {
    let shape = presets::topo_4d_4k();
    for model in PaperModel::all() {
        let (design, equal) = optimize_model(model, &shape, 300.0, Objective::Perf);
        assert!(
            design.weighted_time <= equal.weighted_time * (1.0 + 1e-6),
            "{}: opt {} vs equal {}",
            model.name(),
            design.weighted_time,
            equal.weighted_time
        );
        let total: f64 = design.bw.iter().sum();
        assert!((total - 300.0).abs() < 1e-3, "budget is an equality: {total}");
    }
}

/// PerfPerCostOptBW dominates both baselines on the product metric.
#[test]
fn ppc_opt_dominates_on_product_metric() {
    let shape = presets::topo_3d_4k();
    for model in [PaperModel::Gpt3, PaperModel::Msft1T] {
        let (perf, equal) = optimize_model(model, &shape, 500.0, Objective::Perf);
        let (ppc, _) = optimize_model(model, &shape, 500.0, Objective::PerfPerCost);
        let product = |d: &opt::Design| d.weighted_time * d.cost;
        assert!(
            product(&ppc) <= product(&perf) * (1.0 + 1e-4),
            "{}: ppc {} vs perf {}",
            model.name(),
            product(&ppc),
            product(&perf)
        );
        assert!(product(&ppc) <= product(&equal) * (1.0 + 1e-4));
    }
}

/// The chunk-level simulator agrees with the analytical model within the
/// pipelining bubble for optimized and baseline networks alike.
#[test]
fn simulator_validates_analytical_model() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Gpt3, &shape).unwrap();
    let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
    let cfg = TrainingSimConfig { chunks_per_collective: 32, ..Default::default() };
    for bw in [opt::equal_bw(4, 300.0), vec![200.0, 50.0, 38.0, 12.0]] {
        let analytic = expr.eval(&bw);
        let sim = simulate_training(&w, 4, &bw, &cfg);
        assert!(
            sim.makespan >= analytic * 0.999,
            "simulation cannot beat the contention-free analytical bound"
        );
        assert!(
            sim.makespan <= analytic * 1.10,
            "bw {bw:?}: sim {} too far above analytic {analytic}",
            sim.makespan
        );
    }
}

/// Workloads survive a `.wl` file round-trip and produce identical designs.
#[test]
fn wl_round_trip_preserves_designs() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Msft1T, &shape).unwrap();
    let text = to_wl(&w);
    let back = from_wl(&text).expect("parses");
    assert_eq!(w, back);
    let cm = CostModel::default();
    let design = |wl: &libra::core::workload::Workload| {
        let expr = estimate(wl, TrainingLoop::NoOverlap, &CommModel::default());
        opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(400.0)],
            cost_model: &cm,
        })
        .unwrap()
    };
    assert_eq!(design(&w), design(&back));
}

/// Group optimization interpolates: the group design is never worse than
/// the worst single-target design for any member workload.
#[test]
fn group_design_bounded_by_extremes() {
    let shape = presets::topo_4d_4k();
    let cm = CostModel::default();
    let comm = CommModel::default();
    let total = 600.0;
    let models = [PaperModel::Gpt3, PaperModel::TuringNlg];
    let exprs: Vec<_> = models
        .iter()
        .map(|&m| {
            let w = workload_for(m, &shape).unwrap();
            estimate(&w, TrainingLoop::NoOverlap, &comm)
        })
        .collect();
    let single: Vec<_> = exprs
        .iter()
        .map(|e| {
            opt::optimize(&DesignRequest {
                shape: &shape,
                targets: vec![(1.0, e.clone())],
                objective: Objective::Perf,
                constraints: vec![Constraint::TotalBw(total)],
                cost_model: &cm,
            })
            .unwrap()
        })
        .collect();
    let group = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: exprs.iter().map(|e| (1.0, e.clone())).collect(),
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .unwrap();
    for (i, e) in exprs.iter().enumerate() {
        let own = e.eval(&single[i].bw);
        let cross: f64 = e.eval(&single[1 - i].bw);
        let on_group = e.eval(&group.bw);
        assert!(
            on_group <= cross * (1.0 + 1e-6),
            "{}: group {} worse than cross {}",
            models[i].name(),
            on_group,
            cross
        );
        assert!(on_group >= own * (1.0 - 1e-6), "group cannot beat the dedicated design");
    }
}

/// Designer constraints compose: caps, floors, ordering and equalities are
/// all honored simultaneously.
#[test]
fn stacked_constraints_are_honored() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Gpt3, &shape).unwrap();
    let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
    let cm = CostModel::default();
    let d = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr)],
        objective: Objective::Perf,
        constraints: vec![
            Constraint::TotalBw(500.0),
            Constraint::DimBwMax(3, 50.0),
            Constraint::DimBwMin(2, 20.0),
            Constraint::Ordered,
        ],
        cost_model: &cm,
    })
    .unwrap();
    assert!((d.bw.iter().sum::<f64>() - 500.0).abs() < 1e-3);
    assert!(d.bw[3] <= 50.0 + 1e-6);
    assert!(d.bw[2] >= 20.0 - 1e-6);
    for pair in d.bw.windows(2) {
        assert!(pair[0] >= pair[1] - 1e-6, "ordering violated: {:?}", d.bw);
    }
}

/// The full pipeline works over a parsed (not generated) workload file.
#[test]
fn pipeline_from_text_workload() {
    let text = "\
# tiny 2-layer model on a 2D machine
WORKLOAD tiny
LAYER l0
  FWD_COMPUTE 0.001
  FWD_COMM ALLREDUCE 1000000000 SPAN 0:4
  IGRAD_COMPUTE 0.001
  TP_COMM ALLREDUCE 1000000000 SPAN 0:4
  WGRAD_COMPUTE 0.001
  DP_COMM ALLREDUCE 500000000 SPAN 1:8
LAYER l1
  FWD_COMPUTE 0.002
  DP_COMM ALLREDUCE 250000000 SPAN 1:8
";
    let w = from_wl(text).unwrap();
    let shape: NetworkShape = "RI(4)_SW(8)".parse().unwrap();
    let expr = estimate(&w, TrainingLoop::TpDpOverlap, &CommModel::default());
    let cm = CostModel::default();
    let d = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr)],
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(100.0)],
        cost_model: &cm,
    })
    .unwrap();
    assert!(d.weighted_time > 0.005, "compute floor is included");
    let sim = simulate_training(
        &w,
        2,
        &d.bw,
        &TrainingSimConfig { chunks_per_collective: 16, training_loop: TrainingLoop::TpDpOverlap },
    );
    assert!(sim.makespan >= d.weighted_time * 0.98);
}
