//! Golden-value regression tests: pinned Table I cost-model outputs and the
//! facade-crate doctest's optimizer allocation. These exact numbers guard
//! future solver/cost refactors — if one of them moves, the change is a
//! behavioral regression (or a deliberate recalibration that must update
//! this file).

use libra::core::comm::{Collective, CommModel, GroupSpan};
use libra::core::cost::CostModel;
use libra::core::network::{DimScope, NetworkShape, UnitTopology};
use libra::core::opt::{self, Constraint, Objective};

fn close(got: f64, want: f64, tol: f64) -> bool {
    (got - want).abs() <= tol * (1.0 + want.abs())
}

/// Table I (lowest value of each range): the per-NPU $/GBps price of every
/// (unit topology, packaging scope) combination the model distinguishes.
#[test]
fn table1_per_npu_prices_are_pinned() {
    let cm = CostModel::default();
    let golden: &[(UnitTopology, DimScope, f64)] = &[
        // Chiplet scope: links only, switches priced as links, no NICs.
        (UnitTopology::Ring, DimScope::Chiplet, 2.0),
        (UnitTopology::FullyConnected, DimScope::Chiplet, 2.0),
        (UnitTopology::Switch, DimScope::Chiplet, 2.0),
        // Package scope: $4 links, switch adds $13.
        (UnitTopology::Ring, DimScope::Package, 4.0),
        (UnitTopology::FullyConnected, DimScope::Package, 4.0),
        (UnitTopology::Switch, DimScope::Package, 17.0),
        // Node scope: same rows as Package in Table I.
        (UnitTopology::Ring, DimScope::Node, 4.0),
        (UnitTopology::FullyConnected, DimScope::Node, 4.0),
        (UnitTopology::Switch, DimScope::Node, 17.0),
        // Pod scope: $7.8 links + $31.6 NIC, switch adds $18.
        (UnitTopology::Ring, DimScope::Pod, 39.4),
        (UnitTopology::FullyConnected, DimScope::Pod, 39.4),
        (UnitTopology::Switch, DimScope::Pod, 57.4),
    ];
    for &(topo, scope, want) in golden {
        let got = cm.per_npu_dollar_per_gbps(topo, scope);
        assert!(
            (got - want).abs() < 1e-12,
            "per-NPU price of {topo:?}@{scope:?} drifted: got {got}, pinned {want}"
        );
    }
}

/// Whole-network cost coefficients of the paper's 4D 4,096-NPU topology.
#[test]
fn table1_cost_coefficients_are_pinned() {
    let cm = CostModel::default();
    let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
    let coefs = cm.cost_coefficients(&shape);
    let golden = [
        4096.0 * 2.0,  // chiplet ring
        4096.0 * 4.0,  // package fully-connected
        4096.0 * 4.0,  // node ring
        4096.0 * 57.4, // pod switch (+NIC)
    ];
    assert_eq!(coefs.len(), golden.len());
    for (i, (&got, &want)) in coefs.iter().zip(&golden).enumerate() {
        assert!((got - want).abs() < 1e-6, "coefficient {i} drifted: got {got}, pinned {want}");
    }
    // The worked Fig. 12 example: 3 NPUs behind an inter-Pod switch at
    // 10 GB/s costs exactly $1,722.
    let fig12: NetworkShape = "SW(3)".parse().unwrap();
    assert!((cm.network_cost(&fig12, &[10.0]) - 1722.0).abs() < 1e-9);
}

/// The facade-crate doctest scenario, with its allocation pinned: one 1-GB
/// All-Reduce on `RI(8)_SW(4)` under a 100-GB/s budget splits bandwidth
/// traffic-proportionally — dim0 carries 2·(7/8) = 1.75 GB, dim1 carries
/// 2·(3/4)/8 = 0.1875 GB, so B ≈ (90.32, 9.68) and the iteration takes
/// 1.9375 GB / 100 GB/s = 19.375 ms.
#[test]
fn facade_doctest_allocation_is_pinned() {
    let shape: NetworkShape = "RI(8)_SW(4)".parse().unwrap();
    let comm = CommModel::default();
    let expr = comm.time_expr(Collective::AllReduce, 1e9, &GroupSpan::full(&shape));
    let cm = CostModel::default();
    let design = opt::optimize(&opt::DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr)],
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(100.0)],
        cost_model: &cm,
    })
    .expect("doctest request solves");

    let b0 = 100.0 * 1.75 / 1.9375;
    assert!(close(design.bw[0], b0, 5e-3), "bw[0] drifted: {:?}", design.bw);
    assert!(close(design.bw[1], 100.0 - b0, 5e-2), "bw[1] drifted: {:?}", design.bw);
    assert!((design.bw.iter().sum::<f64>() - 100.0).abs() < 1e-3, "budget not exhausted");
    assert!(
        close(design.weighted_time, 1.9375e9 / (100.0 * 1e9), 1e-4),
        "weighted_time drifted: {}",
        design.weighted_time
    );
    // Cost follows from the pinned allocation and Table I:
    // 32 NPUs · ($4 node ring · B0 + $57.4 pod switch · B1).
    let want_cost = 32.0 * (4.0 * design.bw[0] + 57.4 * design.bw[1]);
    assert!(close(design.cost, want_cost, 1e-9), "cost drifted: {}", design.cost);
}

/// Fig. 9 chunk-pipeline timeline, pinned to hand-computed picoseconds.
///
/// Setup: a 4 GB All-Reduce over a 2-dim (4 × 2) group, 2 chunks, both
/// dimensions at 10 GB/s. Each 2 GB chunk moves `m(e₁−1)/e₁ = 1.5 GB`
/// through dim 0 (150 000 000 000 ps at 10 GB/s) and
/// `m(e₂−1)/(e₂·e₁) = 0.25 GB` through dim 1 (25 000 000 000 ps), first as
/// Reduce-Scatter (dims ascending) then as All-Gather (the chunk's own RS
/// order reversed). Chunks pipeline through FIFO per-dimension servers:
///
/// ```text
/// dim0: |c0 RS 0–150|c1 RS 150–300|c0 AG 300–450|c1 AG 450–600| (·10⁹ ps)
/// dim1:             |c0 RS 150–175|c0 AG 175–200|c1 RS 300–325|c1 AG 325–350|
/// ```
///
/// Every stage boundary below is derivable by hand from FIFO order alone;
/// if any of them moves, the chunk engine's scheduling semantics changed.
#[test]
fn fig9_chunk_pipeline_timeline_is_pinned() {
    use libra::sim::collective::{run_collective, FixedOrder};

    let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
    let res =
        run_collective(2, &[10.0, 10.0], Collective::AllReduce, 4e9, &span, 2, &mut FixedOrder);

    // (chunk, dim, is_gather) → (start ps, end ps), hand-computed.
    const G: u64 = 1_000_000_000; // 10⁹ ps = 1 ms
    type StageKey = (usize, usize, bool);
    let golden: &[(StageKey, (u64, u64))] = &[
        ((0, 0, false), (0, 150 * G)),       // c0 RS dim0
        ((1, 0, false), (150 * G, 300 * G)), // c1 RS dim0 (queued behind c0)
        ((0, 1, false), (150 * G, 175 * G)), // c0 RS dim1
        ((0, 1, true), (175 * G, 200 * G)),  // c0 AG dim1 (reverse order)
        ((0, 0, true), (300 * G, 450 * G)),  // c0 AG dim0 (waits for c1 RS)
        ((1, 1, false), (300 * G, 325 * G)), // c1 RS dim1
        ((1, 1, true), (325 * G, 350 * G)),  // c1 AG dim1
        ((1, 0, true), (450 * G, 600 * G)),  // c1 AG dim0
    ];

    assert_eq!(res.records.len(), golden.len(), "stage count changed");
    for &(key, want) in golden {
        let (chunk, dim, gather) = key;
        let got = res
            .records
            .iter()
            .find(|r| r.chunk == chunk && r.dim == dim && r.gather == gather)
            .unwrap_or_else(|| panic!("missing stage {key:?}"));
        assert_eq!(
            (got.start, got.end),
            want,
            "stage {key:?} drifted: got [{}, {}], pinned [{}, {}]",
            got.start,
            got.end,
            want.0,
            want.1
        );
    }
    // Makespan: the last All-Gather on dim 0 ends at 600·10⁹ ps = 0.6 s.
    assert_eq!(res.makespan(), 600 * G);
    // Dim 0 streams continuously (no bubble); dim 1 idles between chunks.
    assert_eq!(
        res.per_dim_busy[0],
        vec![(0, 150 * G), (150 * G, 300 * G), (300 * G, 450 * G), (450 * G, 600 * G)]
    );
    assert_eq!(res.per_dim_busy[1].len(), 4);
}

/// α-β timeline of a 2-node ring All-Reduce with nonzero hop latency,
/// pinned to hand-computed picoseconds — the network-layer (NetSim)
/// analogue of the Fig. 9 chunk-pipeline golden above.
///
/// Setup: a 2 GB All-Reduce over a 2-node ring, 2 chunks, 10 GB/s, and
/// α = 10 ms per hop (a ring of extent 2 is a single hop per stage). Each
/// 1 GB chunk moves `m_chunk(e−1)/e = 0.5 GB` per stage — 50·10⁹ ps of β
/// serialization — plus 10·10⁹ ps of α, so every stage occupies the
/// single dimension server for exactly 60·10⁹ ps. FIFO order serializes
/// the four stages (c0 RS, c1 RS, c0 AG, c1 AG):
///
/// ```text
/// dim0: |c0 RS 0–60|c1 RS 60–120|c0 AG 120–180|c1 AG 180–240| (·10⁹ ps)
/// ```
///
/// The analytical (β-only) time is `2m(e−1)/e / B = 0.2 s`; the α-β
/// timeline adds exactly 4 stages × α = 0.04 s — the bandwidth-independent
/// term the closed form cannot see.
#[test]
fn two_node_ring_alpha_beta_timeline_is_pinned() {
    use libra::core::eval::{LinkParams, NetSpec};
    use libra::core::workload::CommOp;
    use libra::sim::collective::{run_batch_ext, BatchExt, CollectiveJob, FixedOrder};
    use libra::{Analytical, CommPlan, EvalBackend, NetSimBackend};

    const G: u64 = 1_000_000_000; // 10⁹ ps = 1 ms
    let span = GroupSpan::new(vec![(0, 2)]);

    // Engine level: the latency-carrying chunk engine, stage by stage.
    let job = CollectiveJob {
        collective: Collective::AllReduce,
        bytes: 2e9,
        span: span.clone(),
        chunks: 2,
        release: 0,
    };
    let ext = BatchExt { stage_overhead_ps: vec![10 * G], offload_dims: vec![] };
    let res = run_batch_ext(1, &[10.0], &ext, &[job], &mut FixedOrder);
    // (chunk, is_gather) → (start ps, end ps), hand-computed.
    type StageKey = (usize, bool);
    let golden: &[(StageKey, (u64, u64))] = &[
        ((0, false), (0, 60 * G)),       // c0 RS
        ((1, false), (60 * G, 120 * G)), // c1 RS
        ((0, true), (120 * G, 180 * G)), // c0 AG
        ((1, true), (180 * G, 240 * G)), // c1 AG
    ];
    assert_eq!(res.records.len(), golden.len(), "stage count changed");
    for &((chunk, gather), want) in golden {
        let got = res
            .records
            .iter()
            .find(|r| r.chunk == chunk && r.gather == gather)
            .unwrap_or_else(|| panic!("missing stage (c{chunk}, gather={gather})"));
        assert_eq!((got.start, got.end), want, "stage (c{chunk}, gather={gather}) drifted");
    }
    assert_eq!(res.makespan(), 240 * G);

    // Backend level: NetSimBackend prices the same plan through its
    // NetSpec side channel — 0.24 s, the analytical 0.2 s plus 4α.
    let plan = CommPlan::serial([CommOp::new(Collective::AllReduce, 2e9, span)])
        .with_net(NetSpec::uniform(1, UnitTopology::Ring, LinkParams::latency(10.0 * G as f64)));
    let net = NetSimBackend::new(2).eval_plan(1, &[10.0], &plan).unwrap();
    assert!((net - 0.24).abs() < 1e-12, "NetSim priced {net}, pinned 0.24");
    let ana = Analytical::new().eval_plan(1, &[10.0], &plan).unwrap();
    assert!((ana - 0.2).abs() < 1e-12);
    assert!((net - ana - 0.04).abs() < 1e-12, "α contribution drifted");
}
