//! Invariants the paper's evaluation relies on, checked end-to-end.

use libra::core::comm::CommModel;
use libra::core::cost::CostModel;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::presets;
use libra::core::time::{average_utilization, estimate};
use libra::core::workload::TrainingLoop;
use libra::sim::collective::{run_collective, FixedOrder};
use libra::sim::linksim::LinkGraph;
use libra::tacos::{synthesize_allgather, validate, SynthesisConfig};
use libra::themis::ThemisScheduler;
use libra::workloads::zoo::{workload_for, PaperModel};
use libra_core::comm::{Collective, GroupSpan};

fn speedup(model: PaperModel, shape: &libra::core::network::NetworkShape, total: f64) -> f64 {
    let w = workload_for(model, shape).unwrap();
    let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
    let cm = CostModel::default();
    let targets = vec![(1.0, expr)];
    let d = opt::optimize(&DesignRequest {
        shape,
        targets: targets.clone(),
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .unwrap();
    let e = opt::evaluate(shape, &targets, &opt::equal_bw(shape.ndims(), total), &cm);
    d.speedup_over(&e)
}

/// Fig. 13 key insight: larger models exhibit more performance benefit.
#[test]
fn larger_models_gain_more() {
    let shape = presets::topo_4d_4k();
    let gpt3 = speedup(PaperModel::Gpt3, &shape, 300.0);
    let msft = speedup(PaperModel::Msft1T, &shape, 300.0);
    let resnet = speedup(PaperModel::ResNet50, &shape, 300.0);
    assert!(msft > gpt3, "MSFT-1T {msft} should beat GPT-3 {gpt3}");
    assert!(gpt3 > resnet * 0.99, "GPT-3 {gpt3} should be at least ResNet {resnet}");
}

/// Fig. 13 shape: the speedup opportunity shrinks as the budget grows
/// (compute starts dominating).
#[test]
fn speedup_declines_with_budget() {
    let shape = presets::topo_3d_4k();
    let lo = speedup(PaperModel::Msft1T, &shape, 100.0);
    let hi = speedup(PaperModel::Msft1T, &shape, 1000.0);
    assert!(lo > hi, "low-budget speedup {lo} should exceed high-budget {hi}");
    assert!(hi >= 1.0);
}

/// §III-C: the optimized allocation raises average BW utilization over
/// EqualBW (the Fig. 10 mechanism), measured analytically.
#[test]
fn optimization_raises_utilization() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Msft1T, &shape).unwrap();
    let comm = CommModel::default();
    let expr = estimate(&w, TrainingLoop::NoOverlap, &comm);
    let cm = CostModel::default();
    let d = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr)],
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(300.0)],
        cost_model: &cm,
    })
    .unwrap();
    let u_equal = average_utilization(&w, &comm, &opt::equal_bw(4, 300.0), 4);
    let u_opt = average_utilization(&w, &comm, &d.bw, 4);
    assert!(
        u_opt > u_equal + 0.05,
        "optimized utilization {u_opt} should clearly beat EqualBW {u_equal}"
    );
}

/// Fig. 2(b)/Table I economics: optimized designs shift bandwidth toward
/// cheap inner dimensions, away from NIC-priced scale-out.
#[test]
fn optimized_designs_prefer_cheap_dims() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Msft1T, &shape).unwrap();
    let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
    let cm = CostModel::default();
    let targets = vec![(1.0, expr)];
    let d = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: targets.clone(),
        objective: Objective::PerfPerCost,
        constraints: vec![Constraint::TotalBw(300.0)],
        cost_model: &cm,
    })
    .unwrap();
    let e = opt::evaluate(&shape, &targets, &opt::equal_bw(4, 300.0), &cm);
    assert!(d.cost < e.cost, "PerfPerCost design must be cheaper than EqualBW");
    assert!(d.bw[0] > d.bw[3], "inner (cheap, high-traffic) dim outranks the pod dim");
}

/// Fig. 19 premise: Themis recovers part of EqualBW's loss at runtime, but
/// cannot beat a LIBRA-designed network's canonical schedule.
#[test]
fn themis_recovers_equalbw_but_not_design_time() {
    let span = GroupSpan::new(vec![(0, 4), (1, 4), (2, 4)]);
    let bytes = 8e9;
    let equal = [100.0, 100.0, 100.0];
    let eq_fixed =
        run_collective(3, &equal, Collective::AllReduce, bytes, &span, 64, &mut FixedOrder);
    let eq_themis = run_collective(
        3,
        &equal,
        Collective::AllReduce,
        bytes,
        &span,
        64,
        &mut ThemisScheduler::new(),
    );
    // Traffic-proportional LIBRA design at the same total.
    let libra = [228.6, 57.1, 14.3];
    let li_fixed =
        run_collective(3, &libra, Collective::AllReduce, bytes, &span, 64, &mut FixedOrder);
    let li_themis = run_collective(
        3,
        &libra,
        Collective::AllReduce,
        bytes,
        &span,
        64,
        &mut ThemisScheduler::new(),
    );
    assert!(eq_themis.makespan() < eq_fixed.makespan(), "Themis helps EqualBW");
    // The paper's iso-resource result: once Themis runs on both networks,
    // their raw performance is nearly equal (LIBRA's remaining edge is
    // cost). Allow a ±5% band.
    let ratio = li_fixed.makespan() as f64 / eq_themis.makespan() as f64;
    assert!(
        (0.80..=1.05).contains(&ratio),
        "design-time and runtime optimization should land close: ratio {ratio}"
    );
    assert!(
        li_themis.makespan() <= li_fixed.makespan() * 101 / 100,
        "Themis must not hurt an already-balanced network: {} vs {}",
        li_themis.makespan(),
        li_fixed.makespan()
    );
}

/// Fig. 20 pieces: the synthesized All-Gather is valid on both equal and
/// LIBRA-shaped tori, and beats the one-directional ring bound.
#[test]
fn tacos_schedules_are_valid_and_fast() {
    for bw in [[166.7, 166.7, 166.7], [381.0, 95.0, 24.0]] {
        let g = LinkGraph::torus(&[(4, bw[0]), (4, bw[1]), (4, bw[2])]);
        let cfg = SynthesisConfig { chunks_per_shard: 4, seed: 9 };
        let s = synthesize_allgather(&g, 1e9 / 64.0, &cfg);
        let t = validate(&g, &s, cfg.chunks_per_shard);
        assert_eq!(t, s.allgather_ps);
    }
}

/// §IV-C in-network offload: enabling it strictly reduces estimated time at
/// any fixed bandwidth.
#[test]
fn offload_strictly_helps() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Msft1T, &shape).unwrap();
    let plain = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
    let off = estimate(&w, TrainingLoop::NoOverlap, &CommModel::with_offload());
    let bw = opt::equal_bw(4, 300.0);
    assert!(off.eval(&bw) < plain.eval(&bw));
}

/// GPT-3's TP-16 on 4D-4K spans only half of Dim 2's extent (the paper's
/// "mismatching TP size" note), so Dim 1 sees both TP and DP traffic.
#[test]
fn gpt3_tp_mismatch_on_4d_4k() {
    let shape = presets::topo_4d_4k();
    let w = workload_for(PaperModel::Gpt3, &shape).unwrap();
    let layer = &w.layers[0];
    let tp = layer.tp_comm.as_ref().unwrap();
    let dp = layer.dp_comm.as_ref().unwrap();
    assert_eq!(tp.span.extents(), &[(0, 4), (1, 4)]);
    assert_eq!(dp.span.extents()[0], (1, 2), "DP claims the leftover of dim 1");
}
