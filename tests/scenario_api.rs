//! Integration tests of the scenario front door: the N-way `Session`
//! matches the legacy fixed-arity entry points bit-for-bit, the backend
//! registry fails loudly and rejects shadowing, streaming sinks
//! round-trip a real 40-point cross-validated run, and the committed
//! scenario files parse and reproduce the design-space numbers.

use libra::core::cost::CostModel;
use libra::core::opt::Objective;
use libra::core::presets;
use libra::{
    default_registry, records_from_jsonl, Analytical, BackendConfig, CollectorSink,
    CrossValidation, CrossValidation3, DivergenceMatrix, EvalBackend, ExecMode, JsonLinesSink,
    ScaledBackend, Scenario, Session, SweepEngine, SweepGrid,
};
use libra_bench::{scenario_workloads, sweep_workloads};
use libra_workloads::zoo::PaperModel;

/// 2 shapes × 2 workloads × 5 budgets × 2 objectives = 40 grid points.
fn grid_40() -> SweepGrid {
    SweepGrid::new()
        .with_shapes([presets::topo_3d_512(), presets::topo_3d_4k()])
        .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

/// Satellite acceptance: the six deprecated `run*` entry points are thin
/// shims — each must produce output identical (exact `PartialEq`, i.e.
/// bit-for-bit on every float) to the equivalent `Session::run`.
#[test]
#[allow(deprecated)]
fn legacy_entry_points_delegate_to_the_session() {
    let grid = SweepGrid::new()
        .with_shapes([presets::topo_3d_512()])
        .with_budgets([100.0, 500.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost]);
    let wls = sweep_workloads(&[PaperModel::TuringNlg]);
    let cm = CostModel::default();
    let analytical = Analytical::new();
    let skew = ScaledBackend::new(Analytical::new(), 1.01, "skew");
    let skew2 = ScaledBackend::new(Analytical::new(), 1.02, "skew2");

    // run / run_serial ≡ Session with no backends.
    let legacy = SweepEngine::new(&cm).run(&grid, &wls);
    let session = Session::new(&cm).run(&grid, &wls, &[]).sweep;
    assert_eq!(legacy.results, session.results);
    assert_eq!(legacy.errors, session.errors);
    let legacy = SweepEngine::new(&cm).run_serial(&grid, &wls);
    let session = Session::new(&cm).with_mode(ExecMode::Serial).run(&grid, &wls, &[]).sweep;
    assert_eq!(legacy.results, session.results);

    // run_cross_validated[_serial] ≡ two-backend Session.
    let cv = CrossValidation::new(&analytical, &skew).with_tolerance(0.05);
    let legacy = SweepEngine::new(&cm).run_cross_validated(&grid, &wls, &cv);
    let session = Session::new(&cm).with_tolerance(0.05).run(&grid, &wls, &[&analytical, &skew]);
    assert_eq!(legacy.sweep.results, session.sweep.results);
    assert_eq!(legacy.divergence, session.divergence.pairs[0]);
    let serial = SweepEngine::new(&cm).run_cross_validated_serial(&grid, &wls, &cv);
    assert_eq!(serial.divergence, legacy.divergence);

    // run_cross_validated3[_serial] ≡ three-backend Session, same pair order.
    let cv3 = CrossValidation3::new(&analytical, &skew, &skew2).with_tolerance(0.05);
    let legacy = SweepEngine::new(&cm).run_cross_validated3(&grid, &wls, &cv3);
    let session =
        Session::new(&cm).with_tolerance(0.05).run(&grid, &wls, &[&analytical, &skew, &skew2]);
    assert_eq!(legacy.sweep.results, session.sweep.results);
    assert_eq!(legacy.divergence.pairs, session.divergence.pairs);
    assert_eq!(session.divergence.backends, vec!["analytical", "skew", "skew2"]);
    let serial = SweepEngine::new(&cm).run_cross_validated3_serial(&grid, &wls, &cv3);
    assert_eq!(serial.divergence.pairs, legacy.divergence.pairs);
}

/// Satellite acceptance: N = 2 and N = 3 `DivergenceMatrix` output
/// matches the legacy report semantics on the seed 40-point grids (real
/// Table II workloads, real event-sim backend).
#[test]
fn divergence_matrix_matches_legacy_reports_on_the_seed_grids() {
    let grid = grid_40();
    let wls = sweep_workloads(&[PaperModel::TuringNlg, PaperModel::Gpt3]);
    let cm = CostModel::default();
    let analytical = Analytical::new();
    let event_sim = libra::EventSimBackend::default();
    let max_ndims = grid.shapes().iter().map(|s| s.ndims()).max().unwrap();
    let tol = event_sim.agreement_bound(max_ndims);

    let engine = SweepEngine::new(&cm);
    let session = Session::over(&engine).with_tolerance(tol);
    let n2 = session.run(&grid, &wls, &[&analytical, &event_sim]);
    #[allow(deprecated)]
    let legacy2 = engine.run_cross_validated(
        &grid,
        &wls,
        &CrossValidation::new(&analytical, &event_sim).with_tolerance(tol),
    );
    assert_eq!(n2.divergence.pairs.len(), 1);
    assert_eq!(n2.divergence.pairs[0], legacy2.divergence);
    assert!(n2.divergence.within_tolerance(), "{}", n2.divergence.summary());

    let net_sim = libra::NetSimBackend::default();
    let n3 = session.run(&grid, &wls, &[&analytical, &event_sim, &net_sim]);
    #[allow(deprecated)]
    let legacy3 = engine.run_cross_validated3(
        &grid,
        &wls,
        &CrossValidation3::new(&analytical, &event_sim, &net_sim).with_tolerance(tol),
    );
    assert_eq!(n3.divergence.pairs, legacy3.divergence.pairs);
    assert_eq!(DivergenceMatrix::pair_indices(3), vec![(0, 1), (0, 2), (1, 2)]);
    // The matrix accessors agree with the legacy pair lookup.
    for (a, b) in [("analytical", "event-sim"), ("analytical", "net-sim")] {
        assert_eq!(n3.divergence.pair(a, b), legacy3.divergence.pair(a, b));
    }
}

/// Satellite acceptance: the JSON-lines sink round-trips a 40-point
/// cross-validated run **bit-identically** against the in-memory
/// collector (floats travel through shortest-round-trip decimal).
#[test]
fn jsonl_sink_round_trips_a_40_point_crossval_run_bit_identically() {
    let grid = grid_40();
    let wls = sweep_workloads(&[PaperModel::TuringNlg, PaperModel::Gpt3]);
    let cm = CostModel::default();
    let analytical = Analytical::new();
    let skew = ScaledBackend::new(Analytical::new(), 1.03, "skew");

    let mut collector = CollectorSink::new();
    let mut jsonl = JsonLinesSink::new(Vec::<u8>::new());
    let session = Session::new(&cm).with_tolerance(0.05);
    let report = session.run_with_sinks(
        &grid,
        &wls,
        &[&analytical, &skew],
        &mut [&mut collector, &mut jsonl],
    );
    assert_eq!(collector.rows.len(), 40);
    assert!(report.sweep.errors.is_empty());

    let stream = String::from_utf8(jsonl.into_inner()).unwrap();
    let parsed = records_from_jsonl(&stream).unwrap();
    assert_eq!(parsed.len(), collector.rows.len());
    for (p, c) in parsed.iter().zip(&collector.rows) {
        assert_eq!(p, c, "JSON-lines record diverged from the collector");
        // PartialEq on f64 is exact, but make the bit-identity explicit
        // for the headline metric and the per-backend times.
        assert_eq!(p.weighted_time.unwrap().to_bits(), c.weighted_time.unwrap().to_bits());
        for (ps, cs) in p.secs.iter().zip(&c.secs) {
            assert_eq!(ps.to_bits(), cs.to_bits());
        }
    }
}

/// The registry fails with an actionable message on unknown names and
/// refuses to shadow an existing registration.
#[test]
fn registry_errors_are_actionable() {
    let mut registry = default_registry();
    let err = registry.build("astra-sim", &BackendConfig::default()).err().unwrap();
    let msg = err.to_string();
    assert!(msg.contains("unknown backend \"astra-sim\""), "{msg}");
    for known in ["analytical", "analytical-offload", "event-sim", "net-sim", "net-sim-offload"] {
        assert!(msg.contains(known), "error must list {known}: {msg}");
    }
    let dup = registry.register("event-sim", |_| Box::new(Analytical::new()));
    assert!(dup.unwrap_err().to_string().contains("already registered"));
    // Chunks reach chunk-pipelined constructors.
    let b = registry.build("event-sim", &BackendConfig { chunks: 8 }).unwrap();
    assert_eq!(b.name(), "event-sim");
}

/// The committed scenario files parse, name known workloads/backends, and
/// the CI-small scenario reproduces the session numbers bit-identically
/// through the file → parse → run pipeline (the same pipeline the `libra`
/// CLI drives; the CI golden pins its exact byte output).
#[test]
fn committed_scenario_files_parse_and_reproduce_session_numbers() {
    let root = env!("CARGO_MANIFEST_DIR");
    let registry = default_registry();
    for name in ["ci_small.json", "design_space_sweep.json"] {
        let scenario = Scenario::load(format!("{root}/scenarios/{name}")).unwrap();
        assert!(scenario.backends.iter().all(|b| registry.contains(b)), "{name}");
        scenario_workloads(&scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Round-trip: what we serialize parses back to the same scenario.
        assert_eq!(Scenario::from_json(&scenario.to_json()).unwrap(), scenario);
    }

    // Drive the small scenario end-to-end twice — file-driven and
    // hand-built — and require bit-identical output.
    let scenario = Scenario::load(format!("{root}/scenarios/ci_small.json")).unwrap();
    let wls = scenario_workloads(&scenario).unwrap();
    let cm = CostModel::default();
    let from_file = scenario.session(&cm).run_scenario(&scenario, &wls, &registry).unwrap();
    assert!(from_file.sweep.errors.is_empty());
    assert!(from_file.divergence.within_tolerance(), "{}", from_file.divergence.summary());

    let analytical = Analytical::new();
    let event_sim = libra::EventSimBackend::new(scenario.chunks);
    let net_sim = libra::NetSimBackend::new(scenario.chunks);
    let backends: [&dyn EvalBackend; 3] = [&analytical, &event_sim, &net_sim];
    let by_hand =
        Session::new(&cm).with_tolerance(scenario.tolerance).run(&scenario.grid(), &wls, &backends);
    assert_eq!(from_file.sweep.results, by_hand.sweep.results);
    assert_eq!(from_file.divergence, by_hand.divergence);
}
