//! Integration tests of the network-layer α-β backend over full design
//! grids: the acceptance property — |NetSim − Analytical| rel-err → 0 as
//! α → 0, within the documented pipeline-bubble bound, on a ≥ 40-point
//! cross-validated sweep — plus the offloaded-plan pricing path and the
//! α-dominated divergence regime.

use libra::core::cost::CostModel;
use libra::core::opt::Objective;
use libra::core::presets;
use libra::core::scenario::Session;
use libra::core::sweep::{SweepEngine, SweepGrid};
use libra::{Analytical, EventSimBackend, LinkParams, NetSimBackend};
use libra_bench::{sweep_workload_with_link, sweep_workloads_with_link};
use libra_workloads::zoo::PaperModel;

/// 2 shapes × 2 workloads × 5 budgets × 2 objectives = 40 grid points.
fn grid_40() -> SweepGrid {
    SweepGrid::new()
        .with_shapes([presets::topo_3d_512(), presets::topo_3d_4k()])
        .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

const MODELS: [PaperModel; 2] = [PaperModel::TuringNlg, PaperModel::Gpt3];

/// Acceptance criterion: over a ≥ 40-point cross-validated sweep, the
/// NetSim-vs-Analytical relative error shrinks monotonically as α → 0 and
/// lands inside the documented β-only pipeline-bubble bound at α = 0.
#[test]
fn netsim_converges_to_analytical_as_alpha_vanishes_over_40_points() {
    let grid = grid_40();
    let n_points = grid.len(MODELS.len());
    assert!(n_points >= 40, "acceptance requires ≥ 40 grid points, got {n_points}");

    let cm = CostModel::default();
    let analytical = Analytical::new();
    let net_sim = NetSimBackend::default();
    let max_ndims = grid.shapes().iter().map(|s| s.ndims()).max().unwrap();
    let bound = net_sim.agreement_bound(max_ndims);

    // 10 µs per hop is deliberately α-dominated for these plans; each step
    // divides α by 100, ending at exactly zero.
    let alphas_ps = [1e7, 1e5, 1e3, 0.0];
    let mut last_max_err = f64::INFINITY;
    let mut errs = Vec::new();
    for &alpha in &alphas_ps {
        let workloads = sweep_workloads_with_link(&MODELS, LinkParams::latency(alpha));
        let session = Session::new(&cm).with_tolerance(bound);
        let report = session.run(&grid, &workloads, &[&analytical, &net_sim]);
        assert!(report.sweep.errors.is_empty(), "sweep errors: {:?}", report.sweep.errors);
        let divergence = &report.divergence.pairs[0];
        assert_eq!(divergence.points.len(), n_points, "every point must be compared");
        assert!(divergence.backend_errors.is_empty());
        let max_err = divergence.max_rel_error();
        assert!(
            max_err <= last_max_err + 1e-9,
            "rel err grew as α shrank: {max_err} after {last_max_err} (α = {alpha} ps)"
        );
        // The analytical model stays a lower bound at every α.
        for p in &divergence.points {
            assert!(
                p.reference_secs >= p.baseline_secs * (1.0 - 1e-9),
                "net-sim beat the analytical lower bound at {p:?}"
            );
        }
        last_max_err = max_err;
        errs.push(max_err);
    }
    assert!(
        last_max_err <= bound,
        "α→0 max rel err {last_max_err} exceeds the documented bound {bound} (sequence {errs:?})"
    );
    // The sweep is not vacuous: the α-dominated end of the sequence
    // genuinely diverged, so the convergence above means something.
    assert!(
        errs[0] > bound,
        "α = 10 µs should diverge beyond the β-only bound, got {} ≤ {bound}",
        errs[0]
    );
}

/// Offloaded plans get an event-driven price: the offload-aware NetSim is
/// bracketed by `Analytical { in_network_offload: true }` over the same
/// 40-point grid (α = 0; the offload rule, not the latency, is under
/// test). This is the regime the paper's Fig. 12 offload results assert
/// analytically — now cross-validated.
#[test]
fn offloaded_plans_are_cross_validated_over_40_points() {
    let grid = grid_40();
    let n_points = grid.len(MODELS.len());
    let cm = CostModel::default();
    let analytical_offload = Analytical { in_network_offload: true };
    // The backend's default for unspecified dims is a zero-latency Switch,
    // matching the analytical offload rule's all-dims scope — so plain
    // plans (no NetSpec) cross-validate the offload path on every shape.
    let net_offload = NetSimBackend::offloaded(64);
    let max_ndims = grid.shapes().iter().map(|s| s.ndims()).max().unwrap();
    let workloads = libra_bench::sweep_workloads(&MODELS);
    let session = Session::new(&cm).with_tolerance(net_offload.agreement_bound(max_ndims));
    let report = session.run(&grid, &workloads, &[&analytical_offload, &net_offload]);
    assert!(report.sweep.errors.is_empty());
    let divergence = &report.divergence.pairs[0];
    assert_eq!(divergence.points.len(), n_points);
    assert!(divergence.backend_errors.is_empty());
    assert!(
        divergence.within_tolerance(),
        "offloaded net-sim diverged from the offloaded closed form: {}",
        divergence.summary()
    );
    for p in &divergence.points {
        assert!(p.baseline_secs > 0.0, "offloaded plans must cost real time");
        assert!(
            p.reference_secs >= p.baseline_secs * (1.0 - 1e-9),
            "offloaded net-sim beat the analytical lower bound at {p:?}"
        );
    }
}

/// The N-way fan-out prices all backends consistently: the
/// (analytical, event-sim) pair of a three-backend session matches a
/// plain two-backend run, and at α = 0 the (event-sim, net-sim) pair is
/// exact.
#[test]
fn three_way_sweep_agrees_with_two_way_runs() {
    let grid = SweepGrid::new()
        .with_shape(presets::topo_3d_512())
        .with_budgets([100.0, 500.0, 900.0])
        .with_objectives([Objective::Perf]);
    let workloads = [sweep_workload_with_link(PaperModel::TuringNlg, LinkParams::zero())];
    let cm = CostModel::default();
    let analytical = Analytical::new();
    let event_sim = EventSimBackend::default();
    let net_sim = NetSimBackend::default();
    let bound = event_sim.agreement_bound(3);

    let engine = SweepEngine::new(&cm);
    let session = Session::over(&engine).with_tolerance(bound);
    let report3 = session.run(&grid, &workloads, &[&analytical, &event_sim, &net_sim]);
    assert!(report3.divergence.within_tolerance(), "{}", report3.divergence.summary());

    let report2 = session.run(&grid, &workloads, &[&analytical, &event_sim]);
    let pair = report3.divergence.pair("analytical", "event-sim").unwrap();
    assert_eq!(pair.points, report2.divergence.pairs[0].points, "3-way (a, b) pair ≠ 2-way run");

    // At α = 0 the event engine and the network layer coincide exactly.
    let ev_net = report3.divergence.pair("event-sim", "net-sim").unwrap();
    assert_eq!(ev_net.max_rel_error(), 0.0, "α=0 net-sim must equal event-sim");
}
