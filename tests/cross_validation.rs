//! Integration tests of the cross-validated sweep: the analytical and
//! event-driven backends must agree over a full design grid, and the
//! `DivergenceReport` must catch a backend that is deliberately wrong.

use libra::core::cost::CostModel;
use libra::core::opt::Objective;
use libra::core::presets;
use libra::core::scenario::Session;
use libra::core::sweep::{ExecMode, SweepEngine, SweepGrid};
use libra::{Analytical, EventSimBackend, ScaledBackend};
use libra_bench::sweep_workloads;
use libra_workloads::zoo::PaperModel;

/// 2 shapes × 2 workloads × 5 budgets × 2 objectives = 40 grid points.
fn grid_40() -> SweepGrid {
    SweepGrid::new()
        .with_shapes([presets::topo_3d_512(), presets::topo_3d_4k()])
        .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

/// Acceptance criterion: a ≥ 40-point cross-validated sweep stays below
/// the event-sim backend's documented agreement bound at every point.
#[test]
fn analytical_and_event_sim_agree_over_a_40_point_sweep() {
    let grid = grid_40();
    let workloads = sweep_workloads(&[PaperModel::TuringNlg, PaperModel::Gpt3]);
    let n_points = grid.len(workloads.len());
    assert!(n_points >= 40, "acceptance requires ≥ 40 grid points, got {n_points}");

    let cm = CostModel::default();
    let analytical = Analytical::new();
    let event_sim = EventSimBackend::default();
    // Tolerance from first principles: the documented pipeline-bubble bound
    // for the widest fabric in the grid (3 dims at 64 chunks → 9.375 %).
    let max_ndims = grid.shapes().iter().map(|s| s.ndims()).max().unwrap();
    let session = Session::new(&cm).with_tolerance(event_sim.agreement_bound(max_ndims));

    let report = session.run(&grid, &workloads, &[&analytical, &event_sim]);
    assert!(report.sweep.errors.is_empty(), "sweep errors: {:?}", report.sweep.errors);
    assert_eq!(report.sweep.results.len(), n_points);

    let d = &report.divergence.pairs[0];
    assert_eq!(d.points.len(), n_points, "every point must be compared");
    assert_eq!(d.skipped, 0);
    assert!(d.backend_errors.is_empty());
    assert!(
        d.within_tolerance(),
        "analytical diverged from event-sim beyond the documented bound: {}",
        d.summary()
    );
    // The analytical model is a lower bound on faithful execution: at every
    // point the simulator is at least as slow.
    for p in &d.points {
        assert!(
            p.reference_secs >= p.baseline_secs * (1.0 - 1e-9),
            "event-sim beat the analytical lower bound at {p:?}"
        );
    }
    // And the agreement is not vacuous — designs spend real time.
    assert!(d.points.iter().all(|p| p.baseline_secs > 0.0));
}

/// Acceptance criterion: injecting a deliberately skewed backend must trip
/// the divergence report.
#[test]
fn skewed_backend_is_caught_by_the_divergence_report() {
    let grid = grid_40();
    let workloads = sweep_workloads(&[PaperModel::TuringNlg, PaperModel::Gpt3]);
    let cm = CostModel::default();
    let analytical = Analytical::new();
    // A backend wrong by 30% everywhere — e.g. a unit slip or a dropped
    // All-Gather half would look like this.
    let skewed = ScaledBackend::new(EventSimBackend::default(), 1.30, "skewed-event-sim");

    let report =
        Session::new(&cm).with_tolerance(0.10).run(&grid, &workloads, &[&analytical, &skewed]);
    let d = &report.divergence.pairs[0];
    assert!(!d.within_tolerance(), "a 30% skew must not pass a 10% tolerance");
    assert!(!d.violations().is_empty());
    // rel_error(t, 1.3·t·(1+bubble)) ≥ 0.3/1.3 ≈ 23% at every point.
    assert!(d.max_rel_error() > 0.2);
    assert!(d.mean_rel_error() > 0.2);
    // violations() ranks worst-first.
    let v = d.violations();
    for w in v.windows(2) {
        assert!(w[0].rel_error >= w[1].rel_error);
    }
    // The summary names the offending cell for triage.
    assert!(d.summary().contains("worst cell"));
}

/// The divergence check composes with the sweep cache: a warm engine
/// re-validates from memoized designs and reaches identical conclusions.
#[test]
fn cross_validation_is_deterministic_and_cache_stable() {
    let grid = SweepGrid::new()
        .with_shape(presets::topo_3d_512())
        .with_budgets([200.0, 400.0])
        .with_objectives([Objective::Perf]);
    let workloads = sweep_workloads(&[PaperModel::TuringNlg]);
    let cm = CostModel::default();
    let analytical = Analytical::new();
    let event_sim = EventSimBackend::default();

    let engine = SweepEngine::new(&cm);
    let session = Session::over(&engine);
    let cold = session.run(&grid, &workloads, &[&analytical, &event_sim]);
    let warm = session.run(&grid, &workloads, &[&analytical, &event_sim]);
    assert_eq!(cold.sweep.results, warm.sweep.results);
    assert_eq!(cold.divergence, warm.divergence);
    let serial = Session::over(&engine).with_mode(ExecMode::Serial).run(
        &grid,
        &workloads,
        &[&analytical, &event_sim],
    );
    assert_eq!(cold.divergence, serial.divergence);
}
