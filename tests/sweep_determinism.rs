//! Determinism contract of the sweep engine: the rayon-parallel run returns
//! **bit-identical** results to a serial fold over the same grid, point for
//! point, on a ≥ 50-point grid evaluated with ≥ 4 worker threads.

use libra::core::comm::{Collective, CommModel, GroupSpan};
use libra::core::cost::CostModel;
use libra::core::network::NetworkShape;
use libra::core::opt::Objective;
use libra::core::scenario::Session;
use libra::core::sweep::{ExecMode, FnWorkload, SweepEngine, SweepGrid};

/// Force ≥ 4 workers even on single-core CI runners: the shimmed (and real)
/// rayon reads this env var at pool construction.
fn force_parallelism() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert!(rayon::current_num_threads() >= 4);
}

fn workloads() -> Vec<FnWorkload> {
    let allreduce = |name: &str, gb: f64| {
        FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
    };
    vec![allreduce("allreduce-2g", 2.0), allreduce("allreduce-8g", 8.0)]
}

/// 3 shapes × 2 workloads × 5 budgets × 2 objectives = 60 grid points.
fn grid() -> SweepGrid {
    SweepGrid::new()
        .with_shape("RI(4)_SW(8)".parse().unwrap())
        .with_shape("FC(8)_SW(4)".parse().unwrap())
        .with_shape("RI(4)_FC(4)_SW(4)".parse().unwrap())
        .with_budgets([100.0, 250.0, 400.0, 550.0, 700.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    force_parallelism();
    let grid = grid();
    let wls = workloads();
    assert!(grid.len(wls.len()) >= 50, "grid too small: {}", grid.len(wls.len()));
    let cm = CostModel::default();

    let parallel = Session::new(&cm).run(&grid, &wls, &[]).sweep;
    let serial = Session::new(&cm).with_mode(ExecMode::Serial).run(&grid, &wls, &[]).sweep;

    assert_eq!(parallel.results.len(), grid.len(wls.len()));
    assert!(parallel.errors.is_empty() && serial.errors.is_empty());
    // Bit-identical: Design/SweepResult equality is exact f64 comparison —
    // no tolerance anywhere.
    assert_eq!(parallel.results, serial.results);
    assert_eq!(parallel.errors, serial.errors);
}

#[test]
fn parallel_sweep_is_reproducible_across_runs_and_cache_states() {
    force_parallelism();
    let grid = grid();
    let wls = workloads();
    let cm = CostModel::default();

    // Cold engine vs warm engine (second run served from the memo cache)
    // vs an entirely fresh engine: all bit-identical.
    let engine = SweepEngine::new(&cm);
    let session = Session::over(&engine);
    let cold = session.run(&grid, &wls, &[]).sweep;
    let warm = session.run(&grid, &wls, &[]).sweep;
    let fresh = Session::new(&cm).run(&grid, &wls, &[]).sweep;
    assert_eq!(cold.results, warm.results);
    assert_eq!(cold.results, fresh.results);
    // The warm run really did hit the cache rather than re-solving.
    assert!(warm.cache.design_hits >= grid.len(wls.len()));
}
