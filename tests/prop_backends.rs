//! Differential property tests between evaluation backends: for random
//! shapes, collectives, payloads, bandwidths, and chunk counts, the
//! event-driven backend must bracket the analytical backend within a
//! bound stated from first principles.
//!
//! # Why the bound is what it is
//!
//! The analytical time of a single collective is the bottleneck
//! dimension's streaming time, `max_i traffic_i / B_i` — a **lower bound**
//! on any faithful execution (it assumes the bottleneck dimension never
//! idles). The chunked event simulation adds the pipeline's fill/drain
//! bubble: the bottleneck dimension waits while the first (and last) chunk
//! traverses the other dimensions. One chunk's serial traversal of every
//! stage costs `serial = Σ_i traffic_i / (chunks · B_i)`, so
//!
//! ```text
//! analytic − ε  ≤  sim  ≤  analytic + 2·serial + ε
//! ```
//!
//! where the factor 2 absorbs FIFO scheduling gaps (an All-Gather stage
//! queued behind a *later* chunk's Reduce-Scatter on the same server —
//! the server totals are unchanged but the critical path can see the
//! bubble twice) and `ε` absorbs picosecond rounding (each of the
//! `≤ chunks · 2 · ndims` stages rounds to the nearest tick, ≤ 0.5 ps
//! each). Since `serial ≤ ndims · analytic / chunks`, this implies the
//! user-facing bound published by `EventSimBackend::agreement_bound`:
//! `rel_error ≤ 2 · ndims / chunks`.

use libra::core::comm::{traffic_per_dim, Collective, GroupSpan};
use libra::core::workload::CommOp;
use libra::{Analytical, CommPlan, EvalBackend, EventSimBackend};
use libra_core::eval::rel_error;
use proptest::prelude::*;

/// `(extent, bandwidth GB/s)` per dimension: 1–4 dims, extents 2/4/8.
fn arb_dims() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((prop_oneof![Just(2u64), Just(4u64), Just(8u64)], 5.0f64..200.0), 1..5)
}

fn arb_collective() -> impl Strategy<Value = Collective> {
    prop_oneof![
        Just(Collective::AllReduce),
        Just(Collective::ReduceScatter),
        Just(Collective::AllGather),
        Just(Collective::AllToAll),
        Just(Collective::PointToPoint),
    ]
}

fn arb_chunks() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16), Just(32), Just(64)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The event simulation brackets the analytical model: never below it
    /// (minus rounding), never above it by more than the documented
    /// fill/drain bubble.
    #[test]
    fn event_sim_brackets_analytical(
        dims in arb_dims(),
        collective in arb_collective(),
        chunks in arb_chunks(),
        gb in 0.01f64..8.0,
    ) {
        let ndims = dims.len();
        let span = GroupSpan::new(
            dims.iter().enumerate().map(|(d, &(e, _))| (d, e)).collect(),
        );
        let bw: Vec<f64> = dims.iter().map(|&(_, b)| b).collect();
        let plan = CommPlan::serial([CommOp::new(collective, gb * 1e9, span.clone())]);

        let analytic = Analytical::new().eval_plan(ndims, &bw, &plan).unwrap();
        let backend = EventSimBackend::new(chunks);
        let sim = backend.eval_plan(ndims, &bw, &plan).unwrap();

        // Rounding slack: ≤ chunks · 2 · ndims stages, ≤ 0.5 ps each.
        let eps = (chunks * 2 * ndims) as f64 * 0.5e-12 + 1e-12;
        prop_assert!(
            sim >= analytic - eps,
            "sim {sim} fell below the analytical lower bound {analytic}"
        );

        // One chunk's serial traversal of every spanned dimension.
        let serial: f64 = traffic_per_dim(collective, gb * 1e9, &span)
            .iter()
            .map(|&(d, t)| t / 1e9 / bw[d] / chunks as f64)
            .sum();
        prop_assert!(
            sim <= analytic + 2.0 * serial + eps,
            "sim {sim} exceeds analytic {analytic} + 2·serial {serial} (ndims {ndims}, \
             chunks {chunks}, {collective:?})"
        );

        // The published coarse bound follows from the tight one.
        prop_assert!(
            rel_error(analytic, sim) <= backend.agreement_bound(ndims) + 1e-9,
            "rel error {} above agreement_bound {}",
            rel_error(analytic, sim),
            backend.agreement_bound(ndims)
        );
    }

    /// Degenerate pipelines are exact: one dimension means no cross-dim
    /// bubble, so at any chunk count the simulated time equals the
    /// analytical time up to per-stage rounding.
    #[test]
    fn single_dim_is_exact_at_any_chunking(
        extent in prop_oneof![Just(2u64), Just(4u64), Just(8u64)],
        b in 5.0f64..200.0,
        collective in arb_collective(),
        chunks in arb_chunks(),
        gb in 0.01f64..8.0,
    ) {
        let span = GroupSpan::new(vec![(0, extent)]);
        let plan = CommPlan::serial([CommOp::new(collective, gb * 1e9, span)]);
        let analytic = Analytical::new().eval_plan(1, &[b], &plan).unwrap();
        let sim = EventSimBackend::new(chunks).eval_plan(1, &[b], &plan).unwrap();
        // 2·chunks stages of rounding at most (All-Reduce), ≤ 0.5 ps each.
        let eps = (2 * chunks) as f64 * 0.5e-12 + 1e-12;
        prop_assert!(
            (sim - analytic).abs() <= eps,
            "single-dim sim {sim} != analytic {analytic} beyond rounding"
        );
    }
}
