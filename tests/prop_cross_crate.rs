//! Property-based cross-crate tests: for randomized workloads and networks,
//! the optimizer/simulator/estimator must satisfy their contracts.

use libra::core::comm::{Collective, CommModel, GroupSpan};
use libra::core::cost::CostModel;
use libra::core::opt::{self, Constraint, DesignRequest, Objective};
use libra::core::time::estimate;
use libra::core::workload::{CommOp, Layer, TrainingLoop, Workload};
use libra::sim::training::{simulate_training, TrainingSimConfig};
use libra::workloads::format::{from_wl, to_wl};
use proptest::prelude::*;

/// A random workload over a 3D network with dims (4, 8, 4).
fn arb_workload() -> impl Strategy<Value = Workload> {
    let layer = (
        0.0f64..0.02,
        0.1f64..4.0, // fwd comm GB
        0.1f64..4.0, // dp comm GB
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(compute, fwd_gb, dp_gb, tp_inner, dp_full)| {
            let tp_span = if tp_inner {
                GroupSpan::new(vec![(0, 4)])
            } else {
                GroupSpan::new(vec![(0, 4), (1, 8)])
            };
            let dp_span = if dp_full {
                GroupSpan::new(vec![(1, 8), (2, 4)])
            } else {
                GroupSpan::new(vec![(2, 4)])
            };
            Layer {
                name: "l".into(),
                fwd_compute: compute,
                fwd_comm: Some(CommOp::new(Collective::AllReduce, fwd_gb * 1e9, tp_span)),
                igrad_compute: compute,
                tp_comm: None,
                wgrad_compute: compute,
                dp_comm: Some(CommOp::new(Collective::ReduceScatter, dp_gb * 1e9, dp_span)),
            }
        });
    prop::collection::vec(layer, 1..5).prop_map(|layers| Workload::new("prop", layers))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer's design never loses to EqualBW, and the reported time
    /// matches direct evaluation of the expression at the designed point.
    #[test]
    fn optimizer_beats_equal_and_is_consistent(w in arb_workload(), total in 50.0f64..500.0) {
        let shape: libra::core::network::NetworkShape = "RI(4)_FC(8)_SW(4)".parse().unwrap();
        let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        let cm = CostModel::default();
        let targets = vec![(1.0, expr.clone())];
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: targets.clone(),
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        }).expect("solves");
        let eq = opt::evaluate(&shape, &targets, &opt::equal_bw(3, total), &cm);
        prop_assert!(d.weighted_time <= eq.weighted_time * (1.0 + 1e-6));
        let direct = expr.eval(&d.bw);
        prop_assert!((d.weighted_time - direct).abs() <= 1e-6 * (1.0 + direct));
        prop_assert!((d.bw.iter().sum::<f64>() - total).abs() < 1e-3);
    }

    /// Simulated makespan brackets the analytical estimate: never below the
    /// contention-free bound, never above it by more than the pipeline
    /// bubble allowance.
    #[test]
    fn simulator_brackets_estimator(w in arb_workload(), b0 in 10.0f64..200.0, b1 in 10.0f64..200.0, b2 in 10.0f64..200.0) {
        let bw = [b0, b1, b2];
        let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        let analytic = expr.eval(&bw);
        let sim = simulate_training(
            &w,
            3,
            &bw,
            &TrainingSimConfig { chunks_per_collective: 32, ..Default::default() },
        );
        prop_assert!(sim.makespan >= analytic * 0.999, "sim {} < analytic {analytic}", sim.makespan);
        prop_assert!(sim.makespan <= analytic * 1.15, "sim {} >> analytic {analytic}", sim.makespan);
    }

    /// `.wl` serialization round-trips every randomized workload.
    #[test]
    fn wl_round_trip(w in arb_workload()) {
        let text = to_wl(&w);
        let back = from_wl(&text).expect("round-trip parse");
        prop_assert_eq!(w, back);
    }

    /// Training-loop overlap never makes an iteration slower.
    #[test]
    fn overlap_is_never_slower(w in arb_workload(), b in 20.0f64..300.0) {
        let bw = [b, b, b];
        let comm = CommModel::default();
        let no = estimate(&w, TrainingLoop::NoOverlap, &comm).eval(&bw);
        let ov = estimate(&w, TrainingLoop::TpDpOverlap, &comm).eval(&bw);
        prop_assert!(ov <= no * (1.0 + 1e-9));
    }
}
