//! # LIBRA — workload-aware multi-dimensional network topology optimization
//!
//! Facade crate re-exporting the LIBRA workspace:
//!
//! * [`core`] — the LIBRA framework itself (networks, cost, comm model,
//!   training time estimation, bandwidth optimization).
//! * [`solver`] — convex/QP optimization substrate (Gurobi substitute).
//! * [`workloads`] — DNN workload generators & parsers (Table II models).
//! * [`sim`] — deterministic event-driven simulator (ASTRA-sim substitute).
//! * [`net`] — network-layer α-β simulation backend (per-hop latency,
//!   switch traversal, switch-offload-aware collectives).
//! * [`themis`] — bandwidth-aware runtime chunk scheduler.
//! * [`tacos`] — topology-aware collective algorithm synthesizer.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use libra_core as core;
pub use libra_net as net;
pub use libra_sim as sim;
pub use libra_solver as solver;
pub use libra_tacos as tacos;
pub use libra_themis as themis;
pub use libra_workloads as workloads;

// The pluggable-evaluation surface, flattened for convenience: the
// backend-neutral plan IR, the network-layer side channel, and the
// analytical backend (from `libra-core`); the event-driven backend (from
// `libra-sim`); the α-β network-layer backend (from `libra-net`); and the
// two- and three-way cross-validation sweep types. See
// `examples/design_space_sweep.rs` for the full loop.
pub use libra_core::eval::{
    Analytical, CommPhase, CommPlan, DimTopology, EvalBackend, LinkParams, NetSpec, ScaledBackend,
};
pub use libra_core::sweep::{
    CrossValidated3Report, CrossValidatedReport, CrossValidation, CrossValidation3,
    Divergence3Report, DivergenceReport,
};
pub use libra_net::NetSimBackend;
pub use libra_sim::EventSimBackend;
