//! # LIBRA — workload-aware multi-dimensional network topology optimization
//!
//! Facade crate re-exporting the LIBRA workspace:
//!
//! * [`core`] — the LIBRA framework itself (networks, cost, comm model,
//!   training time estimation, bandwidth optimization).
//! * [`solver`] — convex/QP optimization substrate (Gurobi substitute).
//! * [`workloads`] — DNN workload generators & parsers (Table II models).
//! * [`sim`] — deterministic event-driven simulator (ASTRA-sim substitute).
//! * [`net`] — network-layer α-β simulation backend (per-hop latency,
//!   switch traversal, switch-offload-aware collectives).
//! * [`themis`] — bandwidth-aware runtime chunk scheduler.
//! * [`tacos`] — topology-aware collective algorithm synthesizer.
//! * [`server`] — the sweep service: a queued, multi-client HTTP/JSON
//!   front end (`libra serve`/`libra submit`) over one shared
//!   persistent solve store.
//!
//! The quickstart import block — everything the scenario-first front door
//! needs is re-exported at the root (no `libra::core::sweep::…` paths):
//!
//! ```
//! use libra::{
//!     Analytical, BackendConfig, BackendRegistry, CacheStats, CollectorSink, CommPlan,
//!     ConsoleTableSink, DivergenceMatrix, EvalBackend, EventSimBackend, ExecMode,
//!     FnWorkload, JsonLinesSink, LinkParams, NetSimBackend, RankBy, ReportSink, Scenario,
//!     ScenarioBuilder, Session, SessionReport, SweepEngine, SweepGrid, SweepReport,
//! };
//! use libra::core::cost::CostModel;
//! use libra::core::opt::Objective;
//!
//! // Describe the problem as data, execute it with a Session.
//! let scenario = Scenario::builder("quickstart")
//!     .with_shape("RI(8)_SW(4)".parse()?)
//!     .with_budgets([100.0])
//!     .with_objectives([Objective::Perf])
//!     .with_workload("Turing-NLG")
//!     .with_backends(["analytical", "event-sim"])
//!     .build()?;
//! assert_eq!(Scenario::from_json(&scenario.to_json())?, scenario);
//! let registry = libra::default_registry();
//! let backends = scenario.build_backends(&registry)?;
//! assert_eq!(backends.len(), 2);
//! let cm = CostModel::default();
//! let session: Session<'_> = scenario.session(&cm);
//! let _engine: &SweepEngine<'_> = session.engine();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/design_space_sweep.rs` for a full scenario-file-driven sweep.

pub use libra_core as core;
pub use libra_net as net;
pub use libra_server as server;
pub use libra_sim as sim;
pub use libra_solver as solver;
pub use libra_tacos as tacos;
pub use libra_themis as themis;
pub use libra_workloads as workloads;

// The pluggable-evaluation surface, flattened for convenience: the
// backend-neutral plan IR, the network-layer side channel, and the
// analytical backend (from `libra-core`); the event-driven backend (from
// `libra-sim`); the α-β network-layer backend (from `libra-net`); and the
// legacy two-/three-way cross-validation report types. See
// `examples/design_space_sweep.rs` for the full loop.
pub use libra_core::eval::{
    Analytical, CommPhase, CommPlan, DimTopology, EvalBackend, LinkParams, NetSpec, ScaledBackend,
};
// The scenario-first front door: declarative scenarios, the backend
// registry, the N-way session, and streaming report sinks.
pub use libra_core::scenario::{
    records_from_jsonl, BackendConfig, BackendRegistry, CollectorSink, ConsoleTableSink,
    DivergenceMatrix, JsonLinesSink, RecordRow, ReportSink, RunMeta, Scenario, ScenarioBuilder,
    Session, SessionReport,
};
// Shard dispatch and the persistent cross-run solve store: split grids
// into worker ranges, merge streams, resume interrupted runs, and cache
// solves on disk between processes.
pub use libra_core::dispatch::{
    partial_records, resume_rows, resume_scenario, Dispatcher, MergedRun,
};
pub use libra_core::store::{Fingerprint, SolveStore, StoreStats, StoredPoint};
// Adaptive search: the Pareto-guided successive-refinement driver for
// design spaces too large to sweep exhaustively.
pub use libra_core::search::{Cosearch, RoundTrace, SearchConfig, SearchReport};
// The sweep substrate: grid, engine, reports, and the deprecated
// fixed-arity cross-validation entry points' config/report types.
pub use libra_core::sweep::{
    CacheStats, CrossValidated3Report, CrossValidatedReport, CrossValidation, CrossValidation3,
    Divergence3Report, DivergenceReport, ExecMode, FnWorkload, GridPoint, RankBy, SweepEngine,
    SweepError, SweepGrid, SweepReport, SweepResult, SweepWorkload,
};
// The sweep service, flattened: embed a server (`Server::start`) or
// talk to one (`ServiceClient`) — the `libra serve`/`libra submit`
// subcommands are thin wrappers over exactly these types.
pub use libra_server::{Server, ServerConfig, ServiceClient};
// The one `default_registry` definition lives in `libra_net` (the
// most-derived backend crate); register your own evaluators on top with
// [`BackendRegistry::register`].
pub use libra_net::{default_registry, NetSimBackend};
pub use libra_sim::EventSimBackend;
