//! Integration tests of the `libra` binary's CLI contract: exit codes,
//! usage routing, flag hardening, and the dispatch subcommand's
//! byte-identity with single-process runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use libra_bench::Scenario;

const LIBRA: &str = env!("CARGO_BIN_EXE_libra");

fn libra(args: &[&str]) -> Output {
    Command::new(LIBRA).args(args).output().expect("libra binary runs")
}

fn ci_small() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/ci_small.json")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("libra-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn unknown_subcommand_prints_usage_to_stderr_and_exits_1() {
    let out = libra(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn no_arguments_is_a_usage_error_not_a_success() {
    let out = libra(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "usage goes to stderr on error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn explicit_help_goes_to_stdout_and_exits_0() {
    for flag in ["--help", "-h", "help"] {
        let out = libra(&[flag]);
        assert_eq!(out.status.code(), Some(0), "{flag}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"), "{flag}");
    }
}

#[test]
fn unknown_and_duplicate_flags_exit_1() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    for args in [
        ["crossval", scenario, "--bogus", "--quiet"],
        ["crossval", scenario, "--serial", "--serial"],
        ["crossval", scenario, "--quiet", "--quiet"],
    ] {
        let out = libra(&args);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("USAGE"), "{args:?}: {stderr}");
    }
    // Flag/command mismatches are usage errors too.
    let out = libra(&["dispatch", scenario]);
    assert_eq!(out.status.code(), Some(1), "dispatch without --shards");
    let out = libra(&["sweep", scenario, "--shards", "2"]);
    assert_eq!(out.status.code(), Some(1), "--shards outside dispatch");
    let out = libra(&["dispatch", scenario, "--shards", "2", "--range", "0..2"]);
    assert_eq!(out.status.code(), Some(1), "--range on dispatch");
    let out = libra(&["crossval", scenario, "--range", "0..99"]);
    assert_eq!(out.status.code(), Some(1), "out-of-bounds --range");
}

/// Reversed, empty, and out-of-grid `--range` specs are usage errors:
/// usage to stderr, exit 1, nothing on stdout — never a silent
/// zero-record "success".
#[test]
fn degenerate_ranges_are_usage_errors() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    for (spec, why) in [
        ("5..2", "reversed"),
        ("3..3", "empty"),
        ("0..99", "does not fit"),
        ("..4", "malformed start"),
        ("0..x", "malformed end"),
    ] {
        let out = libra(&["crossval", scenario, "--range", spec, "--quiet"]);
        assert_eq!(out.status.code(), Some(1), "--range {spec} ({why})");
        assert!(out.stdout.is_empty(), "--range {spec}: no records on stdout");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--range"), "--range {spec}: {stderr}");
        assert!(stderr.contains("USAGE"), "--range {spec} earns the usage block: {stderr}");
    }
    // The same specs die identically under sweep.
    let out = libra(&["sweep", scenario, "--range", "3..3", "--quiet"]);
    assert_eq!(out.status.code(), Some(1), "empty range under sweep");
}

/// Two `crossval` runs against the same `--cache` produce byte-identical
/// streams; the second run serves every design from the store (nonzero
/// hits, zero staged) instead of re-solving.
#[test]
fn cache_round_trip_is_byte_identical_with_nonzero_hits() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    let cache = tmp("roundtrip-cache.jsonl");
    let cold = tmp("roundtrip-cold.jsonl");
    let warm = tmp("roundtrip-warm.jsonl");
    let _ = std::fs::remove_file(&cache);

    let out = libra(&[
        "crossval",
        scenario,
        "--jsonl",
        cold.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("store: 0 hits"), "cold run misses: {stderr}");

    let out = libra(&[
        "crossval",
        scenario,
        "--jsonl",
        warm.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("store: 4 hits, 0 staged"), "warm run hits: {stderr}");
    assert_eq!(
        std::fs::read(&cold).unwrap(),
        std::fs::read(&warm).unwrap(),
        "warm-from-disk stream must be byte-identical"
    );
}

/// A cache truncated mid-record still serves its valid prefix: the run
/// succeeds, re-solves only what the truncation destroyed, and the
/// output stays byte-identical.
#[test]
fn truncated_cache_serves_its_valid_prefix() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    let cache = tmp("corrupt-cache.jsonl");
    let cold = tmp("corrupt-cold.jsonl");
    let warm = tmp("corrupt-warm.jsonl");
    let _ = std::fs::remove_file(&cache);

    let out = libra(&[
        "crossval",
        scenario,
        "--jsonl",
        cold.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));

    // Tear the last record mid-line, the way a killed writer would.
    let bytes = std::fs::read(&cache).unwrap();
    std::fs::write(&cache, &bytes[..bytes.len() - 25]).unwrap();

    let out = libra(&[
        "crossval",
        scenario,
        "--jsonl",
        warm.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "torn cache must not abort the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("store: 3 hits, 1 staged"), "valid prefix serves: {stderr}");
    assert_eq!(
        std::fs::read(&cold).unwrap(),
        std::fs::read(&warm).unwrap(),
        "recovery must not change the stream"
    );
}

/// `libra resume` completes an interrupted stream in place,
/// byte-identical to the uninterrupted run, pricing only the missing
/// tail.
#[test]
fn resume_completes_a_truncated_stream_in_place() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    let full = tmp("resume-full.jsonl");
    let out = libra(&["crossval", scenario, "--jsonl", full.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0));
    let want = std::fs::read_to_string(&full).unwrap();

    // Keep the header + first record, plus a torn second record.
    let partial = tmp("resume-partial.jsonl");
    let keep: Vec<&str> = want.lines().take(2).collect();
    std::fs::write(&partial, format!("{}\n{{\"index\": 1, \"sha", keep.join("\n"))).unwrap();

    let out = libra(&["resume", scenario, partial.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume: 1 surviving records, 3 re-priced"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&partial).unwrap(),
        want,
        "resumed stream must be byte-identical to the uninterrupted run"
    );

    // Resume is idempotent: a complete stream re-emits unchanged.
    let out = libra(&["resume", scenario, partial.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(std::fs::read_to_string(&partial).unwrap(), want);

    // Usage hardening: resume wants exactly two positionals and no
    // sharding/range flags.
    let out = libra(&["resume", scenario, "--quiet"]);
    assert_eq!(out.status.code(), Some(1), "resume without the partial file");
    let out = libra(&["resume", scenario, partial.to_str().unwrap(), "--range", "0..2"]);
    assert_eq!(out.status.code(), Some(1), "--range on resume");
    let out = libra(&["resume", scenario, partial.to_str().unwrap(), "--shards", "2"]);
    assert_eq!(out.status.code(), Some(1), "--shards on resume");
}

/// `dispatch --shards K` merges back byte-identically to the
/// single-process `crossval --jsonl` stream, with the same exit code,
/// in both in-process and `--spawn` modes.
#[test]
fn dispatch_is_byte_identical_to_single_process_crossval() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    let single = tmp("single.jsonl");
    let out = libra(&["crossval", scenario, "--jsonl", single.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0));
    let want = std::fs::read(&single).unwrap();
    for shards in ["1", "3"] {
        for spawn in [false, true] {
            let merged = tmp(&format!("merged-{shards}-{spawn}.jsonl"));
            let mut args = vec![
                "dispatch",
                scenario,
                "--shards",
                shards,
                "--jsonl",
                merged.to_str().unwrap(),
                "--quiet",
            ];
            if spawn {
                args.push("--spawn");
            }
            let out = libra(&args);
            assert_eq!(out.status.code(), Some(0), "shards={shards} spawn={spawn}");
            let got = std::fs::read(&merged).unwrap();
            assert_eq!(got, want, "shards={shards} spawn={spawn} must merge byte-identically");
        }
    }
}

/// At tolerance zero the backends' genuine disagreement trips the
/// divergence verdict: `crossval` and `dispatch` (both modes) all exit 2,
/// keeping the merged exit code identical to the single-process one.
#[test]
fn dispatch_and_crossval_agree_on_the_exit_2_verdict() {
    let mut scenario = Scenario::load(ci_small()).unwrap();
    scenario.tolerance = 0.0;
    let strict = tmp("strict.json");
    scenario.save(&strict).unwrap();
    let strict = strict.to_str().unwrap();

    let single = libra(&["crossval", strict, "--quiet"]);
    assert_eq!(single.status.code(), Some(2), "ci_small diverges at tolerance 0");
    for spawn in [false, true] {
        let mut args = vec!["dispatch", strict, "--shards", "2", "--quiet"];
        if spawn {
            args.push("--spawn");
        }
        let out = libra(&args);
        assert_eq!(out.status.code(), Some(2), "spawn={spawn}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("FAIL"), "spawn={spawn}: {stderr}");
    }
}

/// The headline chaos contract: `dispatch --spawn --retries` with
/// deterministically injected shard crashes (every spawn attempt 0
/// exits abnormally; attempt 1 survives) merges **byte-identical** to a
/// clean unsharded run — failed attempts' partial output never leaks
/// into the merge. Exhausted retries are a hard, diagnosable failure,
/// and `--retries` without `--spawn` is a usage error.
#[test]
fn dispatch_with_injected_shard_crashes_retries_to_byte_identity() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    let single = tmp("chaos-single.jsonl");
    let out = libra(&["crossval", scenario, "--jsonl", single.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0));
    let want = std::fs::read(&single).unwrap();

    // `dispatch.shard.crash=#1` keys on the spawn-attempt ordinal the
    // dispatcher hands each child: attempt 0 always crashes (exit 70),
    // the respawned attempt 1 runs clean.
    let merged = tmp("chaos-merged.jsonl");
    let out = Command::new(LIBRA)
        .args(["dispatch", scenario, "--shards", "2", "--spawn", "--retries", "2"])
        .args(["--jsonl", merged.to_str().unwrap(), "--quiet"])
        .env("LIBRA_FAULT_PLAN", "seed=7;dispatch.shard.crash=#1")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(stderr.contains("retrying (1/2)"), "the crash is visible, not silent: {stderr}");
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        want,
        "a chaotic run with retries must merge byte-identically to a clean unsharded run"
    );

    // `#3` outlives a budget of 1 retry: attempts 0 and 1 both crash
    // and the dispatch fails with the shard named.
    let out = Command::new(LIBRA)
        .args(["dispatch", scenario, "--shards", "2", "--spawn", "--retries", "1", "--quiet"])
        .env("LIBRA_FAULT_PLAN", "seed=7;dispatch.shard.crash=#3")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker failed with status"), "{stderr}");
    assert!(stderr.contains("attempt 2 of 2"), "{stderr}");

    // Without a fault plan, `--retries` changes nothing: same bytes.
    let calm = tmp("chaos-calm.jsonl");
    let out = libra(&[
        "dispatch",
        scenario,
        "--shards",
        "2",
        "--spawn",
        "--retries",
        "3",
        "--jsonl",
        calm.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(std::fs::read(&calm).unwrap(), want);

    // `--retries` is meaningless without a worker process to respawn.
    let out = libra(&["dispatch", scenario, "--shards", "2", "--retries", "1"]);
    assert_eq!(out.status.code(), Some(1), "--retries without --spawn");
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

/// Kill-9 crash consistency: a `crossval --cache` child SIGKILLed
/// mid-run (no destructors, no flushes) leaves whatever it leaves — the
/// store must heal on reload, and `libra resume` must complete the
/// interrupted stream in place, byte-identical to an uninterrupted run.
#[test]
fn sigkill_mid_run_heals_the_store_and_resumes_byte_identically() {
    use libra_core::store::SolveStore;

    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();
    let full = tmp("kill9-full.jsonl");
    let out = libra(&["crossval", scenario, "--jsonl", full.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0));
    let want = std::fs::read(&full).unwrap();

    // Seed the cache with a prefix of the grid so the killed run's
    // store has real content the reload must preserve.
    let cache = tmp("kill9-cache.jsonl");
    let _ = std::fs::remove_file(&cache);
    let prefix = tmp("kill9-prefix.jsonl");
    let out = libra(&[
        "crossval",
        scenario,
        "--range",
        "0..2",
        "--jsonl",
        prefix.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));

    // Every point sleeps 600 ms, so a kill at 300 ms is always mid-run.
    let partial = tmp("kill9-partial.jsonl");
    let _ = std::fs::remove_file(&partial);
    let mut child = Command::new(LIBRA)
        .args(["crossval", scenario, "--jsonl", partial.to_str().unwrap(), "--quiet"])
        .args(["--cache", cache.to_str().unwrap()])
        .env("LIBRA_FAULT_PLAN", "sweep.point.slow=1,ms=600")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    child.kill().unwrap(); // SIGKILL: the hardest possible interrupt
    child.wait().unwrap();

    // The store heals on reload: the seeded prefix survives whatever
    // tear the kill left behind.
    let store = SolveStore::open(&cache).unwrap();
    assert!(store.len() >= 2, "seeded solves must survive the kill, got {}", store.len());
    drop(store);

    // `resume` completes the interrupted stream in place (the killed
    // child may have written nothing, a header, or a torn tail — all
    // are valid prefixes), byte-identical to the uninterrupted run.
    if !partial.exists() {
        std::fs::write(&partial, "").unwrap();
    }
    let out = libra(&[
        "resume",
        scenario,
        partial.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&partial).unwrap(),
        want,
        "post-kill resume must reproduce the uninterrupted stream byte for byte"
    );
}

/// `serve` + `submit` end to end, against the real binary over a real
/// socket: submissions stream back byte-identical to the checked-in
/// goldens (ci_small and the full design-space sweep), repeat
/// submissions hit the shared store, `list-backends --json` and
/// `GET /v1/backends` serve the same bytes, and a graceful shutdown
/// flushes the store so a warm local `crossval --cache` run stays
/// byte-identical.
#[test]
fn serve_and_submit_round_trip_matches_goldens_and_shares_the_store() {
    use libra_server::ServiceClient;

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let ci_small = root.join("ci_small.json");
    let dss = root.join("design_space_sweep.json");
    let ci_small_golden = std::fs::read(root.join("ci_small.golden.jsonl")).unwrap();
    let dss_golden = std::fs::read(root.join("design_space_sweep.golden.jsonl")).unwrap();

    let cache = tmp("serve-cache.jsonl");
    let port_file = tmp("serve-port.txt");
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&port_file);

    let mut server = Command::new(LIBRA)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(["--cache", cache.to_str().unwrap()])
        .args(["--port-file", port_file.to_str().unwrap()])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve child spawns");

    // The port file appears once the listener is bound.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let port = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if s.ends_with('\n') {
                break s.trim().to_string();
            }
        }
        assert!(std::time::Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let url = format!("http://127.0.0.1:{port}");

    let submit = |scenario: &Path, dest: &Path| -> Output {
        libra(&[
            "submit",
            scenario.to_str().unwrap(),
            "--url",
            &url,
            "--jsonl",
            dest.to_str().unwrap(),
        ])
    };

    // Twice, so the second run prices entirely from the shared store.
    let out1 = tmp("serve-out1.jsonl");
    let out2 = tmp("serve-out2.jsonl");
    for (k, dest) in [(1, &out1), (2, &out2)] {
        let out = submit(&ci_small, dest);
        assert_eq!(out.status.code(), Some(0), "submit #{k}: {:?}", out);
        assert_eq!(
            std::fs::read(dest).unwrap(),
            ci_small_golden,
            "served records #{k} must match the crossval golden byte for byte"
        );
    }

    let client = ServiceClient::new(&url).unwrap();
    let stats = String::from_utf8(client.get("/v1/stats").unwrap().body).unwrap();
    assert!(!stats.contains("\"store_hits\": 0,"), "second run must hit the store: {stats}");
    assert!(!stats.contains("\"store_hits\": null"), "cache is attached: {stats}");

    // The CLI listing and the endpoint are the same bytes by
    // construction — pin it.
    let backends = client.get("/v1/backends").unwrap().body;
    assert_eq!(libra(&["list-backends", "--json"]).stdout, backends);

    // The full design-space sweep (80 points, three backends) served
    // byte-identically to its golden.
    let out3 = tmp("serve-out3.jsonl");
    let out = submit(&dss, &out3);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(std::fs::read(&out3).unwrap(), dss_golden);

    // Graceful shutdown drains and flushes the store...
    assert_eq!(client.post("/v1/shutdown", b"").unwrap().status, 200);
    let status = server.wait().expect("serve child exits");
    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");

    // ...so a warm local run prices everything from it, byte-identically.
    let warm = tmp("serve-warm.jsonl");
    let out = libra(&[
        "crossval",
        ci_small.to_str().unwrap(),
        "--jsonl",
        warm.to_str().unwrap(),
        "--quiet",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("store: 4 hits, 0 staged"), "warm from served cache: {stderr}");
    assert_eq!(std::fs::read(&warm).unwrap(), ci_small_golden);
}

/// `submit`'s failure modes are exit 1 with pointed messages: missing
/// `--url`, a server that is not there, and flag typos.
#[test]
fn submit_usage_and_transport_errors_exit_1() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();

    let out = libra(&["submit", scenario]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--url"), "{stderr}");
    assert!(stderr.contains("USAGE"), "missing --url is a usage error: {stderr}");

    // Nothing listens on a freshly-bound-then-dropped port.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let out = libra(&["submit", scenario, "--url", &format!("http://127.0.0.1:{port}")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("USAGE"), "transport errors skip the usage block: {stderr}");

    let rejected: [&[&str]; 4] = [
        &["submit", scenario, "--url", "https://127.0.0.1:1"],
        &["submit", scenario, "--bogus", "x"],
        &["serve", "--workers", "0"],
        &["serve", scenario, "--queue", "1"],
    ];
    for args in rejected {
        let out = libra(args);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
    }
}

#[test]
fn search_streams_a_reparseable_run_and_replays_serially() {
    let scenario = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/search_small.json");
    let scenario = scenario.to_str().unwrap();
    let jsonl = tmp("search_small.jsonl");
    let jsonl_serial = tmp("search_small_serial.jsonl");

    let out = libra(&["search", scenario, "--jsonl", jsonl.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stream = std::fs::read_to_string(&jsonl).unwrap();
    let rows = libra_core::scenario::records_from_jsonl(&stream).unwrap();
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.error.is_none()), "healthy scenario, healthy rows");

    // The search block caps nothing here, so the driver walks the whole
    // 50-point grid; the serial fold streams the same bytes.
    let out = libra(&[
        "search",
        scenario,
        "--serial",
        "--jsonl",
        jsonl_serial.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stream, std::fs::read_to_string(&jsonl_serial).unwrap(), "parallel ≡ serial bytes");
}

#[test]
fn search_requires_a_search_block_and_rejects_range() {
    let scenario = ci_small();
    let scenario = scenario.to_str().unwrap();

    let out = libra(&["search", scenario, "--quiet"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no \"search\" block"), "{stderr}");

    let out = libra(&["search", scenario, "--range", "0..2"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--range"), "{stderr}");
}

#[test]
fn over_cap_scenario_fails_exhaustive_commands_but_search_completes() {
    let scenario = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/search_huge.json");
    let scenario = scenario.to_str().unwrap();

    // 13.2M nominal points: every exhaustive command refuses, naming
    // the cap and the way out.
    for cmd in ["crossval", "sweep"] {
        let out = libra(&[cmd, scenario, "--quiet"]);
        assert_eq!(out.status.code(), Some(1), "{cmd}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("point cap"), "{cmd}: {stderr}");
        assert!(stderr.contains("libra search"), "{cmd}: {stderr}");
    }
    let out = libra(&["dispatch", scenario, "--shards", "2", "--quiet"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("point cap"));

    // The adaptive driver prices a bounded subgrid of it.
    let jsonl = tmp("search_huge.jsonl");
    let out = libra(&["search", scenario, "--jsonl", jsonl.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stream = std::fs::read_to_string(&jsonl).unwrap();
    assert!(stream.contains("\"points\": 13200000"), "header carries the nominal grid size");
    let rows = libra_core::scenario::records_from_jsonl(&stream).unwrap();
    assert!(!rows.is_empty());
    assert!(rows.len() <= 96, "max_evals bounds the run: {} evals", rows.len());
}
