//! Validation: analytical model vs chunk-level simulator.
//!
//! ASTRA-sim (the paper's measurement vehicle) is validated against real
//! systems at 2.8–11.4% error (§V-A). The analogous check here: the error
//! between LIBRA's closed-form estimator and our event-driven simulator
//! across every Table II workload, at both the EqualBW and PerfOptBW
//! design points. The simulator can only be *slower* (it adds pipeline
//! fill/drain bubbles the closed form ignores), so errors are one-sided
//! and small.

use libra_bench::{banner, time_expr_for, workload};
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_sim::training::{simulate_training, TrainingSimConfig};
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Validation", "analytical estimator vs event-driven simulator (4D-4K, 300 GB/s)");
    let shape = presets::topo_4d_4k();
    let total = 300.0;
    let cm = CostModel::default();
    let cfg = TrainingSimConfig::default();
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "workload", "eq model", "eq sim", "err", "opt model", "opt sim", "err"
    );
    let mut worst: f64 = 0.0;
    for model in PaperModel::all() {
        let expr = time_expr_for(model, &shape).expect("builds");
        let w = workload(model, &shape).expect("builds");
        let equal = opt::equal_bw(shape.ndims(), total);
        let design = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr.clone())],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("solves");
        let mut row = vec![];
        for bw in [equal.as_slice(), design.bw.as_slice()] {
            let analytic = expr.eval(bw);
            let sim = simulate_training(&w, shape.ndims(), bw, &cfg).makespan;
            let err = (sim / analytic - 1.0) * 100.0;
            worst = worst.max(err.abs());
            row.push((analytic, sim, err));
        }
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>8.2}% {:>12.3} {:>12.3} {:>8.2}%",
            model.name(),
            row[0].0,
            row[0].1,
            row[0].2,
            row[1].0,
            row[1].1,
            row[1].2
        );
    }
    println!();
    println!("worst |error|: {worst:.2}%  (ASTRA-sim's published validation: 2.8–11.4%)");
    assert!(worst < 12.0, "simulator and model diverged beyond the expected band");
}
