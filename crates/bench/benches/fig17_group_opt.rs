//! Fig. 17: designing one network for a *group* of workloads.
//!
//! For the 4D-4K network at 1,000 GB/s per NPU: (a) the three LLMs,
//! (b) a mixture of language/recommendation/vision. Each workload is run
//! on every single-target-optimized network and on the group-optimized
//! network; we report speedup over EqualBW (the paper's bars) and slowdown
//! versus each workload's own optimal network (the paper's dots).
//!
//! Paper reference: single-target networks slow other workloads by up to
//! 1.77×; the group-optimized network averages only 1.01× slowdown.

use libra_bench::{banner, time_expr_for};
use libra_core::cost::CostModel;
use libra_core::expr::BwExpr;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

fn study(title: &str, models: &[PaperModel]) {
    let shape = presets::topo_4d_4k();
    let total = 1000.0;
    let cm = CostModel::default();
    let exprs: Vec<BwExpr> =
        models.iter().map(|&m| time_expr_for(m, &shape).expect("model builds")).collect();
    let equal = opt::equal_bw(shape.ndims(), total);
    let equal_times: Vec<f64> = exprs.iter().map(|e| e.eval(&equal)).collect();

    // Single-target optimal networks.
    let single: Vec<Vec<f64>> = exprs
        .iter()
        .map(|e| {
            opt::optimize(&DesignRequest {
                shape: &shape,
                targets: vec![(1.0, e.clone())],
                objective: Objective::Perf,
                constraints: vec![Constraint::TotalBw(total)],
                cost_model: &cm,
            })
            .expect("single-target solves")
            .bw
        })
        .collect();
    // Group optimization: weight each workload by 1/EqualBW-time so every
    // model contributes its *relative* slowdown to the objective.
    let targets: Vec<(f64, BwExpr)> =
        exprs.iter().zip(&equal_times).map(|(e, t)| (1.0 / t, e.clone())).collect();
    let group = opt::optimize(&DesignRequest {
        shape: &shape,
        targets,
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .expect("group-opt solves")
    .bw;

    println!("{title}");
    println!("{:<12} {:>22} {:>22}", "workload", "speedup over EqualBW", "slowdown over own-opt");
    let mut worst_single: f64 = 1.0;
    let mut group_slowdowns: Vec<f64> = Vec::new();
    for (wi, (e, &eq_t)) in exprs.iter().zip(&equal_times).enumerate() {
        let own = e.eval(&single[wi]);
        // Evaluate this workload on every network (single-target + group).
        for (ni, bw) in single.iter().enumerate() {
            let t = e.eval(bw);
            let tag = format!("on {}", models[ni].name());
            if ni != wi {
                worst_single = worst_single.max(t / own);
            }
            println!("{:<12} {:>20.2}x {:>20.2}x   ({tag})", models[wi].name(), eq_t / t, t / own);
        }
        let tg = e.eval(&group);
        group_slowdowns.push(tg / own);
        println!(
            "{:<12} {:>20.2}x {:>20.2}x   (on Group-Opt)",
            models[wi].name(),
            eq_t / tg,
            tg / own
        );
    }
    let avg_group = group_slowdowns.iter().sum::<f64>() / group_slowdowns.len() as f64;
    println!(
        "worst cross-workload slowdown on single-target networks: {worst_single:.2}x (paper: up to 1.77x)"
    );
    println!("group-optimized average slowdown: {avg_group:.2}x (paper: 1.01x)\n");
}

fn main() {
    banner("Fig. 17", "group optimization on 4D-4K @ 1,000 GB/s per NPU");
    study("(a) group-optimizing LLMs", &PaperModel::llms());
    study(
        "(b) group-optimizing a mixture of DNNs",
        &[PaperModel::Msft1T, PaperModel::Dlrm, PaperModel::ResNet50],
    );
}
