//! Fig. 16: MSFT-1T over the 3D-512, 3D-1K and 4D-2K topologies — LIBRA
//! works across shapes, sizes and dimensionalities.

use libra_bench::{banner, print_series, print_sweep_header, sweep};
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Fig. 16", "MSFT-1T across 3D-512 / 3D-1K / 4D-2K");
    let shapes = [
        ("3D-512", presets::topo_3d_512()),
        ("3D-1K", presets::topo_3d_1k()),
        ("4D-2K", presets::topo_4d_2k()),
    ];
    print_sweep_header("series");
    for (name, shape) in shapes {
        for (oname, objective) in
            [("PerfOpt", Objective::Perf), ("PerfPerCost", Objective::PerfPerCost)]
        {
            let pts = sweep(PaperModel::Msft1T, &shape, objective)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let speedups: Vec<f64> = pts.iter().map(|p| p.speedup()).collect();
            let gains: Vec<f64> = pts.iter().map(|p| p.ppc_gain()).collect();
            print_series(&format!("{name} {oname} speedup"), &speedups);
            print_series(&format!("{name} {oname} ppc"), &gains);
        }
    }
    println!();
    println!("Expected shape: PerfOpt speedup > 1 on every topology; ppc gains");
    println!("largest where expensive scale-out dims can shed bandwidth.");
}
