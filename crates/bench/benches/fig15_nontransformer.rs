//! Fig. 15: speedup and perf-per-cost for the non-transformer workloads
//! (ResNet-50 and DLRM) on the 4D-4K topology.
//!
//! Paper reference: LIBRA needs no modification for non-transformer
//! models. ResNet-50 is small, so its perf-per-cost is cost-dominated and
//! PerfPerCostOptBW ends up close to PerfOptBW in that metric (while
//! producing ~15% cheaper networks); DLRM's all-NPU All-to-All still gains
//! from optimization.

use libra_bench::{banner, mean, print_series, print_sweep_header, sweep};
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Fig. 15", "ResNet-50 and DLRM on 4D-4K: speedup + perf-per-cost");
    let shape = presets::topo_4d_4k();
    for model in [PaperModel::ResNet50, PaperModel::Dlrm] {
        print_sweep_header(&format!("{} series", model.name()));
        let mut costs: Vec<(f64, f64)> = Vec::new();
        for (oname, objective) in
            [("PerfOpt", Objective::Perf), ("PerfPerCost", Objective::PerfPerCost)]
        {
            let pts = sweep(model, &shape, objective).expect("sweep solves");
            let speedups: Vec<f64> = pts.iter().map(|p| p.speedup()).collect();
            let gains: Vec<f64> = pts.iter().map(|p| p.ppc_gain()).collect();
            print_series(&format!("  {oname} speedup"), &speedups);
            print_series(&format!("  {oname} ppc gain"), &gains);
            for p in &pts {
                costs.push((p.total_bw, p.design.cost));
            }
        }
        // Cost comparison: PerfPerCost designs should be cheaper on average.
        let n = costs.len() / 2;
        let perf_cost = mean(&costs[..n].iter().map(|c| c.1).collect::<Vec<_>>());
        let ppc_cost = mean(&costs[n..].iter().map(|c| c.1).collect::<Vec<_>>());
        println!(
            "  avg network cost: PerfOpt ${:.2}M vs PerfPerCost ${:.2}M ({:.1}% cheaper; paper: 15.41% for ResNet-50)",
            perf_cost / 1e6,
            ppc_cost / 1e6,
            (1.0 - ppc_cost / perf_cost) * 100.0
        );
        println!();
    }
}
