//! Fig. 1: per-iteration communication sizes across 1,024 NPUs.
//!
//! The paper plots total communication per training iteration (FP16) for
//! models spanning 2015–2021; we regenerate the Table II subset. DP models
//! are dominated by ZeRO-2 gradient/parameter traffic (≈ 2× parameter
//! bytes), TP models add per-layer activation All-Reduces.

use libra_bench::banner;
use libra_core::presets;
use libra_workloads::zoo::{workload_for, PaperModel};

fn main() {
    banner("Fig. 1", "communication size per iteration @ 1,024 NPUs");
    // The 1,024-NPU machine: Table III's 3D-1K.
    let shape = presets::topo_3d_1k();
    assert_eq!(shape.npus(), 1024);
    println!("{:<12} {:>14} {:>18}", "Workload", "Comm (MB)", "paper ballpark");
    let reference = [
        (PaperModel::ResNet50, "~10^2 MB"),
        (PaperModel::TuringNlg, "~10^4-10^5 MB"),
        (PaperModel::Gpt3, "~10^5 MB"),
        (PaperModel::Msft1T, "~10^6 MB"),
        (PaperModel::Dlrm, "~10^3 MB"),
    ];
    for (model, ballpark) in reference {
        let w = workload_for(model, &shape).expect("all Table II models fit 1,024 NPUs");
        let mb = w.total_comm_bytes() / 1e6;
        println!("{:<12} {:>14.0} {:>18}", model.name(), mb, ballpark);
    }
    println!();
    println!("Expected shape: ResNet-50 < DLRM < Turing-NLG < GPT-3 < MSFT-1T,");
    println!("spanning roughly four orders of magnitude (paper: 'GBs to TBs').");
}
