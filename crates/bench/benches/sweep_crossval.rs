//! Criterion benchmark of cross-validated sweeps: the analytical-only
//! design-space sweep vs the same grid with every point additionally
//! priced by both the analytical and event-driven backends (a two-backend
//! `Session::run`), quantifying what continuous model validation costs on
//! top of the search itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use libra_bench::sweep::{SweepEngine, SweepGrid};
use libra_bench::{sweep_workloads, EventSimBackend, Session};
use libra_core::cost::CostModel;
use libra_core::eval::Analytical;
use libra_core::eval::EvalBackend;
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

/// A 40-point grid: 2 shapes × 2 workloads × 5 budgets × 2 objectives.
fn grid() -> SweepGrid {
    SweepGrid::new()
        .with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
        .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

fn bench_crossval(c: &mut Criterion) {
    let grid = grid();
    let workloads = sweep_workloads(&[PaperModel::TuringNlg, PaperModel::ResNet50]);
    let cm = CostModel::default();
    let points = grid.len(workloads.len());
    let analytical = Analytical::new();
    let event_sim = EventSimBackend::default();
    let backends: [&dyn EvalBackend; 2] = [&analytical, &event_sim];

    let mut g = c.benchmark_group("sweep_crossval");
    g.sample_size(10);
    // Fresh engine per iteration: both paths pay full solver cost.
    g.bench_with_input(BenchmarkId::new("analytical_only", points), &points, |b, _| {
        b.iter(|| {
            let report = Session::new(&cm).run(&grid, &workloads, &[]).sweep;
            assert_eq!(report.results.len(), points);
            report
        })
    });
    g.bench_with_input(BenchmarkId::new("cross_validated", points), &points, |b, _| {
        b.iter(|| {
            let report = Session::new(&cm).run(&grid, &workloads, &backends);
            assert_eq!(report.divergence.pairs[0].points.len(), points);
            assert!(report.divergence.within_tolerance(), "{}", report.divergence.summary());
            report
        })
    });
    // Warm cache: designs are memoized, so the delta is pure backend cost.
    let warm = SweepEngine::new(&cm);
    Session::over(&warm).run(&grid, &workloads, &[]);
    g.bench_with_input(BenchmarkId::new("cross_validated_warm", points), &points, |b, _| {
        b.iter(|| Session::over(&warm).run(&grid, &workloads, &backends))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_crossval
}
criterion_main!(benches);
