//! Fig. 9: running a 4-chunk All-Reduce on 3D networks with different
//! bandwidth allocations — under-provisioned Dim 1, under-provisioned
//! Dim 2, and the ideally distributed allocation.
//!
//! Reproduces the paper's Gantt charts: a starved dimension serializes the
//! whole pipeline and leaves the other dimensions idle; the balanced
//! allocation keeps every dimension busy outside the inevitable fill/drain
//! bubbles.

use libra_bench::banner;
use libra_core::comm::{traffic_per_dim, Collective, GroupSpan};
use libra_sim::collective::{run_collective, FixedOrder};
use libra_sim::stats::{average_utilization, render_gantt};

fn main() {
    banner("Fig. 9", "All-Reduce (4 chunks) on 3D networks, varying BW allocation");
    let span = GroupSpan::new(vec![(0, 4), (1, 4), (2, 4)]);
    let m = 8e9;
    let traffic = traffic_per_dim(Collective::AllReduce, m, &span);
    let total = 300.0;
    // Traffic-proportional = ideal (Fig. 9c).
    let tsum: f64 = traffic.iter().map(|&(_, t)| t).sum();
    let ideal: Vec<f64> = traffic.iter().map(|&(_, t)| total * t / tsum).collect();
    let cases: [(&str, Vec<f64>); 3] = [
        // (a) Dim 1 starved: give it a fraction of its ideal share.
        ("(a) underprovisioned Dim1", vec![ideal[0] * 0.25, ideal[1] * 2.0, ideal[2] * 2.0]),
        // (b) Dim 2 starved.
        ("(b) underprovisioned Dim2", vec![ideal[0] * 1.2, ideal[1] * 0.15, ideal[2] * 2.0]),
        ("(c) ideally distributed", ideal.clone()),
    ];
    for (name, bw) in cases {
        let res = run_collective(3, &bw, Collective::AllReduce, m, &span, 4, &mut FixedOrder);
        let util = average_utilization(&res.per_dim_busy);
        println!("{name}: BW = [{:.0}, {:.0}, {:.0}] GB/s", bw[0], bw[1], bw[2]);
        println!(
            "  makespan {:.3} s, average BW utilization {:.1}%",
            res.makespan() as f64 / 1e12,
            util * 100.0
        );
        println!("{}", render_gantt(&res.records, 3, 72));
    }
    println!("Expected shape: (a) and (b) leave two dimensions mostly idle;");
    println!("(c) overlaps all three dimensions and finishes first.");
}
