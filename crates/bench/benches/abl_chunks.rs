//! Ablation: chunk count vs collective completion time (pipelining depth).
//!
//! §II-C notes collectives run "multiple chunks in a pipelined manner" and
//! the evaluation uses 64 chunks per collective. This ablation shows why:
//! one chunk serializes the 2N multi-rail stages; more chunks overlap
//! stages across dimensions until the bottleneck dimension saturates at
//! the analytical `max_i traffic_i / B_i`, after which extra chunks only
//! add scheduling overhead.

use libra_bench::banner;
use libra_core::comm::{traffic_per_dim, Collective, GroupSpan};
use libra_sim::collective::{run_collective, FixedOrder};

fn main() {
    banner("Ablation", "chunks per collective vs All-Reduce time (3D, 4x4x4)");
    let span = GroupSpan::new(vec![(0, 4), (1, 4), (2, 4)]);
    let bytes = 8e9;
    // Traffic-proportional bandwidth (the LIBRA design point).
    let traffic = traffic_per_dim(Collective::AllReduce, bytes, &span);
    let tsum: f64 = traffic.iter().map(|&(_, t)| t).sum();
    let bw: Vec<f64> = traffic.iter().map(|&(_, t)| 300.0 * t / tsum).collect();
    let analytic: f64 = traffic.iter().map(|&(d, t)| t / 1e9 / bw[d]).fold(0.0, f64::max);
    println!("analytical bottleneck: {:.4} s", analytic);
    println!("{:>8} {:>12} {:>18}", "chunks", "time (s)", "vs analytical");
    for chunks in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let res =
            run_collective(3, &bw, Collective::AllReduce, bytes, &span, chunks, &mut FixedOrder);
        let t = res.makespan() as f64 / 1e12;
        println!("{chunks:>8} {t:>12.4} {:>17.2}x", t / analytic);
    }
    println!();
    println!("Expected shape: monotone improvement, converging to ~1.0x of the");
    println!("analytical bound by 64 chunks (the paper's setting).");
}
