//! Ablation: pipeline parallelism (the §IV-C "Parallelization Strategy"
//! extension) — HP-(TP, PP, DP) three-way co-search for GPT-3 on 4D-4K.
//!
//! Pipeline stages divide the layer stack (cutting per-NPU compute and
//! ZeRO-2 gradient traffic by the PP degree) at the price of
//! point-to-point activation transfers across the stage-boundary
//! dimension, `m / B_dim` per boundary.

use libra_bench::banner;
use libra_core::comm::CommModel;
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_core::time::estimate;
use libra_core::workload::TrainingLoop;
use libra_workloads::compute::ComputeModel;
use libra_workloads::transformer::TransformerConfig;

fn main() {
    banner("Ablation", "pipeline parallelism: HP-(TP, PP, DP) on 4D-4K @ 500 GB/s");
    let shape = presets::topo_4d_4k();
    let total = 500.0;
    let cm = CostModel::default();
    let compute = ComputeModel::default();
    let comm = CommModel::default();
    let global_batch = 256u64;

    println!(
        "{:<20} {:>12} {:>12} {:>26}",
        "strategy", "comm (GB)", "PerfOpt t(s)", "optimized bw (GB/s)"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (tp, pp) in [(16u64, 1u64), (16, 2), (16, 4), (16, 8), (8, 2), (32, 2)] {
        let dp = shape.npus() / (tp * pp);
        let w = TransformerConfig::gpt3()
            .with_tp(tp)
            .with_pp(pp)
            .with_batch((global_batch / dp).max(1))
            .build(&shape, &compute)
            .unwrap_or_else(|e| panic!("TP-{tp}/PP-{pp}: {e}"));
        let expr = estimate(&w, TrainingLoop::NoOverlap, &comm);
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("solves");
        let name = format!("HP-({tp}, {pp}, {dp})");
        println!(
            "{:<20} {:>12.1} {:>12.3} {:>26}",
            name,
            w.total_comm_bytes() / 1e9,
            d.weighted_time,
            format!("{:?}", d.bw.iter().map(|b| b.round()).collect::<Vec<_>>())
        );
        rows.push((name, d.weighted_time));
    }
    let (best, t) = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("at least one row");
    println!();
    println!("best strategy: {best} at {t:.3} s/iter");
    println!("Expected shape: moderate PP degrees trade cheap boundary P2P");
    println!("transfers for large cuts in per-NPU compute and DP traffic;");
    println!("the optimizer shifts bandwidth toward the boundary dimension.");
}
