//! Criterion micro-benchmarks of the optimization substrate: interior-point
//! solve latency for LIBRA-shaped problems of growing size, and the
//! end-to-end optimizer (the quantity that bounds a full Fig. 13 sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_solver::convex::{ConvexProblem, RatioTerm};
use libra_workloads::zoo::PaperModel;

/// A bottleneck problem with `k` max-terms over `n` dims.
fn bottleneck_problem(n: usize, k: usize) -> ConvexProblem {
    let t0 = n; // epigraph vars t0..t0+k-1
    let mut p = ConvexProblem::new(n + k + 1);
    let obj: Vec<(usize, f64)> = (0..k).map(|j| (t0 + j, 1.0)).collect();
    p.minimize(&obj);
    for j in 0..k {
        for i in 0..n {
            let c = 1.0 + ((i + 3 * j) % 7) as f64;
            p.add_ratio_le(RatioTerm::new(vec![(i, c)]).minus_var(t0 + j));
        }
    }
    for i in 0..n {
        p.set_lower(i, 1e-3);
    }
    let cap: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
    p.add_lin_le(&cap, 100.0);
    p
}

fn bench_interior_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("interior_point");
    for (n, k) in [(2usize, 2usize), (4, 4), (4, 16), (8, 32)] {
        let p = bottleneck_problem(n, k);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{n}dims_{k}terms")), &p, |b, p| {
            b.iter(|| p.solve().expect("solves"))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let shape = presets::topo_4d_4k();
    let cm = CostModel::default();
    let expr = {
        let w = libra_workloads::zoo::workload_for(PaperModel::Gpt3, &shape).unwrap();
        libra_core::time::estimate(
            &w,
            libra_core::workload::TrainingLoop::NoOverlap,
            &libra_core::comm::CommModel::default(),
        )
    };
    c.bench_function("perf_opt_gpt3_4d4k", |b| {
        b.iter(|| {
            opt::optimize(&DesignRequest {
                shape: &shape,
                targets: vec![(1.0, expr.clone())],
                objective: Objective::Perf,
                constraints: vec![Constraint::TotalBw(300.0)],
                cost_model: &cm,
            })
            .expect("solves")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_interior_point, bench_end_to_end
}
criterion_main!(benches);
