//! Criterion benchmark of the design-space sweep engine: the rayon-parallel
//! run vs the serial reference fold over an identical grid, demonstrating
//! the fan-out speedup on multi-core hosts (plus a cached re-run, which is
//! memo-bound rather than solver-bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use libra_bench::sweep::{ExecMode, SweepEngine, SweepGrid};
use libra_bench::{sweep_workloads, Session};
use libra_core::cost::CostModel;
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

/// A 60-point grid: 3 shapes × 2 workloads × 5 budgets × 2 objectives.
fn grid() -> SweepGrid {
    SweepGrid::new()
        .with_shapes([presets::topo_3d_512(), presets::topo_3d_1k(), presets::topo_3d_4k()])
        .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

fn bench_sweep(c: &mut Criterion) {
    let grid = grid();
    let workloads = sweep_workloads(&[PaperModel::TuringNlg, PaperModel::ResNet50]);
    let cm = CostModel::default();
    let points = grid.len(workloads.len());
    println!("sweeping {points} design points, rayon threads = {}", rayon::current_num_threads());

    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    // Fresh engine per iteration: both paths pay full solver cost.
    g.bench_with_input(BenchmarkId::new("serial", points), &points, |b, _| {
        b.iter(|| {
            let report =
                Session::new(&cm).with_mode(ExecMode::Serial).run(&grid, &workloads, &[]).sweep;
            assert_eq!(report.results.len(), points);
            report
        })
    });
    g.bench_with_input(BenchmarkId::new("parallel", points), &points, |b, _| {
        b.iter(|| {
            let report = Session::new(&cm).run(&grid, &workloads, &[]).sweep;
            assert_eq!(report.results.len(), points);
            report
        })
    });
    // Shared engine: after the first fill the sweep is pure cache traffic.
    let warm = SweepEngine::new(&cm);
    Session::over(&warm).run(&grid, &workloads, &[]);
    g.bench_with_input(BenchmarkId::new("parallel_warm_cache", points), &points, |b, _| {
        b.iter(|| {
            let report = Session::over(&warm).run(&grid, &workloads, &[]).sweep;
            assert_eq!(report.results.len(), points);
            report
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);
