//! Table III + Fig. 11: the evaluated topologies and the real ML systems
//! expressible in the `RI/FC/SW` notation.

use libra_bench::banner;
use libra_core::presets;

fn main() {
    banner("Table III", "multi-dimensional topologies used for analysis");
    println!("{:<10} {:<28} {:>7}", "Name", "Shape", "NPUs");
    for (name, shape) in presets::table_iii() {
        println!("{:<10} {:<28} {:>7}", name, shape.to_string(), shape.npus());
    }
    println!();
    banner("Fig. 11", "real systems captured by the notation");
    for (shape, systems) in presets::fig11_real_systems() {
        println!("{:<20} {}", shape.to_string(), systems.join(", "));
    }
}
