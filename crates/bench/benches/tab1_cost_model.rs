//! Table I + Fig. 12: the default network cost model and its worked
//! example (three NPUs behind an inter-Pod switch at 10 GB/s → $1,722).

use libra_bench::banner;
use libra_core::cost::CostModel;
use libra_core::network::{DimScope, NetworkShape, UnitTopology};

fn main() {
    banner("Table I / Fig. 12", "network cost model ($/GBps) and example");
    let m = CostModel::default();
    println!("{:<14} {:>8} {:>8} {:>8}", "Scope", "Link", "Switch", "NIC");
    for (name, row) in [
        ("Inter-Chiplet", m.chiplet),
        ("Inter-Package", m.package),
        ("Inter-Node", m.node),
        ("Inter-Pod", m.pod),
    ] {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        println!("{:<14} {:>8.1} {:>8} {:>8}", name, row.link, fmt(row.switch), fmt(row.nic));
    }
    println!();
    // Fig. 12: 3-NPU inter-Pod switch network at 10 GB/s per NPU.
    let shape: NetworkShape = "SW(3)".parse().unwrap();
    let cost = m.network_cost(&shape, &[10.0]);
    let link = m.pod.link * 10.0 * 3.0;
    let switch = m.pod.switch.unwrap() * 3.0 * 10.0;
    let nic = m.pod.nic.unwrap() * 10.0 * 3.0;
    println!("Fig. 12 example (3 NPUs, inter-Pod switch, 10 GB/s per NPU):");
    println!("  links  = ${link:7.0}   (paper: $234)");
    println!("  switch = ${switch:7.0}   (paper: $540)");
    println!("  NICs   = ${nic:7.0}   (paper: $948)");
    println!("  total  = ${cost:7.0}   (paper: $1,722)");
    assert!((cost - 1722.0).abs() < 1e-9);
    // Per-scope $/GBps per NPU for the representative 4D-4K topology.
    println!();
    println!("Per-NPU $/GBps by dimension of 4D-4K (RI(4)_FC(8)_RI(4)_SW(32)):");
    let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
    for (i, d) in shape.dims().iter().enumerate() {
        let c = m.per_npu_dollar_per_gbps(d.topology, d.scope);
        println!("  Dim {i} ({:?} {:?}): ${c:.1}/GBps", d.topology, d.scope);
    }
    let _ = (UnitTopology::Ring, DimScope::Pod); // types referenced for docs
}
