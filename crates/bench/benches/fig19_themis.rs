//! Fig. 19: LIBRA + Themis — design-time bandwidth allocation compounds
//! with runtime chunk scheduling.
//!
//! GPT-3 on the 4D-4K topology with the Themis greedy scheduler enabled on
//! *both* networks, under two setups:
//! * **iso-cost**: both networks cost the same dollar budget; LIBRA spends
//!   it on cheap inner dimensions, affording several times more total
//!   bandwidth per NPU (paper: 5.05× more BW, 2.24× speedup).
//! * **iso-resource**: both have 1,000 GB/s per NPU; LIBRA matches or
//!   slightly beats EqualBW's performance (paper: 1.04×) while being far
//!   cheaper (paper: 4.58× cost reduction, 4.77× perf-per-cost).

use libra_bench::{banner, time_expr_for, workload};
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_core::workload::TrainingLoop;
use libra_sim::training::{simulate_training_with, TrainingSimConfig};
use libra_themis::ThemisScheduler;
use libra_workloads::zoo::PaperModel;

fn simulate(bw: &[f64], shape_dims: usize, w: &libra_core::workload::Workload) -> f64 {
    let cfg =
        TrainingSimConfig { chunks_per_collective: 64, training_loop: TrainingLoop::NoOverlap };
    simulate_training_with(w, shape_dims, bw, &cfg, &mut ThemisScheduler::new()).makespan
}

fn main() {
    banner("Fig. 19", "GPT-3 + Themis on 4D-4K: iso-cost and iso-resource");
    let shape = presets::topo_4d_4k();
    let cm = CostModel::default();
    let w = workload(PaperModel::Gpt3, &shape).expect("GPT-3 builds");
    let expr = time_expr_for(PaperModel::Gpt3, &shape).unwrap();
    let n = shape.ndims();

    // ---- iso-cost ----------------------------------------------------
    // Budget: the cost of the EqualBW network at 200 GB/s per NPU.
    let equal_bw_gbps = 200.0;
    let equal = opt::equal_bw(n, equal_bw_gbps);
    let budget = cm.network_cost(&shape, &equal);
    let libra = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr.clone())],
        objective: Objective::Perf,
        constraints: vec![Constraint::MaxCost(budget)],
        cost_model: &cm,
    })
    .expect("iso-cost solves");
    let t_eq = simulate(&equal, n, &w);
    let t_li = simulate(&libra.bw, n, &w);
    let bw_ratio = libra.bw.iter().sum::<f64>() / equal_bw_gbps;
    println!("iso-cost (${:.2}M each):", budget / 1e6);
    println!("  EqualBW+Themis : {:>8.3} s at {:.0} GB/s per NPU", t_eq, equal_bw_gbps);
    println!(
        "  LIBRA+Themis   : {:>8.3} s at {:.0} GB/s per NPU",
        t_li,
        libra.bw.iter().sum::<f64>()
    );
    println!(
        "  LIBRA affords {bw_ratio:.2}x more BW (paper: 5.05x); speedup {:.2}x (paper: 2.24x)",
        t_eq / t_li
    );
    println!();

    // ---- iso-resource -------------------------------------------------
    let total = 1000.0;
    let equal = opt::equal_bw(n, total);
    let libra = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr)],
        objective: Objective::PerfPerCost,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .expect("iso-resource solves");
    let t_eq = simulate(&equal, n, &w);
    let t_li = simulate(&libra.bw, n, &w);
    let cost_eq = cm.network_cost(&shape, &equal);
    let cost_li = libra.cost;
    println!("iso-resource ({total:.0} GB/s per NPU each):");
    println!("  EqualBW+Themis : {:>8.3} s, cost ${:.2}M", t_eq, cost_eq / 1e6);
    println!("  LIBRA+Themis   : {:>8.3} s, cost ${:.2}M", t_li, cost_li / 1e6);
    println!(
        "  speedup {:.2}x (paper: 1.04x); cost reduction {:.2}x (paper: 4.58x); ppc {:.2}x (paper: 4.77x)",
        t_eq / t_li,
        cost_eq / cost_li,
        (t_eq * cost_eq) / (t_li * cost_li)
    );
}
