//! Fig. 21: co-optimizing the parallelization strategy and the network.
//!
//! MSFT-1T on 4D-4K at 1,000 GB/s per NPU, varying HP-(TP, DP) from
//! (8, 512) to (256, 16); each strategy gets its own PerfOptBW network.
//! All results are normalized to EqualBW with HP-(128, 32) — the Table II
//! default. Memory limits are relaxed (the paper assumes CXL/CPU-extended
//! memory for this study).
//!
//! Paper reference: peak performance at HP-(64, 64), 1.19× over the
//! baseline; performance degrades sharply once TP drops below 32.

use libra_bench::banner;
use libra_core::comm::CommModel;
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_core::time::estimate;
use libra_core::workload::TrainingLoop;
use libra_workloads::compute::ComputeModel;
use libra_workloads::transformer::TransformerConfig;

fn main() {
    banner("Fig. 21", "MSFT-1T parallelization co-search on 4D-4K @ 1,000 GB/s");
    let shape = presets::topo_4d_4k();
    let total = 1000.0;
    let cm = CostModel::default();
    let compute = ComputeModel::default();
    let comm = CommModel::default();

    // All strategies process the same global batch: the Table II default
    // HP-(128, 32) with its 16-sample replicas gives a 512-sample batch.
    let global_batch: u64 = TransformerConfig::msft_1t().batch_per_replica * 32;

    // Baseline: EqualBW + the default HP-(128, 32).
    let base_w = TransformerConfig::msft_1t().build(&shape, &compute).unwrap();
    let base_expr = estimate(&base_w, TrainingLoop::NoOverlap, &comm);
    let base_t = base_expr.eval(&opt::equal_bw(shape.ndims(), total));
    println!("baseline: EqualBW, HP-(128, 32): {base_t:.3} s per iteration");
    println!("(fixed global batch of {global_batch}; per-replica batch = {global_batch}/DP)");
    println!();
    println!("{:<16} {:>14} {:>22}", "strategy", "PerfOpt t(s)", "speedup over baseline");

    let mut best: Option<(u64, f64)> = None;
    for tp in [8u64, 16, 32, 64, 128, 256] {
        let dp = 4096 / tp;
        let w = TransformerConfig::msft_1t()
            .with_tp(tp)
            .with_batch((global_batch / dp).max(1))
            .build(&shape, &compute)
            .unwrap_or_else(|e| panic!("TP-{tp}: {e}"));
        let expr = estimate(&w, TrainingLoop::NoOverlap, &comm);
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("co-search solves");
        let speedup = base_t / d.weighted_time;
        println!("HP-({tp:>3}, {dp:>3}) {:>14.3} {:>21.2}x", d.weighted_time, speedup);
        if best.is_none_or(|(_, s)| speedup > s) {
            best = Some((tp, speedup));
        }
    }
    let (tp, s) = best.unwrap();
    println!();
    println!("best strategy: HP-({tp}, {}) at {s:.2}x (paper: HP-(64, 64) at 1.19x)", 4096 / tp);
    println!("Expected shape: a sweet spot at mid-range TP; small TP inflates");
    println!("DP gradient traffic, huge TP inflates activation traffic.");
}
