//! Fig. 18: cost-model sensitivity — sweeping the inter-Package link cost
//! from $1/GBps to $5/GBps on the 4D-4K network at 1,000 GB/s per NPU,
//! with PerfPerCostOptBW.
//!
//! Paper reference: perf-per-cost benefit over EqualBW averages 4.06×
//! (max 5.59×) across the sweep.

use libra_bench::{banner, max, mean, time_expr_for};
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Fig. 18", "inter-Package link cost sweep ($1-5/GBps), PerfPerCostOptBW");
    let shape = presets::topo_4d_4k();
    let total = 1000.0;
    // The paper uses GPT-3-class design points for the sensitivity study;
    // use MSFT-1T (the representative large workload).
    let expr = time_expr_for(PaperModel::Msft1T, &shape).expect("model builds");
    println!("{:>18} {:>16}", "pkg link $/GBps", "ppc vs EqualBW");
    let mut gains = Vec::new();
    for cents in [1.0f64, 2.0, 3.0, 4.0, 5.0] {
        let cm = CostModel::default().with_package_link_cost(cents);
        let targets = vec![(1.0, expr.clone())];
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: targets.clone(),
            objective: Objective::PerfPerCost,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("PerfPerCost solves");
        let base = opt::evaluate(&shape, &targets, &opt::equal_bw(shape.ndims(), total), &cm);
        let gain = d.ppc_gain_over(&base);
        println!("{cents:>18.1} {gain:>15.2}x");
        gains.push(gain);
    }
    println!();
    println!(
        "average {:.2}x, max {:.2}x   (paper: avg 4.06x, max 5.59x)",
        mean(&gains),
        max(&gains)
    );
    println!("Expected shape: the benefit stays large across the whole cost");
    println!("range — LIBRA adapts the allocation as the package fabric's");
    println!("price changes, so the cost model is a true input, not a constant.");
}
