//! Fig. 10: MSFT-1T end-to-end time vs average network BW utilization on
//! 2D/3D/4D topologies at 300 GB/s per NPU.
//!
//! The paper reports EqualBW utilizations of 57.53% (2D), 39.02% (3D) and
//! 66.74% (4D), and ideal speedups of 1.39×, 1.83× and 1.29× if 100%
//! utilization were reached. We regenerate the same quantities from the
//! simulator: EqualBW utilization + runtime, LIBRA-optimized utilization +
//! runtime, and the pure-compute floor.

use libra_bench::banner;
use libra_core::network::NetworkShape;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::{cost::CostModel, presets};
use libra_sim::training::{simulate_training, TrainingSimConfig};
use libra_workloads::zoo::{workload_for, PaperModel};

fn main() {
    banner("Fig. 10", "MSFT-1T runtime vs network utilization @ 300 GB/s per NPU");
    // The 2D machine merges the 4D-4K's inner three dims into one 128-NPU
    // scale-up dimension; 3D and 4D come from Table III.
    let two_d: NetworkShape = "RI(128)_SW(32)".parse().unwrap();
    let shapes = [("2D", two_d), ("3D", presets::topo_3d_4k()), ("4D", presets::topo_4d_4k())];
    let total = 300.0;
    let cm = CostModel::default();
    println!(
        "{:<4} {:>12} {:>12} {:>12} {:>12} {:>10} {:>14}",
        "Topo", "Equal t(s)", "Equal util", "Opt t(s)", "Opt util", "Speedup", "paper speedup"
    );
    let paper = [("2D", 1.39, 57.53), ("3D", 1.83, 39.02), ("4D", 1.29, 66.74)];
    for ((name, shape), (pname, pspeed, putil)) in shapes.iter().zip(paper) {
        assert_eq!(*name, pname);
        let w = workload_for(PaperModel::Msft1T, shape).expect("MSFT-1T fits 4,096 NPUs");
        let n = shape.ndims();
        let cfg = TrainingSimConfig::default();
        let equal = simulate_training(&w, n, &opt::equal_bw(n, total), &cfg);
        // LIBRA-optimized network for the same budget.
        let expr = libra_bench::time_expr_for(PaperModel::Msft1T, shape).unwrap();
        let design = opt::optimize(&DesignRequest {
            shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("PerfOptBW solves");
        let opt_sim = simulate_training(&w, n, &design.bw, &cfg);
        println!(
            "{:<4} {:>12.3} {:>11.1}% {:>12.3} {:>11.1}% {:>9.2}x {:>9.2}x/{:>4.1}%",
            name,
            equal.makespan,
            equal.average_utilization() * 100.0,
            opt_sim.makespan,
            opt_sim.average_utilization() * 100.0,
            equal.makespan / opt_sim.makespan,
            pspeed,
            putil,
        );
    }
    println!();
    println!("Pure-compute floor (no exposed communication): {:.3} s", {
        let shape = presets::topo_4d_4k();
        let w = workload_for(PaperModel::Msft1T, &shape).unwrap();
        w.total_compute()
    });
    println!("Expected shape: EqualBW leaves 35–60% of bandwidth idle; the");
    println!("optimized allocation raises utilization and shortens training,");
    println!("with the mid-dimensional (3D) EqualBW network wasting the most.");
}
