//! Fig. 13: end-to-end training speedup over EqualBW for Turing-NLG, GPT-3
//! and MSFT-1T on the 3D-4K and 4D-4K topologies, sweeping 100–1,000 GB/s
//! per NPU, under both PerfOptBW and PerfPerCostOptBW.
//!
//! Paper reference: PerfOptBW averages 1.23× (max 2.00×); larger models see
//! larger speedups; PerfPerCostOptBW may dip below 1× (it trades speed for
//! cost); GPT-3 on 4D-4K shows little speedup because its TP-16 group
//! cannot exploit all of Dim 2.

use libra_bench::{banner, max, mean, print_series, print_sweep_header, sweep};
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Fig. 13", "training speedup over EqualBW (PerfOpt / PerfPerCost)");
    let shapes = [("3D", presets::topo_3d_4k()), ("4D", presets::topo_4d_4k())];
    let mut perf_speedups: Vec<f64> = Vec::new();
    print_sweep_header("series");
    for model in PaperModel::llms() {
        for (sname, shape) in &shapes {
            for (oname, objective) in
                [("PerfOpt", Objective::Perf), ("PerfPerCost", Objective::PerfPerCost)]
            {
                let pts = sweep(model, shape, objective)
                    .unwrap_or_else(|e| panic!("{} {sname}: {e}", model.name()));
                let speedups: Vec<f64> = pts.iter().map(|p| p.speedup()).collect();
                print_series(&format!("{}+{sname} {oname}", model.name()), &speedups);
                if objective == Objective::Perf {
                    perf_speedups.extend(&speedups);
                }
            }
        }
    }
    println!();
    println!(
        "PerfOptBW speedup over EqualBW: avg {:.2}x, max {:.2}x   (paper: avg 1.23x, max 2.00x)",
        mean(&perf_speedups),
        max(&perf_speedups)
    );
}
