//! Ablation: training-loop choice (Fig. 5) — NoOverlap vs TP-DP Overlap —
//! and its interaction with bandwidth optimization.
//!
//! Overlapping TP communication with the DP branch both shortens the
//! iteration and shifts the optimal bandwidth split (the overlapped DP
//! collective no longer competes for exposed time).

use libra_bench::banner;
use libra_core::comm::CommModel;
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_core::time::estimate;
use libra_core::workload::TrainingLoop;
use libra_workloads::zoo::{workload_for, PaperModel};

fn main() {
    banner("Ablation", "training loops: NoOverlap vs TP-DP Overlap (GPT-3, 4D-4K)");
    let shape = presets::topo_4d_4k();
    let total = 300.0;
    let cm = CostModel::default();
    let comm = CommModel::default();
    let w = workload_for(PaperModel::Gpt3, &shape).expect("GPT-3 builds");
    println!("{:<14} {:>14} {:>14} {:>10}", "loop", "EqualBW t(s)", "PerfOpt t(s)", "speedup");
    for (name, tl) in
        [("NoOverlap", TrainingLoop::NoOverlap), ("TpDpOverlap", TrainingLoop::TpDpOverlap)]
    {
        let expr = estimate(&w, tl, &comm);
        let eq_t = expr.eval(&opt::equal_bw(shape.ndims(), total));
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("solves");
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>9.2}x   bw = [{}]",
            name,
            eq_t,
            d.weighted_time,
            eq_t / d.weighted_time,
            d.bw.iter().map(|b| format!("{b:.0}")).collect::<Vec<_>>().join(", ")
        );
    }
    println!();
    println!("Expected shape: the overlapped loop is faster at both design");
    println!("points, and its optimized allocation shifts bandwidth away from");
    println!("the (hidden) DP dimensions toward the exposed TP dimensions.");
}
