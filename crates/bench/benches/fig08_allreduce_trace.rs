//! Fig. 8: the multi-rail All-Reduce on a 3×2 (2D) network.
//!
//! The paper traces the chunk values; we trace the *time* behaviour of the
//! same four stages (RS dim1, RS dim2, AG dim2, AG dim1) and verify the
//! stage traffic ratios: dim 1 carries four chunks' worth of traffic while
//! dim 2 carries one (the 4:1 reduction the paper's Fig. 8 caption calls
//! out).

use libra_bench::banner;
use libra_core::comm::{traffic_per_dim, Collective, GroupSpan};
use libra_sim::collective::{run_collective, FixedOrder};
use libra_sim::stats::render_gantt;

fn main() {
    banner("Fig. 8", "All-Reduce on a 3x2 (2D) network — multi-rail stages");
    let span = GroupSpan::new(vec![(0, 3), (1, 2)]);
    // 6 units of payload (one per NPU), as in the figure.
    let m = 6e9;
    let traffic = traffic_per_dim(Collective::AllReduce, m, &span);
    println!("Per-dim traffic for a {}-byte All-Reduce:", m);
    for (d, t) in &traffic {
        println!("  Dim {}: {:.2} GB", d + 1, t / 1e9);
    }
    println!(
        "  ratio Dim1:Dim2 = {:.1} (paper: 4 chunks vs 1 chunk per NPU)",
        traffic[0].1 / traffic[1].1
    );
    println!();
    let res = run_collective(2, &[10.0, 10.0], Collective::AllReduce, m, &span, 4, &mut FixedOrder);
    println!("Chunk-stage timeline (4 chunks, equal 10 GB/s per dim):");
    println!("{}", render_gantt(&res.records, 2, 72));
    println!("Stage order of chunk 0 (RS ascending, AG descending):");
    for r in res.records.iter().filter(|r| r.chunk == 0) {
        println!(
            "  {} dim{} [{:.3} s – {:.3} s]",
            if r.gather { "AG" } else { "RS" },
            r.dim + 1,
            r.start as f64 / 1e12,
            r.end as f64 / 1e12
        );
    }
}
