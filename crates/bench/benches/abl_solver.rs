//! Ablation: interior-point vs projected subgradient vs grid search on the
//! PerfOptBW problem (the DESIGN.md solver-substitution justification).
//!
//! All three must agree on the optimum of this convex problem; the
//! interior point should be both the most accurate and the fastest.

use std::time::Instant;

use libra_bench::{banner, time_expr_for};
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_solver::subgrad::{minimize_projected, project_capped_box};
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Ablation", "solver comparison on the GPT-3 + 4D-4K PerfOptBW problem");
    let shape = presets::topo_4d_4k();
    let total = 300.0;
    let expr = time_expr_for(PaperModel::Gpt3, &shape).expect("model builds");
    let cm = CostModel::default();
    let n = shape.ndims();

    // Interior point (the production path).
    let t0 = Instant::now();
    let ip = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr.clone())],
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .expect("interior point solves");
    let ip_time = t0.elapsed();

    // Projected subgradient on the same objective.
    let lower = vec![1e-3; n];
    let upper = vec![total; n];
    let f = |x: &[f64]| {
        let v = expr.eval(x);
        // Numerical subgradient (forward differences).
        let mut g = vec![0.0; n];
        for (i, gi) in g.iter_mut().enumerate() {
            let mut xp = x.to_vec();
            let h = (x[i] * 1e-6).max(1e-9);
            xp[i] += h;
            *gi = (expr.eval(&xp) - v) / h;
        }
        (v, g)
    };
    let t0 = Instant::now();
    let sg = minimize_projected(
        f,
        |x| project_capped_box(x, total, &lower, &upper),
        opt::equal_bw(n, total),
        total / 4.0,
        20_000,
    );
    let sg_time = t0.elapsed();

    // Dense grid over the simplex (coarse: 3 free dims × 40 steps).
    let t0 = Instant::now();
    let mut grid_best = f64::INFINITY;
    let steps = 40usize;
    for i in 1..steps {
        for j in 1..steps {
            for k in 1..steps {
                let b0 = total * i as f64 / steps as f64;
                let b1 = total * j as f64 / steps as f64;
                let b2 = total * k as f64 / steps as f64;
                let b3 = total - b0 - b1 - b2;
                if b3 <= 0.0 {
                    continue;
                }
                grid_best = grid_best.min(expr.eval(&[b0, b1, b2, b3]));
            }
        }
    }
    let grid_time = t0.elapsed();

    println!("{:<18} {:>14} {:>12}", "method", "objective (s)", "runtime");
    println!("{:<18} {:>14.6} {:>11.1?}", "interior point", ip.weighted_time, ip_time);
    println!("{:<18} {:>14.6} {:>11.1?}", "subgradient", sg.value, sg_time);
    println!("{:<18} {:>14.6} {:>11.1?}", "grid search", grid_best, grid_time);
    println!();
    let tol = 5e-3 * (1.0 + ip.weighted_time);
    assert!(
        ip.weighted_time <= sg.value + tol && ip.weighted_time <= grid_best + tol,
        "interior point must match or beat both baselines"
    );
    println!("agreement: interior point ≤ both baselines (convex problem, same optimum).");
}
