//! Criterion benchmark of three-way cross-validated sweeps: the two-way
//! Analytical/EventSim validation vs the same grid with every point
//! additionally priced by the network-layer α-β backend (a three-backend
//! `Session::run`), quantifying what the third backend costs on top of
//! continuous two-way validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use libra_bench::sweep::{SweepEngine, SweepGrid};
use libra_bench::{sweep_workloads_with_link, EventSimBackend, LinkParams, NetSimBackend, Session};
use libra_core::cost::CostModel;
use libra_core::eval::Analytical;
use libra_core::eval::EvalBackend;
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

/// A 40-point grid: 2 shapes × 2 workloads × 5 budgets × 2 objectives.
fn grid() -> SweepGrid {
    SweepGrid::new()
        .with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
        .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

fn bench_crossval3(c: &mut Criterion) {
    let grid = grid();
    // 20 ns per hop — NVLink-class latency, small against these payloads.
    let link = LinkParams::latency(20_000.0);
    let workloads = sweep_workloads_with_link(&[PaperModel::TuringNlg, PaperModel::ResNet50], link);
    let cm = CostModel::default();
    let points = grid.len(workloads.len());
    let analytical = Analytical::new();
    let event_sim = EventSimBackend::default();
    let net_sim = NetSimBackend::default();
    let two: [&dyn EvalBackend; 2] = [&analytical, &event_sim];
    let three: [&dyn EvalBackend; 3] = [&analytical, &event_sim, &net_sim];

    let mut g = c.benchmark_group("sweep_crossval3");
    g.sample_size(10);
    // Warm cache: designs are memoized, so the delta is pure backend cost.
    let warm = SweepEngine::new(&cm);
    Session::over(&warm).run(&grid, &workloads, &[]);
    g.bench_with_input(BenchmarkId::new("two_way_warm", points), &points, |b, _| {
        b.iter(|| Session::over(&warm).run(&grid, &workloads, &two))
    });
    g.bench_with_input(BenchmarkId::new("three_way_warm", points), &points, |b, _| {
        b.iter(|| {
            let report = Session::over(&warm).run(&grid, &workloads, &three);
            assert_eq!(report.divergence.pairs.len(), 3);
            report
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_crossval3
}
criterion_main!(benches);
