//! Fig. 20: LIBRA + TACOS — design-time bandwidth allocation compounds
//! with a runtime collective-algorithm synthesizer.
//!
//! A 1 GB All-Reduce with 8 chunks on the 3D-Torus (RI(4)_RI(4)_RI(4)) at
//! 1,000 GB/s per NPU:
//! * **EqualBW+TACOS**: synthesized algorithm on the equal-split torus;
//! * **LIBRA-only**: canonical multi-rail algorithm on the LIBRA-optimized
//!   torus;
//! * **LIBRA+TACOS**: synthesized algorithm on the LIBRA torus.
//!
//! Paper reference: LIBRA+TACOS is 1.25× faster than LIBRA-only and 1.08×
//! faster than TACOS-only, with 1.36× better perf-per-cost than
//! TACOS-only thanks to LIBRA's cheaper allocation.

use libra_bench::banner;
use libra_core::comm::{Collective, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::expr::BwExpr;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_sim::collective::{run_collective, FixedOrder};
use libra_sim::linksim::LinkGraph;
use libra_tacos::{synthesize_allgather, validate, SynthesisConfig};

fn main() {
    banner("Fig. 20", "1 GB All-Reduce, 8 chunks, 3D-Torus @ 1,000 GB/s per NPU");
    let shape = presets::topo_3d_torus();
    let n = shape.ndims();
    let total = 1000.0;
    let bytes = 1e9;
    let cm = CostModel::default();
    let span = GroupSpan::full(&shape);

    // LIBRA-optimized allocation for this single collective.
    let comm = libra_core::comm::CommModel::default();
    let expr: BwExpr = comm.time_expr(Collective::AllReduce, bytes, &span);
    let libra = opt::optimize(&DesignRequest {
        shape: &shape,
        targets: vec![(1.0, expr)],
        objective: Objective::Perf,
        constraints: vec![Constraint::TotalBw(total)],
        cost_model: &cm,
    })
    .expect("torus design solves");
    let equal = opt::equal_bw(n, total);
    println!(
        "LIBRA torus BW: [{:.0}, {:.0}, {:.0}] GB/s (EqualBW: [{:.0}; 3])",
        libra.bw[0], libra.bw[1], libra.bw[2], equal[0]
    );

    // Multi-rail (ring) executions on the chunked simulator.
    let ring = |bw: &[f64]| {
        run_collective(n, bw, Collective::AllReduce, bytes, &span, 8, &mut FixedOrder).makespan()
            as f64
            / 1e12
    };
    let t_libra_only = ring(&libra.bw);
    let t_equal_ring = ring(&equal);

    // TACOS synthesis: per-direction link bandwidth is half the dimension's
    // per-NPU bandwidth (each NPU has two ports per ring dimension).
    // All-Gather moves each node's 1/64th shard; All-Reduce doubles it.
    let synth = |bw: &[f64]| {
        let g = LinkGraph::torus(&[(4, bw[0] / 2.0), (4, bw[1] / 2.0), (4, bw[2] / 2.0)]);
        let cfg = SynthesisConfig { chunks_per_shard: 8, seed: 42 };
        let s = synthesize_allgather(&g, bytes / 64.0, &cfg);
        validate(&g, &s, cfg.chunks_per_shard);
        s.allreduce_ps() as f64 / 1e12
    };
    let t_equal_tacos = synth(&equal);
    let t_libra_tacos = synth(&libra.bw);

    let cost_equal = cm.network_cost(&shape, &equal);
    let cost_libra = libra.cost;
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "configuration", "time (ms)", "cost ($K)", "ppc (norm)"
    );
    let base_ppc = 1.0 / (t_equal_tacos * cost_equal);
    for (name, t, c) in [
        ("EqualBW+TACOS", t_equal_tacos, cost_equal),
        ("EqualBW ring", t_equal_ring, cost_equal),
        ("LIBRA-only", t_libra_only, cost_libra),
        ("LIBRA+TACOS", t_libra_tacos, cost_libra),
    ] {
        println!(
            "{:<16} {:>12.3} {:>12.1} {:>14.2}",
            name,
            t * 1e3,
            c / 1e3,
            (1.0 / (t * c)) / base_ppc
        );
    }
    println!();
    println!(
        "LIBRA+TACOS vs LIBRA-only : {:.2}x speedup (paper: 1.25x)",
        t_libra_only / t_libra_tacos
    );
    println!(
        "LIBRA+TACOS vs TACOS-only : {:.2}x speedup (paper: 1.08x)",
        t_equal_tacos / t_libra_tacos
    );
    println!(
        "LIBRA+TACOS vs TACOS-only : {:.2}x perf-per-cost (paper: 1.36x)",
        (t_equal_tacos * cost_equal) / (t_libra_tacos * cost_libra)
    );
}
