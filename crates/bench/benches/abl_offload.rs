//! Ablation: in-network collective offload (§IV-C "In-network Collective").
//!
//! Offloading reduces a dimension's All-Reduce traffic from
//! `2m(e−1)/(e·shrink)` to `m/shrink` — nearly 2× less for large extents.
//! LIBRA's model incorporates the offload, and the optimizer re-balances
//! the allocation accordingly.

use libra_bench::banner;
use libra_core::comm::CommModel;
use libra_core::cost::CostModel;
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use libra_core::presets;
use libra_core::time::estimate;
use libra_core::workload::TrainingLoop;
use libra_workloads::zoo::{workload_for, PaperModel};

fn main() {
    banner("Ablation", "in-network collective offload (MSFT-1T, 4D-4K @ 300 GB/s)");
    let shape = presets::topo_4d_4k();
    let total = 300.0;
    let cm = CostModel::default();
    let w = workload_for(PaperModel::Msft1T, &shape).expect("builds");
    println!("{:<12} {:>14} {:>14} {:>10}", "offload", "EqualBW t(s)", "PerfOpt t(s)", "speedup");
    let mut times = Vec::new();
    for (name, comm) in [("off", CommModel::default()), ("on", CommModel::with_offload())] {
        let expr = estimate(&w, TrainingLoop::NoOverlap, &comm);
        let eq_t = expr.eval(&opt::equal_bw(shape.ndims(), total));
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(total)],
            cost_model: &cm,
        })
        .expect("solves");
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>9.2}x   bw = [{}]",
            name,
            eq_t,
            d.weighted_time,
            eq_t / d.weighted_time,
            d.bw.iter().map(|b| format!("{b:.0}")).collect::<Vec<_>>().join(", ")
        );
        times.push(d.weighted_time);
    }
    println!();
    assert!(times[1] < times[0], "offload must reduce optimized training time");
    println!(
        "offload reduces the optimized iteration by {:.1}%",
        (1.0 - times[1] / times[0]) * 100.0
    );
}
