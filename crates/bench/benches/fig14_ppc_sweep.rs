//! Fig. 14: perf-per-cost benefit over EqualBW for the Fig. 13 design
//! points.
//!
//! Paper reference: PerfOptBW averages 5.40× (max 12.24×) better
//! perf-per-cost than EqualBW; PerfPerCostOptBW averages 9.16× (max
//! 13.02×) and is the best at every point.

use libra_bench::{banner, max, mean, print_series, print_sweep_header, sweep};
use libra_core::opt::Objective;
use libra_core::presets;
use libra_workloads::zoo::PaperModel;

fn main() {
    banner("Fig. 14", "perf-per-cost gain over EqualBW (PerfOpt / PerfPerCost)");
    let shapes = [("3D", presets::topo_3d_4k()), ("4D", presets::topo_4d_4k())];
    let mut perf_gains: Vec<f64> = Vec::new();
    let mut ppc_gains: Vec<f64> = Vec::new();
    print_sweep_header("series");
    for model in PaperModel::llms() {
        for (sname, shape) in &shapes {
            let mut by_objective: Vec<(&str, Vec<f64>)> = Vec::new();
            for (oname, objective) in
                [("PerfOpt", Objective::Perf), ("PerfPerCost", Objective::PerfPerCost)]
            {
                let pts = sweep(model, shape, objective)
                    .unwrap_or_else(|e| panic!("{} {sname}: {e}", model.name()));
                let gains: Vec<f64> = pts.iter().map(|p| p.ppc_gain()).collect();
                print_series(&format!("{}+{sname} {oname}", model.name()), &gains);
                by_objective.push((oname, gains));
            }
            perf_gains.extend(&by_objective[0].1);
            ppc_gains.extend(&by_objective[1].1);
            // PerfPerCostOptBW must dominate PerfOptBW on this metric.
            let wins = by_objective[1]
                .1
                .iter()
                .zip(&by_objective[0].1)
                .filter(|(p, q)| *p >= &(*q * 0.999))
                .count();
            assert!(
                wins >= by_objective[1].1.len() - 1,
                "{} {sname}: PerfPerCost should dominate PerfOpt on perf-per-cost",
                model.name()
            );
        }
    }
    println!();
    println!(
        "PerfOptBW ppc gain:       avg {:.2}x, max {:.2}x   (paper: avg 5.40x, max 12.24x)",
        mean(&perf_gains),
        max(&perf_gains)
    );
    println!(
        "PerfPerCostOptBW ppc gain: avg {:.2}x, max {:.2}x   (paper: avg 9.16x, max 13.02x)",
        mean(&ppc_gains),
        max(&ppc_gains)
    );
}
