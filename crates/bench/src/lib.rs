//! Shared harness code for the per-figure benchmark binaries.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure of the
//! paper: it builds the Table II workloads, runs LIBRA's optimizer and/or
//! the simulator, and prints the same rows/series the paper reports,
//! alongside the paper's reference numbers where EXPERIMENTS.md records
//! them.

use libra_core::comm::CommModel;
use libra_core::cost::CostModel;
use libra_core::eval::CommPlan;
use libra_core::expr::BwExpr;
use libra_core::network::NetworkShape;
use libra_core::opt::{self, Constraint, Design, DesignRequest, Objective};
use libra_core::time::estimate;
use libra_core::workload::{TrainingLoop, Workload};
use libra_core::LibraError;
use libra_workloads::compute::ComputeModel;
use libra_workloads::transformer::TransformerConfig;
use libra_workloads::zoo::{workload_for, PaperModel};

pub use libra_core::eval;
pub use libra_core::eval::{LinkParams, NetSpec};
pub use libra_core::scenario;
pub use libra_core::scenario::{
    BackendConfig, BackendRegistry, DivergenceMatrix, ReportSink, Scenario, Session, SessionReport,
};
pub use libra_core::search;
pub use libra_core::search::{Cosearch, SearchConfig, SearchReport};
pub use libra_core::sweep;
pub use libra_core::sweep::{
    CrossValidated3Report, CrossValidatedReport, CrossValidation, CrossValidation3,
    Divergence3Report, DivergenceReport, ExecMode,
};
pub use libra_net::{default_registry, NetSimBackend};
pub use libra_sim::EventSimBackend;

/// Resolves a [`Scenario`]'s workload names into Table II sweep
/// workloads, attaching the scenario's α-β link parameters (when given)
/// so `net-sim` backends have a [`NetSpec`] to price.
///
/// When the scenario's `search` block carries a parallelization
/// co-search axis, the searched splits are appended as additional
/// workloads (see [`cosearch_workloads`]) — the strategy axis rides the
/// grid's workload dimension.
///
/// # Errors
/// [`LibraError::BadRequest`] naming the known paper models when a
/// workload name does not resolve, or when the co-search model is not a
/// transformer LLM.
pub fn scenario_workloads(scenario: &Scenario) -> Result<Vec<sweep::FnWorkload>, LibraError> {
    let mut wls: Vec<sweep::FnWorkload> = scenario
        .workloads
        .iter()
        .map(|name| {
            let model = PaperModel::by_name(name).ok_or_else(|| {
                let known: Vec<&str> =
                    PaperModel::all().into_iter().map(PaperModel::name).collect();
                LibraError::BadRequest(format!(
                    "unknown workload {name:?}; known paper models: {}",
                    known.join(", ")
                ))
            })?;
            Ok(match scenario.link {
                Some(link) => sweep_workload_with_link(model, link),
                None => sweep_workload(model),
            })
        })
        .collect::<Result<_, LibraError>>()?;
    if let Some(cs) = scenario.search.as_ref().and_then(|s| s.cosearch.as_ref()) {
        wls.extend(cosearch_workloads(cs)?);
    }
    Ok(wls)
}

/// Expands a [`Cosearch`] axis into one sweep workload per candidate TP
/// degree, named `"<model>@tp<t>"`. Each closure rebuilds the split on
/// whatever shape the grid hands it: DP falls out as `NPUs / TP` and
/// the per-replica batch as `global_batch / DP` (the §VI-E setup), so
/// the same strategy prices consistently across candidate topologies. A
/// split that cannot map onto a shape (TP not dividing its NPU count)
/// errors at that grid point only — the search treats it as dominated.
///
/// # Errors
/// [`LibraError::BadRequest`] when the model is not one of the
/// transformer LLMs (only they expose a TP knob).
pub fn cosearch_workloads(cs: &Cosearch) -> Result<Vec<sweep::FnWorkload>, LibraError> {
    let model = PaperModel::by_name(&cs.model);
    let config = match model {
        Some(PaperModel::TuringNlg) => TransformerConfig::turing_nlg(),
        Some(PaperModel::Gpt3) => TransformerConfig::gpt3(),
        Some(PaperModel::Msft1T) => TransformerConfig::msft_1t(),
        _ => {
            let known: Vec<&str> = PaperModel::llms().into_iter().map(PaperModel::name).collect();
            return Err(LibraError::BadRequest(format!(
                "cosearch model {:?} is not a transformer LLM; searchable models: {}",
                cs.model,
                known.join(", ")
            )));
        }
    };
    let display = model.expect("matched above").name();
    let global_batch = cs.global_batch;
    Ok(cs
        .tp
        .iter()
        .map(|&tp| {
            let config = config.clone();
            sweep::FnWorkload::new(format!("{display}@tp{tp}"), move |shape: &NetworkShape| {
                let npus = shape.npus();
                if tp == 0 || !npus.is_multiple_of(tp) || npus / tp == 0 {
                    return Err(LibraError::BadRequest(format!(
                        "TP-{tp} does not divide {npus} NPUs"
                    )));
                }
                let dp = npus / tp;
                let w = config
                    .clone()
                    .with_tp(tp)
                    .with_batch((global_batch / dp).max(1))
                    .build(shape, &ComputeModel::default())?;
                Ok(vec![(1.0, estimate(&w, TrainingLoop::NoOverlap, &CommModel::default()))])
            })
        })
        .collect())
}

/// Wraps a Table II paper model as a [`sweep::SweepWorkload`]
/// (no-overlap training loop, default comm model — the paper's setup).
///
/// The workload carries its communication plan, so it is eligible for
/// cross-validated sweeps ([`sweep::SweepEngine::run_cross_validated`])
/// out of the box.
pub fn sweep_workload(model: PaperModel) -> sweep::FnWorkload {
    sweep::FnWorkload::new(model.name(), move |shape: &NetworkShape| {
        Ok(vec![(1.0, time_expr_for(model, shape)?)])
    })
    .with_plan(move |shape: &NetworkShape| {
        let w = workload_for(model, shape)?;
        Ok(CommPlan::from_workload(&w, TrainingLoop::NoOverlap))
    })
}

/// Wraps several paper models for a multi-workload sweep.
pub fn sweep_workloads(models: &[PaperModel]) -> Vec<sweep::FnWorkload> {
    models.iter().copied().map(sweep_workload).collect()
}

/// Like [`sweep_workload`], but the plan also carries a network-layer
/// [`NetSpec`] derived from each candidate shape's per-dimension unit
/// topologies with the given α-β link parameters — the input
/// `libra_net::NetSimBackend` needs to price hop latency and switch
/// traversal in a three-way cross-validated sweep
/// ([`sweep::SweepEngine::run_cross_validated3`]).
pub fn sweep_workload_with_link(model: PaperModel, link: LinkParams) -> sweep::FnWorkload {
    sweep::FnWorkload::new(model.name(), move |shape: &NetworkShape| {
        Ok(vec![(1.0, time_expr_for(model, shape)?)])
    })
    .with_plan(move |shape: &NetworkShape| {
        let w = workload_for(model, shape)?;
        Ok(CommPlan::from_workload(&w, TrainingLoop::NoOverlap)
            .with_net(NetSpec::from_shape(shape, link)))
    })
}

/// [`sweep_workload_with_link`] over several paper models.
pub fn sweep_workloads_with_link(
    models: &[PaperModel],
    link: LinkParams,
) -> Vec<sweep::FnWorkload> {
    models.iter().map(|&m| sweep_workload_with_link(m, link)).collect()
}

/// The Fig. 13/14-style grid for a set of shapes: the paper's 100–1,000
/// GB/s budget sweep under both objectives.
pub fn paper_grid(shapes: impl IntoIterator<Item = NetworkShape>) -> sweep::SweepGrid {
    sweep::SweepGrid::new()
        .with_shapes(shapes)
        .with_budgets(BW_SWEEP)
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
}

/// The BW-per-NPU sweep used by Figs. 13–16 (100–1,000 GB/s).
pub const BW_SWEEP: [f64; 10] =
    [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0];

/// A fully evaluated design point: EqualBW baseline vs a LIBRA design.
#[derive(Debug, Clone)]
pub struct Point {
    /// Total per-NPU bandwidth budget (GB/s).
    pub total_bw: f64,
    /// The LIBRA design.
    pub design: Design,
    /// The EqualBW baseline at the same budget.
    pub baseline: Design,
}

impl Point {
    /// Speedup over EqualBW.
    pub fn speedup(&self) -> f64 {
        self.design.speedup_over(&self.baseline)
    }

    /// Perf-per-cost gain over EqualBW.
    pub fn ppc_gain(&self) -> f64 {
        self.design.ppc_gain_over(&self.baseline)
    }
}

/// Builds the per-iteration time expression of a model on a network
/// (no-overlap training loop, no in-network offload — the paper's default).
///
/// # Errors
/// Propagates workload-construction failures (unmappable TP).
pub fn time_expr_for(model: PaperModel, shape: &NetworkShape) -> Result<BwExpr, LibraError> {
    let w = workload_for(model, shape)?;
    Ok(estimate(&w, TrainingLoop::NoOverlap, &CommModel::default()))
}

/// Builds the workload itself (for simulator-based experiments).
///
/// # Errors
/// Propagates workload-construction failures (unmappable TP).
pub fn workload(model: PaperModel, shape: &NetworkShape) -> Result<Workload, LibraError> {
    workload_for(model, shape)
}

/// Optimizes one model on one network at a total-BW budget and evaluates
/// the EqualBW baseline.
///
/// # Errors
/// Propagates optimizer failures.
pub fn design_point(
    model: PaperModel,
    shape: &NetworkShape,
    total_bw: f64,
    objective: Objective,
) -> Result<Point, LibraError> {
    let expr = time_expr_for(model, shape)?;
    let cost_model = CostModel::default();
    let targets = vec![(1.0, expr)];
    let design = opt::optimize(&DesignRequest {
        shape,
        targets: targets.clone(),
        objective,
        constraints: vec![Constraint::TotalBw(total_bw)],
        cost_model: &cost_model,
    })?;
    let baseline =
        opt::evaluate(shape, &targets, &opt::equal_bw(shape.ndims(), total_bw), &cost_model);
    Ok(Point { total_bw, design, baseline })
}

/// Runs the Fig. 13/14-style sweep for a model/topology pair.
///
/// # Errors
/// Propagates optimizer failures at any budget.
pub fn sweep(
    model: PaperModel,
    shape: &NetworkShape,
    objective: Objective,
) -> Result<Vec<Point>, LibraError> {
    BW_SWEEP.iter().map(|&b| design_point(model, shape, b, objective)).collect()
}

/// Prints a labelled series as an aligned table row.
pub fn print_series(label: &str, values: &[f64]) {
    print!("{label:<28}");
    for v in values {
        print!(" {v:>7.2}");
    }
    println!();
}

/// Prints the sweep header (BW budgets).
pub fn print_sweep_header(metric: &str) {
    print!("{metric:<28}");
    for b in BW_SWEEP {
        print!(" {b:>7.0}");
    }
    println!(" (GB/s per NPU)");
}

/// Geometric helpers for summary lines.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Maximum of a slice (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Standard banner so every bench output names its figure.
pub fn banner(figure: &str, what: &str) {
    println!("==========================================================");
    println!("{figure}: {what}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_core::presets;

    #[test]
    fn design_point_runs_for_gpt3_on_4d_4k() {
        let shape = presets::topo_4d_4k();
        let p = design_point(PaperModel::Gpt3, &shape, 300.0, Objective::Perf).unwrap();
        assert!(p.speedup() >= 1.0 - 1e-6, "PerfOpt never loses to EqualBW");
        assert!(p.design.cost > 0.0);
    }

    #[test]
    fn sweep_covers_all_budgets() {
        let shape = presets::topo_3d_4k();
        let pts = sweep(PaperModel::TuringNlg, &shape, Objective::Perf).unwrap();
        assert_eq!(pts.len(), BW_SWEEP.len());
        for (p, b) in pts.iter().zip(BW_SWEEP) {
            assert_eq!(p.total_bw, b);
        }
    }

    #[test]
    fn sweep_workloads_carry_cross_validatable_plans() {
        use libra_core::eval::EvalBackend;
        use libra_core::sweep::SweepWorkload;
        let shape = presets::topo_3d_512();
        let wl = sweep_workload(PaperModel::TuringNlg);
        let plan = wl.comm_plan(&shape).unwrap().expect("paper workloads expose plans");
        assert!(!plan.is_empty());
        // The plan prices exactly like the optimizer's expression with the
        // bandwidth-independent compute stripped: same model, two forms.
        let bw = vec![100.0; shape.ndims()];
        let expr = time_expr_for(PaperModel::TuringNlg, &shape).unwrap();
        let w = workload_for(PaperModel::TuringNlg, &shape).unwrap();
        let t_plan = eval::Analytical::new().eval_plan(shape.ndims(), &bw, &plan).unwrap();
        let want = expr.eval(&bw) - w.total_compute();
        assert!((t_plan - want).abs() < 1e-9 * (1.0 + want), "{t_plan} vs {want}");
    }

    #[test]
    fn link_carrying_workloads_expose_net_specs() {
        use libra_core::sweep::SweepWorkload;
        let shape = presets::topo_3d_512();
        let link = LinkParams::latency(1e5).with_switch_ps(5e4);
        let wl = sweep_workload_with_link(PaperModel::TuringNlg, link);
        let plan = wl.comm_plan(&shape).unwrap().expect("paper workloads expose plans");
        let net = plan.net.as_ref().expect("link-carrying workloads attach a NetSpec");
        assert_eq!(net.dims.len(), shape.ndims());
        for (spec_dim, shape_dim) in net.dims.iter().zip(shape.dims()) {
            assert_eq!(spec_dim.kind, shape_dim.topology);
            assert_eq!(spec_dim.link, link);
        }
        // The phases are identical to the plain plan — only the side
        // channel differs.
        let plain = sweep_workload(PaperModel::TuringNlg).comm_plan(&shape).unwrap().unwrap();
        assert_eq!(plan.phases, plain.phases);
        assert_eq!(plain.net, None);
    }

    #[test]
    fn default_registry_and_scenario_workloads_resolve() {
        use libra_core::opt::Objective;
        use libra_core::sweep::SweepWorkload;
        let registry = default_registry();
        for name in ["analytical", "analytical-offload", "event-sim", "net-sim", "net-sim-offload"]
        {
            assert!(registry.contains(name), "registry is missing {name}");
        }
        let scenario = Scenario::builder("t")
            .with_shape(presets::topo_3d_512())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workloads(["turing_nlg", "GPT-3"])
            .with_link(LinkParams::latency(1e4))
            .build()
            .unwrap();
        let wls = scenario_workloads(&scenario).unwrap();
        assert_eq!(wls.len(), 2);
        assert_eq!(wls[0].name(), "Turing-NLG");
        let plan = wls[0].comm_plan(&presets::topo_3d_512()).unwrap().unwrap();
        assert!(plan.net.is_some(), "link-carrying scenarios attach NetSpecs");
        let missing = scenario_workloads(&Scenario { workloads: vec!["LLaMA".into()], ..scenario });
        assert!(missing.unwrap_err().to_string().contains("known paper models"));
    }

    #[test]
    fn mean_and_max_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0, 2.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
