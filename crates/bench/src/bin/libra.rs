//! `libra` — the scenario-first command line for the design-space engine.
//!
//! Scenario files (see `scenarios/` in the repository root and the
//! "Scenario files & CLI" section of the README) describe a sweep as
//! data: shapes × budgets × objectives, Table II workload names, backend
//! names, link parameters, and policies. This binary executes them:
//!
//! ```text
//! libra list-backends
//! libra sweep    <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet]
//! libra crossval <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet]
//! ```
//!
//! * `sweep` runs the design-space grid without backend pricing (the
//!   scenario's `backends` list is ignored).
//! * `crossval` prices every grid point under each of the scenario's
//!   backends (two or more required) and reports pairwise divergence.
//! * `--jsonl PATH` streams per-point records as JSON-lines to `PATH`
//!   (`-` for stdout, which implies `--quiet`); the stream is
//!   bit-identical across runs and machines-with-identical-libm, which
//!   is what the CI golden diff pins.
//! * `--serial` uses the serial reference fold (bit-identical to the
//!   default rayon fan-out by the engine's determinism contract).
//!
//! Exit codes: `0` success (and, for `crossval`, all pairs within
//! tolerance); `1` usage, I/O, or scenario errors; `2` a `crossval` run
//! whose backends diverged beyond the scenario's tolerance.

use std::io::Write;

use libra_bench::{default_registry, scenario_workloads, ExecMode, Scenario};
use libra_core::cost::CostModel;
use libra_core::scenario::{ConsoleTableSink, JsonLinesSink, ReportSink};
use libra_core::LibraError;

const USAGE: &str = "\
libra — scenario-first front door for the LIBRA design-space engine

USAGE:
    libra list-backends
    libra sweep    <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet]
    libra crossval <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet]

EXIT CODES:
    0  success (crossval: every backend pair within tolerance)
    1  usage, I/O, or scenario error
    2  crossval divergence beyond the scenario's tolerance
";

struct Options {
    scenario_path: String,
    serial: bool,
    quiet: bool,
    jsonl: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut scenario_path = None;
    let mut serial = false;
    let mut quiet = false;
    let mut jsonl = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serial" => serial = true,
            "--quiet" => quiet = true,
            "--jsonl" => {
                let path = it.next().filter(|p| *p == "-" || !p.starts_with("--"));
                jsonl = Some(path.ok_or_else(|| "--jsonl requires a path".to_string())?.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            path => {
                if scenario_path.replace(path.to_string()).is_some() {
                    return Err("more than one scenario file given".to_string());
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or_else(|| "missing scenario file".to_string())?;
    // Interleaving records with the table on one stream would corrupt both.
    if jsonl.as_deref() == Some("-") {
        quiet = true;
    }
    Ok(Options { scenario_path, serial, quiet, jsonl })
}

fn run(validate: bool, opts: &Options) -> Result<i32, LibraError> {
    let mut scenario = Scenario::load(&opts.scenario_path)?;
    if !validate {
        scenario.backends.clear();
    } else if scenario.backends.len() < 2 {
        return Err(LibraError::BadRequest(format!(
            "crossval needs at least two backends; scenario {:?} names {}",
            scenario.name,
            scenario.backends.len()
        )));
    }
    let workloads = scenario_workloads(&scenario)?;
    let registry = default_registry();
    let cost_model = CostModel::default();
    let mut session = scenario.session(&cost_model);
    if opts.serial {
        session = session.with_mode(ExecMode::Serial);
    }

    let mut console = (!opts.quiet).then(|| ConsoleTableSink::new(std::io::stdout().lock()));
    let mut jsonl = match &opts.jsonl {
        None => None,
        Some(path) => {
            let out: Box<dyn Write> =
                if path == "-" {
                    Box::new(std::io::stdout().lock())
                } else {
                    Box::new(std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| {
                        LibraError::BadRequest(format!("cannot create {path}: {e}"))
                    })?))
                };
            Some(JsonLinesSink::new(out))
        }
    };
    let mut sinks: Vec<&mut dyn ReportSink> = Vec::new();
    if let Some(c) = console.as_mut() {
        sinks.push(c);
    }
    if let Some(j) = jsonl.as_mut() {
        sinks.push(j);
    }

    let report = session.run_scenario_with_sinks(&scenario, &workloads, &registry, &mut sinks)?;
    // Every grid point streams one record — failed points included.
    let records = report.sweep.results.len() + report.sweep.errors.len();
    if let Some(j) = jsonl {
        let mut out = j.into_inner();
        out.flush().map_err(|e| LibraError::BadRequest(format!("flushing JSON-lines: {e}")))?;
        if let Some(path) = opts.jsonl.as_deref().filter(|p| *p != "-") {
            eprintln!("libra: wrote {records} records to {path}");
        }
    }
    let stats = session.engine().cache_stats();
    eprintln!(
        "libra: {records} grid points ({} solved, {} errors); cache: {} solves ({} hits, {} warm-seeded)",
        report.sweep.results.len(),
        report.sweep.errors.len(),
        stats.design_misses,
        stats.design_hits,
        stats.warm_seeded,
    );
    if validate {
        for line in report.divergence.summary().lines() {
            eprintln!("libra: {line}");
        }
        if !report.divergence.within_tolerance() {
            eprintln!("libra: FAIL — divergence beyond tolerance {}", session.tolerance());
            return Ok(2);
        }
    }
    Ok(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list-backends") => {
            for name in default_registry().names() {
                println!("{name}");
            }
            0
        }
        Some(cmd @ ("sweep" | "crossval")) => match parse_options(&args[1..]) {
            Err(msg) => {
                eprintln!("libra {cmd}: {msg}\n\n{USAGE}");
                1
            }
            Ok(opts) => match run(cmd == "crossval", &opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("libra {cmd}: {e}");
                    1
                }
            },
        },
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            i32::from(args.is_empty())
        }
        Some(other) => {
            eprintln!("libra: unknown command {other:?}\n\n{USAGE}");
            1
        }
    };
    std::process::exit(code);
}
