//! `libra` — the scenario-first command line for the design-space engine.
//!
//! Scenario files (see `scenarios/` in the repository root and the
//! "Scenario files & CLI" section of the README) describe a sweep as
//! data: shapes × budgets × objectives, Table II workload names, backend
//! names, link parameters, and policies. This binary executes them:
//!
//! ```text
//! libra list-backends [--json]
//! libra sweep    <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet] [--range A..B] [--cache PATH]
//! libra search   <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet] [--cache PATH]
//! libra crossval <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet] [--range A..B] [--cache PATH]
//! libra dispatch <SCENARIO.json> --shards K [--spawn [--retries N]] [--serial] [--jsonl PATH] [--quiet] [--cache PATH]
//! libra resume   <SCENARIO.json> <PARTIAL.jsonl> [--serial] [--jsonl PATH] [--quiet] [--cache PATH]
//! libra serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache PATH] [--port-file PATH]
//!                [--job-timeout SECS] [--max-failed-points N]
//! libra submit   <SCENARIO.json> --url http://HOST:PORT [--jsonl PATH] [--quiet] [--timeout SECS]
//! ```
//!
//! * `sweep` runs the design-space grid without backend pricing (the
//!   scenario's `backends` list is ignored).
//! * `search` runs the scenario's adaptive `"search"` block: a coarse
//!   Pareto-guided subgrid is successively refined instead of sweeping
//!   the whole grid, so scenarios *above* the exhaustive point cap are
//!   legal. The streamed JSONL carries nominal grid indices, replays
//!   bit-identically (parallel ≡ serial, warm-from-store ≡ cold), and
//!   on exhaustively sweepable grids the final front equals `sweep`'s
//!   `pareto_front()` exactly.
//! * `crossval` prices every grid point under each of the scenario's
//!   backends (two or more required) and reports pairwise divergence.
//! * `dispatch` splits the grid into `K` contiguous shards, runs each
//!   shard as an independent worker — fresh in-process sessions by
//!   default, forked `libra crossval --range` child processes with
//!   `--spawn` — and merges the shards' JSON-lines streams back into
//!   one coverage-checked, re-judged report. The merged stream and exit
//!   code are bit-identical to the single-process `crossval` run's.
//! * `resume` reads the valid prefix of an interrupted JSON-lines
//!   stream, prices only the grid indices it is missing, and emits a
//!   merged stream byte-identical to an uninterrupted run (in place
//!   over `PARTIAL.jsonl` unless `--jsonl` redirects it).
//! * `--range A..B` restricts a run to the grid indices `A..B` (what a
//!   spawned shard worker executes); emitted record indices stay global.
//!   Reversed, empty, and out-of-grid ranges are usage errors.
//! * `--cache PATH` attaches the persistent solve store (`libra-cache-v1`
//!   JSON-lines): designs already priced under the same scenario
//!   fingerprint are loaded instead of re-solved, and fresh solves are
//!   appended for the next run. Sharded and resumed runs stay
//!   byte-identical to cold single-process runs.
//! * `--jsonl PATH` streams per-point records as JSON-lines to `PATH`
//!   (`-` for stdout, which implies `--quiet`); the stream is
//!   bit-identical across runs and machines-with-identical-libm, which
//!   is what the CI golden diff pins.
//! * `--serial` uses the serial reference fold (bit-identical to the
//!   default rayon fan-out by the engine's determinism contract).
//! * `dispatch --spawn --retries N` respawns a crashed shard worker up
//!   to `N` times (deterministic seeded exponential backoff); the
//!   merged stream stays byte-identical to a clean run because failed
//!   attempts' partial output is discarded whole.
//! * `serve` runs the sweep service: an HTTP/JSON front end that queues
//!   submitted scenarios onto a worker pool sharing one `--cache` solve
//!   store. `SIGTERM`/ctrl-c drain gracefully: running jobs finish,
//!   queued jobs fail fast, the store flushes. `--job-timeout SECS`
//!   arms a watchdog that fails hung jobs; `--max-failed-points N`
//!   fails any job with more than `N` errored grid points.
//! * `submit` sends a scenario file to a running server, waits for the
//!   job, and streams back the records — byte-identical to running
//!   `libra crossval <SCENARIO.json> --jsonl -` locally, with the same
//!   0/2 exit-code split. Connection-refused submits are retried
//!   briefly; `--timeout SECS` bounds the wait for the job itself.
//! * `LIBRA_FAULT_PLAN` (see `libra_core::fault`) arms deterministic
//!   fault injection across every command — chaos testing's front door.
//!
//! Exit codes: `0` success (and, for `crossval`/`dispatch`, all pairs
//! within tolerance); `1` usage, I/O, or scenario errors; `2` a
//! `crossval`/`dispatch` run whose backends diverged beyond the
//! scenario's tolerance.

use std::io::Write;
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use libra_bench::{default_registry, scenario_workloads, search, ExecMode, Scenario};
use libra_core::cost::CostModel;
use libra_core::dispatch::{partial_records, resume_rows, Dispatcher};
use libra_core::fault::{self, FaultInjector};
use libra_core::scenario::{ConsoleTableSink, JsonLinesSink, ReportSink};
use libra_core::LibraError;
use libra_server::{install_signal_handlers, Server, ServerConfig, ServiceClient};

const USAGE: &str = "\
libra — scenario-first front door for the LIBRA design-space engine

USAGE:
    libra list-backends [--json]
    libra sweep    <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet] [--range A..B] [--cache PATH]
    libra search   <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet] [--cache PATH]
    libra crossval <SCENARIO.json> [--serial] [--jsonl PATH] [--quiet] [--range A..B] [--cache PATH]
    libra dispatch <SCENARIO.json> --shards K [--spawn [--retries N]] [--serial] [--jsonl PATH] [--quiet] [--cache PATH]
    libra resume   <SCENARIO.json> <PARTIAL.jsonl> [--serial] [--jsonl PATH] [--quiet] [--cache PATH]
    libra serve    [--addr HOST:PORT] [--workers N] [--queue N] [--cache PATH] [--port-file PATH]
                   [--job-timeout SECS] [--max-failed-points N]
    libra submit   <SCENARIO.json> --url http://HOST:PORT [--jsonl PATH] [--quiet] [--timeout SECS]

EXIT CODES:
    0  success (crossval/dispatch/resume/submit: every backend pair within tolerance)
    1  usage, I/O, or scenario error
    2  crossval/dispatch/resume/submit divergence beyond the scenario's tolerance
";

struct Options {
    scenario_path: String,
    /// `resume`'s second positional: the interrupted JSON-lines stream.
    partial_path: Option<String>,
    serial: bool,
    quiet: bool,
    jsonl: Option<String>,
    range: Option<Range<usize>>,
    shards: Option<usize>,
    spawn: bool,
    /// `dispatch --spawn` only: respawn a crashed shard worker up to
    /// this many times.
    retries: Option<u32>,
    cache: Option<String>,
}

/// A run can fail two ways with exit 1: a usage error (earns the USAGE
/// block on stderr) or a runtime error (does not — repeating the flag
/// grammar at an I/O failure would bury the actual message).
enum CliError {
    Usage(String),
    Run(LibraError),
}

impl From<LibraError> for CliError {
    fn from(e: LibraError) -> Self {
        CliError::Run(e)
    }
}

fn parse_range(s: &str) -> Result<Range<usize>, String> {
    let bad = || format!("--range wants A..B (got {s:?})");
    let (a, b) = s.split_once("..").ok_or_else(bad)?;
    let start: usize = a.parse().map_err(|_| bad())?;
    let end: usize = b.parse().map_err(|_| bad())?;
    if start > end {
        return Err(format!("--range {s} is reversed (start exceeds end)"));
    }
    if start == end {
        return Err(format!("--range {s} is empty (start equals end)"));
    }
    Ok(start..end)
}

fn parse_options(cmd: &str, args: &[String]) -> Result<Options, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut serial = false;
    let mut quiet = false;
    let mut jsonl = None;
    let mut range = None;
    let mut shards = None;
    let mut spawn = false;
    let mut retries = None;
    let mut cache = None;
    let mut seen: Vec<&str> = Vec::new();
    // Every flag is set-at-most-once: a duplicate is a usage error, not
    // a silent last-one-wins (or worse, first-one-wins for booleans).
    let mut once = |flag: &'static str| -> Result<(), String> {
        if seen.contains(&flag) {
            return Err(format!("duplicate flag {flag}"));
        }
        seen.push(flag);
        Ok(())
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serial" => {
                once("--serial")?;
                serial = true;
            }
            "--quiet" => {
                once("--quiet")?;
                quiet = true;
            }
            "--spawn" => {
                once("--spawn")?;
                spawn = true;
            }
            "--jsonl" => {
                once("--jsonl")?;
                let path = it.next().filter(|p| *p == "-" || !p.starts_with("--"));
                jsonl = Some(path.ok_or_else(|| "--jsonl requires a path".to_string())?.clone());
            }
            "--cache" => {
                once("--cache")?;
                let path = it.next().filter(|p| !p.starts_with("--"));
                cache = Some(path.ok_or_else(|| "--cache requires a path".to_string())?.clone());
            }
            "--range" => {
                once("--range")?;
                let spec = it.next().ok_or_else(|| "--range requires A..B".to_string())?;
                range = Some(parse_range(spec)?);
            }
            "--shards" => {
                once("--shards")?;
                let n = it.next().ok_or_else(|| "--shards requires a count".to_string())?;
                let n: usize =
                    n.parse().map_err(|_| format!("--shards wants a number (got {n:?})"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                shards = Some(n);
            }
            "--retries" => {
                once("--retries")?;
                let n = it.next().ok_or_else(|| "--retries requires a count".to_string())?;
                let n: u32 =
                    n.parse().map_err(|_| format!("--retries wants a number (got {n:?})"))?;
                retries = Some(n);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            path => positionals.push(path.to_string()),
        }
    }
    let wants = if cmd == "resume" { 2 } else { 1 };
    if positionals.len() > wants {
        return Err(format!("unexpected extra argument {:?}", positionals[wants]));
    }
    let mut positionals = positionals.into_iter();
    let scenario_path = positionals.next().ok_or_else(|| "missing scenario file".to_string())?;
    let partial_path = if cmd == "resume" {
        Some(
            positionals
                .next()
                .ok_or_else(|| "resume needs the partial JSON-lines file".to_string())?,
        )
    } else {
        None
    };
    match cmd {
        "dispatch" => {
            if shards.is_none() {
                return Err("dispatch requires --shards K".to_string());
            }
            if range.is_some() {
                return Err("--range applies to sweep/crossval workers, not dispatch".to_string());
            }
            if retries.is_some() && !spawn {
                return Err("--retries applies to dispatch --spawn \
                     (in-process shards have no worker process to respawn)"
                    .to_string());
            }
        }
        "resume" => {
            if shards.is_some() || spawn || retries.is_some() {
                return Err("--shards/--spawn/--retries apply to dispatch, not resume".to_string());
            }
            if range.is_some() {
                return Err("--range applies to sweep/crossval workers, not resume \
                     (resume derives its own ranges from the partial stream)"
                    .to_string());
            }
        }
        "search" => {
            if shards.is_some() || spawn || retries.is_some() {
                return Err("--shards/--spawn/--retries apply to dispatch, not search".to_string());
            }
            if range.is_some() {
                return Err("--range applies to sweep/crossval workers, not search \
                     (the adaptive driver picks its own subgrids)"
                    .to_string());
            }
        }
        _ => {
            if shards.is_some() || spawn || retries.is_some() {
                return Err(format!("--shards/--spawn/--retries apply to dispatch, not {cmd}"));
            }
        }
    }
    // Interleaving records with the table on one stream would corrupt both.
    if jsonl.as_deref() == Some("-") {
        quiet = true;
    }
    Ok(Options {
        scenario_path,
        partial_path,
        serial,
        quiet,
        jsonl,
        range,
        shards,
        spawn,
        retries,
        cache,
    })
}

/// Loads the scenario and enforces the crossval two-backend floor
/// (`validate` is false for plain sweeps, which ignore backends).
fn load_scenario(validate: bool, opts: &Options) -> Result<Scenario, LibraError> {
    let mut scenario = Scenario::load(&opts.scenario_path)?;
    if !validate {
        scenario.backends.clear();
    } else if scenario.backends.len() < 2 {
        return Err(LibraError::BadRequest(format!(
            "crossval needs at least two backends; scenario {:?} names {}",
            scenario.name,
            scenario.backends.len()
        )));
    }
    Ok(scenario)
}

/// Exhaustive commands materialize the whole grid, so they keep the
/// point cap even for scenarios whose `"search"` block exempted them
/// from the build-time check — with an error that points at the
/// command built for grids that size.
fn check_exhaustive_cap(
    scenario: &Scenario,
    n_workloads: usize,
    cmd: &str,
) -> Result<(), LibraError> {
    let len = scenario.grid().len(n_workloads);
    if len > Scenario::MAX_GRID_POINTS {
        return Err(LibraError::BadRequest(format!(
            "scenario {:?}: grid has {len} points, over the {} point cap `libra {cmd}` \
             sweeps exhaustively — run `libra search` on it instead",
            scenario.name,
            Scenario::MAX_GRID_POINTS
        )));
    }
    Ok(())
}

/// Opens the `--jsonl` destination (stdout for `-`).
fn jsonl_writer(path: &str) -> Result<Box<dyn Write>, LibraError> {
    Ok(if path == "-" {
        Box::new(std::io::stdout().lock())
    } else {
        Box::new(std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| LibraError::BadRequest(format!("cannot create {path}: {e}")))?,
        ))
    })
}

fn run(validate: bool, opts: &Options) -> Result<i32, CliError> {
    // The shard-crash injection site: a `--range` run is what a spawned
    // shard worker executes, so an armed `dispatch.shard.crash` kills
    // this process abnormally before any output — the wire image of a
    // worker dying — keyed by the spawn-attempt ordinal the dispatcher
    // passed down, so retried attempts deterministically survive.
    if opts.range.is_some() {
        if let Some(injector) = FaultInjector::from_env() {
            let attempt = fault::attempt_from_env();
            if injector.fires(fault::DISPATCH_SHARD_CRASH, attempt) {
                eprintln!(
                    "libra: injected fault: {} (attempt {attempt})",
                    fault::DISPATCH_SHARD_CRASH
                );
                std::process::exit(70);
            }
        }
    }
    let scenario = load_scenario(validate, opts)?;
    let workloads = scenario_workloads(&scenario)?;
    check_exhaustive_cap(&scenario, workloads.len(), if validate { "crossval" } else { "sweep" })?;
    let registry = default_registry();
    let cost_model = CostModel::default();
    let grid_len = scenario.grid().len(workloads.len());
    if let Some(r) = &opts.range {
        // Grid-dependent, so checked here rather than in parse_options:
        // a silently clamped range would emit fewer records than asked.
        if r.end > grid_len {
            return Err(CliError::Usage(format!(
                "--range {}..{} does not fit the grid's {grid_len} points",
                r.start, r.end
            )));
        }
    }
    let mut session = scenario.session(&cost_model);
    if opts.serial {
        session = session.with_mode(ExecMode::Serial);
    }
    if let Some(path) = &opts.cache {
        session = session.with_store(path)?;
    }

    let mut console = (!opts.quiet).then(|| ConsoleTableSink::new(std::io::stdout().lock()));
    let mut jsonl = match &opts.jsonl {
        None => None,
        Some(path) => Some(JsonLinesSink::new(jsonl_writer(path)?)),
    };
    let mut sinks: Vec<&mut dyn ReportSink> = Vec::new();
    if let Some(c) = console.as_mut() {
        sinks.push(c);
    }
    if let Some(j) = jsonl.as_mut() {
        sinks.push(j);
    }

    let range = opts.range.clone().unwrap_or(0..grid_len);
    let report = session
        .run_scenario_range_with_sinks(&scenario, &workloads, &registry, range, &mut sinks)?;
    // Every grid point in range streams one record — failed points included.
    let records = report.sweep.results.len() + report.sweep.errors.len();
    if let Some(j) = jsonl {
        let mut out = j.into_inner();
        out.flush().map_err(|e| LibraError::BadRequest(format!("flushing JSON-lines: {e}")))?;
        if let Some(path) = opts.jsonl.as_deref().filter(|p| *p != "-") {
            eprintln!("libra: wrote {records} records to {path}");
        }
    }
    let stats = session.engine().cache_stats();
    eprintln!(
        "libra: {records} grid points ({} solved, {} errors); cache: {} solves ({} hits, {} warm-seeded)",
        report.sweep.results.len(),
        report.sweep.errors.len(),
        stats.design_misses,
        stats.design_hits,
        stats.warm_seeded,
    );
    if let Some(store) = session.engine().store_stats() {
        let path = opts.cache.as_deref().unwrap_or("?");
        eprintln!("libra: store: {} hits, {} staged (cache file {path})", store.hits, store.staged,);
    }
    if validate {
        for line in report.divergence.summary().lines() {
            eprintln!("libra: {line}");
        }
        if !report.divergence.within_tolerance() {
            eprintln!("libra: FAIL — divergence beyond tolerance {}", session.tolerance());
            return Ok(2);
        }
    }
    Ok(0)
}

fn run_search(opts: &Options) -> Result<i32, CliError> {
    // Backends are ignored like `sweep`'s: search prices the design
    // space only, so a search scenario may name zero backends.
    let mut scenario = Scenario::load(&opts.scenario_path)?;
    scenario.backends.clear();
    let workloads = scenario_workloads(&scenario)?;
    let cost_model = CostModel::default();
    let mut session = scenario.session(&cost_model);
    if opts.serial {
        session = session.with_mode(ExecMode::Serial);
    }
    if let Some(path) = &opts.cache {
        session = session.with_store(path)?;
    }

    let mut console = (!opts.quiet).then(|| ConsoleTableSink::new(std::io::stdout().lock()));
    let mut jsonl = match &opts.jsonl {
        None => None,
        Some(path) => Some(JsonLinesSink::new(jsonl_writer(path)?)),
    };
    let mut sinks: Vec<&mut dyn ReportSink> = Vec::new();
    if let Some(c) = console.as_mut() {
        sinks.push(c);
    }
    if let Some(j) = jsonl.as_mut() {
        sinks.push(j);
    }

    let report = search::run_scenario(&session, &scenario, &workloads, &mut sinks)?;
    let records = report.evals;
    if let Some(j) = jsonl {
        let mut out = j.into_inner();
        out.flush().map_err(|e| LibraError::BadRequest(format!("flushing JSON-lines: {e}")))?;
        if let Some(path) = opts.jsonl.as_deref().filter(|p| *p != "-") {
            eprintln!("libra: wrote {records} records to {path}");
        }
    }
    for r in &report.rounds {
        eprintln!(
            "libra: search round {}: {} budgets refined, {} new evals, front size {}",
            r.round, r.budgets_added, r.new_evals, r.front_size
        );
    }
    eprintln!(
        "libra: search evaluated {} of {} nominal grid points ({:.2}%) in {} rounds; \
         front size {} ({} solved, {} errors)",
        report.evals,
        report.nominal_points,
        100.0 * report.coverage(),
        report.rounds.len(),
        report.front().len(),
        report.sweep.results.len(),
        report.sweep.errors.len(),
    );
    let stats = session.engine().cache_stats();
    eprintln!(
        "libra: cache: {} solves ({} hits, {} warm-seeded)",
        stats.design_misses, stats.design_hits, stats.warm_seeded,
    );
    if let Some(store) = session.engine().store_stats() {
        let path = opts.cache.as_deref().unwrap_or("?");
        eprintln!("libra: store: {} hits, {} staged (cache file {path})", store.hits, store.staged);
    }
    Ok(0)
}

fn run_dispatch(opts: &Options) -> Result<i32, CliError> {
    let scenario = load_scenario(true, opts)?;
    let workloads = scenario_workloads(&scenario)?;
    check_exhaustive_cap(&scenario, workloads.len(), "dispatch")?;
    let registry = default_registry();
    let cost_model = CostModel::default();
    let shards = opts.shards.expect("parse_options requires --shards for dispatch");
    let mut dispatcher = Dispatcher::new(&scenario, shards)?;
    if opts.serial {
        dispatcher = dispatcher.with_mode(ExecMode::Serial);
    }
    if let Some(path) = &opts.cache {
        dispatcher = dispatcher.with_store(path);
    }

    let merged = if opts.spawn {
        let exe = std::env::current_exe()
            .map_err(|e| LibraError::BadRequest(format!("cannot locate own binary: {e}")))?;
        let ranges = dispatcher.ranges(workloads.len());
        let retries = opts.retries.unwrap_or(0);
        // Backoff jitter rides the fault plan's seed when one is armed,
        // so a chaos run's full retry timing is reproducible.
        let backoff_seed = FaultInjector::from_env().map_or(0, |f| f.seed());
        let spawn_shard = |r: &Range<usize>, attempt: u32| -> Result<_, LibraError> {
            let mut args = vec![
                "crossval".to_string(),
                opts.scenario_path.clone(),
                "--jsonl".to_string(),
                "-".to_string(),
                "--range".to_string(),
                format!("{}..{}", r.start, r.end),
            ];
            if let Some(path) = &opts.cache {
                args.push("--cache".to_string());
                args.push(path.clone());
            }
            Command::new(&exe)
                .args(&args)
                .env(fault::ATTEMPT_ENV_VAR, attempt.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| LibraError::BadRequest(format!("spawning shard worker: {e}")))
        };
        // Fork one `crossval --range` worker per shard, all running
        // concurrently; each streams its records to stdout. Empty tail
        // shards (more shards than points) get no worker: the CLI
        // rejects empty ranges, and there is nothing to run anyway.
        let mut children = Vec::new();
        for r in ranges.iter().filter(|r| !r.is_empty()) {
            children.push((r.clone(), spawn_shard(r, 0)?));
        }
        let mut streams = Vec::with_capacity(children.len());
        for (k, (r, mut child)) in children.into_iter().enumerate() {
            let mut attempt: u32 = 0;
            let stdout = loop {
                let out = child
                    .wait_with_output()
                    .map_err(|e| LibraError::BadRequest(format!("waiting on shard {k}: {e}")))?;
                // Exit 2 is a shard-local divergence verdict; the merged
                // matrix re-judges the whole grid, so only hard failures
                // (usage, I/O, scenario errors, crashes) count against
                // the retry budget.
                if matches!(out.status.code(), Some(0 | 2)) {
                    break out.stdout;
                }
                if attempt >= retries {
                    return Err(CliError::Run(LibraError::BadRequest(format!(
                        "shard {k} worker failed with status {:?} (attempt {} of {})",
                        out.status.code(),
                        attempt + 1,
                        retries + 1,
                    ))));
                }
                // A failed attempt's partial stdout is discarded whole;
                // only a clean attempt's stream enters the merge, which
                // is what keeps chaotic runs byte-identical to clean ones.
                attempt += 1;
                let delay = fault::backoff_delay_ms(backoff_seed, attempt, 10, 2_000);
                eprintln!(
                    "libra: shard {k} worker failed with status {:?}; \
                     retrying ({attempt}/{retries}) in {delay} ms",
                    out.status.code(),
                );
                std::thread::sleep(Duration::from_millis(delay));
                child = spawn_shard(&r, attempt)?;
            };
            streams.push(String::from_utf8(stdout).map_err(|e| {
                LibraError::BadRequest(format!("shard {k} wrote non-UTF-8 output: {e}"))
            })?);
        }
        dispatcher.merge_streams(&streams, &registry)?
    } else {
        dispatcher.run_in_process(&cost_model, &workloads, &registry)?
    };

    if let Some(path) = &opts.jsonl {
        let mut out = jsonl_writer(path)?;
        out.write_all(merged.to_jsonl().as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| LibraError::BadRequest(format!("writing merged JSON-lines: {e}")))?;
        if path != "-" {
            eprintln!("libra: wrote {} merged records to {path}", merged.rows.len());
        }
    }
    let mode = if opts.spawn { "spawned workers" } else { "in-process sessions" };
    eprintln!(
        "libra: dispatch merged {} shards ({mode}) over {} grid points ({} solved, {} errors)",
        shards,
        merged.rows.len(),
        merged.results(),
        merged.errors(),
    );
    for line in merged.divergence.summary().lines() {
        eprintln!("libra: {line}");
    }
    if !merged.within_tolerance() {
        eprintln!("libra: FAIL — divergence beyond tolerance {}", merged.tolerance);
    }
    Ok(merged.exit_code())
}

fn run_resume(opts: &Options) -> Result<i32, CliError> {
    // No two-backend floor: resume re-prices with whatever backend list
    // the scenario names, so a plain sweep stream resumes too.
    let scenario = Scenario::load(&opts.scenario_path)?;
    let workloads = scenario_workloads(&scenario)?;
    check_exhaustive_cap(&scenario, workloads.len(), "resume")?;
    let registry = default_registry();
    let cost_model = CostModel::default();
    let partial_path = opts.partial_path.as_deref().expect("parse_options requires the partial");
    let partial = std::fs::read_to_string(partial_path)
        .map_err(|e| LibraError::BadRequest(format!("cannot read {partial_path}: {e}")))?;
    let rows = partial_records(&partial)?;
    let present = rows.len();
    let mode = if opts.serial { ExecMode::Serial } else { ExecMode::Parallel };
    let merged = resume_rows(
        &scenario,
        &workloads,
        &registry,
        &cost_model,
        rows,
        mode,
        opts.cache.as_deref().map(std::path::Path::new),
    )?;
    // The merged stream replaces the partial file unless --jsonl
    // redirects it (`-` for stdout).
    let dest = opts.jsonl.as_deref().unwrap_or(partial_path);
    let mut out = jsonl_writer(dest)?;
    out.write_all(merged.to_jsonl().as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| LibraError::BadRequest(format!("writing merged JSON-lines: {e}")))?;
    if dest != "-" {
        eprintln!("libra: wrote {} merged records to {dest}", merged.rows.len());
    }
    eprintln!(
        "libra: resume: {present} surviving records, {} re-priced, {} total",
        merged.rows.len() - present,
        merged.rows.len(),
    );
    for line in merged.divergence.summary().lines() {
        eprintln!("libra: {line}");
    }
    if !merged.within_tolerance() {
        eprintln!("libra: FAIL — divergence beyond tolerance {}", merged.tolerance);
    }
    Ok(merged.exit_code())
}

struct ServeOptions {
    addr: String,
    workers: usize,
    queue: usize,
    cache: Option<String>,
    /// Write the bound port here once listening — how scripts (and the
    /// CI smoke job) discover an ephemeral `--addr HOST:0` port.
    port_file: Option<String>,
    /// Per-job wall-clock deadline in seconds (the watchdog).
    job_timeout: Option<f64>,
    /// Failed-point quota: more errored grid points than this fails the
    /// whole job.
    max_failed_points: Option<usize>,
}

fn parse_serve(args: &[String]) -> Result<ServeOptions, String> {
    let defaults = ServerConfig::default();
    let mut addr = "127.0.0.1:8080".to_string();
    let mut workers = defaults.workers;
    let mut queue = defaults.queue_capacity;
    let mut cache = None;
    let mut port_file = None;
    let mut job_timeout = None;
    let mut max_failed_points = None;
    let mut seen: Vec<&str> = Vec::new();
    let mut once = |flag: &'static str| -> Result<(), String> {
        if seen.contains(&flag) {
            return Err(format!("duplicate flag {flag}"));
        }
        seen.push(flag);
        Ok(())
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--addr" => {
                once("--addr")?;
                addr = value("--addr")?;
            }
            "--workers" => {
                once("--workers")?;
                let v = value("--workers")?;
                workers = v.parse().map_err(|_| format!("--workers wants a number (got {v:?})"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--queue" => {
                once("--queue")?;
                let v = value("--queue")?;
                queue = v.parse().map_err(|_| format!("--queue wants a number (got {v:?})"))?;
                if queue == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
            }
            "--cache" => {
                once("--cache")?;
                cache = Some(value("--cache")?);
            }
            "--port-file" => {
                once("--port-file")?;
                port_file = Some(value("--port-file")?);
            }
            "--job-timeout" => {
                once("--job-timeout")?;
                let v = value("--job-timeout")?;
                let secs: f64 =
                    v.parse().map_err(|_| format!("--job-timeout wants seconds (got {v:?})"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--job-timeout wants a positive duration (got {v:?})"));
                }
                job_timeout = Some(secs);
            }
            "--max-failed-points" => {
                once("--max-failed-points")?;
                let v = value("--max-failed-points")?;
                max_failed_points = Some(
                    v.parse()
                        .map_err(|_| format!("--max-failed-points wants a number (got {v:?})"))?,
                );
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(ServeOptions { addr, workers, queue, cache, port_file, job_timeout, max_failed_points })
}

fn run_serve(opts: &ServeOptions) -> Result<i32, CliError> {
    // SIGTERM/ctrl-c flip the shutdown flag; `join` then drains.
    install_signal_handlers();
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: opts.workers,
        queue_capacity: opts.queue,
        cache: opts.cache.as_ref().map(PathBuf::from),
        job_timeout: opts.job_timeout.map(Duration::from_secs_f64),
        failed_point_quota: opts.max_failed_points,
        // None = fall back to the LIBRA_FAULT_PLAN environment variable.
        fault_spec: None,
    };
    // The same registry + workload resolver `crossval` runs with, so a
    // served job's records are byte-identical to the local command's.
    let server = Server::start(config, default_registry(), Box::new(scenario_workloads))?;
    let addr = server.addr();
    let cache_note = match &opts.cache {
        Some(path) => format!(", cache {path}"),
        None => String::new(),
    };
    eprintln!(
        "libra: serving on http://{addr} ({} workers, queue capacity {}{cache_note})",
        opts.workers, opts.queue
    );
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| LibraError::BadRequest(format!("cannot write {path}: {e}")))?;
    }
    server.join()?;
    eprintln!("libra: serve: drained and shut down");
    Ok(0)
}

struct SubmitOptions {
    scenario_path: String,
    url: String,
    /// Records destination; `-` (the default) streams to stdout.
    jsonl: String,
    quiet: bool,
    /// Bound on the wait for the job, in seconds (`None` waits forever).
    timeout: Option<f64>,
}

fn parse_submit(args: &[String]) -> Result<SubmitOptions, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut url = None;
    let mut jsonl = None;
    let mut quiet = false;
    let mut timeout = None;
    let mut seen: Vec<&str> = Vec::new();
    let mut once = |flag: &'static str| -> Result<(), String> {
        if seen.contains(&flag) {
            return Err(format!("duplicate flag {flag}"));
        }
        seen.push(flag);
        Ok(())
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quiet" => {
                once("--quiet")?;
                quiet = true;
            }
            "--url" => {
                once("--url")?;
                let v = it.next().filter(|v| !v.starts_with("--"));
                url = Some(v.ok_or_else(|| "--url requires a value".to_string())?.clone());
            }
            "--jsonl" => {
                once("--jsonl")?;
                let path = it.next().filter(|p| *p == "-" || !p.starts_with("--"));
                jsonl = Some(path.ok_or_else(|| "--jsonl requires a path".to_string())?.clone());
            }
            "--timeout" => {
                once("--timeout")?;
                let v = it.next().ok_or_else(|| "--timeout requires seconds".to_string())?;
                let secs: f64 =
                    v.parse().map_err(|_| format!("--timeout wants seconds (got {v:?})"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout wants a positive duration (got {v:?})"));
                }
                timeout = Some(secs);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            path => positionals.push(path.to_string()),
        }
    }
    if positionals.len() > 1 {
        return Err(format!("unexpected extra argument {:?}", positionals[1]));
    }
    let scenario_path =
        positionals.into_iter().next().ok_or_else(|| "missing scenario file".to_string())?;
    let url = url.ok_or_else(|| "submit requires --url http://HOST:PORT".to_string())?;
    Ok(SubmitOptions {
        scenario_path,
        url,
        jsonl: jsonl.unwrap_or_else(|| "-".to_string()),
        quiet,
        timeout,
    })
}

fn run_submit(opts: &SubmitOptions) -> Result<i32, CliError> {
    let body = std::fs::read(&opts.scenario_path).map_err(|e| {
        CliError::Run(LibraError::BadRequest(format!("cannot read {}: {e}", opts.scenario_path)))
    })?;
    // Ride out a server that is still binding (e.g. a script that
    // starts `serve` and `submit` back to back) — connection-refused
    // submits retry for a short budget; application errors never do.
    let client = ServiceClient::new(&opts.url)?.with_connect_retry(Duration::from_secs(2));
    let (job, position) = client.submit(&body)?;
    if !opts.quiet {
        eprintln!(
            "libra: submitted {job} (queue position {position}) to http://{}",
            client.authority()
        );
    }
    let summary =
        client.wait(&job, Duration::from_millis(25), opts.timeout.map(Duration::from_secs_f64))?;
    let records = client.records(&job)?;
    let mut out = jsonl_writer(&opts.jsonl)?;
    out.write_all(&records)
        .and_then(|()| out.flush())
        .map_err(|e| LibraError::BadRequest(format!("writing served JSON-lines: {e}")))?;
    if !opts.quiet {
        if opts.jsonl != "-" {
            eprintln!("libra: wrote {} served bytes to {}", records.len(), opts.jsonl);
        }
        eprintln!(
            "libra: {job}: {} solved, {} errors; max rel error {:.6}; within tolerance: {}",
            summary.results, summary.errors, summary.max_rel_error, summary.within_tolerance
        );
    }
    Ok(summary.exit_code())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list-backends") => match args.get(1).map(String::as_str) {
            None => {
                for name in default_registry().names() {
                    println!("{name}");
                }
                0
            }
            // The same bytes GET /v1/backends serves, by construction:
            // both print `BackendRegistry::to_json` of the one registry.
            Some("--json") if args.len() == 2 => {
                print!("{}", default_registry().to_json());
                0
            }
            Some(other) => {
                eprintln!("libra list-backends: unexpected argument {other:?}\n\n{USAGE}");
                1
            }
        },
        Some(cmd @ ("serve" | "submit")) => {
            let outcome = if cmd == "serve" {
                parse_serve(&args[1..]).map_err(CliError::Usage).and_then(|o| run_serve(&o))
            } else {
                parse_submit(&args[1..]).map_err(CliError::Usage).and_then(|o| run_submit(&o))
            };
            match outcome {
                Ok(code) => code,
                Err(CliError::Usage(msg)) => {
                    eprintln!("libra {cmd}: {msg}\n\n{USAGE}");
                    1
                }
                Err(CliError::Run(e)) => {
                    eprintln!("libra {cmd}: {e}");
                    1
                }
            }
        }
        Some(cmd @ ("sweep" | "search" | "crossval" | "dispatch" | "resume")) => {
            match parse_options(cmd, &args[1..]) {
                Err(msg) => {
                    eprintln!("libra {cmd}: {msg}\n\n{USAGE}");
                    1
                }
                Ok(opts) => {
                    let outcome = match cmd {
                        "dispatch" => run_dispatch(&opts),
                        "resume" => run_resume(&opts),
                        "search" => run_search(&opts),
                        _ => run(cmd == "crossval", &opts),
                    };
                    match outcome {
                        Ok(code) => code,
                        Err(CliError::Usage(msg)) => {
                            eprintln!("libra {cmd}: {msg}\n\n{USAGE}");
                            1
                        }
                        Err(CliError::Run(e)) => {
                            eprintln!("libra {cmd}: {e}");
                            1
                        }
                    }
                }
            }
        }
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            0
        }
        None => {
            // No command is a usage error: usage to stderr, exit 1 —
            // only an explicit `--help` earns the success exit.
            eprint!("{USAGE}");
            1
        }
        Some(other) => {
            eprintln!("libra: unknown command {other:?}\n\n{USAGE}");
            1
        }
    };
    std::process::exit(code);
}
