//! Headless perf harness: runs the sweep / cross-validation / solver hot
//! paths before and after the allocation-free-engine + warm-started-solver
//! overhaul and emits `BENCH_sweep.json`, so every PR has a recorded perf
//! trajectory instead of an empty benches directory.
//!
//! The "before" side is not a guess: the pre-optimization engine is
//! preserved in this binary as trace-path [`EvalBackend`]s
//! ([`TracePathEventSim`], [`TracePathNetSim`]) that drive the exact same
//! event loop through the fully instrumented, allocate-per-call entry
//! points (`run_batch_ext` with owned jobs and span clones) — precisely
//! what `EventSimBackend`/`NetSimBackend` did before the scratch arena
//! existed. Because both sides share one event loop, the harness can also
//! **prove** the optimization changed nothing: it bit-compares every
//! priced point between the legacy and fast paths and exits non-zero on
//! any mismatch (that check, not wall-clock, is what CI gates on).
//!
//! Usage:
//! ```text
//! perf_harness [--small] [--out PATH]
//! ```
//! `--small` runs a reduced grid (CI-sized); `--out` defaults to
//! `BENCH_sweep.json` in the current directory.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use libra_bench::{
    default_registry, sweep_workloads_with_link, CrossValidation3, EventSimBackend, LinkParams,
    NetSimBackend, Session,
};
use libra_core::cost::CostModel;
use libra_core::dispatch::Dispatcher;
use libra_core::eval::{validate_plan, Analytical, CommPlan, EvalBackend};
use libra_core::expr::{compile, compile_seeded};
use libra_core::network::NetworkShape;
use libra_core::opt::MIN_DIM_BW;
use libra_core::presets;
use libra_core::scenario::{JsonLinesSink, Scenario};
use libra_core::sweep::{SweepEngine, SweepGrid, SweepWorkload};
use libra_core::LibraError;
use libra_net::stage_overhead_ps;
use libra_sim::collective::{run_batch_ext, BatchExt, CollectiveJob, FixedOrder};
use libra_sim::event::{ps_to_secs, Time};
use libra_workloads::zoo::PaperModel;

/// Global allocation counter: every `alloc`/`realloc` bumps it, so a delta
/// around a single-threaded timed section is the section's allocation
/// count.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// The preserved pre-optimization backends (the "before" side).
// ---------------------------------------------------------------------------

/// PR-2's `EventSimBackend::eval_plan`, verbatim: owned jobs (span clones),
/// fully instrumented trace-path engine, fresh allocations per call.
struct TracePathEventSim {
    chunks: usize,
}

fn eval_plan_trace_path(
    n_dims: usize,
    bw: &[f64],
    plan: &CommPlan,
    chunks: usize,
    mut ext_of: impl FnMut(&libra_core::eval::CommPhase) -> BatchExt,
) -> Result<f64, LibraError> {
    validate_plan(n_dims, bw, plan)?;
    let mut total = 0.0f64;
    for phase in &plan.phases {
        if phase.repeat == 0 {
            continue;
        }
        let jobs: Vec<CollectiveJob> = phase
            .ops
            .iter()
            .filter(|op| op.bytes > 0.0 && !op.span.is_trivial())
            .map(|op| CollectiveJob {
                collective: op.collective,
                bytes: op.bytes,
                span: op.span.clone(),
                chunks,
                release: 0,
            })
            .collect();
        if jobs.is_empty() {
            continue;
        }
        let ext = ext_of(phase);
        let res = run_batch_ext(n_dims, bw, &ext, &jobs, &mut FixedOrder);
        total += phase.repeat as f64 * ps_to_secs(res.makespan());
    }
    Ok(total)
}

impl EvalBackend for TracePathEventSim {
    fn name(&self) -> &str {
        "event-sim@trace-path"
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        eval_plan_trace_path(n_dims, bw, plan, self.chunks, |_| BatchExt::none())
    }
}

/// PR-3's `NetSimBackend::eval_plan`, verbatim: per-call dim resolution and
/// per-phase `BatchExt` vectors, trace-path engine underneath.
struct TracePathNetSim {
    chunks: usize,
}

impl EvalBackend for TracePathNetSim {
    fn name(&self) -> &str {
        "net-sim@trace-path"
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        let default_dim = libra_core::eval::DimTopology::zero_switch();
        let dims: Vec<_> = (0..n_dims)
            .map(|d| plan.net.as_ref().and_then(|net| net.dim(d)).unwrap_or(default_dim))
            .collect();
        eval_plan_trace_path(n_dims, bw, plan, self.chunks, |phase| {
            let mut overhead = vec![0 as Time; n_dims];
            for op in &phase.ops {
                for &(d, e) in op.span.extents() {
                    overhead[d] = overhead[d].max(stage_overhead_ps(dims[d], e));
                }
            }
            BatchExt { stage_overhead_ps: overhead, offload_dims: vec![false; n_dims] }
        })
    }
}

// ---------------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------------

/// The `sweep_crossval3` grid (mirrors `benches/sweep_crossval3.rs`):
/// 2 shapes × 2 workloads × 5 budgets × 2 objectives = 40 points, or a
/// 8-point slice under `--small`.
fn scenario_grid(small: bool) -> SweepGrid {
    use libra_core::opt::Objective;
    if small {
        SweepGrid::new()
            .with_shapes([presets::topo_3d_512()])
            .with_budgets([100.0, 500.0])
            .with_objectives([Objective::Perf, Objective::PerfPerCost])
    } else {
        SweepGrid::new()
            .with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
            .with_budgets([100.0, 300.0, 500.0, 700.0, 900.0])
            .with_objectives([Objective::Perf, Objective::PerfPerCost])
    }
}

fn workloads(small: bool) -> Vec<libra_core::sweep::FnWorkload> {
    // 20 ns per hop — NVLink-class latency, small against these payloads.
    let link = LinkParams::latency(20_000.0);
    let models: &[PaperModel] = if small {
        &[PaperModel::TuringNlg]
    } else {
        &[PaperModel::TuringNlg, PaperModel::ResNet50]
    };
    sweep_workloads_with_link(models, link)
}

struct EngineEvalStats {
    reps: u64,
    legacy_ns_per_eval: f64,
    fast_ns_per_eval: f64,
    speedup: f64,
    legacy_allocs_per_eval: f64,
    fast_allocs_per_eval: f64,
    chunk_stages_per_eval: u64,
    fast_chunk_stages_per_sec: f64,
}

/// Single plan evaluation: the chunk engine's fast path vs the preserved
/// trace path — wall clock, allocations, and a bit-identity check.
fn engine_eval_scenario(small: bool) -> EngineEvalStats {
    let shape = presets::topo_3d_512();
    let wls = workloads(true); // TuringNlg carries the plan
    let plan = wls[0].comm_plan(&shape).unwrap().expect("paper workloads expose plans");
    let n = shape.ndims();
    let bw = vec![300.0 / n as f64; n];
    let chunks = 64usize;
    let fast = EventSimBackend::new(chunks);
    let legacy = TracePathEventSim { chunks };

    // Bit-identity first (also warms the thread-local scratch).
    let t_fast = fast.eval_plan(n, &bw, &plan).unwrap();
    let t_legacy = legacy.eval_plan(n, &bw, &plan).unwrap();
    assert_eq!(
        t_fast.to_bits(),
        t_legacy.to_bits(),
        "DETERMINISM VIOLATION: fast path {t_fast} != trace path {t_legacy}"
    );

    // Work volume: chunk-stages per evaluation (RS+AG stages per chunk).
    let chunk_stages: u64 = plan
        .phases
        .iter()
        .map(|p| {
            p.repeat as u64
                * p.ops
                    .iter()
                    .filter(|op| op.bytes > 0.0 && !op.span.is_trivial())
                    .map(|op| 2 * op.span.extents().len() as u64 * chunks as u64)
                    .sum::<u64>()
        })
        .sum();

    let reps: u64 = if small { 30 } else { 120 };
    let time_evals = |backend: &dyn EvalBackend| -> (f64, f64) {
        backend.eval_plan(n, &bw, &plan).unwrap(); // warm-up
        let a0 = allocations();
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(backend.eval_plan(n, &bw, &plan).unwrap());
        }
        let dt = t0.elapsed().as_nanos() as f64 / reps as f64;
        let da = (allocations() - a0) as f64 / reps as f64;
        (dt, da)
    };
    let (legacy_ns, legacy_allocs) = time_evals(&legacy);
    let (fast_ns, fast_allocs) = time_evals(&fast);
    EngineEvalStats {
        reps,
        legacy_ns_per_eval: legacy_ns,
        fast_ns_per_eval: fast_ns,
        speedup: legacy_ns / fast_ns,
        legacy_allocs_per_eval: legacy_allocs,
        fast_allocs_per_eval: fast_allocs,
        chunk_stages_per_eval: chunk_stages,
        fast_chunk_stages_per_sec: chunk_stages as f64 * 1e9 / fast_ns,
    }
}

struct SweepStats {
    points: usize,
    legacy_secs: f64,
    optimized_secs: f64,
    speedup: f64,
    optimized_points_per_sec: f64,
    warm_seeded_solves: usize,
}

/// The headline scenario: a cold three-way cross-validated sweep
/// (`run_cross_validated3`), before (cold solver + trace-path backends) vs
/// after (warm-started solver + scratch-arena backends).
fn sweep_crossval3_cold(small: bool) -> SweepStats {
    let grid = scenario_grid(small);
    let wls = workloads(small);
    let cm = CostModel::default();
    let points = grid.len(wls.len());

    let analytical = Analytical::new();
    let legacy_event = TracePathEventSim { chunks: 64 };
    let legacy_net = TracePathNetSim { chunks: 64 };
    let legacy_backends: [&dyn EvalBackend; 3] = [&analytical, &legacy_event, &legacy_net];
    let t0 = Instant::now();
    let legacy_engine = SweepEngine::new(&cm).with_warm_start(false);
    let legacy_report = Session::over(&legacy_engine).run(&grid, &wls, &legacy_backends);
    let legacy_secs = t0.elapsed().as_secs_f64();

    let event = EventSimBackend::new(64);
    let net = NetSimBackend::new(64);
    let fast_backends: [&dyn EvalBackend; 3] = [&analytical, &event, &net];
    let t0 = Instant::now();
    let engine = SweepEngine::new(&cm);
    let report = Session::over(&engine).run(&grid, &wls, &fast_backends);
    let optimized_secs = t0.elapsed().as_secs_f64();

    assert!(legacy_report.sweep.errors.is_empty() && report.sweep.errors.is_empty());
    // Warm-started designs agree with cold designs within solver tolerance
    // on the metric each point optimizes (PerfPerCost optima are a plateau
    // in `weighted_time × cost`, so only the product is determined).
    let mut worst = 0.0f64;
    for (a, b) in legacy_report.sweep.results.iter().zip(&report.sweep.results) {
        let (ma, mb) = match a.point.objective {
            libra_core::opt::Objective::Perf => (a.design.weighted_time, b.design.weighted_time),
            libra_core::opt::Objective::PerfPerCost => {
                (a.design.weighted_time * a.design.cost, b.design.weighted_time * b.design.cost)
            }
        };
        let rel = (ma - mb).abs() / ma.max(1e-300);
        if rel > 1e-4 {
            eprintln!(
                "  drift {rel:.2e} at {:?} {} ({:?}): cold {ma} vs warm {mb}",
                a.point, a.workload, a.point.objective
            );
        }
        worst = worst.max(rel);
    }
    assert!(
        worst <= 1e-3,
        "DETERMINISM VIOLATION: warm-started designs drifted {worst} from cold designs"
    );

    SweepStats {
        points,
        legacy_secs,
        optimized_secs,
        speedup: legacy_secs / optimized_secs,
        optimized_points_per_sec: points as f64 / optimized_secs,
        warm_seeded_solves: report.sweep.cache.warm_seeded,
    }
}

/// Warm-engine re-validation (design cache hot): the per-point cost is
/// pure backend pricing, isolating the chunk-engine speedup — and because
/// both sides price identical designs, every point must agree
/// **bit-for-bit** between the trace path and the fast path.
fn sweep_crossval3_warm(small: bool) -> (SweepStats, usize) {
    let grid = scenario_grid(small);
    let wls = workloads(small);
    let cm = CostModel::default();
    let points = grid.len(wls.len());

    let engine = SweepEngine::new(&cm);
    let session = Session::over(&engine);
    session.run(&grid, &wls, &[]); // warm the design cache

    let analytical = Analytical::new();
    let legacy_event = TracePathEventSim { chunks: 64 };
    let legacy_net = TracePathNetSim { chunks: 64 };
    let event = EventSimBackend::new(64);
    let net = NetSimBackend::new(64);
    let legacy_backends: [&dyn EvalBackend; 3] = [&analytical, &legacy_event, &legacy_net];
    let fast_backends: [&dyn EvalBackend; 3] = [&analytical, &event, &net];

    // One pass each for the bit-identity audit (untimed).
    let legacy_report = session.run(&grid, &wls, &legacy_backends);
    let report = session.run(&grid, &wls, &fast_backends);
    let mut checked = 0usize;
    for (lp, fp) in legacy_report
        .divergence
        .pairs
        .iter()
        .zip(&report.divergence.pairs)
        .flat_map(|(l, f)| l.points.iter().zip(&f.points))
    {
        assert_eq!(
            lp.reference_secs.to_bits(),
            fp.reference_secs.to_bits(),
            "DETERMINISM VIOLATION at {:?}: trace {} vs fast {}",
            lp.point,
            lp.reference_secs,
            fp.reference_secs
        );
        checked += 1;
    }

    let reps = if small { 3 } else { 5 };
    let time_runs = |backends: &[&dyn EvalBackend]| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(session.run(&grid, &wls, backends));
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    let legacy_secs = time_runs(&legacy_backends);
    let optimized_secs = time_runs(&fast_backends);
    (
        SweepStats {
            points,
            legacy_secs,
            optimized_secs,
            speedup: legacy_secs / optimized_secs,
            optimized_points_per_sec: points as f64 / optimized_secs,
            warm_seeded_solves: 0,
        },
        checked,
    )
}

struct SessionStats {
    points: usize,
    legacy_secs: f64,
    session_secs: f64,
    ratio: f64,
    bit_identical_points: usize,
}

/// The legacy fixed-arity entry point, quarantined so the deprecation
/// allowance covers exactly this call: the harness *wants* the old path
/// as its before-oracle.
#[allow(deprecated)]
fn legacy_crossval3<W: SweepWorkload>(
    engine: &SweepEngine<'_>,
    grid: &SweepGrid,
    wls: &[W],
    cv: &CrossValidation3<'_>,
) -> libra_bench::CrossValidated3Report {
    engine.run_cross_validated3(grid, wls, cv)
}

/// The same warm three-way cross-validation driven once through the
/// deprecated `run_cross_validated3` API and once through the `Session`
/// front door. The redesign's contract is that the old entry points are
/// thin shims over the session, so this scenario must show (a) per-point
/// **bit-identity** between the two and (b) a wall-clock ratio within 5%
/// (measured interleaved, best-of-rounds, to cancel machine noise).
fn session_crossval3(small: bool) -> SessionStats {
    let grid = scenario_grid(small);
    let wls = workloads(small);
    let cm = CostModel::default();
    let points = grid.len(wls.len());

    let engine = SweepEngine::new(&cm);
    let analytical = Analytical::new();
    let event = EventSimBackend::new(64);
    let net = NetSimBackend::new(64);
    let backends: [&dyn EvalBackend; 3] = [&analytical, &event, &net];
    let cv = CrossValidation3::new(&analytical, &event, &net);
    let session = Session::over(&engine);
    session.run(&grid, &wls, &backends); // warm design + plan caches

    let legacy = legacy_crossval3(&engine, &grid, &wls, &cv);
    let new = session.run(&grid, &wls, &backends);
    assert_eq!(
        legacy.sweep.results, new.sweep.results,
        "DETERMINISM VIOLATION: session sweep results differ from the legacy API's"
    );
    let mut bit_identical_points = 0usize;
    for (lp, np) in legacy
        .divergence
        .pairs
        .iter()
        .zip(&new.divergence.pairs)
        .flat_map(|(l, n)| l.points.iter().zip(&n.points))
    {
        assert_eq!(
            (lp.baseline_secs.to_bits(), lp.reference_secs.to_bits()),
            (np.baseline_secs.to_bits(), np.reference_secs.to_bits()),
            "DETERMINISM VIOLATION at {:?}: legacy API and session priced differently",
            lp.point,
        );
        bit_identical_points += 1;
    }

    // Interleaved best-of-rounds timing: both sides execute the same
    // engine code (the legacy call IS a session shim), so the ratio
    // measures only shim overhead plus noise.
    let reps = if small { 3 } else { 5 };
    let rounds = 5;
    let mut legacy_best = f64::INFINITY;
    let mut session_best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(legacy_crossval3(&engine, &grid, &wls, &cv));
        }
        legacy_best = legacy_best.min(t0.elapsed().as_secs_f64() / reps as f64);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(session.run(&grid, &wls, &backends));
        }
        session_best = session_best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    let ratio = session_best / legacy_best;
    // The ±5% gate holds on the full grid, where per-run time is large
    // enough to measure; CI runs `--small` (millisecond-scale runs on a
    // noisy shared runner) and, per the workflow's contract, never fails
    // on wall-clock — there the ratio is recorded but not asserted.
    if small {
        if ratio > 1.05 {
            eprintln!("  note: small-grid ratio {ratio:.3} > 1.05 (not gated under --small)");
        }
    } else {
        assert!(
            ratio <= 1.05,
            "PERF REGRESSION: session front door is {ratio:.3}x the legacy path (budget 1.05x)"
        );
    }
    SessionStats {
        points,
        legacy_secs: legacy_best,
        session_secs: session_best,
        ratio,
        bit_identical_points,
    }
}

struct SolverStats {
    solves: usize,
    cold_newton_iters: usize,
    warm_newton_iters: usize,
    iters_saved_pct: f64,
    cold_secs: f64,
    warm_secs: f64,
    speedup: f64,
}

/// Budget-ladder solver study: cold interior-point solves at every budget
/// vs one cold anchor + warm-started (`solve_from`) solves seeded with the
/// anchor's optimum rescaled — Newton iterations and wall clock.
fn solver_warm_start_scenario(small: bool) -> SolverStats {
    let shape: NetworkShape = presets::topo_3d_512();
    let n = shape.ndims();
    let expr = libra_bench::time_expr_for(PaperModel::TuringNlg, &shape).unwrap();
    let targets = vec![(1.0, expr)];
    let budgets: Vec<f64> = if small {
        vec![100.0, 200.0, 300.0, 400.0]
    } else {
        (1..=10).map(|i| 100.0 * i as f64).collect()
    };
    // The `Constraint::TotalBw` rows, expressed directly on the compiled
    // problem (the harness measures the solver, not the request DSL).
    let build = |budget: f64, guess: &[f64], tight: bool| {
        let (mut p, _) = if tight {
            compile_seeded(&targets, n, guess, true)
        } else {
            compile(&targets, n, guess)
        };
        let terms: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        p.add_lin_eq(&terms, budget);
        for i in 0..n {
            p.set_lower(i, MIN_DIM_BW);
        }
        p
    };

    // Cold ladder.
    let t0 = Instant::now();
    let mut cold_iters = 0usize;
    let mut cold_solutions = Vec::new();
    for &b in &budgets {
        let equal = vec![b / n as f64; n];
        let sol = build(b, &equal, false).solve().expect("cold solve");
        cold_iters += sol.newton_iters;
        cold_solutions.push(sol);
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    // Warm ladder: anchor cold, then seed each budget from the anchor's
    // optimum rescaled (exactly what the sweep engine does).
    let t0 = Instant::now();
    let anchor = {
        let b = budgets[0];
        let equal = vec![b / n as f64; n];
        build(b, &equal, false).solve().expect("anchor solve")
    };
    let mut warm_iters = anchor.newton_iters;
    for &b in &budgets[1..] {
        let scale = b / budgets[0];
        let seed_bw: Vec<f64> = anchor.x[..n].iter().map(|x| x * scale).collect();
        let p = build(b, &seed_bw, true);
        let x0 = p.guess().expect("compile suggests a start").to_vec();
        let sol = p.solve_from(&x0).expect("warm solve");
        warm_iters += sol.newton_iters;
        // Same optimum as the cold ladder (within solver tolerance).
        let cold = &cold_solutions[budgets.iter().position(|&x| x == b).unwrap()];
        let rel = (sol.objective - cold.objective).abs() / cold.objective.max(1e-300);
        assert!(rel <= 1e-4, "DETERMINISM VIOLATION: warm ladder drifted {rel} at budget {b}");
    }
    let warm_secs = t0.elapsed().as_secs_f64();

    SolverStats {
        solves: budgets.len(),
        cold_newton_iters: cold_iters,
        warm_newton_iters: warm_iters,
        iters_saved_pct: 100.0 * (1.0 - warm_iters as f64 / cold_iters as f64),
        cold_secs,
        warm_secs,
        speedup: cold_secs / warm_secs,
    }
}

struct DispatchStats {
    points: usize,
    shards: usize,
    single_secs: f64,
    sharded_secs: f64,
    sharded_over_single_ratio: f64,
    merged_bytes: usize,
}

/// The shard dispatcher against a single-process run of the same
/// scenario: first a bit-identity check (the merged K-shard JSON-lines
/// stream must equal the single run's byte for byte), then interleaved
/// best-of-rounds wall clock for both. Each in-process shard pays for a
/// fresh session — cold design/plan caches plus the merge itself — so
/// the ratio is the dispatcher's sequential overhead, not a speedup; it
/// is recorded, never gated.
fn dispatch_scenario(small: bool) -> DispatchStats {
    use libra_core::opt::Objective;
    let shards = 4usize;
    let wls = workloads(small);
    let mut b = Scenario::builder("perf-dispatch")
        .with_budgets(if small {
            vec![100.0, 500.0]
        } else {
            vec![100.0, 300.0, 500.0, 700.0, 900.0]
        })
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
        .with_workloads(wls.iter().map(|w| w.name().to_string()))
        .with_backends(["analytical", "event-sim", "net-sim"])
        .with_chunks(64);
    b = if small {
        b.with_shapes([presets::topo_3d_512()])
    } else {
        b.with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
    };
    let scenario = b.build().expect("perf-dispatch scenario builds");
    let cm = CostModel::default();
    let registry = default_registry();
    let points = scenario.grid().len(wls.len());

    // Bit-identity: the headline dispatch contract, checked on every
    // harness run before any timing.
    let mut sink = JsonLinesSink::new(Vec::new());
    let report = scenario
        .session(&cm)
        .run_scenario_with_sinks(&scenario, &wls, &registry, &mut [&mut sink])
        .expect("single-process scenario run");
    let single_stream = String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8");
    let merged = Dispatcher::new(&scenario, shards)
        .expect("shard count is nonzero")
        .run_in_process(&cm, &wls, &registry)
        .expect("sharded scenario run");
    assert_eq!(
        merged.to_jsonl(),
        single_stream,
        "DETERMINISM VIOLATION: {shards}-shard merge differs from the single-process stream"
    );
    assert_eq!(
        merged.within_tolerance(),
        report.divergence.within_tolerance(),
        "DETERMINISM VIOLATION: merged verdict differs from the single run's"
    );

    // Interleaved best-of-rounds; one run per side per round (each side
    // is a full crossval sweep, the costliest unit in this harness).
    let rounds = if small { 3 } else { 5 };
    let mut single_best = f64::INFINITY;
    let mut sharded_best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        std::hint::black_box(
            scenario.session(&cm).run_scenario(&scenario, &wls, &registry).unwrap(),
        );
        single_best = single_best.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        std::hint::black_box(
            Dispatcher::new(&scenario, shards)
                .unwrap()
                .run_in_process(&cm, &wls, &registry)
                .unwrap(),
        );
        sharded_best = sharded_best.min(t0.elapsed().as_secs_f64());
    }
    DispatchStats {
        points,
        shards,
        single_secs: single_best,
        sharded_secs: sharded_best,
        sharded_over_single_ratio: sharded_best / single_best,
        merged_bytes: merged.to_jsonl().len(),
    }
}

struct StoreStats3 {
    points: usize,
    cold_secs: f64,
    warm_disk_secs: f64,
    speedup: f64,
}

/// Persistent-store study: a cold crossval3 run staging every design
/// into a fresh on-disk cache, then a second **process-fresh** session
/// re-running the same scenario warm-from-disk. Bit-identity of the two
/// JSON-lines streams is the gate on every run; the wall-clock floor
/// (warm ≥ 10× faster) is asserted only on the full grid — CI's
/// `--small` runs record it without failing on a noisy runner.
fn store_crossval3(small: bool) -> StoreStats3 {
    use libra_core::opt::Objective;
    let wls = workloads(small);
    let mut b = Scenario::builder("perf-store")
        .with_budgets(if small {
            vec![100.0, 500.0]
        } else {
            vec![100.0, 300.0, 500.0, 700.0, 900.0]
        })
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
        .with_workloads(wls.iter().map(|w| w.name().to_string()))
        .with_backends(["analytical", "event-sim", "net-sim"])
        .with_chunks(64);
    b = if small {
        b.with_shapes([presets::topo_3d_512()])
    } else {
        b.with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
    };
    let scenario = b.build().expect("perf-store scenario builds");
    let cm = CostModel::default();
    let registry = default_registry();
    let points = scenario.grid().len(wls.len());
    let path = std::env::temp_dir().join(format!("libra-perf-store-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let run_with_store = |label: &str| -> (f64, String) {
        let t0 = Instant::now();
        let mut sink = JsonLinesSink::new(Vec::new());
        scenario
            .session(&cm)
            .with_store(&path)
            .expect("store opens")
            .run_scenario_with_sinks(&scenario, &wls, &registry, &mut [&mut sink])
            .unwrap_or_else(|e| panic!("{label} run: {e}"));
        // The session (and its store handle) drops here, flushing — the
        // warm run below opens the file the way a new process would.
        let secs = t0.elapsed().as_secs_f64();
        (secs, String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8"))
    };
    let (cold_secs, cold_stream) = run_with_store("cold");
    let (warm_disk_secs, warm_stream) = run_with_store("warm-from-disk");
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        warm_stream, cold_stream,
        "DETERMINISM VIOLATION: warm-from-disk crossval3 differs from the cold stream"
    );
    let speedup = cold_secs / warm_disk_secs;
    if small {
        if speedup < 10.0 {
            eprintln!(
                "  note: small-grid store speedup {speedup:.2}x < 10x (not gated under --small)"
            );
        }
    } else {
        assert!(
            speedup >= 10.0,
            "PERF REGRESSION: warm-from-disk crossval3 is only {speedup:.2}x the cold run (floor 10x)"
        );
    }
    StoreStats3 { points, cold_secs, warm_disk_secs, speedup }
}

struct ChaosStats {
    points: usize,
    poisoned: usize,
    clean_secs: f64,
    chaos_secs: f64,
    chaos_over_clean_ratio: f64,
}

/// Chaos scenario: the fault seams threaded through the sweep engine must
/// be invisible when disarmed and deterministic when armed. Three
/// bit-level gates, checked on every harness run:
/// (a) a plan whose sites never fire (`sweep.point.error=0`) streams
///     byte-identically to a run with no injector at all — the armed-but-
///     silent seam perturbs nothing;
/// (b) two runs under the same armed plan stream byte-identically to each
///     other — injections are a pure function of (seed, site, index);
/// (c) every record the armed plan did *not* poison equals the clean
///     run's record for that grid point, line for line — failures are
///     isolated to their own points.
/// The armed-vs-clean wall-clock ratio (the price of chaos bookkeeping
/// plus poisoned points skipping their solves) is recorded, never gated.
///
/// The scenario solves cold (warm start off): a poisoned point publishes
/// no warm-start seed, so under warm start its downstream neighbors would
/// *legitimately* re-seed and drift by ulps — gate (c) isolates the
/// failure-containment property from that seed propagation.
fn chaos_scenario(small: bool) -> ChaosStats {
    use libra_core::fault::FaultInjector;
    use libra_core::opt::Objective;
    let wls = workloads(small);
    let mut b = Scenario::builder("perf-chaos")
        .with_warm_start(false)
        .with_budgets(if small {
            vec![100.0, 500.0]
        } else {
            vec![100.0, 300.0, 500.0, 700.0, 900.0]
        })
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
        .with_workloads(wls.iter().map(|w| w.name().to_string()))
        .with_backends(["analytical", "event-sim", "net-sim"])
        .with_chunks(64);
    b = if small {
        b.with_shapes([presets::topo_3d_512()])
    } else {
        b.with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
    };
    let scenario = b.build().expect("perf-chaos scenario builds");
    let cm = CostModel::default();
    let registry = default_registry();
    let points = scenario.grid().len(wls.len());

    let run = |spec: Option<&str>| -> (f64, String) {
        let mut session = scenario.session(&cm);
        if let Some(spec) = spec {
            let injector = FaultInjector::from_spec(spec).expect("spec parses");
            session = session.with_fault(injector).expect("owned session arms");
        }
        let t0 = Instant::now();
        let mut sink = JsonLinesSink::new(Vec::new());
        session
            .run_scenario_with_sinks(&scenario, &wls, &registry, &mut [&mut sink])
            .expect("chaos scenario run");
        let secs = t0.elapsed().as_secs_f64();
        (secs, String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8"))
    };

    let (clean_secs, clean_stream) = run(None);
    let (_, silent_stream) = run(Some("seed=11;sweep.point.error=0"));
    assert_eq!(
        silent_stream, clean_stream,
        "DETERMINISM VIOLATION: an armed-but-silent fault plan perturbed the stream"
    );

    const ARMED: &str = "seed=11;sweep.point.error=0.5";
    let (chaos_secs, chaos_stream) = run(Some(ARMED));
    let (_, chaos_again) = run(Some(ARMED));
    assert_eq!(
        chaos_again, chaos_stream,
        "DETERMINISM VIOLATION: the same fault plan injected different failures"
    );

    let clean_lines: Vec<&str> = clean_stream.lines().collect();
    let chaos_lines: Vec<&str> = chaos_stream.lines().collect();
    assert_eq!(
        clean_lines.len(),
        chaos_lines.len(),
        "poisoned points must still produce records, not vanish"
    );
    let mut poisoned = 0usize;
    for (i, (c, h)) in clean_lines.iter().zip(&chaos_lines).enumerate() {
        if h.contains("injected fault: sweep.point.error") {
            poisoned += 1;
            continue;
        }
        if i + 1 == chaos_lines.len() {
            continue; // the summary line aggregates the error count
        }
        assert_eq!(
            c, h,
            "DETERMINISM VIOLATION: healthy line {i} drifted under an armed fault plan"
        );
    }
    assert!(poisoned > 0, "the armed plan must poison at least one of {points} points");
    assert!(poisoned < points, "the armed plan must leave healthy points to compare");

    ChaosStats {
        points,
        poisoned,
        clean_secs,
        chaos_secs,
        chaos_over_clean_ratio: chaos_secs / clean_secs,
    }
}

struct SearchStats {
    points: usize,
    evals: usize,
    coverage_pct: f64,
    rounds: usize,
    front_size: usize,
    exhaustive_secs: f64,
    search_secs: f64,
    search_over_exhaustive_ratio: f64,
}

/// Adaptive-search study: the Pareto-guided driver against an exhaustive
/// sweep of the same dense-budget design space. The gate, checked on
/// every harness run, is the subsystem's headline contract — the
/// adaptive front equals the exhaustive `pareto_front()` **exactly**
/// (same designs, same order, bit for bit). The evals/grid ratio and the
/// wall-clock ratio are recorded, never gated: how much of the space the
/// driver can skip depends on how much of it is Pareto-dominated.
fn adaptive_search_scenario(small: bool) -> SearchStats {
    use libra_core::opt::Objective;
    use libra_core::search::{self, SearchConfig};
    let wls = workloads(small);
    let n_budgets = if small { 40 } else { 100 };
    let step = 900.0 / (n_budgets - 1) as f64;
    let mut grid = SweepGrid::new()
        .with_budgets((0..n_budgets).map(|i| 100.0 + step * i as f64))
        .with_objectives([Objective::Perf, Objective::PerfPerCost]);
    grid = if small {
        grid.with_shapes([presets::topo_3d_512()])
    } else {
        grid.with_shapes([presets::topo_3d_512(), presets::topo_3d_1k()])
    };
    let cm = CostModel::default();
    let points = grid.len(wls.len());

    let t0 = Instant::now();
    let exhaustive_engine = SweepEngine::new(&cm);
    let exhaustive = Session::over(&exhaustive_engine).run(&grid, &wls, &[]).sweep;
    let exhaustive_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let search_engine = SweepEngine::new(&cm);
    let session = Session::over(&search_engine);
    let config = SearchConfig::default();
    let report =
        search::run_grid(&session, &grid, &wls, &config, &mut []).expect("adaptive search runs");
    let search_secs = t0.elapsed().as_secs_f64();

    let expected: Vec<_> = exhaustive.pareto_front().into_iter().cloned().collect();
    let got: Vec<_> = report.front().into_iter().cloned().collect();
    assert_eq!(
        got, expected,
        "DETERMINISM VIOLATION: adaptive front differs from the exhaustive Pareto front"
    );
    assert!(report.evals <= points, "search must never out-evaluate the grid");

    SearchStats {
        points,
        evals: report.evals,
        coverage_pct: 100.0 * report.coverage(),
        rounds: report.rounds.len(),
        front_size: got.len(),
        exhaustive_secs,
        search_secs,
        search_over_exhaustive_ratio: search_secs / exhaustive_secs,
    }
}

// ---------------------------------------------------------------------------
// JSON emission (hand-rolled; the container has no serde).
// ---------------------------------------------------------------------------

fn json(out: &mut String, indent: usize, key: &str, value: &str, last: bool) {
    out.push_str(&" ".repeat(indent));
    out.push_str(&format!("\"{key}\": {value}"));
    if !last {
        out.push(',');
    }
    out.push('\n');
}

fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    eprintln!("perf_harness: engine eval scenario...");
    let engine = engine_eval_scenario(small);
    eprintln!(
        "  legacy {:.0} ns/eval ({:.0} allocs) vs fast {:.0} ns/eval ({:.0} allocs) — {:.2}x",
        engine.legacy_ns_per_eval,
        engine.legacy_allocs_per_eval,
        engine.fast_ns_per_eval,
        engine.fast_allocs_per_eval,
        engine.speedup
    );

    eprintln!("perf_harness: cold sweep_crossval3 scenario...");
    let cold = sweep_crossval3_cold(small);
    eprintln!(
        "  {} points: legacy {:.3} s vs optimized {:.3} s — {:.2}x ({} warm-seeded solves)",
        cold.points, cold.legacy_secs, cold.optimized_secs, cold.speedup, cold.warm_seeded_solves
    );

    eprintln!("perf_harness: warm sweep_crossval3 scenario...");
    let (warm, bit_checked) = sweep_crossval3_warm(small);
    eprintln!(
        "  {} points: legacy {:.3} s vs optimized {:.3} s — {:.2}x ({} point-pairs bit-identical)",
        warm.points, warm.legacy_secs, warm.optimized_secs, warm.speedup, bit_checked
    );

    eprintln!("perf_harness: session_crossval3 scenario...");
    let sess = session_crossval3(small);
    eprintln!(
        "  {} points: legacy API {:.3} s vs Session {:.3} s — ratio {:.3} ({} point-pairs bit-identical)",
        sess.points, sess.legacy_secs, sess.session_secs, sess.ratio, sess.bit_identical_points
    );

    eprintln!("perf_harness: solver warm-start scenario...");
    let solver = solver_warm_start_scenario(small);
    eprintln!(
        "  {} budgets: {} cold vs {} warm Newton iters ({:.1}% saved), {:.2}x wall clock",
        solver.solves,
        solver.cold_newton_iters,
        solver.warm_newton_iters,
        solver.iters_saved_pct,
        solver.speedup
    );

    eprintln!("perf_harness: dispatch scenario...");
    let dispatch = dispatch_scenario(small);
    eprintln!(
        "  {} points, {} shards: single {:.3} s vs sharded {:.3} s — ratio {:.3} (merge bit-identical)",
        dispatch.points,
        dispatch.shards,
        dispatch.single_secs,
        dispatch.sharded_secs,
        dispatch.sharded_over_single_ratio
    );

    eprintln!("perf_harness: store_crossval3 scenario...");
    let store = store_crossval3(small);
    eprintln!(
        "  {} points: cold {:.3} s vs warm-from-disk {:.3} s — {:.2}x (streams bit-identical)",
        store.points, store.cold_secs, store.warm_disk_secs, store.speedup
    );

    eprintln!("perf_harness: chaos scenario...");
    let chaos = chaos_scenario(small);
    eprintln!(
        "  {} points, {} poisoned: clean {:.3} s vs chaos {:.3} s — ratio {:.3} (healthy lines bit-identical)",
        chaos.points, chaos.poisoned, chaos.clean_secs, chaos.chaos_secs, chaos.chaos_over_clean_ratio
    );

    eprintln!("perf_harness: adaptive search scenario...");
    let search = adaptive_search_scenario(small);
    eprintln!(
        "  {} points: exhaustive {:.3} s vs search {:.3} s ({} evals, {:.1}% of the grid, {} rounds; front bit-identical)",
        search.points,
        search.exhaustive_secs,
        search.search_secs,
        search.evals,
        search.coverage_pct,
        search.rounds
    );

    let mut o = String::from("{\n");
    json(&mut o, 2, "schema", "\"libra-bench-sweep-v1\"", false);
    json(&mut o, 2, "grid", &format!("\"{}\"", if small { "small" } else { "full" }), false);
    o.push_str("  \"scenarios\": {\n");
    o.push_str("    \"engine_eval\": {\n");
    json(&mut o, 6, "reps", &engine.reps.to_string(), false);
    json(&mut o, 6, "legacy_ns_per_eval", &f(engine.legacy_ns_per_eval), false);
    json(&mut o, 6, "fast_ns_per_eval", &f(engine.fast_ns_per_eval), false);
    json(&mut o, 6, "speedup", &f(engine.speedup), false);
    json(&mut o, 6, "legacy_allocs_per_eval", &f(engine.legacy_allocs_per_eval), false);
    json(&mut o, 6, "fast_allocs_per_eval", &f(engine.fast_allocs_per_eval), false);
    json(&mut o, 6, "chunk_stages_per_eval", &engine.chunk_stages_per_eval.to_string(), false);
    json(&mut o, 6, "fast_chunk_stages_per_sec", &f(engine.fast_chunk_stages_per_sec), true);
    o.push_str("    },\n");
    for (name, s) in [("sweep_crossval3_cold", &cold), ("sweep_crossval3_warm", &warm)] {
        o.push_str(&format!("    \"{name}\": {{\n"));
        json(&mut o, 6, "points", &s.points.to_string(), false);
        json(&mut o, 6, "legacy_secs", &f(s.legacy_secs), false);
        json(&mut o, 6, "optimized_secs", &f(s.optimized_secs), false);
        json(&mut o, 6, "speedup", &f(s.speedup), false);
        json(&mut o, 6, "optimized_points_per_sec", &f(s.optimized_points_per_sec), false);
        json(&mut o, 6, "warm_seeded_solves", &s.warm_seeded_solves.to_string(), true);
        o.push_str("    },\n");
    }
    o.push_str("    \"session_crossval3\": {\n");
    json(&mut o, 6, "points", &sess.points.to_string(), false);
    json(&mut o, 6, "legacy_api_secs", &f(sess.legacy_secs), false);
    json(&mut o, 6, "session_secs", &f(sess.session_secs), false);
    json(&mut o, 6, "session_over_legacy_ratio", &f(sess.ratio), false);
    json(&mut o, 6, "bit_identical_point_pairs", &sess.bit_identical_points.to_string(), true);
    o.push_str("    },\n");
    o.push_str("    \"solver_warm_start\": {\n");
    json(&mut o, 6, "solves", &solver.solves.to_string(), false);
    json(&mut o, 6, "cold_newton_iters", &solver.cold_newton_iters.to_string(), false);
    json(&mut o, 6, "warm_newton_iters", &solver.warm_newton_iters.to_string(), false);
    json(&mut o, 6, "iters_saved_pct", &f(solver.iters_saved_pct), false);
    json(&mut o, 6, "cold_secs", &f(solver.cold_secs), false);
    json(&mut o, 6, "warm_secs", &f(solver.warm_secs), false);
    json(&mut o, 6, "speedup", &f(solver.speedup), true);
    o.push_str("    },\n");
    o.push_str("    \"dispatch\": {\n");
    json(&mut o, 6, "points", &dispatch.points.to_string(), false);
    json(&mut o, 6, "shards", &dispatch.shards.to_string(), false);
    json(&mut o, 6, "single_secs", &f(dispatch.single_secs), false);
    json(&mut o, 6, "sharded_secs", &f(dispatch.sharded_secs), false);
    json(&mut o, 6, "sharded_over_single_ratio", &f(dispatch.sharded_over_single_ratio), false);
    json(&mut o, 6, "merged_bytes", &dispatch.merged_bytes.to_string(), false);
    json(&mut o, 6, "merge_bit_identical", "true", true);
    o.push_str("    },\n");
    o.push_str("    \"store_crossval3\": {\n");
    json(&mut o, 6, "points", &store.points.to_string(), false);
    json(&mut o, 6, "cold_secs", &f(store.cold_secs), false);
    json(&mut o, 6, "warm_disk_secs", &f(store.warm_disk_secs), false);
    json(&mut o, 6, "speedup", &f(store.speedup), false);
    json(&mut o, 6, "bit_identical", "true", true);
    o.push_str("    },\n");
    o.push_str("    \"chaos\": {\n");
    json(&mut o, 6, "points", &chaos.points.to_string(), false);
    json(&mut o, 6, "poisoned_points", &chaos.poisoned.to_string(), false);
    json(&mut o, 6, "clean_secs", &f(chaos.clean_secs), false);
    json(&mut o, 6, "chaos_secs", &f(chaos.chaos_secs), false);
    json(&mut o, 6, "chaos_over_clean_ratio", &f(chaos.chaos_over_clean_ratio), false);
    json(&mut o, 6, "healthy_lines_bit_identical", "true", true);
    o.push_str("    },\n");
    o.push_str("    \"adaptive_search\": {\n");
    json(&mut o, 6, "points", &search.points.to_string(), false);
    json(&mut o, 6, "evals", &search.evals.to_string(), false);
    json(&mut o, 6, "coverage_pct", &f(search.coverage_pct), false);
    json(&mut o, 6, "rounds", &search.rounds.to_string(), false);
    json(&mut o, 6, "front_size", &search.front_size.to_string(), false);
    json(&mut o, 6, "exhaustive_secs", &f(search.exhaustive_secs), false);
    json(&mut o, 6, "search_secs", &f(search.search_secs), false);
    json(&mut o, 6, "search_over_exhaustive_ratio", &f(search.search_over_exhaustive_ratio), false);
    json(&mut o, 6, "front_bit_identical", "true", true);
    o.push_str("    }\n");
    o.push_str("  },\n");
    o.push_str("  \"determinism\": {\n");
    json(&mut o, 4, "engine_bit_identical_point_pairs", &bit_checked.to_string(), false);
    json(&mut o, 4, "chaos_poisoned_points", &chaos.poisoned.to_string(), false);
    json(
        &mut o,
        4,
        "session_vs_legacy_bit_identical_point_pairs",
        &sess.bit_identical_points.to_string(),
        false,
    );
    json(&mut o, 4, "violations", "0", true);
    o.push_str("  }\n}\n");

    std::fs::write(&out_path, &o).expect("write BENCH_sweep.json");
    eprintln!("perf_harness: wrote {out_path}");
    print!("{o}");
}
