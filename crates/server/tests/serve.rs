//! End-to-end tests over real sockets: an in-process [`Server`] on an
//! ephemeral loopback port, driven through [`ServiceClient`] — the same
//! client `libra submit` uses.
//!
//! The workload resolver is a stub (one planned All-Reduce per name), so
//! these tests pin the *service* semantics — routing, validation, queue
//! bounds, byte-identity of `/records` with a direct in-process run,
//! shared-store hits, graceful shutdown — without dragging the Table II
//! workload zoo in. The CLI-level tests in `libra-bench` repeat the
//! byte-identity contract against the committed golden files.

use std::sync::Arc;
use std::time::Duration;

use libra_core::comm::{Collective, CommModel, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::error::LibraError;
use libra_core::eval::CommPlan;
use libra_core::network::NetworkShape;
use libra_core::opt::Objective;
use libra_core::scenario::{
    records_from_jsonl, BackendRegistry, JsonLinesSink, ReportSink, Scenario,
};
use libra_core::store::SolveStore;
use libra_core::sweep::FnWorkload;
use libra_core::workload::CommOp;
use libra_server::{PolledStatus, Server, ServerConfig, ServiceClient, WorkloadResolver};

const POLL: Duration = Duration::from_millis(10);

/// One planned All-Reduce whose size is derived from the workload name,
/// so different names price differently.
fn planned(name: &str) -> FnWorkload {
    let gb = 1.0 + name.len() as f64 * 0.25;
    FnWorkload::new(name, move |shape: &NetworkShape| {
        let comm = CommModel::default();
        Ok(vec![(1.0, comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)))])
    })
    .with_plan(move |shape: &NetworkShape| {
        Ok(CommPlan::serial([CommOp::new(Collective::AllReduce, gb * 1e9, GroupSpan::full(shape))]))
    })
}

/// The stub resolver: any name resolves except `"no-such-workload"`,
/// which exercises the resolver-rejection path at `POST /v1/sweeps`.
fn resolver() -> Box<WorkloadResolver> {
    Box::new(|scenario: &Scenario| {
        scenario
            .workloads
            .iter()
            .map(|name| {
                if name == "no-such-workload" {
                    return Err(LibraError::BadRequest(format!("unknown workload {name:?}")));
                }
                Ok(planned(name))
            })
            .collect()
    })
}

fn start(config: ServerConfig) -> (Server, ServiceClient) {
    let server = Server::start(config, BackendRegistry::new(), resolver()).expect("server start");
    let client = ServiceClient::new(&format!("http://{}", server.addr())).expect("client");
    (server, client)
}

/// A two-backend scenario; the tolerance accommodates the offload
/// variant's cheaper All-Reduce (a deterministic ~1/3 relative gap), so
/// jobs finish within tolerance and exit 0.
fn scenario() -> Scenario {
    Scenario::builder("serve-test")
        .with_shapes(["RI(4)_RI(8)".parse().unwrap(), "FC(4)_RI(4)".parse().unwrap()])
        .with_budgets([100.0, 400.0])
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
        .with_workload("stub-a")
        .with_backends(["analytical", "analytical-offload"])
        .with_tolerance(0.5)
        .build()
        .unwrap()
}

/// The reference bytes: the same scenario run in-process through the
/// same sink the CLI's `--jsonl -` uses.
fn direct_run_bytes(scenario: &Scenario) -> Vec<u8> {
    let workloads = resolver()(scenario).unwrap();
    let registry = BackendRegistry::new();
    let cost_model = CostModel::default();
    let session = scenario.session(&cost_model);
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut jsonl = JsonLinesSink::new(&mut buf);
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut jsonl];
        session.run_scenario_with_sinks(scenario, &workloads, &registry, &mut sinks).unwrap();
    }
    buf
}

fn tmp(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("libra-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn healthz_backends_stats_and_routing() {
    let (server, client) = start(ServerConfig::default());

    let health = client.get("/v1/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"{\"status\": \"ok\"}\n");

    // /v1/backends serves the registry's canonical JSON, byte-for-byte.
    let backends = client.get("/v1/backends").unwrap();
    assert_eq!(backends.status, 200);
    assert_eq!(backends.body, BackendRegistry::new().to_json().into_bytes());
    let text = String::from_utf8(backends.body).unwrap();
    assert!(text.contains("\"name\": \"analytical\""), "{text}");
    assert!(text.contains("\"description\": "), "{text}");

    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let text = String::from_utf8(stats.body).unwrap();
    assert!(text.contains("\"submitted\": 0"), "{text}");
    assert!(text.contains("\"store_hits\": null"), "no cache configured: {text}");

    assert_eq!(client.get("/v1/nope").unwrap().status, 404);
    assert_eq!(client.post("/v1/healthz", b"").unwrap().status, 405);
    assert_eq!(client.get("/v1/sweeps/job-1").unwrap().status, 404);

    server.shutdown();
    server.join().unwrap();
}

#[test]
fn records_are_byte_identical_to_a_direct_run() {
    let (server, client) = start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let scenario = scenario();
    let body = scenario.to_json();

    let (job, position) = client.submit(body.as_bytes()).unwrap();
    assert_eq!(position, 1);
    let summary = client.wait(&job, POLL, None).unwrap();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.results, 8, "2 shapes x 2 budgets x 2 objectives");
    assert!(summary.within_tolerance);
    assert_eq!(summary.exit_code(), 0);

    let served = client.records(&job).unwrap();
    assert_eq!(served, direct_run_bytes(&scenario), "served bytes must match --jsonl -");
    // The chunked stream reassembles into a stream the repo's own
    // re-parser accepts (the resume/dispatch seam).
    let rows = records_from_jsonl(std::str::from_utf8(&served).unwrap()).unwrap();
    assert_eq!(rows.len(), 8);
    // Fetching twice is idempotent.
    assert_eq!(client.records(&job).unwrap(), served);

    // A second submission of the same scenario is a distinct job with
    // identical bytes.
    let (job2, _) = client.submit(body.as_bytes()).unwrap();
    client.wait(&job2, POLL, None).unwrap();
    assert_eq!(client.records(&job2).unwrap(), served);

    server.shutdown();
    server.join().unwrap();
}

#[test]
fn submissions_are_validated_before_queueing() {
    let (server, client) = start(ServerConfig::default());
    let reject = |body: &str, needle: &str| {
        let response = client.post("/v1/sweeps", body.as_bytes()).unwrap();
        assert_eq!(response.status, 400, "{needle}");
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains(needle), "want {needle:?} in {text}");
    };

    reject("not json at all", "invalid JSON");

    // Pathological cross product: rejected by the scenario validator at
    // POST time, long before a worker could OOM on it.
    let mut huge = Scenario::builder("huge")
        .with_objectives([Objective::Perf, Objective::PerfPerCost])
        .with_workload("stub")
        .with_backends(["analytical", "analytical-offload"]);
    for i in 0..2048 {
        huge = huge.with_shape(format!("RI({})_RI(4)", 2 + (i % 62)).parse().unwrap());
    }
    let budgets: Vec<f64> = (0..2048).map(|i| 100.0 + i as f64).collect();
    let huge_json = {
        // Bypass the builder (which would reject it locally) by editing a
        // valid file's budget list into the pathological one.
        let small = huge.with_budgets([100.0]).build().unwrap();
        let long_list: Vec<String> = budgets.iter().map(|b| format!("{b}")).collect();
        small.to_json().replacen("[100]", &format!("[{}]", long_list.join(", ")), 1)
    };
    reject(&huge_json, "point cap");

    let unknown_backend = scenario().to_json().replace("analytical-offload", "astra-sim");
    reject(&unknown_backend, "unknown backend");

    let unknown_workload = scenario().to_json().replace("stub-a", "no-such-workload");
    reject(&unknown_workload, "unknown workload");

    let one_backend = {
        let mut s = scenario();
        s.backends.truncate(1);
        s.to_json()
    };
    reject(&one_backend, "at least two backends");

    server.shutdown();
    server.join().unwrap();
}

#[test]
fn queue_is_bounded_and_states_are_observable() {
    // workers: 0 is the test seam: jobs queue forever, so queued-state
    // answers are deterministic.
    let (server, client) =
        start(ServerConfig { workers: 0, queue_capacity: 2, ..ServerConfig::default() });
    let body = scenario().to_json();

    let (a, pa) = client.submit(body.as_bytes()).unwrap();
    let (_b, pb) = client.submit(body.as_bytes()).unwrap();
    assert_eq!((pa, pb), (1, 2));

    let status = client.get(&format!("/v1/sweeps/{a}")).unwrap();
    let text = String::from_utf8(status.body).unwrap();
    assert!(text.contains("\"state\": \"queued\""), "{text}");
    assert!(text.contains("\"position\": 1"), "{text}");

    // Records of a queued job: 409, naming the state.
    let records = client.get(&format!("/v1/sweeps/{a}/records")).unwrap();
    assert_eq!(records.status, 409);
    assert!(String::from_utf8(records.body).unwrap().contains("queued"));

    // The bounded queue turns the third submission away.
    let full = client.post("/v1/sweeps", body.as_bytes()).unwrap();
    assert_eq!(full.status, 503);
    assert!(String::from_utf8(full.body).unwrap().contains("queue is full"));

    let stats = String::from_utf8(client.get("/v1/stats").unwrap().body).unwrap();
    assert!(stats.contains("\"submitted\": 2"), "{stats}");
    assert!(stats.contains("\"queued\": 2"), "{stats}");

    server.shutdown();
    server.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_store() {
    let cache = tmp("shared.jsonl");
    // One worker serializes the runs while two *clients* race: whoever
    // lands second preloads every solve the first staged — the
    // cross-client warm path the service exists for.
    let (server, client) =
        start(ServerConfig { workers: 1, cache: Some(cache.clone()), ..ServerConfig::default() });
    let body = Arc::new(scenario().to_json());
    let authority = format!("http://{}", server.addr());

    let threads: Vec<_> = (0..2)
        .map(|_| {
            let body = Arc::clone(&body);
            let authority = authority.clone();
            std::thread::spawn(move || {
                let client = ServiceClient::new(&authority).unwrap();
                let (job, _) = client.submit(body.as_bytes()).unwrap();
                let summary = client.wait(&job, POLL, None).unwrap();
                assert_eq!(summary.exit_code(), 0);
                client.records(&job).unwrap()
            })
        })
        .collect();
    let outputs: Vec<Vec<u8>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(outputs[0], outputs[1], "both clients see identical bytes");
    assert_eq!(outputs[0], direct_run_bytes(&scenario()), "and both match a storeless run");

    let stats = String::from_utf8(client.get("/v1/stats").unwrap().body).unwrap();
    assert!(stats.contains("\"done\": 2"), "{stats}");
    let hits: usize = stats
        .split("\"store_hits\": ")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|t| t.trim().parse().ok())
        .expect("store_hits in stats");
    assert!(hits >= 8, "second job must hit every stored solve, got {hits}: {stats}");

    server.shutdown();
    server.join().unwrap();
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn shutdown_flushes_the_store_for_warm_restarts() {
    let cache = tmp("flush.jsonl");
    let scenario = scenario();
    {
        let (server, client) = start(ServerConfig {
            workers: 1,
            cache: Some(cache.clone()),
            ..ServerConfig::default()
        });
        let (job, _) = client.submit(scenario.to_json().as_bytes()).unwrap();
        client.wait(&job, POLL, None).unwrap();
        // The shutdown endpoint requests the same drain a SIGTERM does.
        let response = client.post("/v1/shutdown", b"").unwrap();
        assert_eq!(response.status, 200);
        server.join().unwrap();
    }
    // The flushed cache file warms a *new process*: every solve loads,
    // and the warm-from-disk stream stays byte-identical.
    let store = SolveStore::open(&cache).unwrap();
    assert!(store.len() >= 8, "flushed store holds the run, got {}", store.len());
    drop(store);

    let workloads = resolver()(&scenario).unwrap();
    let registry = BackendRegistry::new();
    let cost_model = CostModel::default();
    let session = scenario.session(&cost_model).with_store(&cache).unwrap();
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut jsonl = JsonLinesSink::new(&mut buf);
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut jsonl];
        session.run_scenario_with_sinks(&scenario, &workloads, &registry, &mut sinks).unwrap();
    }
    assert_eq!(buf, direct_run_bytes(&scenario), "warm-from-disk run stays byte-identical");
    assert!(
        session.engine().store_stats().unwrap().hits >= 8,
        "the warm run must come from the store"
    );
    let _ = std::fs::remove_file(&cache);
}

/// A panicking worker (here an injected `server.worker.panic` on job
/// ordinal 0) fails only its own job: the worker thread survives, the
/// next job completes with byte-identical records, and `/v1/stats`
/// reports the one failure.
#[test]
fn worker_panic_fails_only_its_own_job() {
    let (server, client) = start(ServerConfig {
        workers: 1,
        fault_spec: Some("server.worker.panic=#1".to_string()),
        ..ServerConfig::default()
    });
    let body = scenario().to_json();

    let (doomed, _) = client.submit(body.as_bytes()).unwrap();
    let err = client.wait(&doomed, POLL, None).unwrap_err();
    assert!(err.to_string().contains("sweep worker panicked"), "got {err}");

    // The same worker thread picks up job ordinal 1 and finishes it.
    let (job, _) = client.submit(body.as_bytes()).unwrap();
    let summary = client.wait(&job, POLL, None).unwrap();
    assert_eq!(summary.exit_code(), 0);
    assert_eq!(client.records(&job).unwrap(), direct_run_bytes(&scenario()));

    let stats = String::from_utf8(client.get("/v1/stats").unwrap().body).unwrap();
    assert!(stats.contains("\"failed\": 1"), "{stats}");
    assert!(stats.contains("\"done\": 1"), "{stats}");

    server.shutdown();
    server.join().unwrap();
}

/// A hung solve (injected `sweep.point.slow` far past `job_timeout`) is
/// failed by the watchdog within the configured deadline, with a
/// diagnostic naming the deadline, while the server stays responsive.
#[test]
fn watchdog_fails_hung_jobs_within_the_deadline() {
    let (server, client) = start(ServerConfig {
        workers: 1,
        job_timeout: Some(Duration::from_millis(150)),
        fault_spec: Some("sweep.point.slow=#1,ms=800".to_string()),
        ..ServerConfig::default()
    });

    let (job, _) = client.submit(scenario().to_json().as_bytes()).unwrap();
    let started = std::time::Instant::now();
    let err = client.wait(&job, POLL, None).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("deadline"), "watchdog diagnostic names the deadline, got {text}");
    assert!(text.contains("150 ms"), "got {text}");
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "the watchdog must beat the hung solve, took {:?}",
        started.elapsed()
    );
    // Terminal means terminal: the late-finishing worker cannot
    // resurrect the job into `done`.
    std::thread::sleep(Duration::from_millis(900));
    assert!(matches!(client.status(&job).unwrap(), PolledStatus::Failed { .. }));

    let stats = String::from_utf8(client.get("/v1/stats").unwrap().body).unwrap();
    assert!(stats.contains("\"failed\": 1"), "{stats}");

    server.shutdown();
    server.join().unwrap();
}

/// `POST /v1/sweeps/{id}/cancel`: queued jobs fail without ever
/// running, running jobs transition to a terminal `failed`, finished
/// jobs answer 409, unknown ids 404 — and a cancel never wedges the
/// worker that was running the job.
#[test]
fn cancel_is_terminal_for_queued_and_running_jobs() {
    // Queued cancel: no workers, so the job can never start.
    let (server, client) = start(ServerConfig { workers: 0, ..ServerConfig::default() });
    let body = scenario().to_json();
    let (queued, _) = client.submit(body.as_bytes()).unwrap();
    let response = client.post(&format!("/v1/sweeps/{queued}/cancel"), b"").unwrap();
    assert_eq!(response.status, 200);
    match client.status(&queued).unwrap() {
        PolledStatus::Failed { error } => assert_eq!(error, "cancelled before start"),
        other => panic!("unexpected state {other:?}"),
    }
    // Cancelling twice: already finished. Unknown ids: 404.
    assert_eq!(client.post(&format!("/v1/sweeps/{queued}/cancel"), b"").unwrap().status, 409);
    assert_eq!(client.post("/v1/sweeps/job-999/cancel", b"").unwrap().status, 404);
    server.shutdown();
    server.join().unwrap();

    // Running cancel: every point sleeps, so the job is observably
    // running for long enough to cancel it mid-sweep.
    let (server, client) = start(ServerConfig {
        workers: 1,
        fault_spec: Some("sweep.point.slow=1,ms=300".to_string()),
        ..ServerConfig::default()
    });
    let (running, _) = client.submit(body.as_bytes()).unwrap();
    while !matches!(client.status(&running).unwrap(), PolledStatus::Running { .. }) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = client.post(&format!("/v1/sweeps/{running}/cancel"), b"").unwrap();
    assert_eq!(response.status, 200);
    match client.status(&running).unwrap() {
        PolledStatus::Failed { error } => assert_eq!(error, "cancelled"),
        other => panic!("unexpected state {other:?}"),
    }
    // The worker abandoned the cancelled sweep and is healthy: a fresh
    // job on the same server still completes.
    let (job, _) = client.submit(body.as_bytes()).unwrap();
    assert_eq!(client.wait(&job, POLL, None).unwrap().exit_code(), 0);
    server.shutdown();
    server.join().unwrap();
}

/// `ServiceClient::wait` with a deadline returns the typed
/// [`LibraError::Timeout`] instead of blocking forever on a job that
/// will never finish (no workers), and the job keeps its server-side
/// state.
#[test]
fn wait_deadline_is_a_typed_timeout() {
    let (server, client) = start(ServerConfig { workers: 0, ..ServerConfig::default() });
    let (job, _) = client.submit(scenario().to_json().as_bytes()).unwrap();
    let err = client.wait_timeout(&job, POLL, Duration::from_millis(80)).unwrap_err();
    match &err {
        LibraError::Timeout { what, after_ms } => {
            assert!(what.contains(&job), "{what}");
            assert_eq!(*after_ms, 80);
        }
        other => panic!("want Timeout, got {other:?}"),
    }
    // Still queued server-side: a wait timeout is a client-side verdict.
    assert!(matches!(client.status(&job).unwrap(), PolledStatus::Queued { .. }));
    server.shutdown();
    server.join().unwrap();
}

/// Connection-refused requests retry within the configured budget — a
/// client started moments before its server still lands the submit —
/// while a budget-less client fails fast and an exhausted budget is a
/// typed timeout.
#[test]
fn connect_retry_rides_out_a_slow_server_start() {
    // Reserve a loopback port, then release it for the delayed server.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let authority = format!("http://{addr}");

    // No retry budget: the refused connection surfaces immediately.
    let eager = ServiceClient::new(&authority).unwrap();
    let err = eager.get("/v1/healthz").unwrap_err();
    assert!(err.to_string().contains("cannot connect to"), "got {err}");

    // An exhausted budget is a typed Timeout carrying the last refusal.
    let bounded =
        ServiceClient::new(&authority).unwrap().with_connect_retry(Duration::from_millis(60));
    match bounded.get("/v1/healthz").unwrap_err() {
        LibraError::Timeout { what, after_ms } => {
            assert!(what.contains("cannot connect to"), "{what}");
            assert_eq!(after_ms, 60);
        }
        other => panic!("want Timeout, got {other:?}"),
    }

    // The server comes up mid-budget: the retrying client's submit lands.
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        let server = Server::start(
            ServerConfig { addr: addr.to_string(), workers: 1, ..ServerConfig::default() },
            BackendRegistry::new(),
            resolver(),
        )
        .expect("delayed server start");
        server
    });
    let patient =
        ServiceClient::new(&authority).unwrap().with_connect_retry(Duration::from_secs(10));
    let (job, _) = patient.submit(scenario().to_json().as_bytes()).unwrap();
    let summary = patient.wait(&job, POLL, None).unwrap();
    assert_eq!(summary.exit_code(), 0);
    let server = handle.join().unwrap();
    server.shutdown();
    server.join().unwrap();
}

/// An injected `server.response.drop` severs the records stream
/// mid-response; the client must surface the truncation as an error,
/// never silently accept a partial record set — and a later job's
/// stream (past the armed ordinal) is whole and byte-identical.
#[test]
fn dropped_response_is_detected_not_truncated_silently() {
    let (server, client) = start(ServerConfig {
        workers: 1,
        fault_spec: Some("server.response.drop=#1".to_string()),
        ..ServerConfig::default()
    });
    let body = scenario().to_json();

    let (dropped, _) = client.submit(body.as_bytes()).unwrap();
    client.wait(&dropped, POLL, None).unwrap();
    let err = client.records(&dropped).unwrap_err();
    assert!(err.to_string().contains("truncated"), "got {err}");

    let (whole, _) = client.submit(body.as_bytes()).unwrap();
    client.wait(&whole, POLL, None).unwrap();
    assert_eq!(client.records(&whole).unwrap(), direct_run_bytes(&scenario()));

    server.shutdown();
    server.join().unwrap();
}

/// A `"search"` block flips a submission into adaptive-search mode: the
/// grid may exceed the exhaustive point cap, the crossval two-backend
/// floor does not apply, and the served records are byte-identical to
/// the local search driver's stream.
#[test]
fn search_jobs_run_the_adaptive_driver_over_the_point_cap() {
    let (server, client) = start(ServerConfig { workers: 1, ..ServerConfig::default() });

    // 1 shape x 1 workload x 2.2M budgets x 2 objectives = 4.4M nominal
    // points — over the 4,194,304 cap — with zero backends. The ladder
    // form keeps the POST body tiny; the parser expands it server-side.
    let body = r#"{
        "schema": "libra-scenario-v1",
        "name": "serve-search",
        "shapes": ["RI(4)_RI(8)"],
        "budgets": {"from": 100, "to": 800, "count": 2200000, "scale": "linear"},
        "objectives": ["perf", "perf-per-cost"],
        "workloads": ["stub-a"],
        "backends": [],
        "search": {"seed_budgets": 6, "max_evals": 24}
    }"#;

    let (job, _) = client.submit(body.as_bytes()).unwrap();
    let summary = client.wait(&job, POLL, None).unwrap();
    assert_eq!(summary.errors, 0);
    assert!(summary.results > 0 && summary.results <= 24, "max_evals bounds: {}", summary.results);
    assert!(summary.within_tolerance, "search jobs have no divergence verdict to fail");
    assert_eq!(summary.exit_code(), 0);

    // Byte-identity with the local driver, same stub resolver.
    let scenario = Scenario::from_json(body).unwrap();
    let workloads = resolver()(&scenario).unwrap();
    let cost_model = CostModel::default();
    let session = scenario.session(&cost_model);
    let mut expected: Vec<u8> = Vec::new();
    {
        let mut jsonl = JsonLinesSink::new(&mut expected);
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut jsonl];
        libra_core::search::run_scenario(&session, &scenario, &workloads, &mut sinks).unwrap();
    }
    let served = client.records(&job).unwrap();
    assert_eq!(served, expected, "served bytes must match the local search driver");
    let rows = records_from_jsonl(std::str::from_utf8(&served).unwrap()).unwrap();
    assert_eq!(rows.len(), summary.results);

    // Without the search block, the same over-cap grid is rejected at
    // POST time by the scenario validator.
    let exhaustive =
        body.replace(r#""search": {"seed_budgets": 6, "max_evals": 24}"#, r#""tolerance": 0.5"#);
    let response = client.post("/v1/sweeps", exhaustive.as_bytes()).unwrap();
    assert_eq!(response.status, 400);
    let text = String::from_utf8(response.body).unwrap();
    assert!(text.contains("point cap"), "{text}");

    server.shutdown();
    server.join().unwrap();
}
