//! The job table: a bounded FIFO queue of validated scenarios plus the
//! full lifecycle record of every job the server has accepted.
//!
//! One `Mutex` + `Condvar` pair guards both: submissions enqueue and
//! wake a worker, workers block in [`JobTable::take`] until work (or
//! shutdown) arrives, and every state transition lands in the table so
//! `GET /v1/sweeps/{id}` can answer from a single lock. The table keeps
//! finished jobs (records included) for the server's lifetime — the
//! service's unit of memory is one run's JSON-lines stream, and evicting
//! completed jobs is a policy decision the adaptive-search follow-up can
//! make when it arrives.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use libra_core::scenario::Scenario;

/// Terminal summary of a finished job, mirroring the CLI's stderr
/// summary and exit code.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Grid points solved.
    pub results: usize,
    /// Grid points that errored.
    pub errors: usize,
    /// Whether every backend pair stayed within the scenario tolerance.
    pub within_tolerance: bool,
    /// The worst pairwise relative error observed.
    pub max_rel_error: f64,
}

impl JobSummary {
    /// The exit code `libra crossval` would have returned: 0 within
    /// tolerance, 2 diverged.
    pub fn exit_code(&self) -> i32 {
        if self.within_tolerance {
            0
        } else {
            2
        }
    }
}

/// A point-in-time view of one job, cloned out of the table.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the queue; `position` 1 is next to run.
    Queued {
        /// 1-based position in the FIFO queue.
        position: usize,
    },
    /// On a worker; `done` of `total` grid points priced so far.
    Running {
        /// Grid points priced so far.
        done: usize,
        /// Total grid points in the run.
        total: usize,
    },
    /// Finished: the byte-exact JSON-lines stream plus its summary.
    Done {
        /// The run's complete JSON-lines output, byte-identical to
        /// `libra crossval --jsonl -`.
        records: Arc<Vec<u8>>,
        /// The run summary.
        summary: JobSummary,
    },
    /// Aborted: validation passed but the run (or the server) died.
    Failed {
        /// What went wrong.
        error: String,
    },
}

/// Why a submission was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — retry later (HTTP 503).
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new work (HTTP 503).
    ShuttingDown,
}

/// Queue/lifecycle counters for `GET /v1/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs accepted since start.
    pub submitted: usize,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently on a worker.
    pub running: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs failed (run errors and shutdown fail-fast).
    pub failed: usize,
}

/// The outcome of [`JobTable::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued or running and is now terminally failed.
    Cancelled,
    /// The job had already reached a terminal state (done or failed);
    /// nothing changed.
    AlreadyFinished,
    /// No job with that id exists.
    Unknown,
}

/// One unit of work handed to a sweep worker by [`JobTable::take`]: the
/// job id, its validated scenario, and the cancellation flag the worker
/// must poll (at least per progress tick) to abandon cancelled or
/// deadline-expired work early.
pub struct TakenJob {
    /// The job id (`job-N`).
    pub id: String,
    /// The scenario to run.
    pub scenario: Arc<Scenario>,
    /// Set when the job is cancelled or fails its deadline; the table
    /// has already recorded the terminal state, the worker only needs
    /// to stop burning CPU.
    pub cancel: Arc<AtomicBool>,
}

struct Job {
    scenario: Arc<Scenario>,
    state: JobStatus,
    cancel: Arc<AtomicBool>,
    /// When a worker took the job — the deadline clock for
    /// [`JobTable::fail_overdue`].
    started: Option<Instant>,
}

impl Job {
    fn is_terminal(&self) -> bool {
        matches!(self.state, JobStatus::Done { .. } | JobStatus::Failed { .. })
    }
}

struct Inner {
    jobs: Vec<Job>,
    /// Queued job ids (indices into `jobs`), FIFO.
    queue: VecDeque<usize>,
    closed: bool,
}

/// See the module docs.
pub struct JobTable {
    inner: Mutex<Inner>,
    work: Condvar,
    capacity: usize,
}

impl JobTable {
    /// A table whose queue holds at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        JobTable {
            inner: Mutex::new(Inner { jobs: Vec::new(), queue: VecDeque::new(), closed: false }),
            work: Condvar::new(),
            capacity,
        }
    }

    fn id_string(index: usize) -> String {
        format!("job-{}", index + 1)
    }

    pub(crate) fn id_index(id: &str) -> Option<usize> {
        id.strip_prefix("job-")?.parse::<usize>().ok()?.checked_sub(1)
    }

    /// Enqueues an already-validated scenario, returning the job id and
    /// its 1-based queue position.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] at capacity,
    /// [`SubmitError::ShuttingDown`] after [`JobTable::close`].
    pub fn submit(&self, scenario: Scenario) -> Result<(String, usize), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.queue.len() >= self.capacity {
            return Err(SubmitError::QueueFull { capacity: self.capacity });
        }
        let index = inner.jobs.len();
        let position = inner.queue.len() + 1;
        inner.jobs.push(Job {
            scenario: Arc::new(scenario),
            state: JobStatus::Queued { position },
            cancel: Arc::new(AtomicBool::new(false)),
            started: None,
        });
        inner.queue.push_back(index);
        drop(inner);
        self.work.notify_one();
        Ok((Self::id_string(index), position))
    }

    /// Blocks until a job is available (returning it with the job
    /// already marked running and its deadline clock started) or the
    /// table is closed (returning `None`) — the worker loop's front
    /// door.
    pub fn take(&self) -> Option<TakenJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(index) = inner.queue.pop_front() {
                let job = &mut inner.jobs[index];
                job.state = JobStatus::Running { done: 0, total: 0 };
                job.started = Some(Instant::now());
                return Some(TakenJob {
                    id: Self::id_string(index),
                    scenario: Arc::clone(&job.scenario),
                    cancel: Arc::clone(&job.cancel),
                });
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    /// Records per-point progress for a running job.
    pub fn progress(&self, id: &str, done: usize, total: usize) {
        let Some(index) = Self::id_index(id) else { return };
        let mut inner = self.inner.lock().unwrap();
        if let Some(job) = inner.jobs.get_mut(index) {
            if matches!(job.state, JobStatus::Running { .. }) {
                job.state = JobStatus::Running { done, total };
            }
        }
    }

    /// Marks a job done with its byte-exact records and summary.
    pub fn complete(&self, id: &str, records: Vec<u8>, summary: JobSummary) {
        self.finish(id, JobStatus::Done { records: Arc::new(records), summary });
    }

    /// Marks a job failed.
    pub fn fail(&self, id: &str, error: impl Into<String>) {
        self.finish(id, JobStatus::Failed { error: error.into() });
    }

    fn finish(&self, id: &str, state: JobStatus) {
        let Some(index) = Self::id_index(id) else { return };
        let mut inner = self.inner.lock().unwrap();
        if let Some(job) = inner.jobs.get_mut(index) {
            // Terminal states are immutable: once the watchdog or a
            // cancel has failed a job, a late-finishing worker cannot
            // resurrect it (and vice versa — a completed job cannot be
            // retroactively failed).
            if !job.is_terminal() {
                job.state = state;
            }
        }
    }

    /// Cancels a job: queued jobs are removed from the queue and failed
    /// immediately; running jobs are failed in the table and their
    /// cancel flag raised so the worker abandons the sweep at its next
    /// progress tick. Terminal jobs are left untouched.
    pub fn cancel(&self, id: &str) -> CancelOutcome {
        let Some(index) = Self::id_index(id) else { return CancelOutcome::Unknown };
        let mut inner = self.inner.lock().unwrap();
        let Some(job) = inner.jobs.get(index) else { return CancelOutcome::Unknown };
        if job.is_terminal() {
            return CancelOutcome::AlreadyFinished;
        }
        let was_queued = matches!(job.state, JobStatus::Queued { .. });
        if was_queued {
            inner.queue.retain(|&i| i != index);
        }
        let job = &mut inner.jobs[index];
        job.cancel.store(true, Ordering::SeqCst);
        job.state = JobStatus::Failed {
            error: if was_queued {
                "cancelled before start".to_string()
            } else {
                "cancelled".to_string()
            },
        };
        CancelOutcome::Cancelled
    }

    /// Fails every running job whose wall-clock age exceeds `timeout`
    /// and raises its cancel flag; returns the ids it failed. The
    /// server's watchdog thread calls this periodically when
    /// `--job-timeout` is set.
    pub fn fail_overdue(&self, timeout: Duration) -> Vec<String> {
        let mut inner = self.inner.lock().unwrap();
        let mut overdue = Vec::new();
        for (index, job) in inner.jobs.iter_mut().enumerate() {
            if !matches!(job.state, JobStatus::Running { .. }) {
                continue;
            }
            let Some(started) = job.started else { continue };
            if started.elapsed() > timeout {
                job.cancel.store(true, Ordering::SeqCst);
                job.state = JobStatus::Failed {
                    error: format!("job exceeded the {} ms deadline", timeout.as_millis()),
                };
                overdue.push(Self::id_string(index));
            }
        }
        overdue
    }

    /// A snapshot of one job's state (`None` for unknown ids). Queued
    /// jobs report their live 1-based queue position.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let index = Self::id_index(id)?;
        let inner = self.inner.lock().unwrap();
        let job = inner.jobs.get(index)?;
        Some(match &job.state {
            JobStatus::Queued { .. } => {
                let position = inner.queue.iter().position(|&i| i == index).map_or(0, |p| p + 1);
                JobStatus::Queued { position }
            }
            state => state.clone(),
        })
    }

    /// Lifecycle counters across every job ever submitted.
    pub fn counts(&self) -> JobCounts {
        let inner = self.inner.lock().unwrap();
        let mut counts =
            JobCounts { submitted: inner.jobs.len(), queued: 0, running: 0, done: 0, failed: 0 };
        for job in &inner.jobs {
            match job.state {
                JobStatus::Queued { .. } => counts.queued += 1,
                JobStatus::Running { .. } => counts.running += 1,
                JobStatus::Done { .. } => counts.done += 1,
                JobStatus::Failed { .. } => counts.failed += 1,
            }
        }
        counts
    }

    /// Closes the table: fails every still-queued job fast (clients
    /// polling them see a terminal state, not a hang), wakes every
    /// blocked worker so [`JobTable::take`] drains to `None`, and
    /// rejects all further submissions. Running jobs are untouched —
    /// their workers finish and record results normally.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        while let Some(index) = inner.queue.pop_front() {
            inner.jobs[index].state =
                JobStatus::Failed { error: "server shut down before the job started".to_string() };
        }
        drop(inner);
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::builder("t")
            .with_shape("RI(4)_RI(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([libra_core::opt::Objective::Perf])
            .with_workload("w")
            .build()
            .unwrap()
    }

    #[test]
    fn fifo_order_and_positions() {
        let table = JobTable::new(8);
        let (a, pa) = table.submit(scenario()).unwrap();
        let (b, pb) = table.submit(scenario()).unwrap();
        assert_eq!((pa, pb), (1, 2));
        assert!(matches!(table.status(&b), Some(JobStatus::Queued { position: 2 })));
        let first = table.take().unwrap();
        assert_eq!(first.id, a);
        // b moved up after a was taken.
        assert!(matches!(table.status(&b), Some(JobStatus::Queued { position: 1 })));
        assert!(matches!(table.status(&a), Some(JobStatus::Running { .. })));
    }

    #[test]
    fn bounded_queue_rejects_and_close_fails_fast() {
        let table = JobTable::new(1);
        let (a, _) = table.submit(scenario()).unwrap();
        assert_eq!(table.submit(scenario()).unwrap_err(), SubmitError::QueueFull { capacity: 1 });
        table.close();
        assert_eq!(table.submit(scenario()).unwrap_err(), SubmitError::ShuttingDown);
        assert!(matches!(table.status(&a), Some(JobStatus::Failed { .. })));
        assert!(table.take().is_none());
        let counts = table.counts();
        assert_eq!((counts.submitted, counts.failed), (1, 1));
    }

    #[test]
    fn lifecycle_to_done() {
        let table = JobTable::new(4);
        let (id, _) = table.submit(scenario()).unwrap();
        let taken = table.take().unwrap();
        assert_eq!(taken.id, id);
        table.progress(&id, 3, 4);
        assert!(matches!(table.status(&id), Some(JobStatus::Running { done: 3, total: 4 })));
        let summary =
            JobSummary { results: 4, errors: 0, within_tolerance: true, max_rel_error: 0.01 };
        table.complete(&id, b"line\n".to_vec(), summary.clone());
        match table.status(&id) {
            Some(JobStatus::Done { records, summary: s }) => {
                assert_eq!(records.as_slice(), b"line\n");
                assert_eq!(s, summary);
                assert_eq!(s.exit_code(), 0);
            }
            other => panic!("unexpected state {other:?}"),
        }
        assert!(table.status("job-999").is_none());
        assert!(table.status("nonsense").is_none());
    }

    #[test]
    fn cancel_queued_running_and_terminal() {
        let table = JobTable::new(8);
        let (queued, _) = table.submit(scenario()).unwrap();
        let (running, _) = table.submit(scenario()).unwrap();
        let (done, _) = table.submit(scenario()).unwrap();

        // Drain the first in FIFO order to stage a running + done job.
        let taken = table.take().unwrap();
        assert_eq!(taken.id, queued);
        table.cancel(&queued); // now terminal
        let taken = table.take().unwrap();
        assert_eq!(taken.id, running);
        assert!(!taken.cancel.load(Ordering::SeqCst));

        // Running job: cancelled terminally, flag raised for the worker.
        assert_eq!(table.cancel(&running), CancelOutcome::Cancelled);
        assert!(taken.cancel.load(Ordering::SeqCst));
        assert!(matches!(table.status(&running), Some(JobStatus::Failed { .. })));

        // Queued job: removed from the queue, failed without a worker.
        assert_eq!(table.cancel(&done), CancelOutcome::Cancelled);
        match table.status(&done) {
            Some(JobStatus::Failed { error }) => assert_eq!(error, "cancelled before start"),
            other => panic!("unexpected state {other:?}"),
        }

        // Terminal jobs and unknown ids are untouched.
        assert_eq!(table.cancel(&running), CancelOutcome::AlreadyFinished);
        assert_eq!(table.cancel("job-999"), CancelOutcome::Unknown);
        assert_eq!(table.cancel("nonsense"), CancelOutcome::Unknown);
    }

    #[test]
    fn terminal_states_are_immutable() {
        let table = JobTable::new(4);
        let (id, _) = table.submit(scenario()).unwrap();
        let taken = table.take().unwrap();
        assert_eq!(table.cancel(&id), CancelOutcome::Cancelled);

        // A late worker completion must not resurrect the cancelled job.
        let summary =
            JobSummary { results: 1, errors: 0, within_tolerance: true, max_rel_error: 0.0 };
        table.complete(&id, b"line\n".to_vec(), summary);
        assert!(matches!(table.status(&id), Some(JobStatus::Failed { .. })));
        table.fail(&id, "late failure");
        match table.status(&id) {
            Some(JobStatus::Failed { error }) => assert_eq!(error, "cancelled"),
            other => panic!("unexpected state {other:?}"),
        }
        drop(taken);
    }

    #[test]
    fn fail_overdue_targets_only_expired_running_jobs() {
        let table = JobTable::new(4);
        let (running, _) = table.submit(scenario()).unwrap();
        let (queued, _) = table.submit(scenario()).unwrap();
        let taken = table.take().unwrap();
        assert_eq!(taken.id, running);

        // Generous deadline: nothing is overdue.
        assert!(table.fail_overdue(Duration::from_secs(3600)).is_empty());

        // Zero deadline: the running job fails, the queued one is left.
        std::thread::sleep(Duration::from_millis(2));
        let failed = table.fail_overdue(Duration::from_millis(1));
        assert_eq!(failed, vec![running.clone()]);
        assert!(taken.cancel.load(Ordering::SeqCst));
        match table.status(&running) {
            Some(JobStatus::Failed { error }) => assert!(error.contains("deadline")),
            other => panic!("unexpected state {other:?}"),
        }
        assert!(matches!(table.status(&queued), Some(JobStatus::Queued { .. })));
    }

    #[test]
    fn close_vs_concurrent_submit_never_loses_a_job() {
        use std::sync::atomic::AtomicUsize;
        use std::thread;

        // Hammer submit from several threads while close() runs midway:
        // every accepted id must end terminally Failed (no workers run),
        // every rejection after close must be ShuttingDown, and take()
        // must drain to None. No job may be accepted and then lost.
        let table = Arc::new(JobTable::new(1024));
        let accepted = Arc::new(Mutex::new(Vec::new()));
        let shutdown_rejections = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            let accepted = Arc::clone(&accepted);
            let shutdown_rejections = Arc::clone(&shutdown_rejections);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    match table.submit(scenario()) {
                        Ok((id, _)) => accepted.lock().unwrap().push(id),
                        Err(SubmitError::ShuttingDown) => {
                            shutdown_rejections.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(SubmitError::QueueFull { .. }) => {}
                    }
                }
            }));
        }
        // Let some submissions land, then close concurrently.
        thread::sleep(Duration::from_millis(1));
        table.close();
        for handle in handles {
            handle.join().unwrap();
        }

        assert_eq!(table.submit(scenario()).unwrap_err(), SubmitError::ShuttingDown);
        assert!(table.take().is_none());
        let accepted = accepted.lock().unwrap();
        for id in accepted.iter() {
            match table.status(id) {
                Some(JobStatus::Failed { .. }) => {}
                other => panic!("accepted job {id} in non-terminal state {other:?}"),
            }
        }
        let counts = table.counts();
        assert_eq!(counts.submitted, accepted.len());
        assert_eq!(counts.failed, accepted.len());
        assert_eq!((counts.queued, counts.running, counts.done), (0, 0, 0));
    }
}
