//! # libra-server
//!
//! Sweep-as-a-service: a dependency-free HTTP/1.1 front end that queues
//! `libra-scenario-v1` documents onto a pool of sweep workers sharing
//! one persistent [`SolveStore`](libra_core::store::SolveStore) — the
//! "queue of scenarios and an HTTP/JSON front end" the roadmap names,
//! built on `std::net` alone because the workspace is offline (the
//! protocol is hand-rolled the same way `scenario.rs` hand-rolls JSON).
//!
//! Endpoints:
//!
//! | Route | What it does |
//! |---|---|
//! | `POST /v1/sweeps` | Validate a scenario body, enqueue it; `202 {"job", "position"}` |
//! | `GET /v1/sweeps/{id}` | Job status: queued/running (per-point progress)/done/failed |
//! | `GET /v1/sweeps/{id}/records` | The finished run's JSON-lines, chunked, **byte-identical** to `libra crossval --jsonl -` |
//! | `POST /v1/sweeps/{id}/cancel` | Cancel a queued or running job (terminal `failed` state; 409 if already finished) |
//! | `GET /v1/backends` | The backend registry, same bytes as `libra list-backends --json` |
//! | `GET /v1/healthz` | Liveness |
//! | `GET /v1/stats` | Queue depth, lifecycle counters, store hit/stage counters |
//! | `POST /v1/shutdown` | Request the same graceful shutdown SIGTERM does |
//!
//! Every worker runs a fresh [`Session`](libra_core::scenario::Session)
//! attached to the one shared store, so concurrent clients pricing
//! overlapping scenarios hit each other's solves in memory — PR 7's
//! warm-from-disk speedup, made cross-client.
//!
//! The crate depends only on `libra-core`: workload-name resolution is
//! injected as a [`WorkloadResolver`] (the `libra` CLI passes
//! `libra-bench`'s Table II resolver; tests pass stubs), which keeps the
//! server usable from any embedding without dragging the workload zoo
//! in.

pub mod client;
pub mod http;
pub mod jobs;
pub mod server;

pub use client::{PolledStatus, ServiceClient};
pub use jobs::{CancelOutcome, JobCounts, JobStatus, JobSummary, JobTable, SubmitError, TakenJob};
pub use server::{
    install_signal_handlers, signal_shutdown_requested, Server, ServerConfig, WorkloadResolver,
};
