//! A hand-rolled client for the sweep service — what `libra submit`
//! and the integration tests speak. Submit a scenario, poll its status,
//! fetch the byte-exact records stream.

use std::time::{Duration, Instant};

use libra_core::error::LibraError;
use libra_core::scenario::{Json, JsonParser};

use crate::http::{is_connect_error, roundtrip, Response};
use crate::jobs::JobSummary;

fn bad(what: impl Into<String>) -> LibraError {
    LibraError::BadRequest(what.into())
}

/// Extracts the server's `{"error": …}` message, falling back to the
/// raw body.
fn error_message(response: &Response) -> String {
    let body = String::from_utf8_lossy(&response.body);
    if let Ok(v) = JsonParser::parse(body.trim()) {
        if let Some(message) = v.get("error").and_then(Json::as_str) {
            return message.to_string();
        }
    }
    body.trim().to_string()
}

/// A client bound to one sweep server.
pub struct ServiceClient {
    authority: String,
    /// Total budget for retrying connection-refused requests (zero =
    /// fail on the first refusal, the default).
    connect_retry: Duration,
}

impl ServiceClient {
    /// A client for `url`: `http://host:port` (trailing slash allowed)
    /// or a bare `host:port` authority.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] on `https://` (not supported) or an
    /// empty authority.
    pub fn new(url: &str) -> Result<Self, LibraError> {
        if url.starts_with("https://") {
            return Err(bad("https is not supported; use http://host:port"));
        }
        let authority = url.strip_prefix("http://").unwrap_or(url).trim_end_matches('/');
        if authority.is_empty() || authority.contains('/') {
            return Err(bad(format!("bad server URL {url:?}; want http://host:port")));
        }
        Ok(ServiceClient { authority: authority.to_string(), connect_retry: Duration::ZERO })
    }

    /// Retries connection-refused requests for up to `budget` before
    /// giving up — rides out a server that is still binding (or
    /// restarting) without masking application errors, which are never
    /// retried.
    #[must_use]
    pub fn with_connect_retry(mut self, budget: Duration) -> Self {
        self.connect_retry = budget;
        self
    }

    /// The `host:port` this client talks to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// One request with the connect-retry policy applied: connection
    /// failures are retried on a short doubling backoff until the
    /// budget runs out; every other failure (and every response, any
    /// status) passes straight through.
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, LibraError> {
        let started = Instant::now();
        let mut delay = Duration::from_millis(10);
        loop {
            match roundtrip(&self.authority, method, path, body) {
                Err(e) if is_connect_error(&e) && started.elapsed() < self.connect_retry => {
                    std::thread::sleep(
                        delay.min(self.connect_retry.saturating_sub(started.elapsed())),
                    );
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
                Err(e) if is_connect_error(&e) && !self.connect_retry.is_zero() => {
                    return Err(LibraError::Timeout {
                        what: format!("a reachable server at {} ({e})", self.authority),
                        after_ms: self.connect_retry.as_millis() as u64,
                    });
                }
                other => return other,
            }
        }
    }

    /// One GET, any status.
    ///
    /// # Errors
    /// Connect/IO/protocol failures.
    pub fn get(&self, path: &str) -> Result<Response, LibraError> {
        self.request("GET", path, None)
    }

    /// One POST, any status.
    ///
    /// # Errors
    /// Connect/IO/protocol failures.
    pub fn post(&self, path: &str, body: &[u8]) -> Result<Response, LibraError> {
        self.request("POST", path, Some(body))
    }

    /// Submits a scenario body to `POST /v1/sweeps`, returning the job
    /// id and queue position.
    ///
    /// # Errors
    /// Transport failures, and any non-202 answer (carrying the
    /// server's error message).
    pub fn submit(&self, scenario_json: &[u8]) -> Result<(String, usize), LibraError> {
        let response = self.post("/v1/sweeps", scenario_json)?;
        if response.status != 202 {
            return Err(bad(format!(
                "server rejected the scenario ({}): {}",
                response.status,
                error_message(&response)
            )));
        }
        let body = String::from_utf8_lossy(&response.body);
        let v = JsonParser::parse(body.trim())?;
        let id = v
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("submit response missing job id: {body}")))?;
        let position = v.get("position").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        Ok((id.to_string(), position))
    }

    /// One `GET /v1/sweeps/{id}` poll, parsed.
    ///
    /// # Errors
    /// Transport failures, unknown jobs, malformed status documents.
    pub fn status(&self, job: &str) -> Result<PolledStatus, LibraError> {
        let response = self.get(&format!("/v1/sweeps/{job}"))?;
        if response.status != 200 {
            return Err(bad(format!(
                "status poll failed ({}): {}",
                response.status,
                error_message(&response)
            )));
        }
        let body = String::from_utf8_lossy(&response.body);
        let v = JsonParser::parse(body.trim())?;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("status document missing state: {body}")))?;
        Ok(match state {
            "queued" => PolledStatus::Queued {
                position: v.get("position").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            },
            "running" => PolledStatus::Running {
                done: v.get("done").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                total: v.get("total").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            },
            "done" => PolledStatus::Done(JobSummary {
                results: v.get("results").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                errors: v.get("errors").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                within_tolerance: matches!(v.get("within_tolerance"), Some(Json::Bool(true))),
                max_rel_error: v.get("max_rel_error").and_then(Json::as_f64).unwrap_or(f64::NAN),
            }),
            "failed" => PolledStatus::Failed {
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown failure")
                    .to_string(),
            },
            other => return Err(bad(format!("unknown job state {other:?}"))),
        })
    }

    /// Polls until the job reaches a terminal state, for at most
    /// `deadline` when one is given (`None` waits forever).
    ///
    /// # Errors
    /// Transport failures; a [`PolledStatus::Failed`] job surfaces as
    /// an error carrying the server-side message; an expired deadline
    /// surfaces as [`LibraError::Timeout`] (typed, so callers can tell
    /// "still running" from "rejected") while the job keeps running
    /// server-side.
    pub fn wait(
        &self,
        job: &str,
        poll: Duration,
        deadline: Option<Duration>,
    ) -> Result<JobSummary, LibraError> {
        let started = Instant::now();
        loop {
            match self.status(job)? {
                PolledStatus::Done(summary) => return Ok(summary),
                PolledStatus::Failed { error } => {
                    return Err(bad(format!("job {job} failed: {error}")))
                }
                PolledStatus::Queued { .. } | PolledStatus::Running { .. } => {
                    if let Some(deadline) = deadline {
                        if started.elapsed() >= deadline {
                            return Err(LibraError::Timeout {
                                what: format!("job {job}"),
                                after_ms: deadline.as_millis() as u64,
                            });
                        }
                    }
                    std::thread::sleep(poll)
                }
            }
        }
    }

    /// [`ServiceClient::wait`] with a required deadline.
    ///
    /// # Errors
    /// As [`ServiceClient::wait`].
    pub fn wait_timeout(
        &self,
        job: &str,
        poll: Duration,
        deadline: Duration,
    ) -> Result<JobSummary, LibraError> {
        self.wait(job, poll, Some(deadline))
    }

    /// Fetches the finished job's byte-exact JSON-lines stream.
    ///
    /// # Errors
    /// Transport failures and non-200 answers (job unknown or not done).
    pub fn records(&self, job: &str) -> Result<Vec<u8>, LibraError> {
        let response = self.get(&format!("/v1/sweeps/{job}/records"))?;
        if response.status != 200 {
            return Err(bad(format!(
                "records fetch failed ({}): {}",
                response.status,
                error_message(&response)
            )));
        }
        Ok(response.body)
    }
}

/// A parsed `GET /v1/sweeps/{id}` answer.
#[derive(Debug, Clone)]
pub enum PolledStatus {
    /// Waiting; 1-based queue position.
    Queued {
        /// 1-based queue position.
        position: usize,
    },
    /// Running; `done` of `total` points priced.
    Running {
        /// Points priced so far.
        done: usize,
        /// Total points in the run.
        total: usize,
    },
    /// Finished, with the run summary.
    Done(JobSummary),
    /// Failed server-side.
    Failed {
        /// The server-side error message.
        error: String,
    },
}
