//! Hand-rolled HTTP/1.1 — exactly the protocol slice the sweep service
//! needs, over `std::net` alone, in the same spirit as `scenario.rs`'s
//! serde-free JSON layer.
//!
//! Server side: [`read_request`] parses one request (request line,
//! headers, `Content-Length` body) off a stream; [`respond`] and
//! [`respond_chunked`] write one response. Client side: [`roundtrip`]
//! writes a request and parses the response, decoding chunked transfer.
//! Every connection is one-shot (`Connection: close`): the service's
//! clients are submit/poll loops, not browsers, so keep-alive would buy
//! nothing but state to get wrong.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use libra_core::error::LibraError;

/// Cap on request-head bytes (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on request-body bytes. Scenario files are the only legitimate
/// request payload and they are small; records streams flow the other
/// way and are not capped.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Per-connection socket timeout, both directions: a stalled peer must
/// not pin a handler thread forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request: method, path (query and fragment stripped), body.
#[derive(Debug)]
pub struct Request {
    /// The request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request path with any `?query` / `#fragment` suffix removed.
    pub path: String,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

/// A protocol failure carrying the HTTP status the server answers with.
#[derive(Debug)]
pub struct HttpError {
    /// The response status (400, 413, …).
    pub status: u16,
    /// The human-readable failure, sent back as `{"error": …}`.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }
}

/// The standard reason phrase for the statuses this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Reads bytes until the blank line ending the head, returning the head
/// text and whatever body bytes were read past it.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let rest = buf.split_off(pos + 4);
            buf.truncate(pos);
            let head = String::from_utf8(buf)
                .map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
            return Ok((head, rest));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head exceeds 16 KiB"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::new(400, "connection closed mid-request")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::new(400, format!("reading request: {e}"))),
        }
    }
}

/// Parses one request off `stream` (and answers `Expect: 100-continue`
/// so plain `curl -d @file` works against the service).
///
/// # Errors
/// [`HttpError`] carrying the status to respond with: 400 malformed,
/// 413 oversized body, 431 oversized head, 501 chunked request body,
/// 505 unknown HTTP version.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (head, mut body) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, format!("malformed request line {request_line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(505, format!("unsupported version {version:?}")));
    }
    let mut content_length = 0usize;
    let mut expect_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::new(400, format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::new(501, "chunked request bodies are not supported"));
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body exceeds 16 MiB"));
    }
    if expect_continue && body.len() < content_length {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::new(400, "connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::new(400, format!("reading request body: {e}"))),
        }
    }
    body.truncate(content_length);
    let path = target.split(['?', '#']).next().unwrap_or_default().to_string();
    Ok(Request { method: method.to_string(), path, body: body.to_vec() })
}

/// Writes one complete response with a `Content-Length` body.
///
/// # Errors
/// Propagates socket write failures.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes one chunked-transfer response, one HTTP chunk per item —
/// how `/records` streams a run line by line.
///
/// # Errors
/// Propagates socket write failures.
pub fn respond_chunked<'b>(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    chunks: impl IntoIterator<Item = &'b [u8]>,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    for chunk in chunks {
        if chunk.is_empty() {
            continue; // an empty chunk would terminate the stream early
        }
        stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Writes a *truncated* chunked-transfer response: a valid head and the
/// first `keep` chunks, then stops without the `0\r\n\r\n` terminator —
/// the wire image of a server dying mid-stream. Exists solely for the
/// `server.response.drop` fault-injection site; a client must report
/// the truncation (see [`decode_chunked`]'s "truncated chunk" errors),
/// never silently accept the partial record set.
///
/// # Errors
/// Propagates socket write failures.
pub fn respond_chunked_partial<'b>(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    chunks: impl IntoIterator<Item = &'b [u8]>,
    keep: usize,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    for chunk in chunks.into_iter().filter(|c| !c.is_empty()).take(keep) {
        stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.flush()
}

/// Whether a client-side error is a connection failure (the server is
/// not up yet or just went away) rather than a protocol or application
/// error — the class of failure `--retries`/connect-retry loops may
/// safely retry.
pub fn is_connect_error(error: &LibraError) -> bool {
    matches!(error, LibraError::BadRequest(message) if message.starts_with("cannot connect to "))
}

/// A parsed client-side response: status plus the decoded body
/// (chunked transfer reassembled).
#[derive(Debug)]
pub struct Response {
    /// The response status code.
    pub status: u16,
    /// The decoded response body.
    pub body: Vec<u8>,
}

fn bad(what: impl Into<String>) -> LibraError {
    LibraError::BadRequest(what.into())
}

/// Reassembles a chunked-transfer body.
fn decode_chunked(mut bytes: &[u8]) -> Result<Vec<u8>, LibraError> {
    let mut out = Vec::with_capacity(bytes.len());
    loop {
        let line_end = bytes
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| bad("truncated chunk header"))?;
        let size_text = std::str::from_utf8(&bytes[..line_end])
            .map_err(|_| bad("non-UTF-8 chunk header"))?
            .split(';') // ignore chunk extensions
            .next()
            .unwrap_or_default()
            .trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| bad(format!("bad chunk size {size_text:?}")))?;
        bytes = &bytes[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if bytes.len() < size + 2 {
            return Err(bad("truncated chunk body"));
        }
        out.extend_from_slice(&bytes[..size]);
        bytes = &bytes[size + 2..];
    }
}

/// Performs one request against `authority` (`host:port`) and parses
/// the response. `POST` bodies are sent with `Content-Length`; response
/// bodies are read to connection close and chunked transfer is decoded.
///
/// # Errors
/// [`LibraError::BadRequest`] on connect/IO failures or a malformed
/// response.
pub fn roundtrip(
    authority: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<Response, LibraError> {
    let mut stream = TcpStream::connect(authority)
        .map_err(|e| bad(format!("cannot connect to {authority}: {e}")))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.map_or(0, <[u8]>::len),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.unwrap_or_default()))
        .map_err(|e| bad(format!("writing request to {authority}: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| bad(format!("reading response from {authority}: {e}")))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad(format!("no response head from {authority}")))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| bad("response head is not UTF-8"))?
        .to_string();
    let mut body_bytes = raw.split_off(head_end + 4);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut content_length = None;
    let mut chunked = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse::<usize>().ok();
        } else if name.eq_ignore_ascii_case("transfer-encoding")
            && value.eq_ignore_ascii_case("chunked")
        {
            chunked = true;
        }
    }
    let body = if chunked {
        decode_chunked(&body_bytes)?
    } else if let Some(len) = content_length {
        if body_bytes.len() < len {
            return Err(bad(format!(
                "short response body from {authority}: {} of {len} bytes",
                body_bytes.len()
            )));
        }
        body_bytes.truncate(len);
        body_bytes
    } else {
        body_bytes
    };
    Ok(Response { status, body })
}
