//! The sweep server: accept loop, router, worker pool, and graceful
//! shutdown.
//!
//! Life of a request: the accept thread hands each connection to a
//! short-lived handler thread; `POST /v1/sweeps` validates the scenario
//! through the **same** parser, workload resolver, and backend registry
//! the CLI uses, then enqueues it on the bounded [`JobTable`]; sweep
//! workers drain the queue, each running a fresh
//! [`Session`](libra_core::scenario::Session) attached to the one shared
//! [`SolveStore`](libra_core::store::SolveStore), so concurrent clients
//! pricing overlapping scenarios hit each other's solves in memory.
//!
//! The headline contract: the bytes `GET /v1/sweeps/{id}/records`
//! streams are **byte-identical** to a single-process
//! `libra crossval SCENARIO --jsonl -` run — the worker writes through
//! the same [`JsonLinesSink`] the CLI does, into a buffer the endpoint
//! replays verbatim.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use libra_core::cost::CostModel;
use libra_core::error::LibraError;
use libra_core::fault::{self, FaultInjector};
use libra_core::scenario::{
    json_escape, json_f64, BackendRegistry, DivergenceMatrix, JsonLinesSink, ProgressSink,
    ReportSink, Scenario, SessionReport,
};
use libra_core::store::{SharedSolveStore, SolveStore};
use libra_core::sweep::FnWorkload;

use crate::http::{
    read_request, respond, respond_chunked, respond_chunked_partial, HttpError, Request,
};
use crate::jobs::{CancelOutcome, JobCounts, JobStatus, JobSummary, JobTable, SubmitError};

/// Resolves a scenario's workload names into runnable workloads — the
/// seam that keeps this crate core-only: `libra-bench` passes its
/// Table II name resolver in, tests pass stubs.
pub type WorkloadResolver = dyn Fn(&Scenario) -> Result<Vec<FnWorkload>, LibraError> + Send + Sync;

/// Server construction knobs.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Sweep worker threads. `0` is a test seam: jobs queue but never
    /// run.
    pub workers: usize,
    /// Bound on *waiting* jobs; submissions past it get HTTP 503.
    pub queue_capacity: usize,
    /// Optional persistent solve cache shared by every worker.
    pub cache: Option<PathBuf>,
    /// Wall-clock deadline per running job. When set, a watchdog thread
    /// fails any job that runs longer (the client sees a terminal
    /// `failed` state; the worker abandons the sweep at its next
    /// progress tick).
    pub job_timeout: Option<Duration>,
    /// Maximum errored (poisoned) grid points a job may produce and
    /// still count as done; one more fails the whole job.
    pub failed_point_quota: Option<usize>,
    /// Explicit fault-plan spec (see [`libra_core::fault`]); `None`
    /// falls back to the `LIBRA_FAULT_PLAN` environment variable. The
    /// explicit knob exists so tests can arm chaos per-server without
    /// racing on process-global env state.
    pub fault_spec: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache: None,
            job_timeout: None,
            failed_point_quota: None,
            fault_spec: None,
        }
    }
}

/// State shared by the accept loop, handlers, and workers.
struct Shared {
    table: JobTable,
    registry: BackendRegistry,
    resolver: Box<WorkloadResolver>,
    store: Option<SharedSolveStore>,
    workers: usize,
    queue_capacity: usize,
    shutdown: AtomicBool,
    failed_point_quota: Option<usize>,
    fault: Option<FaultInjector>,
    /// Tells the watchdog thread to exit during the final drain.
    watchdog_stop: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal_shutdown_requested()
    }
}

/// Set by the SIGINT/SIGTERM handler; an atomic store is async-signal-safe.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a SIGINT/SIGTERM arrived since
/// [`install_signal_handlers`] ran.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

extern "C" fn on_signal(_signum: i32) {
    SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT and SIGTERM handlers that request a graceful
/// shutdown (observed by every running [`Server`] and by
/// [`signal_shutdown_requested`]). Raw `signal(2)` FFI — the workspace
/// is offline and std links libc anyway. No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// A running sweep server. Dropping it without [`Server::join`] leaks
/// the threads; the intended lifecycle is start → (work) →
/// [`Server::shutdown`] (or a signal, or `POST /v1/shutdown`) →
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
    watchdog_handle: Option<JoinHandle<()>>,
}

/// Panic payload a worker throws (via `panic_any`) when it notices its
/// job's cancel flag mid-sweep: the job table already holds the
/// terminal state, so the worker's catch-all must *not* overwrite it
/// with "sweep worker panicked".
struct CancelledJob;

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns. The
    /// `registry` and `resolver` validate submissions and execute jobs —
    /// pass the same pair the CLI uses (`default_registry()` +
    /// `scenario_workloads`) for byte-identity with it.
    ///
    /// # Errors
    /// Bind failures and [`SolveStore::open`] failures.
    pub fn start(
        config: ServerConfig,
        registry: BackendRegistry,
        resolver: Box<WorkloadResolver>,
    ) -> Result<Server, LibraError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| LibraError::BadRequest(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| LibraError::BadRequest(format!("cannot read bound address: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| LibraError::BadRequest(format!("cannot set nonblocking: {e}")))?;
        let store = match &config.cache {
            Some(path) => Some(SolveStore::open_shared(path)?),
            None => None,
        };
        let fault = match &config.fault_spec {
            Some(spec) => Some(FaultInjector::from_spec(spec)?),
            None => FaultInjector::from_env(),
        };
        let shared = Arc::new(Shared {
            table: JobTable::new(config.queue_capacity),
            registry,
            resolver,
            store,
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            shutdown: AtomicBool::new(false),
            failed_point_quota: config.failed_point_quota,
            fault,
            watchdog_stop: AtomicBool::new(false),
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning sweep worker")
            })
            .collect();
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("accept-loop".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning accept loop")
        };
        let watchdog_handle = config.job_timeout.map(|timeout| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("job-watchdog".to_string())
                .spawn(move || {
                    while !shared.watchdog_stop.load(Ordering::SeqCst) {
                        shared.table.fail_overdue(timeout);
                        std::thread::sleep(Duration::from_millis(10));
                    }
                })
                .expect("spawning job watchdog")
        });
        Ok(Server { shared, addr, accept_handle, worker_handles, watchdog_handle })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting, fail queued jobs
    /// fast, let running jobs finish, flush the store. Returns
    /// immediately; [`Server::join`] waits for the drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until a shutdown is requested (via [`Server::shutdown`],
    /// `POST /v1/shutdown`, or an installed signal handler), then drains:
    /// queued jobs fail fast, running jobs finish and record results,
    /// and the shared store takes a final observable flush.
    ///
    /// # Errors
    /// Propagates the final store-flush failure.
    pub fn join(self) -> Result<(), LibraError> {
        let _ = self.accept_handle.join();
        self.shared.table.close();
        for handle in self.worker_handles {
            let _ = handle.join();
        }
        self.shared.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.watchdog_handle {
            let _ = handle.join();
        }
        if let Some(store) = &self.shared.store {
            store.lock().unwrap().flush()?;
        }
        Ok(())
    }
}

/// Polling accept loop: nonblocking accepts with a short sleep, so a
/// shutdown request is observed within ~10 ms without any extra
/// machinery (no self-pipe, no poll(2) FFI).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("http-handler".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The worker loop: drain the queue until the table closes.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.table.take() {
        // A panicking solve must not kill the worker (or wedge the
        // job in `running` forever): catch it and fail the job.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let (Some(fault), Some(ordinal)) = (&shared.fault, JobTable::id_index(&job.id)) {
                if fault.fires(fault::SERVER_WORKER_PANIC, ordinal as u64) {
                    panic!("injected fault: {} on {}", fault::SERVER_WORKER_PANIC, job.id);
                }
            }
            run_job(shared, &job.id, &job.scenario, &job.cancel)
        }));
        match outcome {
            Ok(Ok((records, summary))) => shared.table.complete(&job.id, records, summary),
            Ok(Err(e)) => shared.table.fail(&job.id, e.to_string()),
            // A cancel/deadline unwind is not a failure of the worker:
            // the table already holds the job's terminal state.
            Err(payload) if payload.is::<CancelledJob>() => {}
            Err(_) => shared.table.fail(&job.id, "sweep worker panicked"),
        }
    }
}

/// Runs one job exactly the way `libra crossval --jsonl -` does: a
/// fresh scenario-configured session (shared store attached), a
/// [`JsonLinesSink`] capturing the byte-exact stream, and a
/// [`ProgressSink`] feeding the job table.
fn run_job(
    shared: &Arc<Shared>,
    id: &str,
    scenario: &Scenario,
    cancel: &AtomicBool,
) -> Result<(Vec<u8>, JobSummary), LibraError> {
    let workloads = (shared.resolver)(scenario)?;
    let cost_model = CostModel::default();
    let mut session = scenario.session(&cost_model);
    if let Some(store) = &shared.store {
        session = session.with_shared_store(Arc::clone(store))?;
    }
    if let Some(fault) = &shared.fault {
        session = session.with_fault(fault.clone())?;
    }
    let mut buf: Vec<u8> = Vec::new();
    let report = {
        let mut jsonl = JsonLinesSink::new(&mut buf);
        let mut progress = ProgressSink::new(|done, total| {
            shared.table.progress(id, done, total);
            // The cancel/deadline escape hatch: the emit hook runs
            // serially on this thread between grid points, so an
            // unwinding sentinel here abandons the sweep cleanly and is
            // recognized (not re-reported) by the worker's catch-all.
            if cancel.load(Ordering::SeqCst) {
                std::panic::panic_any(CancelledJob);
            }
        });
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut jsonl, &mut progress];
        if scenario.search.is_some() {
            // Adaptive search mode: the driver prices its own subgrids
            // (no backends, no divergence) and streams one standard
            // JSONL run through the same sinks, so records/progress/
            // cancel/fault machinery apply unchanged.
            let search =
                libra_core::search::run_scenario(&session, scenario, &workloads, &mut sinks)?;
            SessionReport {
                sweep: search.sweep,
                divergence: DivergenceMatrix { backends: Vec::new(), pairs: Vec::new() },
            }
        } else {
            session.run_scenario_with_sinks(scenario, &workloads, &shared.registry, &mut sinks)?
        }
    };
    let summary = JobSummary {
        results: report.sweep.results.len(),
        errors: report.sweep.errors.len(),
        within_tolerance: report.divergence.within_tolerance(),
        max_rel_error: report.divergence.max_rel_error(),
    };
    if let Some(quota) = shared.failed_point_quota {
        if summary.errors > quota {
            return Err(LibraError::BadRequest(format!(
                "{} of {} grid points failed, exceeding the server's failed-point quota of {quota}",
                summary.errors,
                summary.results + summary.errors,
            )));
        }
    }
    Ok((buf, summary))
}

fn json_error(message: &str) -> String {
    format!("{{\"error\": {}}}\n", json_escape(message))
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(HttpError { status, message }) => {
            let _ =
                respond(&mut stream, status, "application/json", json_error(&message).as_bytes());
            return;
        }
    };
    let _ = route(&mut stream, &request, shared);
}

fn route(stream: &mut TcpStream, request: &Request, shared: &Arc<Shared>) -> std::io::Result<()> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let json = |stream: &mut TcpStream, status: u16, body: &str| {
        respond(stream, status, "application/json", body.as_bytes())
    };
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => json(stream, 200, "{\"status\": \"ok\"}\n"),
        ("GET", ["v1", "backends"]) => {
            // The exact `libra list-backends --json` bytes — one
            // formatter, two surfaces.
            json(stream, 200, &shared.registry.to_json())
        }
        ("GET", ["v1", "stats"]) => json(stream, 200, &stats_json(shared)),
        ("POST", ["v1", "sweeps"]) => handle_submit(stream, request, shared),
        ("GET", ["v1", "sweeps", id]) => match shared.table.status(id) {
            None => json(stream, 404, &json_error(&format!("unknown job {id:?}"))),
            Some(status) => json(stream, 200, &status_json(id, &status)),
        },
        ("GET", ["v1", "sweeps", id, "records"]) => handle_records(stream, id, shared),
        ("POST", ["v1", "sweeps", id, "cancel"]) => match shared.table.cancel(id) {
            CancelOutcome::Unknown => {
                json(stream, 404, &json_error(&format!("unknown job {id:?}")))
            }
            CancelOutcome::AlreadyFinished => json(
                stream,
                409,
                &json_error(&format!("job {id} already finished; nothing to cancel")),
            ),
            CancelOutcome::Cancelled => {
                let status = shared.table.status(id).expect("cancelled job has a status");
                json(stream, 200, &status_json(id, &status))
            }
        },
        ("POST", ["v1", "shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            json(stream, 200, "{\"status\": \"shutting-down\"}\n")
        }
        (_, ["v1", "healthz" | "backends" | "stats"]) | (_, ["v1", "sweeps", ..]) => {
            json(stream, 405, &json_error(&format!("method {} not allowed here", request.method)))
        }
        _ => json(stream, 404, &json_error(&format!("no route for {:?}", request.path))),
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    request: &Request,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    let json = |stream: &mut TcpStream, status: u16, body: &str| {
        respond(stream, status, "application/json", body.as_bytes())
    };
    if shared.shutting_down() {
        return json(stream, 503, &json_error("server is shutting down"));
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return json(stream, 400, &json_error("scenario body is not UTF-8")),
    };
    // Validate everything a worker would need *before* enqueueing, with
    // the same code paths the CLI uses: the scenario parser (which also
    // enforces the grid-size cap, lifted for search scenarios), the
    // crossval two-backend floor, the workload name resolver, and
    // backend construction. The queue only ever holds runnable jobs.
    // A scenario with a "search" block runs the adaptive driver, which
    // prices the design space without backends — so the two-backend
    // floor and backend construction are skipped, exactly as
    // `libra search` ignores the scenario's backend list.
    let scenario = match Scenario::from_json(body) {
        Ok(scenario) => scenario,
        Err(e) => return json(stream, 400, &json_error(&e.to_string())),
    };
    if scenario.search.is_none() {
        if scenario.backends.len() < 2 {
            return json(
                stream,
                400,
                &json_error(&format!(
                    "crossval needs at least two backends; scenario {:?} names {}",
                    scenario.name,
                    scenario.backends.len()
                )),
            );
        }
        if let Err(e) = scenario.build_backends(&shared.registry) {
            return json(stream, 400, &json_error(&e.to_string()));
        }
    }
    if let Err(e) = (shared.resolver)(&scenario) {
        return json(stream, 400, &json_error(&e.to_string()));
    }
    match shared.table.submit(scenario) {
        Ok((id, position)) => json(
            stream,
            202,
            &format!("{{\"job\": {}, \"position\": {position}}}\n", json_escape(&id)),
        ),
        Err(SubmitError::QueueFull { capacity }) => json(
            stream,
            503,
            &json_error(&format!("queue is full ({capacity} jobs waiting); retry later")),
        ),
        Err(SubmitError::ShuttingDown) => json(stream, 503, &json_error("server is shutting down")),
    }
}

fn handle_records(stream: &mut TcpStream, id: &str, shared: &Arc<Shared>) -> std::io::Result<()> {
    match shared.table.status(id) {
        None => respond(
            stream,
            404,
            "application/json",
            json_error(&format!("unknown job {id:?}")).as_bytes(),
        ),
        Some(JobStatus::Done { records, .. }) => {
            if let (Some(fault), Some(ordinal)) = (&shared.fault, JobTable::id_index(id)) {
                if fault.fires(fault::SERVER_RESPONSE_DROP, ordinal as u64) {
                    // Sever the stream mid-response: a valid chunked
                    // head and first chunk, then no terminator — the
                    // client must detect the truncation, not silently
                    // accept a partial record set.
                    return respond_chunked_partial(
                        stream,
                        200,
                        "application/jsonl",
                        records.split_inclusive(|&b| b == b'\n'),
                        1,
                    );
                }
            }
            // One HTTP chunk per JSON line: a slow consumer sees the
            // stream arrive record by record, and the reassembled body
            // is the byte-exact `libra crossval --jsonl -` stream.
            respond_chunked(
                stream,
                200,
                "application/jsonl",
                records.split_inclusive(|&b| b == b'\n'),
            )
        }
        Some(status) => respond(
            stream,
            409,
            "application/json",
            format!(
                "{{\"error\": \"job is not done\", \"state\": {}}}\n",
                json_escape(state_name(&status)),
            )
            .as_bytes(),
        ),
    }
}

fn state_name(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Queued { .. } => "queued",
        JobStatus::Running { .. } => "running",
        JobStatus::Done { .. } => "done",
        JobStatus::Failed { .. } => "failed",
    }
}

/// One job's status document.
fn status_json(id: &str, status: &JobStatus) -> String {
    let id = json_escape(id);
    match status {
        JobStatus::Queued { position } => {
            format!("{{\"job\": {id}, \"state\": \"queued\", \"position\": {position}}}\n")
        }
        JobStatus::Running { done, total } => format!(
            "{{\"job\": {id}, \"state\": \"running\", \"done\": {done}, \"total\": {total}}}\n"
        ),
        JobStatus::Done { summary, .. } => format!(
            "{{\"job\": {id}, \"state\": \"done\", \"results\": {}, \"errors\": {}, \
             \"max_rel_error\": {}, \"within_tolerance\": {}, \"exit_code\": {}}}\n",
            summary.results,
            summary.errors,
            json_f64(summary.max_rel_error),
            summary.within_tolerance,
            summary.exit_code(),
        ),
        JobStatus::Failed { error } => {
            format!("{{\"job\": {id}, \"state\": \"failed\", \"error\": {}}}\n", json_escape(error))
        }
    }
}

/// The `/v1/stats` document: queue and lifecycle counters plus the
/// shared store's hit/stage counters (null without a `--cache`).
fn stats_json(shared: &Arc<Shared>) -> String {
    let JobCounts { submitted, queued, running, done, failed } = shared.table.counts();
    let (hits, staged) = match &shared.store {
        Some(store) => {
            let stats = store.lock().unwrap().stats();
            (stats.hits.to_string(), stats.staged.to_string())
        }
        None => ("null".to_string(), "null".to_string()),
    };
    format!(
        "{{\"submitted\": {submitted}, \"queued\": {queued}, \"running\": {running}, \
         \"done\": {done}, \"failed\": {failed}, \"workers\": {}, \"queue_capacity\": {}, \
         \"store_hits\": {hits}, \"store_staged\": {staged}}}\n",
        shared.workers, shared.queue_capacity,
    )
}
