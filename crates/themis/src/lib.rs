//! # libra-themis
//!
//! A Themis-style **bandwidth-aware runtime collective scheduler** — the
//! substrate for the paper's Fig. 19 co-design study (LIBRA + Themis).
//!
//! Themis (Rashidi et al., ISCA '22) dynamically schedules collective
//! chunks over the dimensions of a multi-dimensional network in a greedy
//! manner, so that over-loaded dimensions shed work to under-utilized ones
//! at runtime. This crate implements that policy as a
//! [`ChunkScheduler`](libra_sim::collective::ChunkScheduler) for the
//! `libra-sim` engine: each time a chunk finishes a stage, it picks the
//! *unvisited* dimension with the earliest estimated finish time
//! (current backlog + its own service time).
//!
//! Because visiting a dimension early shrinks the payload carried into
//! later dimensions (multi-rail Reduce-Scatter), rebalancing the visit
//! order also reduces total traffic on hot dimensions — which is why Themis
//! recovers a large fraction of EqualBW's lost utilization, and why a
//! LIBRA-designed network still helps on top (the Fig. 19 result).

use std::collections::HashMap;
use std::collections::VecDeque;

use libra_sim::collective::{ChunkScheduler, StageOption};
use libra_sim::event::{transfer_with_latency_ps, Time};

/// The greedy bandwidth-aware chunk planner.
///
/// When a chunk schedules its *first* stage, the planner evaluates every
/// dimension-visit permutation against the projected per-dimension loads
/// (live server backlog plus the stages of previously planned chunks,
/// including payload shrink along each order) and commits to the
/// permutation that minimizes the resulting bottleneck load. Subsequent
/// stages follow the committed plan. Ties prefer the canonical ascending
/// order, so on an already-balanced (LIBRA-designed) network Themis
/// degenerates to the standard multi-rail schedule.
///
/// # Example
/// ```
/// use libra_core::comm::{Collective, GroupSpan};
/// use libra_sim::collective::run_collective;
/// use libra_themis::ThemisScheduler;
///
/// let span = GroupSpan::new(vec![(0, 4), (1, 4)]);
/// let res = run_collective(
///     2,
///     &[10.0, 10.0],
///     Collective::AllReduce,
///     1e9,
///     &span,
///     8,
///     &mut ThemisScheduler::new(),
/// );
/// assert!(res.makespan() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThemisScheduler {
    /// Projected completion time of all planned work per dimension.
    planned_end: HashMap<usize, Time>,
    /// Remaining committed visit order per chunk key.
    plans: HashMap<usize, VecDeque<usize>>,
}

impl ThemisScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        ThemisScheduler::default()
    }

    fn base_load(&self, o: &StageOption, now: Time) -> Time {
        let planned = self.planned_end.get(&o.dim).copied().unwrap_or(0);
        now.max(o.server_free_at).max(planned)
    }
}

/// Lexicographic permutations of `0..k` (canonical ascending order first).
fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::with_capacity(k);
    let mut used = vec![false; k];
    fn rec(k: usize, cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(k, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    rec(k, &mut cur, &mut used, &mut out);
    out
}

impl ChunkScheduler for ThemisScheduler {
    fn choose(&mut self, chunk: usize, now: Time, options: &[StageOption]) -> usize {
        // Follow an existing plan when one is committed.
        if let Some(plan) = self.plans.get_mut(&chunk) {
            if let Some(&d) = plan.front() {
                if let Some(i) = options.iter().position(|o| o.dim == d) {
                    plan.pop_front();
                    if plan.is_empty() {
                        self.plans.remove(&chunk);
                    }
                    return i;
                }
            }
            // Options diverged from the plan (shouldn't happen): replan.
            self.plans.remove(&chunk);
        }
        let k = options.len();
        if k == 1 {
            return 0;
        }
        // Evaluate all visit orders against projected loads. Spans have at
        // most a handful of dimensions, so k! stays tiny; guard anyway.
        let perms = if k <= 5 { permutations(k) } else { vec![(0..k).collect()] };
        let mut best_perm: &[usize] = &perms[0];
        let mut best_cost = Time::MAX;
        let mut best_loads: Vec<(usize, Time)> = Vec::new();
        for perm in &perms {
            // Load projection, not a schedule: each dimension's committed
            // work end advances by the service this order would add, with
            // the payload shrink the order produces. Chunk-level precedence
            // is deliberately ignored — chunks pipeline, so per-dimension
            // load is what determines the bottleneck (Fig. 9).
            let mut loads: Vec<Time> = options.iter().map(|o| self.base_load(o, now)).collect();
            let mut shrink = 1.0f64;
            for &idx in perm {
                let o = &options[idx];
                // α-β service estimate: serialization plus the dimension's
                // fixed per-stage overhead (zero on pure-bandwidth runs).
                loads[idx] = loads[idx].saturating_add(transfer_with_latency_ps(
                    o.bytes / shrink,
                    o.bw_gbps,
                    o.overhead_ps,
                ));
                if o.shrinks {
                    shrink *= o.extent as f64;
                }
            }
            let cost = loads.iter().copied().max().unwrap_or(now);
            // Strictly-better keeps the lexicographically-first (canonical)
            // order on ties.
            if cost < best_cost {
                best_cost = cost;
                best_perm = perm;
                best_loads = options.iter().map(|o| o.dim).zip(loads).collect();
            }
        }
        for &(dim, end) in &best_loads {
            let e = self.planned_end.entry(dim).or_insert(0);
            *e = (*e).max(end);
        }
        if best_perm.len() > 1 {
            let rest: VecDeque<usize> = best_perm[1..].iter().map(|&i| options[i].dim).collect();
            self.plans.insert(chunk, rest);
        }
        best_perm[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_core::comm::{Collective, GroupSpan};
    use libra_sim::collective::{run_collective, FixedOrder};

    fn span3() -> GroupSpan {
        GroupSpan::new(vec![(0, 4), (1, 4), (2, 4)])
    }

    /// On an EqualBW (mis-provisioned) network, Themis beats the canonical
    /// fixed order by spreading early stages across dimensions.
    #[test]
    fn beats_fixed_order_on_equal_bw() {
        let bw = [100.0, 100.0, 100.0]; // EqualBW: dim 0 is the bottleneck
        let bytes = 8e9;
        let fixed =
            run_collective(3, &bw, Collective::AllReduce, bytes, &span3(), 64, &mut FixedOrder);
        let themis = run_collective(
            3,
            &bw,
            Collective::AllReduce,
            bytes,
            &span3(),
            64,
            &mut ThemisScheduler::new(),
        );
        assert!(
            themis.makespan() < fixed.makespan(),
            "themis {} vs fixed {}",
            themis.makespan(),
            fixed.makespan()
        );
    }

    /// On a traffic-proportional (LIBRA-like) allocation, the fixed order
    /// is already near-optimal; Themis must not be much worse.
    #[test]
    fn no_regression_on_balanced_bw() {
        // Traffic ratios for 4×4×4 All-Reduce: 1.5m : 0.375m : 0.094m.
        let bw = [228.0, 57.0, 15.0];
        let bytes = 8e9;
        let fixed =
            run_collective(3, &bw, Collective::AllReduce, bytes, &span3(), 64, &mut FixedOrder);
        let themis = run_collective(
            3,
            &bw,
            Collective::AllReduce,
            bytes,
            &span3(),
            64,
            &mut ThemisScheduler::new(),
        );
        let ratio = themis.makespan() as f64 / fixed.makespan() as f64;
        assert!(ratio < 1.10, "themis should stay within 10% on balanced BW, ratio {ratio}");
    }

    /// Every chunk still performs all 2N stages (correctness of the
    /// algorithm under reordering).
    #[test]
    fn all_stages_execute() {
        let bw = [50.0, 50.0, 50.0];
        let chunks = 16;
        let res = run_collective(
            3,
            &bw,
            Collective::AllReduce,
            4e9,
            &span3(),
            chunks,
            &mut ThemisScheduler::new(),
        );
        // 3 RS + 3 AG stages per chunk.
        assert_eq!(res.records.len(), chunks * 6);
        // Gather stages replay scatter dims: per chunk, the multiset of
        // scatter dims equals the multiset of gather dims.
        for c in 0..chunks {
            let mut rs: Vec<usize> =
                res.records.iter().filter(|r| r.chunk == c && !r.gather).map(|r| r.dim).collect();
            let mut ag: Vec<usize> =
                res.records.iter().filter(|r| r.chunk == c && r.gather).map(|r| r.dim).collect();
            rs.sort_unstable();
            ag.sort_unstable();
            assert_eq!(rs, ag, "chunk {c}");
        }
    }

    /// Deterministic: same inputs, same schedule.
    #[test]
    fn deterministic() {
        let bw = [40.0, 20.0, 10.0];
        let a = run_collective(
            3,
            &bw,
            Collective::AllReduce,
            2e9,
            &span3(),
            32,
            &mut ThemisScheduler::new(),
        );
        let b = run_collective(
            3,
            &bw,
            Collective::AllReduce,
            2e9,
            &span3(),
            32,
            &mut ThemisScheduler::new(),
        );
        assert_eq!(a.records, b.records);
    }
}
