//! Pluggable evaluation backends: one communication plan, many evaluators.
//!
//! LIBRA's credibility rests on its closed-form multi-rail cost model
//! agreeing with chunk-level event-driven timelines (paper §II-C, Fig. 9).
//! This module makes that agreement checkable as a first-class subsystem:
//!
//! * [`CommPlan`] is the backend-neutral description of a workload's
//!   communication — sequential [`CommPhase`]s of concurrently released
//!   collective operations (reusing the [`CommOp`] IR).
//! * [`EvalBackend`] is the evaluator interface: given a bandwidth vector,
//!   produce the plan's end-to-end communication time in seconds.
//! * [`Analytical`] is the closed-form backend (`Σ_phases max_i Σ_ops
//!   traffic_i / B_i` — exactly the model [`crate::opt::evaluate`] prices).
//!
//! The event-driven counterpart (`EventSimBackend`) lives in `libra-sim`,
//! which depends on this crate; a [`crate::scenario::Session`] compares
//! any number of backends over a full design grid and reports every
//! pairwise divergence.
//!
//! # Adding a new backend
//!
//! Implement [`EvalBackend`] for your evaluator (an astra-sim bridge, a
//! trace replayer, …): map each [`CommPhase`] to your engine's notion of
//! concurrently released collectives, honour [`CommPhase::repeat`] by
//! multiplying the phase's makespan, and return total seconds. Backends
//! must be `Send + Sync` — cross-validation fans grid points out with
//! rayon and shares the backend across workers.

use crate::comm::CommModel;
use crate::error::LibraError;
use crate::network::{NetworkShape, UnitTopology};
use crate::workload::{CommOp, TrainingLoop, Workload};

/// α-β link parameters of one network dimension, in picoseconds.
///
/// The β (serialization) term is not stored here — it is what the
/// bandwidth vector under evaluation already encodes (`β = 1 / B`). What a
/// pure bandwidth model *cannot* express is the bandwidth-independent part
/// of a message's journey, and that is exactly what these two knobs carry:
///
/// * [`LinkParams::alpha_ps`] — the per-hop link latency α. A stage over a
///   Ring dimension of extent `e` pays `(e − 1)·α` (store-and-forward
///   relay), a FullyConnected dimension pays `α` (one direct hop), and a
///   Switch dimension pays `2·α` (NPU → switch → NPU).
/// * [`LinkParams::switch_ps`] — the per-message switch-traversal cost
///   (arbitration + crossbar + optional in-network reduction ALU), paid
///   once per stage on Switch dimensions only.
///
/// The default is zero latency, under which every latency-aware backend
/// must degenerate to its pure-bandwidth counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkParams {
    /// Per-hop link latency (picoseconds) — the α term.
    pub alpha_ps: f64,
    /// Per-message switch-traversal cost (picoseconds), Switch dims only.
    pub switch_ps: f64,
}

impl LinkParams {
    /// Zero-latency links (the pure-β regime).
    pub fn zero() -> Self {
        LinkParams::default()
    }

    /// Links with per-hop latency `alpha_ps` and no switch cost.
    pub fn latency(alpha_ps: f64) -> Self {
        LinkParams { alpha_ps, switch_ps: 0.0 }
    }

    /// Adds a per-message switch-traversal cost.
    #[must_use]
    pub fn with_switch_ps(mut self, switch_ps: f64) -> Self {
        self.switch_ps = switch_ps;
        self
    }
}

/// The network layer of one dimension: its unit-topology kind plus α-β
/// link parameters. The kind decides how many α hops a stage pays and
/// whether the dimension is eligible for in-network (switch) offload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimTopology {
    /// The dimension's unit topology (Ring / FullyConnected / Switch).
    pub kind: UnitTopology,
    /// The dimension's link parameters.
    pub link: LinkParams,
}

impl DimTopology {
    /// A dimension of `kind` with the given link parameters.
    pub fn new(kind: UnitTopology, link: LinkParams) -> Self {
        DimTopology { kind, link }
    }

    /// A zero-latency Switch dimension — the default a network-layer
    /// backend assumes for dims the plan does not describe, chosen so an
    /// unspecified plan prices identically to the pure-bandwidth backends.
    pub fn zero_switch() -> Self {
        DimTopology::new(UnitTopology::Switch, LinkParams::zero())
    }
}

/// The optional network-layer side channel of a [`CommPlan`]: one
/// [`DimTopology`] per fabric dimension.
///
/// Pure bandwidth backends ([`Analytical`], `EventSimBackend`) ignore it
/// entirely — it exists for network-layer backends (`libra_net`'s
/// `NetSimBackend`) that price per-hop latency, switch traversal, and
/// switch-resident reduction, which need to know each dimension's unit
/// topology and link parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetSpec {
    /// Per-dimension topologies, innermost first. May be shorter than the
    /// fabric's dimensionality; backends fall back to their default for
    /// uncovered dims.
    pub dims: Vec<DimTopology>,
}

impl NetSpec {
    /// `n_dims` dimensions of the same kind and link parameters.
    pub fn uniform(n_dims: usize, kind: UnitTopology, link: LinkParams) -> Self {
        NetSpec { dims: vec![DimTopology::new(kind, link); n_dims] }
    }

    /// Derives the spec from a [`NetworkShape`]'s per-dimension unit
    /// topologies, applying the same link parameters to every dimension.
    pub fn from_shape(shape: &NetworkShape, link: LinkParams) -> Self {
        NetSpec { dims: shape.dims().iter().map(|d| DimTopology::new(d.topology, link)).collect() }
    }

    /// The topology of dimension `d`, if described.
    pub fn dim(&self, d: usize) -> Option<DimTopology> {
        self.dims.get(d).copied()
    }
}

/// A set of collective operations released concurrently (they contend for
/// the same per-dimension bandwidth), optionally repeated back-to-back.
#[derive(Debug, Clone, PartialEq)]
pub struct CommPhase {
    /// The concurrently released operations.
    pub ops: Vec<CommOp>,
    /// How many times the phase executes back-to-back. Because phases are
    /// strictly sequential (the fabric drains between phases), repeating a
    /// phase `k` times takes exactly `k ×` its makespan under every
    /// backend — this keeps plans for 100-layer transformer stacks small.
    pub repeat: usize,
}

impl CommPhase {
    /// A phase running `ops` concurrently, once.
    pub fn new(ops: Vec<CommOp>) -> Self {
        CommPhase { ops, repeat: 1 }
    }

    /// A phase with a single operation, once.
    pub fn solo(op: CommOp) -> Self {
        CommPhase::new(vec![op])
    }

    /// The same phase repeated `repeat` times back-to-back.
    #[must_use]
    pub fn repeated(mut self, repeat: usize) -> Self {
        self.repeat = repeat;
        self
    }
}

/// A backend-neutral communication plan: sequential phases of concurrent
/// collectives. This is the common ground on which evaluation backends are
/// compared — analytical and event-driven evaluators consume the *same*
/// plan, so any disagreement is a modeling divergence, not an input skew.
///
/// Plans deliberately carry no compute constants: bandwidth-independent
/// terms are identical under every backend and would only dilute relative
/// errors that cross-validation exists to surface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommPlan {
    /// The sequential phases.
    pub phases: Vec<CommPhase>,
    /// Optional network-layer side channel (per-dimension topology kinds
    /// and α-β link parameters). `None` — the default — means "no network
    /// layer described"; pure bandwidth backends ignore the field either
    /// way, and network-layer backends fall back to zero-latency switch
    /// dimensions, so plans without a spec price identically everywhere.
    pub net: Option<NetSpec>,
}

impl CommPlan {
    /// An empty plan (zero communication time under every backend).
    pub fn new() -> Self {
        CommPlan::default()
    }

    /// A plan executing `ops` strictly sequentially, one phase each.
    pub fn serial(ops: impl IntoIterator<Item = CommOp>) -> Self {
        CommPlan { phases: ops.into_iter().map(CommPhase::solo).collect(), net: None }
    }

    /// Attaches a network-layer side channel (see [`NetSpec`]).
    #[must_use]
    pub fn with_net(mut self, net: NetSpec) -> Self {
        self.net = Some(net);
        self
    }

    /// Extracts the communication plan of a workload under a training loop:
    /// per layer, the forward collective, then the backward TP and DP
    /// collectives — concurrent under [`TrainingLoop::TpDpOverlap`]
    /// (Fig. 5c), sequential otherwise (Fig. 5b). Runs of identical
    /// consecutive layers collapse into repeated phases, mirroring
    /// [`crate::time::estimate`]'s run-length collapsing.
    pub fn from_workload(workload: &Workload, training_loop: TrainingLoop) -> Self {
        let mut phases: Vec<CommPhase> = Vec::new();
        let mut push = |phase: CommPhase| {
            if !phase.ops.is_empty() && phase.repeat > 0 {
                phases.push(phase);
            }
        };
        let mut i = 0usize;
        while i < workload.layers.len() {
            let layer = &workload.layers[i];
            let mut run = 1usize;
            while i + run < workload.layers.len() && workload.layers[i + run] == *layer {
                run += 1;
            }
            fn nontrivial(op: &Option<CommOp>) -> Option<&CommOp> {
                op.as_ref().filter(|c| c.bytes > 0.0 && !c.span.is_trivial())
            }
            if let Some(fwd) = nontrivial(&layer.fwd_comm) {
                push(CommPhase::solo(fwd.clone()).repeated(run));
            }
            match training_loop {
                TrainingLoop::NoOverlap => {
                    if let Some(tp) = nontrivial(&layer.tp_comm) {
                        push(CommPhase::solo(tp.clone()).repeated(run));
                    }
                    if let Some(dp) = nontrivial(&layer.dp_comm) {
                        push(CommPhase::solo(dp.clone()).repeated(run));
                    }
                }
                TrainingLoop::TpDpOverlap => {
                    let ops: Vec<CommOp> = [&layer.tp_comm, &layer.dp_comm]
                        .into_iter()
                        .filter_map(nontrivial)
                        .cloned()
                        .collect();
                    push(CommPhase::new(ops).repeated(run));
                }
            }
            i += run;
        }
        CommPlan { phases, net: None }
    }

    /// Whether the plan contains no operations at all.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|p| p.ops.is_empty() || p.repeat == 0)
    }

    /// Total payload bytes across every operation (repeats included).
    pub fn total_bytes(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.repeat as f64 * p.ops.iter().map(|o| o.bytes).sum::<f64>())
            .sum()
    }

    /// The largest dimension index any operation spans, if any.
    pub fn max_dim(&self) -> Option<usize> {
        self.phases
            .iter()
            .flat_map(|p| &p.ops)
            .flat_map(|o| o.span.extents().iter().map(|&(d, _)| d))
            .max()
    }
}

/// An evaluation backend: prices a [`CommPlan`] at a bandwidth vector.
///
/// Implementations must agree on units (seconds out, GB/s in) and on phase
/// semantics (phases are sequential, ops within a phase are concurrent,
/// [`CommPhase::repeat`] multiplies the phase makespan); everything else —
/// closed-form vs event-driven vs external simulator — is the backend's
/// business. See the module docs for how cross-validation uses pairs of
/// backends.
pub trait EvalBackend: Send + Sync {
    /// Short display name (used in divergence reports).
    fn name(&self) -> &str;

    /// End-to-end communication time of `plan` in seconds on an
    /// `n_dims`-dimensional fabric with per-dimension bandwidth `bw` (GB/s).
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] when the plan references a dimension
    /// `≥ n_dims`, `bw` is shorter than `n_dims`, or a spanned dimension
    /// has non-positive bandwidth.
    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError>;
}

/// Validates plan/bandwidth consistency shared by all well-behaved
/// backends; exported so new backends can reuse it.
///
/// # Errors
/// See [`EvalBackend::eval_plan`].
pub fn validate_plan(n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<(), LibraError> {
    if bw.len() < n_dims {
        return Err(LibraError::BadRequest(format!(
            "bandwidth vector has {} entries for a {n_dims}-dim fabric",
            bw.len()
        )));
    }
    if let Some(d) = plan.max_dim() {
        if d >= n_dims {
            return Err(LibraError::BadRequest(format!(
                "plan spans dim {d} but the fabric has {n_dims} dims"
            )));
        }
    }
    for phase in &plan.phases {
        for op in &phase.ops {
            for &(d, _) in op.span.extents() {
                if bw[d].is_nan() || bw[d] <= 0.0 {
                    return Err(LibraError::BadRequest(format!(
                        "dimension {d} has non-positive bandwidth {}",
                        bw[d]
                    )));
                }
            }
        }
    }
    Ok(())
}

/// The closed-form analytical backend (paper §II-C / §IV-C): a phase takes
/// `max_i (Σ_ops traffic_op,i) / B_i` seconds — per-dimension traffic
/// aggregated over the phase's concurrent ops, bottlenecked by the slowest
/// dimension — and sequential phases sum.
///
/// This is the model the optimizer ([`crate::opt`]) prices, restated over
/// [`CommPlan`], and is a *lower bound* on any faithful execution: it
/// assumes perfect pipelining with no fill/drain bubbles and no scheduling
/// gaps (see `EventSimBackend` in `libra-sim` for the documented gap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Analytical {
    /// Model in-network collective offload (reduces All-Reduce-family
    /// traffic to `m / Π_{j<i} e_j`, §IV-C). Off by default. Offloaded
    /// plans are no longer analytical-only: `libra_net`'s
    /// `NetSimBackend::offloaded` performs event-driven in-network
    /// reduction on switch dimensions, so this variant is cross-validated
    /// against a real timeline rather than merely asserted.
    pub in_network_offload: bool,
}

impl Analytical {
    /// The default endpoint-driven analytical backend.
    pub fn new() -> Self {
        Analytical::default()
    }

    /// Analytical time of a single phase (seconds).
    fn phase_secs(&self, n_dims: usize, bw: &[f64], phase: &CommPhase) -> f64 {
        let model = CommModel { in_network_offload: self.in_network_offload };
        let mut per_dim = vec![0.0f64; n_dims];
        for op in &phase.ops {
            if op.bytes <= 0.0 || op.span.is_trivial() {
                continue;
            }
            for (d, t) in model.traffic(op.collective, op.bytes, &op.span) {
                per_dim[d] += t;
            }
        }
        let bottleneck =
            per_dim.iter().enumerate().map(|(d, &t)| t / 1e9 / bw[d]).fold(0.0f64, f64::max);
        phase.repeat as f64 * bottleneck
    }
}

impl EvalBackend for Analytical {
    fn name(&self) -> &str {
        if self.in_network_offload {
            "analytical-offload"
        } else {
            "analytical"
        }
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        validate_plan(n_dims, bw, plan)?;
        Ok(plan.phases.iter().map(|p| self.phase_secs(n_dims, bw, p)).sum())
    }
}

/// A backend that scales another backend's times by a constant factor.
///
/// Primarily a divergence-injection aid: wrapping a faithful backend with a
/// factor outside the cross-validation tolerance must trip the
/// `DivergenceReport`, which is how the reporting path itself is tested.
/// (A factor of `1.0` is a transparent pass-through.)
#[derive(Debug, Clone, Copy)]
pub struct ScaledBackend<B> {
    /// The wrapped backend.
    pub inner: B,
    /// Multiplier applied to every evaluated time.
    pub factor: f64,
    /// Display name.
    pub label: &'static str,
}

impl<B: EvalBackend> ScaledBackend<B> {
    /// Wraps `inner`, scaling its times by `factor`.
    pub fn new(inner: B, factor: f64, label: &'static str) -> Self {
        ScaledBackend { inner, factor, label }
    }
}

impl<B: EvalBackend> EvalBackend for ScaledBackend<B> {
    fn name(&self) -> &str {
        self.label
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        Ok(self.factor * self.inner.eval_plan(n_dims, bw, plan)?)
    }
}

/// Symmetric relative error between two times: `|a − b| / max(|a|, |b|)`,
/// and `0` when both are (near) zero. Symmetry means neither backend is
/// privileged as "truth" — divergence is mutual disagreement.
///
/// A non-finite input yields NaN, never a passing number: `f64::max`
/// drops NaN operands, so without the explicit check `rel_error(NaN, 0.0)`
/// would hit the near-zero denominator branch and report a perfect `0.0`
/// for a poisoned backend time.
pub fn rel_error(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return f64::NAN;
    }
    let denom = a.abs().max(b.abs());
    if denom <= f64::EPSILON {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, GroupSpan};
    use crate::time::estimate;
    use crate::workload::Layer;

    fn op(gb: f64, span: GroupSpan) -> CommOp {
        CommOp::new(Collective::AllReduce, gb * 1e9, span)
    }

    fn span01() -> GroupSpan {
        GroupSpan::new(vec![(0, 4), (1, 8)])
    }

    #[test]
    fn analytical_matches_comm_model_for_one_collective() {
        // One op per phase must price identically to CommModel::time_expr.
        let plan = CommPlan::serial([op(4.0, span01())]);
        let bw = [100.0, 10.0];
        let got = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        let expr = CommModel::default().time_expr(Collective::AllReduce, 4e9, &span01());
        assert!((got - expr.eval(&bw)).abs() < 1e-12);
    }

    #[test]
    fn phases_sum_and_repeat_multiplies() {
        let one = CommPlan::serial([op(2.0, span01())]);
        let bw = [50.0, 25.0];
        let t1 = Analytical::new().eval_plan(2, &bw, &one).unwrap();
        let three =
            CommPlan { phases: vec![CommPhase::solo(op(2.0, span01())).repeated(3)], net: None };
        let t3 = Analytical::new().eval_plan(2, &bw, &three).unwrap();
        assert!((t3 - 3.0 * t1).abs() < 1e-12);
        let seq = CommPlan::serial([op(2.0, span01()), op(2.0, span01()), op(2.0, span01())]);
        let ts = Analytical::new().eval_plan(2, &bw, &seq).unwrap();
        assert!((ts - t3).abs() < 1e-12);
    }

    #[test]
    fn concurrent_ops_aggregate_per_dim_traffic() {
        // Two concurrent ops on disjoint dims: phase time is the slower one.
        let a = CommOp::new(Collective::AllReduce, 4e9, GroupSpan::new(vec![(0, 4)]));
        let b = CommOp::new(Collective::AllReduce, 1e9, GroupSpan::new(vec![(1, 4)]));
        let plan = CommPlan { phases: vec![CommPhase::new(vec![a.clone(), b.clone()])], net: None };
        let bw = [10.0, 10.0];
        let t = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        // a: 2·4·(3/4) = 6 GB on dim0 → 0.6 s; b: 1.5 GB on dim1 → 0.15 s.
        assert!((t - 0.6).abs() < 1e-12);
        // Same dim instead: traffic adds.
        let b0 = CommOp::new(Collective::AllReduce, 1e9, GroupSpan::new(vec![(0, 4)]));
        let plan = CommPlan { phases: vec![CommPhase::new(vec![a, b0])], net: None };
        let t = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        assert!((t - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_workload_no_overlap_matches_estimate_minus_compute() {
        let layer = Layer {
            name: "l".into(),
            fwd_compute: 0.1,
            fwd_comm: Some(op(1.0, span01())),
            igrad_compute: 0.2,
            tp_comm: Some(op(2.0, span01())),
            wgrad_compute: 0.3,
            dp_comm: Some(CommOp::new(Collective::ReduceScatter, 4e9, span01())),
        };
        let w = Workload::new("toy", vec![layer.clone(), layer]);
        let plan = CommPlan::from_workload(&w, TrainingLoop::NoOverlap);
        // Identical layers collapse: 3 phases, each repeated twice.
        assert_eq!(plan.phases.len(), 3);
        assert!(plan.phases.iter().all(|p| p.repeat == 2));
        let bw = [10.0, 10.0];
        let plan_t = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        let expr = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        let compute = w.total_compute();
        assert!((plan_t - (expr.eval(&bw) - compute)).abs() < 1e-9);
    }

    #[test]
    fn from_workload_overlap_runs_tp_and_dp_concurrently() {
        let layer = Layer {
            name: "l".into(),
            tp_comm: Some(op(2.0, GroupSpan::new(vec![(0, 4)]))),
            dp_comm: Some(CommOp::new(
                Collective::ReduceScatter,
                4e9,
                GroupSpan::new(vec![(1, 8)]),
            )),
            ..Default::default()
        };
        let w = Workload::new("toy", vec![layer]);
        let plan = CommPlan::from_workload(&w, TrainingLoop::TpDpOverlap);
        assert_eq!(plan.phases.len(), 1);
        assert_eq!(plan.phases[0].ops.len(), 2);
        // Disjoint dims overlap perfectly: max, not sum.
        let bw = [10.0, 10.0];
        let t = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        // tp: 2·2·(3/4) = 3 GB → 0.3 s; dp: 4·(7/8) = 3.5 GB → 0.35 s.
        assert!((t - 0.35).abs() < 1e-12);
    }

    #[test]
    fn trivial_and_empty_ops_are_dropped() {
        let layer = Layer {
            name: "l".into(),
            fwd_comm: Some(CommOp::new(Collective::AllReduce, 0.0, span01())),
            tp_comm: Some(op(1.0, GroupSpan::new(vec![]))),
            ..Default::default()
        };
        let w = Workload::new("toy", vec![layer]);
        let plan = CommPlan::from_workload(&w, TrainingLoop::NoOverlap);
        assert!(plan.is_empty());
        assert_eq!(Analytical::new().eval_plan(2, &[1.0, 1.0], &plan).unwrap(), 0.0);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let plan = CommPlan::serial([op(1.0, span01())]);
        // Short bandwidth vector.
        assert!(Analytical::new().eval_plan(2, &[10.0], &plan).is_err());
        // Plan spans a dim outside the fabric.
        assert!(Analytical::new().eval_plan(1, &[10.0], &plan).is_err());
        // Zero bandwidth on a spanned dim.
        assert!(Analytical::new().eval_plan(2, &[10.0, 0.0], &plan).is_err());
        // Fine otherwise — unspanned dims may have zero bandwidth.
        let inner = CommPlan::serial([op(1.0, GroupSpan::new(vec![(0, 4)]))]);
        assert!(Analytical::new().eval_plan(2, &[10.0, 0.0], &inner).is_ok());
    }

    #[test]
    fn plan_totals_and_max_dim() {
        let plan = CommPlan {
            phases: vec![
                CommPhase::solo(op(1.0, span01())).repeated(2),
                CommPhase::solo(op(3.0, GroupSpan::new(vec![(0, 4)]))),
            ],
            net: None,
        };
        assert!((plan.total_bytes() - 5e9).abs() < 1.0);
        assert_eq!(plan.max_dim(), Some(1));
        assert!(!plan.is_empty());
        assert_eq!(CommPlan::new().max_dim(), None);
    }

    #[test]
    fn rel_error_is_symmetric_and_zero_safe() {
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert!((rel_error(1.0, 1.1) - rel_error(1.1, 1.0)).abs() < 1e-15);
        assert!((rel_error(1.0, 2.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn net_spec_side_channel_is_inert_for_bandwidth_backends() {
        use crate::network::NetworkShape;
        let shape: NetworkShape = "RI(4)_SW(8)".parse().unwrap();
        let spec = NetSpec::from_shape(&shape, LinkParams::latency(1e6).with_switch_ps(5e5));
        assert_eq!(spec.dims.len(), 2);
        assert_eq!(spec.dim(0).unwrap().kind, UnitTopology::Ring);
        assert_eq!(spec.dim(1).unwrap().kind, UnitTopology::Switch);
        assert_eq!(spec.dim(2), None);
        // Attaching a spec changes nothing for the analytical backend.
        let bare = CommPlan::serial([op(1.0, span01())]);
        let specced = bare.clone().with_net(spec);
        let bw = [10.0, 10.0];
        let a = Analytical::new();
        assert_eq!(a.eval_plan(2, &bw, &bare).unwrap(), a.eval_plan(2, &bw, &specced).unwrap());
        // Defaults: zero latency, Switch kind for unspecified dims.
        assert_eq!(LinkParams::zero(), LinkParams::default());
        assert_eq!(DimTopology::zero_switch().kind, UnitTopology::Switch);
        assert_eq!(NetSpec::uniform(3, UnitTopology::Ring, LinkParams::zero()).dims.len(), 3);
    }

    #[test]
    fn offload_variant_prices_offloaded_traffic() {
        let plan = CommPlan::serial([op(1.0, span01())]);
        let bw = [10.0, 10.0];
        let plain = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        let off = Analytical { in_network_offload: true };
        assert_eq!(off.name(), "analytical-offload");
        let t = off.eval_plan(2, &bw, &plan).unwrap();
        assert!(t < plain);
        // Offloaded: dim0 carries m = 1 GB → 0.1 s; dim1 carries m/4 → 0.025.
        assert!((t - 0.1).abs() < 1e-12);
    }
}
