//! Scenario-first front door: one declarative problem description, any
//! number of evaluation backends, streaming result sinks.
//!
//! The sweep surface used to grow one entry point per backend count
//! (`run`, `run_cross_validated`, `run_cross_validated3`, each with a
//! `_serial` twin). This module replaces that accretion with a single
//! scenario-shaped API, mirroring how the paper itself frames its
//! experiments — one workload/topology grid priced by interchangeable
//! models:
//!
//! * [`Scenario`] (built by [`ScenarioBuilder`]) is the declarative
//!   description: shapes × budgets × objectives, workload names, optional
//!   α-β link parameters, backend names, chunking, tolerance, and
//!   warm-start policy. Scenarios are **data**: they round-trip through a
//!   hand-rolled JSON file format ([`Scenario::to_json`] /
//!   [`Scenario::from_json`]), which is what makes grids shardable across
//!   processes.
//! * [`BackendRegistry`] maps backend *names* (`"analytical"`,
//!   `"analytical-offload"`, plus `"event-sim"` / `"net-sim"` registered
//!   by `libra-sim` / `libra-net`, plus user registrations) to
//!   constructors, so a scenario file can name its evaluators.
//! * [`Session`] executes: [`Session::run`] prices **any number** of
//!   backends per grid point in one rayon fan-out and reports every
//!   pairwise disagreement as a [`DivergenceMatrix`]. `N = 0` is a plain
//!   sweep, `N = 2` is the old two-way cross-validation, `N = 3` the old
//!   three-way — one code path for all of them.
//! * [`ReportSink`] streams per-point [`RecordRow`]s out of the run
//!   (console table, JSON-lines, in-memory collector) instead of forcing
//!   callers to hold the whole report — the prerequisite for sharded
//!   grids whose shards aggregate downstream.
//!
//! ```
//! use libra_core::comm::{Collective, CommModel, GroupSpan};
//! use libra_core::cost::CostModel;
//! use libra_core::eval::{Analytical, CommPlan};
//! use libra_core::opt::Objective;
//! use libra_core::scenario::Session;
//! use libra_core::sweep::{FnWorkload, SweepGrid};
//! use libra_core::workload::CommOp;
//!
//! let wl = FnWorkload::new("allreduce-1g", |shape| {
//!     let comm = CommModel::default();
//!     Ok(vec![(1.0, comm.time_expr(Collective::AllReduce, 1e9, &GroupSpan::full(shape)))])
//! })
//! .with_plan(|shape| {
//!     Ok(CommPlan::serial([CommOp::new(Collective::AllReduce, 1e9, GroupSpan::full(shape))]))
//! });
//! let grid = SweepGrid::new()
//!     .with_shape("RI(8)_SW(4)".parse()?)
//!     .with_budgets([100.0, 200.0])
//!     .with_objectives([Objective::Perf]);
//! let cm = CostModel::default();
//! let a = Analytical::new();
//! // One front door, N backends: here N = 2 identical ones.
//! let report = Session::new(&cm).with_tolerance(0.0).run(&grid, &[wl], &[&a, &a]);
//! assert_eq!(report.sweep.results.len(), 2);
//! assert_eq!(report.divergence.pairs.len(), 1);
//! assert!(report.divergence.within_tolerance());
//! # Ok::<(), libra_core::LibraError>(())
//! ```

use std::io::Write;

use crate::cost::CostModel;
use crate::error::LibraError;
use crate::eval::{EvalBackend, LinkParams};
use crate::network::NetworkShape;
use crate::opt::Objective;
use crate::search::{Cosearch, SearchConfig};
use crate::store::Fingerprint;
use crate::sweep::{
    CrossValidation, DivergenceReport, ExecMode, SweepEngine, SweepError, SweepGrid, SweepReport,
    SweepResult, SweepWorkload,
};

// ---------------------------------------------------------------------------
// Minimal JSON (serde-free, matching the perf harness's hand-rolled style).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object key order is preserved (scenario files are
/// written and diffed by humans and CI goldens).
///
/// Public because this is the workspace's one JSON layer: the store,
/// the dispatcher, and the `libra-server` HTTP front end all parse and
/// emit through it, so every byte-identity guarantee rests on a single
/// formatter.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for non-objects).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value, also accepting the quoted non-finite encodings
    /// [`json_f64`] emits (`"NaN"`, `"Infinity"`, `"-Infinity"`) — the
    /// decoder every numeric field uses, so a backend that produced a
    /// non-finite time still round-trips through the JSON-lines stream
    /// instead of poisoning re-aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value that parses back **bit-identically**
/// through [`Json::as_f64`]: finite values use Rust's float `Display`
/// (the shortest exactly-round-tripping decimal); non-finite values —
/// which a misbehaving backend can produce, and which cross-validation
/// must surface rather than drop — are encoded as the quoted strings
/// `"NaN"` / `"Infinity"` / `"-Infinity"`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v > 0.0 {
        "\"Infinity\"".to_string()
    } else {
        "\"-Infinity\"".to_string()
    }
}

/// Recursive-descent parser for [`Json`]. Rejects duplicate object keys
/// (a scenario field silently shadowed by a later duplicate would be a
/// debugging trap).
pub struct JsonParser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> JsonParser<'s> {
    /// Parses `input` as one complete JSON value.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] with a byte offset on malformed input
    /// or trailing characters.
    pub fn parse(input: &'s str) -> Result<Json, LibraError> {
        let mut p = JsonParser { bytes: input.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, what: &str) -> LibraError {
        LibraError::BadRequest(format!("invalid JSON at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), LibraError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, LibraError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, LibraError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, LibraError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| LibraError::BadRequest(format!("invalid JSON number {text:?}")))
    }

    fn string(&mut self) -> Result<String, LibraError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for scenario
                            // files; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, LibraError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, LibraError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _): &(String, Json)| *k == key) {
                return Err(self.err(&format!(
                    "duplicate object key {key:?} — the later value would \
                     silently shadow the earlier one"
                )));
            }
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Objective naming (scenario files speak strings).
// ---------------------------------------------------------------------------

/// The scenario-file name of an [`Objective`] (`"perf"` /
/// `"perf-per-cost"`).
pub fn objective_name(o: Objective) -> &'static str {
    match o {
        Objective::Perf => "perf",
        Objective::PerfPerCost => "perf-per-cost",
    }
}

/// Parses an [`Objective`] from its scenario-file name.
///
/// # Errors
/// [`LibraError::BadRequest`] naming the known objectives.
pub fn objective_from_name(s: &str) -> Result<Objective, LibraError> {
    match s {
        "perf" => Ok(Objective::Perf),
        "perf-per-cost" => Ok(Objective::PerfPerCost),
        other => Err(LibraError::BadRequest(format!(
            "unknown objective {other:?}; known objectives: \"perf\", \"perf-per-cost\""
        ))),
    }
}

// ---------------------------------------------------------------------------
// Scenario: the declarative problem description.
// ---------------------------------------------------------------------------

/// A declarative sweep description: everything a [`Session`] needs except
/// the workload *implementations* (workloads are referenced by name and
/// resolved by the caller — `libra-bench` maps Table II model names).
///
/// Build with [`Scenario::builder`]; serialize with [`Scenario::to_json`] /
/// [`Scenario::save`]; parse with [`Scenario::from_json`] /
/// [`Scenario::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (also echoed into streamed report headers).
    pub name: String,
    /// Candidate shapes, in grid order.
    pub shapes: Vec<NetworkShape>,
    /// Total per-NPU bandwidth budgets (GB/s), in grid order.
    pub budgets: Vec<f64>,
    /// Optimization objectives, in grid order.
    pub objectives: Vec<Objective>,
    /// Workload names (resolved by the caller, e.g. Table II model names).
    pub workloads: Vec<String>,
    /// Optional α-β link parameters attached to every workload's plan
    /// (what `net-sim` prices; bandwidth-only backends ignore it).
    pub link: Option<LinkParams>,
    /// Backend names resolved through a [`BackendRegistry`]. Empty means a
    /// plain (un-validated) sweep.
    pub backends: Vec<String>,
    /// Chunks per collective for chunk-pipelined backends.
    pub chunks: usize,
    /// Pairwise relative-error tolerance for the divergence verdicts.
    pub tolerance: f64,
    /// Warm-start design solves along the budget axis
    /// (see [`SweepEngine::with_warm_start`]).
    pub warm_start: bool,
    /// Optional adaptive-search block (see [`crate::search`]). When
    /// present the scenario runs through the Pareto-guided driver, and
    /// grids above [`Scenario::MAX_GRID_POINTS`] become legal — search
    /// never materializes the nominal grid.
    pub search: Option<SearchConfig>,
}

impl Scenario {
    /// Schema tag written into scenario files.
    pub const SCHEMA: &'static str = "libra-scenario-v1";

    /// Largest shapes × workloads × budgets × objectives cross product a
    /// scenario may declare (2²² ≈ 4.2M points). Every grid point costs
    /// a solver run plus a report record, so anything past this bound is
    /// a mis-written scenario (or a hostile request to a sweep server),
    /// not a workload this exhaustive engine could finish — the adaptive
    /// search driver on the roadmap is the answer to genuinely huge
    /// spaces. Enforced by [`ScenarioBuilder::build`], hence everywhere
    /// scenarios enter (files, the CLI, `POST /v1/sweeps`).
    pub const MAX_GRID_POINTS: usize = 1 << 22;

    /// Starts building a scenario named `name`.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                shapes: Vec::new(),
                budgets: Vec::new(),
                objectives: Vec::new(),
                workloads: Vec::new(),
                link: None,
                backends: Vec::new(),
                chunks: 64,
                tolerance: CrossValidation::DEFAULT_TOLERANCE,
                warm_start: true,
                search: None,
            },
        }
    }

    /// The scenario's design grid (shapes × budgets × objectives).
    pub fn grid(&self) -> SweepGrid {
        SweepGrid::new()
            .with_shapes(self.shapes.iter().cloned())
            .with_budgets(self.budgets.iter().copied())
            .with_objectives(self.objectives.iter().copied())
    }

    /// A [`Session`] configured the way the scenario asks (warm-start
    /// policy on the engine, scenario tolerance). Pair with
    /// [`Session::run_scenario`].
    pub fn session<'a>(&self, cost_model: &'a CostModel) -> Session<'a> {
        Session::from_engine(SweepEngine::new(cost_model).with_warm_start(self.warm_start))
            .with_tolerance(self.tolerance)
    }

    /// Instantiates the scenario's backends through `registry` (in
    /// scenario order).
    ///
    /// # Errors
    /// Propagates unknown-name errors from [`BackendRegistry::build`].
    pub fn build_backends(
        &self,
        registry: &BackendRegistry,
    ) -> Result<Vec<Box<dyn EvalBackend>>, LibraError> {
        registry.build_all(&self.backends, &BackendConfig { chunks: self.chunks })
    }

    /// Serializes the scenario as pretty-printed JSON (2-space indent,
    /// keys in a fixed order — diff-friendly and [`Scenario::from_json`]
    /// round-trippable).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let field = |o: &mut String, key: &str, value: String, last: bool| {
            o.push_str(&format!("  {}: {value}", json_escape(key)));
            if !last {
                o.push(',');
            }
            o.push('\n');
        };
        let str_arr = |items: &[String]| {
            let inner: Vec<String> = items.iter().map(|s| json_escape(s)).collect();
            format!("[{}]", inner.join(", "))
        };
        field(&mut o, "schema", json_escape(Self::SCHEMA), false);
        field(&mut o, "name", json_escape(&self.name), false);
        let shapes: Vec<String> = self.shapes.iter().map(|s| s.to_string()).collect();
        field(&mut o, "shapes", str_arr(&shapes), false);
        let budgets: Vec<String> = self.budgets.iter().map(|&b| json_f64(b)).collect();
        field(&mut o, "budgets", format!("[{}]", budgets.join(", ")), false);
        let objectives: Vec<String> =
            self.objectives.iter().map(|&ob| objective_name(ob).to_string()).collect();
        field(&mut o, "objectives", str_arr(&objectives), false);
        field(&mut o, "workloads", str_arr(&self.workloads), false);
        match self.link {
            Some(link) => field(
                &mut o,
                "link",
                format!(
                    "{{\"alpha_ps\": {}, \"switch_ps\": {}}}",
                    json_f64(link.alpha_ps),
                    json_f64(link.switch_ps)
                ),
                false,
            ),
            None => field(&mut o, "link", "null".to_string(), false),
        }
        field(&mut o, "backends", str_arr(&self.backends), false);
        field(&mut o, "chunks", self.chunks.to_string(), false);
        field(&mut o, "tolerance", json_f64(self.tolerance), false);
        field(&mut o, "warm_start", self.warm_start.to_string(), self.search.is_none());
        if let Some(search) = &self.search {
            let mut s = String::from("{");
            s.push_str(&format!("\"seed_budgets\": {}", search.seed_budgets));
            s.push_str(&format!(", \"refine_radius\": {}", search.refine_radius));
            s.push_str(&format!(", \"max_rounds\": {}", search.max_rounds));
            s.push_str(&format!(", \"max_evals\": {}", search.max_evals));
            if let Some(cs) = &search.cosearch {
                let tp: Vec<String> = cs.tp.iter().map(u64::to_string).collect();
                s.push_str(&format!(
                    ", \"cosearch\": {{\"model\": {}, \"tp\": [{}], \"global_batch\": {}}}",
                    json_escape(&cs.model),
                    tp.join(", "),
                    cs.global_batch
                ));
            }
            s.push('}');
            field(&mut o, "search", s, true);
        }
        o.push_str("}\n");
        o
    }

    /// Parses a scenario from its JSON form.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] on malformed JSON, an unknown schema
    /// tag, or invalid field contents;
    /// [`LibraError::ParseNetwork`] for bad shape strings.
    pub fn from_json(input: &str) -> Result<Self, LibraError> {
        let root = JsonParser::parse(input)?;
        let bad = |what: String| LibraError::BadRequest(what);
        if let Some(schema) = root.get("schema").and_then(Json::as_str) {
            if schema != Self::SCHEMA {
                return Err(bad(format!(
                    "unsupported scenario schema {schema:?} (expected {:?})",
                    Self::SCHEMA
                )));
            }
        }
        // Unknown keys are rejected, not ignored: a typo'd optional field
        // ("tolerence", "warm-start") silently reverting to its default
        // would change run verdicts with nothing pointing at the typo.
        const KNOWN_KEYS: [&str; 12] = [
            "schema",
            "name",
            "shapes",
            "budgets",
            "objectives",
            "workloads",
            "link",
            "backends",
            "chunks",
            "tolerance",
            "warm_start",
            "search",
        ];
        if let Json::Obj(fields) = &root {
            for (key, _) in fields {
                if !KNOWN_KEYS.contains(&key.as_str()) {
                    return Err(bad(format!(
                        "unknown scenario field {key:?}; known fields: {}",
                        KNOWN_KEYS.join(", ")
                    )));
                }
            }
        }
        let str_field = |key: &str| -> Result<&str, LibraError> {
            root.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| bad(format!("scenario is missing string field {key:?}")))
        };
        let arr_field = |key: &str| -> Result<&[Json], LibraError> {
            root.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(format!("scenario is missing array field {key:?}")))
        };
        let str_items = |key: &str| -> Result<Vec<String>, LibraError> {
            arr_field(key)?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad(format!("field {key:?} must hold strings")))
                })
                .collect()
        };

        let mut b = Scenario::builder(str_field("name")?);
        for s in str_items("shapes")? {
            b = b.with_shape(s.parse::<NetworkShape>()?);
        }
        // Budgets: either an explicit array, or a ladder object
        // `{"from", "to", "count", "scale"}` expanded here — the compact
        // form huge search scenarios need (an over-cap grid would be
        // absurd to spell out point by point).
        let budgets: Vec<f64> = match root.get("budgets") {
            Some(ladder @ Json::Obj(fields)) => {
                for (key, _) in fields {
                    if !matches!(key.as_str(), "from" | "to" | "count" | "scale") {
                        return Err(bad(format!(
                            "unknown budgets field {key:?}; known fields: from, to, count, scale"
                        )));
                    }
                }
                let num = |key: &str| -> Result<f64, LibraError> {
                    let v = ladder
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad(format!("budgets ladder needs number field {key:?}")))?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(bad(format!(
                            "budgets ladder field {key:?} must be finite and > 0, got {v}"
                        )));
                    }
                    Ok(v)
                };
                let (from, to) = (num("from")?, num("to")?);
                let count = ladder
                    .get("count")
                    .and_then(Json::as_num)
                    .ok_or_else(|| bad("budgets ladder needs number field \"count\"".into()))?;
                if count < 2.0 || count.fract() != 0.0 {
                    return Err(bad(format!(
                        "budgets ladder field \"count\" must be an integer >= 2, got {count}"
                    )));
                }
                let count = count as usize;
                let scale = match ladder.get("scale").map(Json::as_str) {
                    None => "linear",
                    Some(Some(s @ ("linear" | "geometric"))) => s,
                    Some(other) => {
                        return Err(bad(format!(
                            "budgets ladder field \"scale\" must be \"linear\" or \
                             \"geometric\", got {other:?}"
                        )))
                    }
                };
                (0..count)
                    .map(|i| {
                        let t = i as f64 / (count - 1) as f64;
                        if scale == "linear" {
                            from + t * (to - from)
                        } else {
                            from * (to / from).powf(t)
                        }
                    })
                    .collect()
            }
            _ => arr_field("budgets")?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| bad("field \"budgets\" must hold numbers".into()))
                })
                .collect::<Result<_, _>>()?,
        };
        b = b.with_budgets(budgets);
        for name in str_items("objectives")? {
            b = b.with_objectives([objective_from_name(&name)?]);
        }
        b = b.with_workloads(str_items("workloads")?);
        match root.get("link") {
            None | Some(Json::Null) => {}
            Some(link) => {
                if let Json::Obj(fields) = link {
                    for (key, _) in fields {
                        if key != "alpha_ps" && key != "switch_ps" {
                            return Err(bad(format!(
                                "unknown link field {key:?}; known fields: alpha_ps, switch_ps"
                            )));
                        }
                    }
                }
                let num = |key: &str| -> Result<f64, LibraError> {
                    match link.get(key) {
                        None => Ok(0.0),
                        Some(v) => v
                            .as_f64()
                            .ok_or_else(|| bad(format!("link field {key:?} must be a number"))),
                    }
                };
                b = b.with_link(LinkParams {
                    alpha_ps: num("alpha_ps")?,
                    switch_ps: num("switch_ps")?,
                });
            }
        }
        b = b.with_backends(str_items("backends")?);
        if let Some(v) = root.get("chunks") {
            let n = v.as_num().ok_or_else(|| bad("field \"chunks\" must be a number".into()))?;
            if n < 1.0 || n.fract() != 0.0 {
                return Err(bad(format!("field \"chunks\" must be a positive integer, got {n}")));
            }
            b = b.with_chunks(n as usize);
        }
        if let Some(v) = root.get("tolerance") {
            let t = v.as_f64().ok_or_else(|| bad("field \"tolerance\" must be a number".into()))?;
            if !t.is_finite() {
                return Err(bad(format!("field \"tolerance\" must be a finite number, got {t}")));
            }
            b = b.with_tolerance(t);
        }
        if let Some(v) = root.get("warm_start") {
            let w =
                v.as_bool().ok_or_else(|| bad("field \"warm_start\" must be a boolean".into()))?;
            b = b.with_warm_start(w);
        }
        match root.get("search") {
            None | Some(Json::Null) => {}
            Some(search) => {
                let Json::Obj(fields) = search else {
                    return Err(bad("field \"search\" must be an object".into()));
                };
                for (key, _) in fields {
                    if !matches!(
                        key.as_str(),
                        "seed_budgets" | "refine_radius" | "max_rounds" | "max_evals" | "cosearch"
                    ) {
                        return Err(bad(format!(
                            "unknown search field {key:?}; known fields: seed_budgets, \
                             refine_radius, max_rounds, max_evals, cosearch"
                        )));
                    }
                }
                let uint = |key: &str, default: usize| -> Result<usize, LibraError> {
                    match search.get(key) {
                        None => Ok(default),
                        Some(v) => {
                            let n = v.as_num().ok_or_else(|| {
                                bad(format!("search field {key:?} must be a number"))
                            })?;
                            if n < 0.0 || n.fract() != 0.0 {
                                return Err(bad(format!(
                                    "search field {key:?} must be a non-negative integer, got {n}"
                                )));
                            }
                            Ok(n as usize)
                        }
                    }
                };
                let defaults = SearchConfig::default();
                let mut cfg = SearchConfig {
                    seed_budgets: uint("seed_budgets", defaults.seed_budgets)?,
                    refine_radius: uint("refine_radius", defaults.refine_radius)?,
                    max_rounds: uint("max_rounds", defaults.max_rounds)?,
                    max_evals: uint("max_evals", defaults.max_evals)?,
                    cosearch: None,
                };
                match search.get("cosearch") {
                    None | Some(Json::Null) => {}
                    Some(cs) => {
                        let Json::Obj(fields) = cs else {
                            return Err(bad("search field \"cosearch\" must be an object".into()));
                        };
                        for (key, _) in fields {
                            if !matches!(key.as_str(), "model" | "tp" | "global_batch") {
                                return Err(bad(format!(
                                    "unknown cosearch field {key:?}; known fields: model, tp, \
                                     global_batch"
                                )));
                            }
                        }
                        let model = cs
                            .get("model")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("cosearch needs string field \"model\"".into()))?
                            .to_string();
                        let tp: Vec<u64> = cs
                            .get("tp")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| bad("cosearch needs array field \"tp\"".into()))?
                            .iter()
                            .map(|v| match v.as_num() {
                                Some(n) if n >= 1.0 && n.fract() == 0.0 => Ok(n as u64),
                                _ => Err(bad(
                                    "cosearch field \"tp\" must hold positive integers".into()
                                )),
                            })
                            .collect::<Result<_, _>>()?;
                        let gb =
                            cs.get("global_batch").and_then(Json::as_num).ok_or_else(|| {
                                bad("cosearch needs number field \"global_batch\"".into())
                            })?;
                        if gb < 1.0 || gb.fract() != 0.0 {
                            return Err(bad(format!(
                                "cosearch field \"global_batch\" must be a positive integer, \
                                 got {gb}"
                            )));
                        }
                        cfg.cosearch = Some(Cosearch { model, tp, global_batch: gb as u64 });
                    }
                }
                b = b.with_search(cfg);
            }
        }
        b.build()
    }

    /// Writes the scenario to `path` as JSON.
    ///
    /// # Errors
    /// Propagates I/O failures as [`LibraError::BadRequest`].
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), LibraError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json())
            .map_err(|e| LibraError::BadRequest(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads a scenario from a JSON file.
    ///
    /// # Errors
    /// I/O failures as [`LibraError::BadRequest`]; parse failures as in
    /// [`Scenario::from_json`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, LibraError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| LibraError::BadRequest(format!("cannot read {}: {e}", path.display())))?;
        Scenario::from_json(&text)
    }
}

/// Builder for [`Scenario`] — same `with_*` idiom as [`SweepGrid`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Adds one candidate shape.
    #[must_use]
    pub fn with_shape(mut self, shape: NetworkShape) -> Self {
        self.scenario.shapes.push(shape);
        self
    }

    /// Adds candidate shapes.
    #[must_use]
    pub fn with_shapes(self, shapes: impl IntoIterator<Item = NetworkShape>) -> Self {
        shapes.into_iter().fold(self, ScenarioBuilder::with_shape)
    }

    /// Adds bandwidth budgets (GB/s).
    #[must_use]
    pub fn with_budgets(mut self, budgets: impl IntoIterator<Item = f64>) -> Self {
        self.scenario.budgets.extend(budgets);
        self
    }

    /// Adds objectives.
    #[must_use]
    pub fn with_objectives(mut self, objectives: impl IntoIterator<Item = Objective>) -> Self {
        self.scenario.objectives.extend(objectives);
        self
    }

    /// Adds one workload by name.
    #[must_use]
    pub fn with_workload(mut self, name: impl Into<String>) -> Self {
        self.scenario.workloads.push(name.into());
        self
    }

    /// Adds workloads by name.
    #[must_use]
    pub fn with_workloads(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.scenario.workloads.extend(names.into_iter().map(Into::into));
        self
    }

    /// Attaches α-β link parameters to every workload plan.
    #[must_use]
    pub fn with_link(mut self, link: LinkParams) -> Self {
        self.scenario.link = Some(link);
        self
    }

    /// Adds one backend by registry name.
    #[must_use]
    pub fn with_backend(mut self, name: impl Into<String>) -> Self {
        self.scenario.backends.push(name.into());
        self
    }

    /// Adds backends by registry name.
    #[must_use]
    pub fn with_backends(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.scenario.backends.extend(names.into_iter().map(Into::into));
        self
    }

    /// Sets chunks per collective for chunk-pipelined backends.
    #[must_use]
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.scenario.chunks = chunks;
        self
    }

    /// Sets the pairwise divergence tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.scenario.tolerance = tolerance;
        self
    }

    /// Enables or disables warm-started design solves.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.scenario.warm_start = warm_start;
        self
    }

    /// Attaches an adaptive-search block: the scenario runs through
    /// [`crate::search`] instead of the exhaustive engine, and the grid
    /// may exceed [`Scenario::MAX_GRID_POINTS`].
    #[must_use]
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.scenario.search = Some(search);
        self
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] when the name is empty, the grid or
    /// workload list is empty, `chunks == 0`, or the tolerance is
    /// negative/non-finite.
    pub fn build(self) -> Result<Scenario, LibraError> {
        let s = self.scenario;
        let bad =
            |what: &str| Err(LibraError::BadRequest(format!("scenario {:?}: {what}", s.name)));
        if s.name.is_empty() {
            return Err(LibraError::BadRequest("scenario name must not be empty".into()));
        }
        if s.shapes.is_empty() {
            return bad("at least one shape is required");
        }
        if s.budgets.is_empty() {
            return bad("at least one budget is required");
        }
        if let Some(&b) = s.budgets.iter().find(|b| !b.is_finite() || **b <= 0.0) {
            return bad(&format!("budgets must be finite and > 0, got {b}"));
        }
        if s.objectives.is_empty() {
            return bad("at least one objective is required");
        }
        if s.workloads.is_empty() {
            return bad("at least one workload is required");
        }
        if s.chunks == 0 {
            return bad("chunks must be >= 1");
        }
        if !s.tolerance.is_finite() || s.tolerance < 0.0 {
            return bad("tolerance must be finite and >= 0");
        }
        // Guard the cross product *before* anything allocates per grid
        // point: a pathological scenario (easy to construct, and now
        // arriving over the network at `POST /v1/sweeps`) must be
        // rejected here with a pointed message, not OOM a sweep worker.
        // u128 arithmetic so the product itself cannot overflow. Search
        // scenarios are exempt from the cap — the adaptive driver never
        // materializes the nominal grid — but the cell count must still
        // index as a usize.
        let cells = (s.shapes.len() as u128)
            * (s.workloads.len() as u128)
            * (s.budgets.len() as u128)
            * (s.objectives.len() as u128);
        if s.search.is_none() && cells > Scenario::MAX_GRID_POINTS as u128 {
            return bad(&format!(
                "grid has {cells} points ({} shapes × {} workloads × {} budgets × {} objectives), \
                 over the {} point cap — shard the scenario or prune its axes, or add a \
                 \"search\" block to run it adaptively",
                s.shapes.len(),
                s.workloads.len(),
                s.budgets.len(),
                s.objectives.len(),
                Scenario::MAX_GRID_POINTS
            ));
        }
        if cells > usize::MAX as u128 {
            return bad(&format!("grid has {cells} points, which does not fit a usize"));
        }
        if let Some(search) = &s.search {
            search
                .validate()
                .map_err(|e| LibraError::BadRequest(format!("scenario {:?}: {e}", s.name)))?;
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Backend registry: backends as data.
// ---------------------------------------------------------------------------

/// Construction-time knobs passed to registered backend constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// Chunks per collective for chunk-pipelined backends (ignored by
    /// closed-form ones).
    pub chunks: usize,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig { chunks: 64 }
    }
}

/// The boxed constructor type stored per registry entry.
type BackendCtor = Box<dyn Fn(&BackendConfig) -> Box<dyn EvalBackend> + Send + Sync>;

/// One registry row: a name, a human-readable description, and the
/// constructor.
struct RegistryEntry {
    name: String,
    description: String,
    ctor: BackendCtor,
}

/// A string-name → constructor table for [`EvalBackend`]s, so scenarios
/// can name their evaluators as data.
///
/// [`BackendRegistry::new`] pre-registers this crate's closed-form
/// backends (`"analytical"`, `"analytical-offload"`); `libra-sim` and
/// `libra-net` contribute `"event-sim"` and `"net-sim"` /
/// `"net-sim-offload"` via their `register_backends` functions, and the
/// facade/bench crates bundle all of them as `default_registry()`. User
/// backends register under fresh names with [`BackendRegistry::register`].
#[derive(Default)]
pub struct BackendRegistry {
    entries: Vec<RegistryEntry>,
}

impl BackendRegistry {
    /// A registry holding the core closed-form backends: `"analytical"`
    /// and `"analytical-offload"`.
    pub fn new() -> Self {
        use crate::eval::Analytical;
        let mut r = BackendRegistry::empty();
        r.register_described(
            "analytical",
            "closed-form alpha-beta cost model over the backend-neutral CommPlan IR",
            |_| Box::new(Analytical::new()),
        )
        .expect("fresh registry");
        r.register_described(
            "analytical-offload",
            "closed-form model with switch-resident in-network collective offload",
            |_| Box::new(Analytical { in_network_offload: true }),
        )
        .expect("fresh registry");
        r
    }

    /// A registry with no entries at all.
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// Registers `ctor` under `name` with an empty description.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] when `name` is already registered —
    /// silently shadowing a backend would make scenario files ambiguous.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        ctor: impl Fn(&BackendConfig) -> Box<dyn EvalBackend> + Send + Sync + 'static,
    ) -> Result<(), LibraError> {
        self.register_described(name, "", ctor)
    }

    /// Registers `ctor` under `name` with a one-line human-readable
    /// `description`, surfaced by `libra list-backends` and the sweep
    /// server's `GET /v1/backends`.
    ///
    /// # Errors
    /// See [`BackendRegistry::register`].
    pub fn register_described(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        ctor: impl Fn(&BackendConfig) -> Box<dyn EvalBackend> + Send + Sync + 'static,
    ) -> Result<(), LibraError> {
        let name = name.into();
        if self.contains(&name) {
            return Err(LibraError::BadRequest(format!("backend {name:?} is already registered")));
        }
        self.entries.push(RegistryEntry {
            name,
            description: description.into(),
            ctor: Box::new(ctor),
        });
        Ok(())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// `(name, description)` pairs, in registration order.
    pub fn entries(&self) -> Vec<(&str, &str)> {
        self.entries.iter().map(|e| (e.name.as_str(), e.description.as_str())).collect()
    }

    /// The description registered for `name` (`None` when unregistered).
    pub fn describe(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.description.as_str())
    }

    /// The registry as a JSON array of `{"name", "description"}`
    /// objects, one entry per line, trailing newline included. This
    /// exact string is both `libra list-backends --json`'s stdout and
    /// the sweep server's `GET /v1/backends` body, so the two surfaces
    /// cannot drift.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": {}, \"description\": {}}}{}\n",
                json_escape(&e.name),
                json_escape(&e.description),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        out
    }

    /// Constructs the backend registered under `name`.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] listing the known names when `name` is
    /// unregistered.
    pub fn build(
        &self,
        name: &str,
        config: &BackendConfig,
    ) -> Result<Box<dyn EvalBackend>, LibraError> {
        match self.entries.iter().find(|e| e.name == name) {
            Some(e) => Ok((e.ctor)(config)),
            None => Err(LibraError::BadRequest(format!(
                "unknown backend {name:?}; known backends: {}",
                self.names().join(", ")
            ))),
        }
    }

    /// Constructs every named backend, in order.
    ///
    /// # Errors
    /// See [`BackendRegistry::build`].
    pub fn build_all(
        &self,
        names: &[String],
        config: &BackendConfig,
    ) -> Result<Vec<Box<dyn EvalBackend>>, LibraError> {
        names.iter().map(|n| self.build(n, config)).collect()
    }
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry").field("names", &self.names()).finish()
    }
}

// ---------------------------------------------------------------------------
// Divergence matrix: pairwise reports for runtime N.
// ---------------------------------------------------------------------------

/// Pairwise divergence of an `N`-backend session: one
/// [`DivergenceReport`] per unordered backend pair, in lexicographic
/// index order `(0,1), (0,2), …, (1,2), …`.
///
/// `N = 2` carries exactly the legacy two-way report; `N = 3` carries the
/// legacy `Divergence3Report`'s three pairs in the same order. `N < 2`
/// has no pairs and is vacuously within tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceMatrix {
    /// The backends' display names, in session order.
    pub backends: Vec<String>,
    /// Pairwise reports, `(i, j)` with `i < j` in lexicographic order.
    pub pairs: Vec<DivergenceReport>,
}

impl DivergenceMatrix {
    /// The pair index order for `n` backends.
    pub fn pair_indices(n: usize) -> Vec<(usize, usize)> {
        (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))).collect()
    }

    /// Number of backends priced per point.
    pub fn n_backends(&self) -> usize {
        self.backends.len()
    }

    /// The report comparing backends `i` and `j` (either order).
    pub fn pair_between(&self, i: usize, j: usize) -> Option<&DivergenceReport> {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        let pos = Self::pair_indices(self.n_backends()).iter().position(|&p| p == (i, j))?;
        self.pairs.get(pos)
    }

    /// The report whose backends carry the two display names, if present.
    ///
    /// The lookup is **order-insensitive**: `pair("x", "y")` and
    /// `pair("y", "x")` resolve to the same report regardless of which
    /// name a scenario file listed first — so merge-side re-judging (the
    /// shard dispatcher) can never turn a backend-order difference into a
    /// silent `None`. Pinned by `pair_lookup_is_order_insensitive`.
    pub fn pair(&self, a: &str, b: &str) -> Option<&DivergenceReport> {
        self.pairs.iter().find(|p| {
            (p.baseline == a && p.reference == b) || (p.baseline == b && p.reference == a)
        })
    }

    /// The largest relative error across every pair and point (0 with no
    /// pairs; NaN propagates — see [`DivergenceReport::max_rel_error`]).
    pub fn max_rel_error(&self) -> f64 {
        self.pairs.iter().map(DivergenceReport::max_rel_error).fold(0.0, |a, b| {
            if b.is_nan() {
                f64::NAN
            } else {
                a.max(b)
            }
        })
    }

    /// True when every pair is within tolerance with no backend errors
    /// (vacuously true with fewer than two backends).
    pub fn within_tolerance(&self) -> bool {
        self.pairs.iter().all(DivergenceReport::within_tolerance)
    }

    /// One summary line per pair (or a note that nothing was compared).
    pub fn summary(&self) -> String {
        if self.pairs.is_empty() {
            return format!("{} backend(s): no pairs compared", self.n_backends());
        }
        self.pairs.iter().map(DivergenceReport::summary).collect::<Vec<_>>().join("\n")
    }
}

/// A session's outcome: the design-space sweep plus the pairwise backend
/// divergence over the same grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The design-space results, identical to a plain sweep's.
    pub sweep: SweepReport,
    /// Pairwise backend comparisons (empty with fewer than two backends).
    pub divergence: DivergenceMatrix,
}

// ---------------------------------------------------------------------------
// Report sinks: streaming per-point records.
// ---------------------------------------------------------------------------

/// Header handed to sinks before the first record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta<'a> {
    /// The scenario name, when the run came from a [`Scenario`].
    pub scenario: Option<&'a str>,
    /// The backends priced per point, in session order.
    pub backends: &'a [String],
    /// Grid points the run will enumerate.
    pub n_points: usize,
    /// The pairwise divergence tolerance.
    pub tolerance: f64,
}

/// One streamed grid-point record: the optimized design's headline
/// metrics plus the per-backend plan times.
///
/// Rows are emitted in grid-enumeration order. `RecordRow` is owned and
/// `PartialEq` so sinks can be diffed against each other — the JSON-lines
/// round-trip test relies on exact (bit-identical) float round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordRow {
    /// Grid-enumeration index.
    pub index: usize,
    /// The evaluated shape (display form).
    pub shape: String,
    /// The workload's name.
    pub workload: String,
    /// Total per-NPU bandwidth budget (GB/s).
    pub budget: f64,
    /// Optimization objective.
    pub objective: Objective,
    /// Optimized weighted time (seconds); `None` when the solve failed.
    pub weighted_time: Option<f64>,
    /// Optimized network cost (dollars); `None` when the solve failed.
    pub cost: Option<f64>,
    /// Speedup over the EqualBW baseline; `None` when the solve failed.
    pub speedup: Option<f64>,
    /// Per-backend plan times (seconds), aligned with the run's backend
    /// list; empty when the point was unpriced (no plan, a failure, or a
    /// plain sweep).
    pub secs: Vec<f64>,
    /// The failure message when the design solve or a backend errored.
    pub error: Option<String>,
}

impl RecordRow {
    pub(crate) fn from_outcome(
        index: usize,
        outcome: &Result<SweepResult, SweepError>,
        priced: Option<&Result<Vec<f64>, SweepError>>,
    ) -> Self {
        match outcome {
            Ok(r) => RecordRow {
                index,
                shape: r.shape.to_string(),
                workload: r.workload.clone(),
                budget: r.point.budget,
                objective: r.point.objective,
                weighted_time: Some(r.design.weighted_time),
                cost: Some(r.design.cost),
                speedup: Some(r.speedup()),
                secs: match priced {
                    Some(Ok(secs)) => secs.clone(),
                    _ => Vec::new(),
                },
                error: match priced {
                    Some(Err(e)) => Some(e.error.to_string()),
                    _ => None,
                },
            },
            Err(e) => RecordRow {
                index,
                shape: e.shape.to_string(),
                workload: e.workload.clone(),
                budget: e.point.budget,
                objective: e.point.objective,
                weighted_time: None,
                cost: None,
                speedup: None,
                secs: Vec::new(),
                error: Some(e.error.to_string()),
            },
        }
    }

    /// Serializes the row as one JSON object on one line (the JSON-lines
    /// record format; floats round-trip bit-identically).
    pub fn to_json_line(&self) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), json_f64);
        let secs: Vec<String> = self.secs.iter().map(|&s| json_f64(s)).collect();
        format!(
            "{{\"index\": {}, \"shape\": {}, \"workload\": {}, \"budget\": {}, \
             \"objective\": {}, \"weighted_time\": {}, \"cost\": {}, \"speedup\": {}, \
             \"secs\": [{}], \"error\": {}}}",
            self.index,
            json_escape(&self.shape),
            json_escape(&self.workload),
            json_f64(self.budget),
            json_escape(objective_name(self.objective)),
            opt(self.weighted_time),
            opt(self.cost),
            opt(self.speedup),
            secs.join(", "),
            self.error.as_deref().map_or_else(|| "null".to_string(), json_escape),
        )
    }

    /// Parses one JSON-lines record produced by [`RecordRow::to_json_line`].
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] on malformed JSON or missing fields.
    pub fn from_json_line(line: &str) -> Result<Self, LibraError> {
        Self::from_json_value(&JsonParser::parse(line)?)
    }

    /// The parsed-value form of [`RecordRow::from_json_line`], so callers
    /// that already hold the line's [`Json`] (the JSON-lines aggregator)
    /// do not parse twice.
    fn from_json_value(v: &Json) -> Result<Self, LibraError> {
        let bad = |what: String| LibraError::BadRequest(what);
        let num = |key: &str| -> Result<f64, LibraError> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(format!("record is missing numeric field {key:?}")))
        };
        let string = |key: &str| -> Result<String, LibraError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("record is missing string field {key:?}")))
        };
        let opt_num = |key: &str| -> Option<f64> { v.get(key).and_then(Json::as_f64) };
        let secs = v
            .get("secs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("record is missing array field \"secs\"".into()))?
            .iter()
            .map(|s| s.as_f64().ok_or_else(|| bad("\"secs\" must hold numbers".into())))
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(RecordRow {
            index: num("index")? as usize,
            shape: string("shape")?,
            workload: string("workload")?,
            budget: num("budget")?,
            objective: objective_from_name(&string("objective")?)?,
            weighted_time: opt_num("weighted_time"),
            cost: opt_num("cost"),
            speedup: opt_num("speedup"),
            secs,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// Extracts every [`RecordRow`] from a JSON-lines stream, skipping the
/// header and summary lines [`JsonLinesSink`] interleaves (records are
/// the lines carrying an `"index"` field; headers carry `"schema"`,
/// summaries `"summary"`).
///
/// Only those two known non-record shapes are skipped, and each at most
/// once, in order: a second run header, a second summary, or any
/// content after the summary line is an error — two concatenated
/// streams must never merge as if they were one run. Anything else —
/// unparseable JSON, or a parsed object that is neither a record nor a
/// header/summary (e.g. a record whose line was truncated before its
/// `"index"` field survived) — is an error naming the offending line
/// number, so a partially-written shard stream can never merge
/// "cleanly" with points silently missing.
///
/// # Errors
/// [`LibraError::BadRequest`] on malformed JSON, a malformed record, an
/// unrecognized line, a duplicate header or summary, or content after
/// the summary, each prefixed with its 1-based line number.
pub fn records_from_jsonl(stream: &str) -> Result<Vec<RecordRow>, LibraError> {
    let at = |lineno: usize, what: &str| {
        LibraError::BadRequest(format!("JSON-lines input line {lineno}: {what}"))
    };
    let mut rows = Vec::new();
    let mut seen_header = false;
    let mut seen_summary = false;
    for (i, line) in stream.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let v = JsonParser::parse(line).map_err(|e| at(lineno, &e.to_string()))?;
        if v.get("index").is_some() {
            if seen_summary {
                return Err(at(
                    lineno,
                    "record after the summary line — two runs concatenated \
                     into one stream?",
                ));
            }
            rows.push(RecordRow::from_json_value(&v).map_err(|e| at(lineno, &e.to_string()))?);
        } else if v.get("schema").is_some() {
            if seen_header {
                return Err(at(lineno, "duplicate run header — two streams concatenated?"));
            }
            if seen_summary {
                return Err(at(
                    lineno,
                    "run header after the summary line — two runs \
                     concatenated into one stream?",
                ));
            }
            seen_header = true;
        } else if v.get("summary").is_some() {
            if seen_summary {
                return Err(at(lineno, "duplicate summary line"));
            }
            seen_summary = true;
        } else {
            return Err(at(
                lineno,
                "JSON object is neither a record (no \"index\") nor a known \
                 header/summary line — truncated or corrupted stream?",
            ));
        }
    }
    Ok(rows)
}

/// The persistent-store fingerprint of one run configuration: the grid's
/// shapes/budgets/objectives, the workload names, link parameters and
/// chunk count (zero/none for plain non-scenario runs), and the engine's
/// warm-start policy. See [`Fingerprint::compute`] for the hash.
pub(crate) fn run_fingerprint<W: SweepWorkload>(
    grid: &SweepGrid,
    workloads: &[W],
    link: Option<LinkParams>,
    chunks: usize,
    warm_start: bool,
) -> Fingerprint {
    let shapes: Vec<String> = grid.shapes().iter().map(|s| s.to_string()).collect();
    let objectives: Vec<&str> = grid.objectives().iter().map(|&o| objective_name(o)).collect();
    let names: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();
    Fingerprint::compute(
        &shapes,
        grid.budgets(),
        &objectives,
        &names,
        link.map(|l| (l.alpha_ps, l.switch_ps)),
        chunks,
        warm_start,
    )
}

/// Validates a contiguous grid-index range against a grid of `len` points.
pub(crate) fn check_range(range: &std::ops::Range<usize>, len: usize) -> Result<(), LibraError> {
    if range.start > range.end || range.end > len {
        return Err(LibraError::BadRequest(format!(
            "grid range {}..{} does not fit the grid's {len} points",
            range.start, range.end
        )));
    }
    Ok(())
}

/// A streaming consumer of session output: gets the run header, then one
/// [`RecordRow`] per grid point **in grid order as the fold produces
/// them**, then the final report. Implementations must tolerate
/// `on_run_end` observing state accumulated in `on_record`.
pub trait ReportSink {
    /// Called once before the first record.
    fn on_run_start(&mut self, meta: &RunMeta<'_>) {
        let _ = meta;
    }

    /// Called once per grid point, in grid-enumeration order.
    fn on_record(&mut self, row: &RecordRow);

    /// Called once after the last record with the assembled report.
    fn on_run_end(&mut self, report: &SessionReport) {
        let _ = report;
    }
}

/// A sink that renders an aligned console table (one row per grid point)
/// plus a divergence summary footer.
pub struct ConsoleTableSink<W: Write> {
    out: W,
    backends: Vec<String>,
}

impl ConsoleTableSink<std::io::Stdout> {
    /// A console sink writing to stdout.
    pub fn stdout() -> Self {
        ConsoleTableSink::new(std::io::stdout())
    }
}

impl<W: Write> ConsoleTableSink<W> {
    /// A console sink writing to `out`.
    pub fn new(out: W) -> Self {
        ConsoleTableSink { out, backends: Vec::new() }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> ReportSink for ConsoleTableSink<W> {
    fn on_run_start(&mut self, meta: &RunMeta<'_>) {
        self.backends = meta.backends.to_vec();
        if let Some(name) = meta.scenario {
            let _ = writeln!(self.out, "scenario: {name}");
        }
        let _ = write!(
            self.out,
            "{:>6} {:>28} {:<12} {:>7} {:<13} {:>10} {:>8}",
            "#", "shape", "workload", "GB/s", "objective", "t(s)", "speedup"
        );
        for b in &self.backends {
            let _ = write!(self.out, " {b:>14}");
        }
        let _ = writeln!(self.out);
    }

    fn on_record(&mut self, row: &RecordRow) {
        if let Some(err) = &row.error {
            let _ = writeln!(
                self.out,
                "{:>6} {:>28} {:<12} {:>7.0} {:<13} ERROR: {err}",
                row.index,
                row.shape,
                row.workload,
                row.budget,
                objective_name(row.objective),
            );
            return;
        }
        let _ = write!(
            self.out,
            "{:>6} {:>28} {:<12} {:>7.0} {:<13} {:>10.4} {:>7.2}x",
            row.index,
            row.shape,
            row.workload,
            row.budget,
            objective_name(row.objective),
            row.weighted_time.unwrap_or(f64::NAN),
            row.speedup.unwrap_or(f64::NAN),
        );
        for &s in &row.secs {
            let _ = write!(self.out, " {s:>13.4}s");
        }
        let _ = writeln!(self.out);
    }

    fn on_run_end(&mut self, report: &SessionReport) {
        let _ = writeln!(
            self.out,
            "{} results, {} errors",
            report.sweep.results.len(),
            report.sweep.errors.len()
        );
        for line in report.divergence.summary().lines() {
            let _ = writeln!(self.out, "{line}");
        }
    }
}

/// A sink that streams JSON-lines: one header object, one record object
/// per grid point, one summary object. Every line is self-contained
/// JSON, so shard outputs can be concatenated and re-aggregated with
/// [`records_from_jsonl`].
pub struct JsonLinesSink<W: Write> {
    out: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// A JSON-lines sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// The JSON-lines run header, shared by [`JsonLinesSink`] and the shard
/// dispatcher's merged-stream writer — one definition so a merged stream
/// is byte-identical to a single-process one.
pub(crate) fn jsonl_header_line(meta: &RunMeta<'_>) -> String {
    let backends: Vec<String> = meta.backends.iter().map(|b| json_escape(b)).collect();
    format!(
        "{{\"schema\": \"libra-run-v1\", \"scenario\": {}, \"backends\": [{}], \
         \"points\": {}, \"tolerance\": {}}}",
        meta.scenario.map_or_else(|| "null".to_string(), json_escape),
        backends.join(", "),
        meta.n_points,
        json_f64(meta.tolerance),
    )
}

/// The JSON-lines run summary (see [`jsonl_header_line`] for why this is
/// factored out).
pub(crate) fn jsonl_summary_line(
    results: usize,
    errors: usize,
    divergence: &DivergenceMatrix,
) -> String {
    let compared: usize = divergence.pairs.iter().map(|p| p.points.len()).sum();
    format!(
        "{{\"summary\": {{\"results\": {}, \"errors\": {}, \"pairs\": {}, \
         \"compared_points\": {}, \"max_rel_error\": {}, \"within_tolerance\": {}}}}}",
        results,
        errors,
        divergence.pairs.len(),
        compared,
        json_f64(divergence.max_rel_error()),
        divergence.within_tolerance(),
    )
}

impl<W: Write> ReportSink for JsonLinesSink<W> {
    fn on_run_start(&mut self, meta: &RunMeta<'_>) {
        let _ = writeln!(self.out, "{}", jsonl_header_line(meta));
    }

    fn on_record(&mut self, row: &RecordRow) {
        let _ = writeln!(self.out, "{}", row.to_json_line());
    }

    fn on_run_end(&mut self, report: &SessionReport) {
        let _ = writeln!(
            self.out,
            "{}",
            jsonl_summary_line(
                report.sweep.results.len(),
                report.sweep.errors.len(),
                &report.divergence
            )
        );
    }
}

/// A sink that collects every [`RecordRow`] in memory — the reference
/// the JSON-lines stream is diffed against in tests, and a convenient
/// programmatic consumer.
#[derive(Debug, Default)]
pub struct CollectorSink {
    /// Collected rows, in grid order.
    pub rows: Vec<RecordRow>,
    /// The run header, captured at `on_run_start`.
    pub scenario: Option<String>,
}

impl CollectorSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectorSink::default()
    }
}

impl ReportSink for CollectorSink {
    fn on_run_start(&mut self, meta: &RunMeta<'_>) {
        self.scenario = meta.scenario.map(str::to_string);
    }

    fn on_record(&mut self, row: &RecordRow) {
        self.rows.push(row.clone());
    }
}

/// A sink adapter turning the record stream into a progress callback:
/// `f(done, total)` fires once with `(0, total)` at run start and once
/// per record thereafter. This is how a host that cannot block on the
/// whole run — the sweep server's job table foremost — observes
/// per-point progress without touching the records themselves; stack it
/// next to a [`JsonLinesSink`] in the same sink slice.
pub struct ProgressSink<F: FnMut(usize, usize)> {
    f: F,
    done: usize,
    total: usize,
}

impl<F: FnMut(usize, usize)> ProgressSink<F> {
    /// A progress sink invoking `f(done, total)`.
    pub fn new(f: F) -> Self {
        ProgressSink { f, done: 0, total: 0 }
    }
}

impl<F: FnMut(usize, usize)> ReportSink for ProgressSink<F> {
    fn on_run_start(&mut self, meta: &RunMeta<'_>) {
        self.total = meta.n_points;
        (self.f)(0, self.total);
    }

    fn on_record(&mut self, _row: &RecordRow) {
        self.done += 1;
        (self.f)(self.done, self.total);
    }
}

// ---------------------------------------------------------------------------
// Session: the executor.
// ---------------------------------------------------------------------------

/// Owned-or-borrowed engine handle, so `Session` can either stand alone
/// or front an existing engine's memo cache.
#[allow(clippy::large_enum_variant)] // one handle per session; boxing buys nothing
enum EngineHandle<'a> {
    Owned(SweepEngine<'a>),
    Borrowed(&'a SweepEngine<'a>),
}

/// The scenario executor: one front door for plain, two-way, three-way —
/// any-`N`-way — sweeps.
///
/// A session wraps a [`SweepEngine`] (owned via [`Session::new`] /
/// [`Session::from_engine`], or borrowed via [`Session::over`] to reuse
/// a warm memo cache), a pairwise divergence tolerance, and an execution
/// mode. [`Session::run`] prices every grid point under each backend in
/// the slice within one rayon fan-out; [`Session::run_with_sinks`]
/// additionally streams per-point [`RecordRow`]s to [`ReportSink`]s.
pub struct Session<'a> {
    engine: EngineHandle<'a>,
    tolerance: f64,
    mode: ExecMode,
}

impl<'a> Session<'a> {
    /// A session over a fresh default engine pricing with `cost_model`.
    pub fn new(cost_model: &'a CostModel) -> Self {
        Session::from_engine(SweepEngine::new(cost_model))
    }

    /// A session taking ownership of a pre-configured engine (constraints,
    /// warm-start policy).
    pub fn from_engine(engine: SweepEngine<'a>) -> Self {
        Session {
            engine: EngineHandle::Owned(engine),
            tolerance: CrossValidation::DEFAULT_TOLERANCE,
            mode: ExecMode::Parallel,
        }
    }

    /// A session borrowing an existing engine — runs share (and warm) that
    /// engine's memo cache.
    pub fn over(engine: &'a SweepEngine<'a>) -> Self {
        Session {
            engine: EngineHandle::Borrowed(engine),
            tolerance: CrossValidation::DEFAULT_TOLERANCE,
            mode: ExecMode::Parallel,
        }
    }

    /// Overrides the pairwise divergence tolerance
    /// (default [`CrossValidation::DEFAULT_TOLERANCE`]).
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance.is_finite() && tolerance >= 0.0, "tolerance must be ≥ 0");
        self.tolerance = tolerance;
        self
    }

    /// Selects parallel (default) or serial execution. Both modes are
    /// bit-identical by the engine's determinism contract; serial is the
    /// reference fold and plays nicely under external thread pools.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches the persistent solve cache at `path` to this session's
    /// **owned** engine (see [`SweepEngine::with_store`]): stored solves
    /// preload before each run, fresh solves append after it, and the
    /// streamed output stays byte-identical with or without the store.
    ///
    /// # Errors
    /// Propagates store-open failures; rejects sessions over a borrowed
    /// engine ([`Session::over`]) — attach the store to that engine
    /// instead.
    pub fn with_store(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, LibraError> {
        match self.engine {
            EngineHandle::Owned(engine) => {
                self.engine = EngineHandle::Owned(engine.with_store(path)?);
                Ok(self)
            }
            EngineHandle::Borrowed(_) => Err(LibraError::BadRequest(
                "cannot attach a persistent store to a session over a borrowed engine; \
                 attach it with SweepEngine::with_store before Session::over"
                    .to_string(),
            )),
        }
    }

    /// Attaches an already-open shared store
    /// ([`crate::store::SolveStore::open_shared`]) to this session's
    /// **owned** engine — the multi-client path: a server opens the
    /// cache once and every job's fresh session attaches here, so
    /// concurrent clients hit each other's solves in memory (see
    /// [`SweepEngine::with_shared_store`]).
    ///
    /// # Errors
    /// Rejects sessions over a borrowed engine ([`Session::over`]) —
    /// attach the store to that engine instead.
    pub fn with_shared_store(
        mut self,
        store: crate::store::SharedSolveStore,
    ) -> Result<Self, LibraError> {
        match self.engine {
            EngineHandle::Owned(engine) => {
                self.engine = EngineHandle::Owned(engine.with_shared_store(store));
                Ok(self)
            }
            EngineHandle::Borrowed(_) => Err(LibraError::BadRequest(
                "cannot attach a persistent store to a session over a borrowed engine; \
                 attach it with SweepEngine::with_shared_store before Session::over"
                    .to_string(),
            )),
        }
    }

    /// Arms deterministic fault injection ([`crate::fault`]) on this
    /// session's **owned** engine — how a host holding a parsed plan
    /// (the sweep server foremost) threads it into per-job sessions
    /// without touching the process environment.
    ///
    /// # Errors
    /// Rejects sessions over a borrowed engine ([`Session::over`]) —
    /// arm the injector with [`SweepEngine::with_fault`] instead.
    pub fn with_fault(mut self, injector: crate::fault::FaultInjector) -> Result<Self, LibraError> {
        match self.engine {
            EngineHandle::Owned(engine) => {
                self.engine = EngineHandle::Owned(engine.with_fault(injector));
                Ok(self)
            }
            EngineHandle::Borrowed(_) => Err(LibraError::BadRequest(
                "cannot arm fault injection on a session over a borrowed engine; \
                 arm it with SweepEngine::with_fault before Session::over"
                    .to_string(),
            )),
        }
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The underlying engine (e.g. for [`SweepEngine::cache_stats`]).
    pub fn engine(&self) -> &SweepEngine<'a> {
        match &self.engine {
            EngineHandle::Owned(e) => e,
            EngineHandle::Borrowed(e) => e,
        }
    }

    /// Evaluates the grid, pricing every point's [`crate::eval::CommPlan`]
    /// under **each backend in `backends`** at the optimized design's
    /// bandwidth, and reports all pairwise divergences.
    ///
    /// * `backends.is_empty()` — a plain design-space sweep, nothing
    ///   priced, no pairs.
    /// * one backend — plans priced (the times stream to sinks), still no
    ///   pairs.
    /// * two or more — every unordered pair gets a [`DivergenceReport`],
    ///   exactly as the legacy two-/three-way entry points produced.
    pub fn run<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        backends: &[&dyn EvalBackend],
    ) -> SessionReport {
        self.run_with_sinks(grid, workloads, backends, &mut [])
    }

    /// [`Session::run`], streaming per-point [`RecordRow`]s to `sinks`
    /// (in grid order) as the fold assembles the report.
    pub fn run_with_sinks<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        backends: &[&dyn EvalBackend],
        sinks: &mut [&mut dyn ReportSink],
    ) -> SessionReport {
        let full = 0..grid.len(workloads.len());
        self.run_inner(None, self.tolerance, grid, workloads, backends, full, None, 0, sinks)
    }

    /// [`Session::run_with_sinks`] restricted to the contiguous grid-index
    /// `range` — one shard of a distributed sweep. Emitted record indices
    /// stay **global**, and warm-start seeding solves any out-of-range
    /// group anchors the shard depends on, so for every partition of the
    /// grid the concatenation of shard outputs is bit-identical to the
    /// unsharded run (see [`crate::dispatch`]).
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] when `range` is inverted or extends past
    /// the grid's length.
    pub fn run_range_with_sinks<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        backends: &[&dyn EvalBackend],
        range: std::ops::Range<usize>,
        sinks: &mut [&mut dyn ReportSink],
    ) -> Result<SessionReport, LibraError> {
        check_range(&range, grid.len(workloads.len()))?;
        Ok(self.run_inner(None, self.tolerance, grid, workloads, backends, range, None, 0, sinks))
    }

    /// Runs a [`Scenario`]'s grid with backends built from `registry`.
    /// `workloads` are the resolved implementations of
    /// [`Scenario::workloads`] (e.g. from `libra-bench`'s name resolver).
    ///
    /// The run is judged at **the scenario's tolerance** (overriding the
    /// session's), so a scenario file's verdicts do not depend on which
    /// session executes it. The scenario's `warm_start` policy is an
    /// engine-construction knob: [`Scenario::session`] applies it, while
    /// a session over a pre-built engine keeps that engine's policy.
    ///
    /// # Errors
    /// Propagates unknown-backend-name errors.
    pub fn run_scenario<W: SweepWorkload>(
        &self,
        scenario: &Scenario,
        workloads: &[W],
        registry: &BackendRegistry,
    ) -> Result<SessionReport, LibraError> {
        self.run_scenario_with_sinks(scenario, workloads, registry, &mut [])
    }

    /// [`Session::run_scenario`] with streaming sinks.
    ///
    /// # Errors
    /// Propagates unknown-backend-name errors.
    pub fn run_scenario_with_sinks<W: SweepWorkload>(
        &self,
        scenario: &Scenario,
        workloads: &[W],
        registry: &BackendRegistry,
        sinks: &mut [&mut dyn ReportSink],
    ) -> Result<SessionReport, LibraError> {
        let full = 0..scenario.grid().len(workloads.len());
        self.run_scenario_range_with_sinks(scenario, workloads, registry, full, sinks)
    }

    /// [`Session::run_scenario_with_sinks`] restricted to the contiguous
    /// grid-index `range` — one shard of a distributed scenario run, with
    /// the same global-index and warm-start-determinism guarantees as
    /// [`Session::run_range_with_sinks`]. This is what
    /// `libra crossval --range a..b` executes in a spawned worker.
    ///
    /// # Errors
    /// Propagates unknown-backend-name errors; [`LibraError::BadRequest`]
    /// when `range` is inverted or extends past the grid's length.
    pub fn run_scenario_range_with_sinks<W: SweepWorkload>(
        &self,
        scenario: &Scenario,
        workloads: &[W],
        registry: &BackendRegistry,
        range: std::ops::Range<usize>,
        sinks: &mut [&mut dyn ReportSink],
    ) -> Result<SessionReport, LibraError> {
        let built = scenario.build_backends(registry)?;
        let refs: Vec<&dyn EvalBackend> = built.iter().map(|b| b.as_ref()).collect();
        let grid = scenario.grid();
        check_range(&range, grid.len(workloads.len()))?;
        Ok(self.run_inner(
            Some(&scenario.name),
            scenario.tolerance,
            &grid,
            workloads,
            &refs,
            range,
            scenario.link,
            scenario.chunks,
            sinks,
        ))
    }

    #[allow(clippy::too_many_arguments)] // private fan-in behind the public run entry points
    fn run_inner<W: SweepWorkload>(
        &self,
        scenario: Option<&str>,
        tolerance: f64,
        grid: &SweepGrid,
        workloads: &[W],
        backends: &[&dyn EvalBackend],
        range: std::ops::Range<usize>,
        link: Option<LinkParams>,
        chunks: usize,
        sinks: &mut [&mut dyn ReportSink],
    ) -> SessionReport {
        let names: Vec<String> = backends.iter().map(|b| b.name().to_string()).collect();
        let pair_indices = DivergenceMatrix::pair_indices(backends.len());
        let fp = run_fingerprint(grid, workloads, link, chunks, self.engine().warm_start());
        if !sinks.is_empty() {
            let meta = RunMeta { scenario, backends: &names, n_points: range.len(), tolerance };
            for sink in sinks.iter_mut() {
                sink.on_run_start(&meta);
            }
        }
        let (sweep, pairs) = self.engine().run_priced(
            grid,
            workloads,
            backends,
            &pair_indices,
            tolerance,
            range,
            self.mode,
            fp,
            &mut |index, outcome, priced| {
                if sinks.is_empty() {
                    return;
                }
                let row = RecordRow::from_outcome(index, outcome, priced);
                for sink in sinks.iter_mut() {
                    sink.on_record(&row);
                }
            },
        );
        let report =
            SessionReport { sweep, divergence: DivergenceMatrix { backends: names, pairs } };
        for sink in sinks.iter_mut() {
            sink.on_run_end(&report);
        }
        report
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("tolerance", &self.tolerance)
            .field("mode", &self.mode)
            .field(
                "engine",
                &match self.engine {
                    EngineHandle::Owned(_) => "owned",
                    EngineHandle::Borrowed(_) => "borrowed",
                },
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, CommModel, GroupSpan};
    use crate::eval::{Analytical, CommPlan, ScaledBackend};
    use crate::workload::CommOp;

    fn planned_workload(name: &'static str, gb: f64) -> crate::sweep::FnWorkload {
        crate::sweep::FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
        .with_plan(move |shape: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                gb * 1e9,
                GroupSpan::full(shape),
            )]))
        })
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_shape("FC(8)_SW(4)".parse().unwrap())
            .with_budgets([100.0, 300.0])
            .with_objectives([Objective::Perf])
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = JsonParser::parse(
            r#"{"a": [1, -2.5, 1e3], "b": "x\n\"y\"", "c": null, "d": true, "e": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
        assert!(JsonParser::parse("{\"unterminated").is_err());
        assert!(JsonParser::parse("[1,]").is_err());
        assert!(JsonParser::parse("{} trailing").is_err());
    }

    #[test]
    fn json_f64_round_trips_bit_identically() {
        for v in [0.1, 1.0 / 3.0, 123456.789, 1e-300, 7.2e18, -0.0, 42.0] {
            let s = json_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
        }
        assert_eq!(json_f64(f64::NAN), "\"NaN\"");
        assert_eq!(json_f64(f64::INFINITY), "\"Infinity\"");
        assert_eq!(json_f64(f64::NEG_INFINITY), "\"-Infinity\"");
        for special in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let parsed = JsonParser::parse(&json_f64(special)).unwrap();
            let back = parsed.as_f64().expect("special encodings decode");
            assert_eq!(back.is_nan(), special.is_nan());
            assert_eq!(back.is_infinite(), special.is_infinite());
            assert_eq!(back.is_sign_positive(), special.is_sign_positive());
        }
    }

    /// The grid-size cap trips at build time — the one chokepoint every
    /// scenario passes through (files, CLI, `POST /v1/sweeps`) — with a
    /// message naming the axes, so a fat-fingered budget list cannot
    /// commit the engine to a multi-billion-point sweep. The product is
    /// computed in u128, so axes whose product overflows usize still
    /// reject cleanly instead of wrapping into a "small" grid.
    #[test]
    fn oversized_grids_are_rejected_at_build_time() {
        let huge = |budgets: usize| {
            let mut b = Scenario::builder("huge")
                .with_shape("RI(4)_SW(8)".parse().unwrap())
                .with_budgets((0..budgets).map(|k| 100.0 + k as f64))
                .with_objectives([Objective::Perf, Objective::PerfPerCost]);
            for k in 0..2048 {
                b = b.with_workload(format!("w{k}"));
            }
            b.build()
        };
        // 1 × 2048 × 2048 × 2 = 8M > the 4.2M cap.
        let err = huge(2048).unwrap_err().to_string();
        assert!(err.contains("point cap"), "{err}");
        assert!(err.contains("2048 workloads"), "names the axes: {err}");
        // Just under the cap builds fine.
        let ok = huge(1024).unwrap();
        assert_eq!(ok.grid().len(ok.workloads.len()), 1 << 22);
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = Scenario::builder("round-trip")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_shape("FC(8)_SW(4)".parse().unwrap())
            .with_budgets([100.0, 333.25])
            .with_objectives([Objective::Perf, Objective::PerfPerCost])
            .with_workloads(["Turing-NLG", "GPT-3"])
            .with_link(LinkParams::latency(20_000.0).with_switch_ps(10_000.0))
            .with_backends(["analytical", "event-sim", "net-sim"])
            .with_chunks(32)
            .with_tolerance(0.145)
            .with_warm_start(false)
            .build()
            .unwrap();
        let text = s.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(back, s);
        // A linkless scenario round-trips too.
        let s2 = Scenario::builder("linkless")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("DLRM")
            .build()
            .unwrap();
        assert_eq!(Scenario::from_json(&s2.to_json()).unwrap(), s2);
    }

    #[test]
    fn search_block_round_trips_through_json() {
        let base = |search: SearchConfig| {
            Scenario::builder("adaptive")
                .with_shape("RI(4)_SW(8)".parse().unwrap())
                .with_budgets([100.0, 200.0, 300.0])
                .with_objectives([Objective::Perf])
                .with_workload("w")
                .with_search(search)
                .build()
                .unwrap()
        };
        let plain = base(SearchConfig::default());
        assert_eq!(Scenario::from_json(&plain.to_json()).unwrap(), plain);
        let full = base(SearchConfig {
            seed_budgets: 12,
            refine_radius: 2,
            max_rounds: 7,
            max_evals: 4000,
            cosearch: Some(Cosearch {
                model: "MSFT-1T".into(),
                tp: vec![8, 16, 32],
                global_batch: 2048,
            }),
        });
        assert_eq!(Scenario::from_json(&full.to_json()).unwrap(), full);
        // Omitted knobs take the documented defaults.
        let text = "{\"name\": \"d\", \"shapes\": [\"RI(4)_SW(8)\"], \"budgets\": [100], \
                    \"objectives\": [\"perf\"], \"workloads\": [\"w\"], \"backends\": [], \"search\": {}}";
        let parsed = Scenario::from_json(text).unwrap();
        assert_eq!(parsed.search, Some(SearchConfig::default()));
    }

    /// The satellite regression: a typo'd `serach` block must be a
    /// field-precise parse error, never a silent exhaustive sweep.
    #[test]
    fn scenario_rejects_typoed_search_block() {
        let base = Scenario::builder("typo")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("w")
            .with_search(SearchConfig::default())
            .build()
            .unwrap();
        let typo = base.to_json().replace("\"search\"", "\"serach\"");
        let err = Scenario::from_json(&typo).unwrap_err().to_string();
        assert!(err.contains("unknown scenario field \"serach\""), "{err}");
        // Typos inside the search and cosearch objects are field-precise too.
        let text = |search: &str| {
            format!(
                "{{\"name\": \"t\", \"shapes\": [\"RI(4)_SW(8)\"], \"budgets\": [100], \
                 \"objectives\": [\"perf\"], \"workloads\": [\"w\"], \"backends\": [], \"search\": {search}}}"
            )
        };
        let err = Scenario::from_json(&text("{\"max_round\": 3}")).unwrap_err().to_string();
        assert!(err.contains("unknown search field \"max_round\""), "{err}");
        let err = Scenario::from_json(&text(
            "{\"cosearch\": {\"model\": \"M\", \"tp\": [8], \"global_batch\": 64, \"dp\": 4}}",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown cosearch field \"dp\""), "{err}");
        // And malformed knobs are rejected with their field named.
        let err = Scenario::from_json(&text("{\"seed_budgets\": 2.5}")).unwrap_err().to_string();
        assert!(err.contains("search field \"seed_budgets\""), "{err}");
        let err = Scenario::from_json(&text("{\"seed_budgets\": 1}")).unwrap_err().to_string();
        assert!(err.contains("seed_budgets"), "{err}");
    }

    #[test]
    fn budgets_ladder_expands_linear_and_geometric() {
        let text = |budgets: &str| {
            format!(
                "{{\"name\": \"l\", \"shapes\": [\"RI(4)_SW(8)\"], \"budgets\": {budgets}, \
                 \"objectives\": [\"perf\"], \"workloads\": [\"w\"], \"backends\": []}}"
            )
        };
        let s = Scenario::from_json(&text("{\"from\": 100, \"to\": 500, \"count\": 5}")).unwrap();
        assert_eq!(s.budgets, vec![100.0, 200.0, 300.0, 400.0, 500.0]);
        let s = Scenario::from_json(&text(
            "{\"from\": 100, \"to\": 400, \"count\": 3, \"scale\": \"geometric\"}",
        ))
        .unwrap();
        assert_eq!(s.budgets.len(), 3);
        assert_eq!(s.budgets[0], 100.0);
        assert!((s.budgets[1] - 200.0).abs() < 1e-9);
        assert_eq!(s.budgets[2], 400.0);
        let err = Scenario::from_json(&text("{\"from\": 100, \"to\": 500, \"count\": 1}"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("\"count\" must be an integer >= 2"), "{err}");
        let err =
            Scenario::from_json(&text("{\"from\": 100, \"to\": 500}")).unwrap_err().to_string();
        assert!(err.contains("needs number field \"count\""), "{err}");
        let err =
            Scenario::from_json(&text("{\"from\": 100, \"to\": 500, \"count\": 4, \"step\": 2}"))
                .unwrap_err()
                .to_string();
        assert!(err.contains("unknown budgets field \"step\""), "{err}");
        let err = Scenario::from_json(&text(
            "{\"from\": 100, \"to\": 500, \"count\": 4, \"scale\": \"log\"}",
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("\"scale\""), "{err}");
    }

    /// Grids above the exhaustive point cap are rejected without a
    /// search block and legal with one — the adaptive driver never
    /// materializes the nominal grid.
    #[test]
    fn search_scenarios_may_exceed_the_point_cap() {
        let over = || {
            Scenario::builder("huge")
                .with_shape("RI(4)_SW(8)".parse().unwrap())
                .with_budgets((0..Scenario::MAX_GRID_POINTS + 1).map(|i| 100.0 + i as f64))
                .with_objectives([Objective::Perf])
                .with_workload("w")
        };
        let err = over().build().unwrap_err().to_string();
        assert!(err.contains("point cap"), "{err}");
        assert!(err.contains("\"search\" block"), "the error must point at search: {err}");
        let ok = over().with_search(SearchConfig::default()).build().unwrap();
        assert!(ok.grid().len(ok.workloads.len()) > Scenario::MAX_GRID_POINTS);
    }

    #[test]
    fn scenario_builder_validates() {
        let base = || {
            Scenario::builder("v")
                .with_shape("RI(4)_SW(8)".parse().unwrap())
                .with_budgets([100.0])
                .with_objectives([Objective::Perf])
                .with_workload("w")
        };
        assert!(base().build().is_ok());
        assert!(Scenario::builder("").build().is_err());
        assert!(base().with_chunks(0).build().is_err());
        assert!(base().with_tolerance(-1.0).build().is_err());
        assert!(base().with_tolerance(f64::NAN).build().is_err());
        let no_shapes = Scenario::builder("x")
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("w");
        assert!(no_shapes.build().is_err());
    }

    #[test]
    fn scenario_rejects_wrong_schema_and_bad_fields() {
        let err = Scenario::from_json("{\"schema\": \"other-v9\", \"name\": \"x\"}").unwrap_err();
        assert!(err.to_string().contains("unsupported scenario schema"));
        let err = Scenario::from_json("{\"name\": \"x\", \"shapes\": [1]}").unwrap_err();
        assert!(err.to_string().contains("must hold strings"));
        let err = Scenario::from_json("not json").unwrap_err();
        assert!(err.to_string().contains("invalid JSON"));
        // A typo'd field must not silently revert to its default.
        let base = Scenario::builder("t")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("w")
            .build()
            .unwrap();
        let typo = base.to_json().replace("\"tolerance\"", "\"tolerence\"");
        let err = Scenario::from_json(&typo).unwrap_err();
        assert!(err.to_string().contains("unknown scenario field \"tolerence\""), "{err}");
        let typo = base.to_json().replace("\"alpha_ps\"", "\"alphaps\"");
        if typo.contains("alphaps") {
            assert!(Scenario::from_json(&typo).is_err());
        }
        // Non-finite / non-positive budgets are rejected at build time,
        // not silently swept at NaN bandwidth.
        let bad_budget = base.to_json().replace("[100]", "[\"NaN\"]");
        let err = Scenario::from_json(&bad_budget).unwrap_err();
        assert!(err.to_string().contains("budgets must be finite"), "{err}");
        let builder = Scenario::builder("b")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([-5.0])
            .with_objectives([Objective::Perf])
            .with_workload("w");
        assert!(builder.build().is_err());
    }

    /// A scenario file with the same key twice must be rejected at the
    /// parser, not resolved by silent last-write-wins — a hand-edited
    /// file with two `"tolerance"` lines would otherwise judge at
    /// whichever one happened to come last.
    #[test]
    fn scenario_json_rejects_duplicate_object_keys() {
        let base = Scenario::builder("dup")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("w")
            .with_tolerance(0.25)
            .build()
            .unwrap();
        let text = base.to_json();
        let dup =
            text.replacen("\"tolerance\": 0.25", "\"tolerance\": 0.1, \"tolerance\": 0.25", 1);
        assert_ne!(dup, text, "test must actually inject a duplicate key");
        let err = Scenario::from_json(&dup).unwrap_err().to_string();
        assert!(err.contains("duplicate object key \"tolerance\""), "{err}");
        assert!(err.contains("invalid JSON at byte"), "dup keys carry a position: {err}");
        // Nested objects are covered by the same check.
        let err = JsonParser::parse("{\"a\": {\"b\": 1, \"b\": 2}}").unwrap_err().to_string();
        assert!(err.contains("duplicate object key \"b\""), "{err}");
    }

    /// `"tolerance": "NaN"` decodes to a float (the bit-exact record
    /// format quotes non-finite values), so the scenario parser needs
    /// its own finiteness check with a precise error — not a generic
    /// builder complaint after the parse already "succeeded".
    #[test]
    fn scenario_json_rejects_non_finite_tolerance() {
        let base = Scenario::builder("nf")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("w")
            .with_tolerance(0.25)
            .build()
            .unwrap();
        for bad in ["\"NaN\"", "\"Infinity\"", "\"-Infinity\""] {
            let text = base.to_json().replacen("0.25", bad, 1);
            let err = Scenario::from_json(&text).unwrap_err().to_string();
            assert!(err.contains("field \"tolerance\" must be a finite number"), "{bad}: {err}");
        }
    }

    #[test]
    fn registry_rejects_duplicates_and_names_unknowns() {
        let mut r = BackendRegistry::new();
        assert!(r.contains("analytical"));
        assert!(r.contains("analytical-offload"));
        let dup = r.register("analytical", |_| Box::new(Analytical::new()));
        assert!(dup.unwrap_err().to_string().contains("already registered"));
        let missing = r.build("astra-sim", &BackendConfig::default()).err().expect("unknown name");
        let msg = missing.to_string();
        assert!(msg.contains("unknown backend \"astra-sim\""), "{msg}");
        assert!(msg.contains("analytical"), "error must list known names: {msg}");
        r.register("custom", |_| Box::new(Analytical::new())).unwrap();
        assert_eq!(r.build("custom", &BackendConfig::default()).unwrap().name(), "analytical");
    }

    #[test]
    fn session_n0_is_a_plain_sweep() {
        let grid = small_grid();
        let wls = [planned_workload("a", 1.0)];
        let cm = CostModel::default();
        let report = Session::new(&cm).run(&grid, &wls, &[]);
        assert_eq!(report.sweep.results.len(), grid.len(1));
        assert!(report.divergence.pairs.is_empty());
        assert_eq!(report.divergence.n_backends(), 0);
        assert!(report.divergence.within_tolerance());
        assert!(report.divergence.summary().contains("no pairs"));
    }

    #[test]
    fn session_prices_all_pairs_for_n4() {
        let grid = small_grid();
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let skew = ScaledBackend::new(Analytical::new(), 1.5, "skewed");
        let report = Session::new(&cm).with_tolerance(0.10).run(&grid, &wls, &[&a, &a, &skew, &a]);
        // C(4, 2) = 6 pairs, in lexicographic order.
        assert_eq!(report.divergence.pairs.len(), 6);
        assert_eq!(
            DivergenceMatrix::pair_indices(4),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
        // Pairs not involving the skew agree exactly; pairs with it are 1/3 off.
        for (k, &(i, j)) in DivergenceMatrix::pair_indices(4).iter().enumerate() {
            let pair = &report.divergence.pairs[k];
            assert_eq!(pair, report.divergence.pair_between(i, j).unwrap());
            assert_eq!(pair, report.divergence.pair_between(j, i).unwrap());
            if i == 2 || j == 2 {
                assert!((pair.max_rel_error() - 1.0 / 3.0).abs() < 1e-12);
            } else {
                assert_eq!(pair.max_rel_error(), 0.0);
            }
        }
        assert!(!report.divergence.within_tolerance());
        assert!((report.divergence.max_rel_error() - 1.0 / 3.0).abs() < 1e-12);
        assert!(report.divergence.pair("analytical", "skewed").is_some());
        assert_eq!(report.divergence.summary().lines().count(), 6);
    }

    #[test]
    fn serial_and_parallel_sessions_are_bit_identical() {
        let grid = small_grid();
        let wls = [planned_workload("a", 1.0), planned_workload("b", 4.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let parallel = Session::new(&cm).run(&grid, &wls, &[&a, &a]);
        let serial = Session::new(&cm).with_mode(ExecMode::Serial).run(&grid, &wls, &[&a, &a]);
        assert_eq!(parallel.sweep.results, serial.sweep.results);
        assert_eq!(parallel.divergence, serial.divergence);
    }

    #[test]
    fn sinks_stream_rows_in_grid_order_and_jsonl_round_trips() {
        let grid = small_grid();
        let wls = [planned_workload("a", 1.0), planned_workload("b", 4.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let skew = ScaledBackend::new(Analytical::new(), 1.02, "near");
        let mut collector = CollectorSink::new();
        let mut jsonl = JsonLinesSink::new(Vec::<u8>::new());
        let mut console = ConsoleTableSink::new(Vec::<u8>::new());
        let session = Session::new(&cm).with_tolerance(0.05);
        let report = session.run_with_sinks(
            &grid,
            &wls,
            &[&a, &skew],
            &mut [&mut collector, &mut jsonl, &mut console],
        );
        let n = grid.len(wls.len());
        assert_eq!(collector.rows.len(), n);
        for (i, row) in collector.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert_eq!(row.secs.len(), 2);
            assert!(row.error.is_none());
        }
        // JSON-lines stream: header + n records + summary, and records
        // parse back bit-identically to the collector's rows.
        let text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert_eq!(text.lines().count(), n + 2);
        assert!(text.lines().next().unwrap().contains("libra-run-v1"));
        assert!(text.lines().last().unwrap().contains("within_tolerance"));
        let parsed = records_from_jsonl(&text).unwrap();
        assert_eq!(parsed, collector.rows);
        // Console table: header + n rows + footer summary lines.
        let table = String::from_utf8(console.into_inner()).unwrap();
        assert!(table.contains("shape"));
        assert!(table.contains("near"));
        assert!(report.divergence.within_tolerance());
    }

    #[test]
    fn record_rows_surface_errors() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf]);
        let bad = crate::sweep::FnWorkload::new("bad", |_: &NetworkShape| {
            Err(LibraError::BadRequest("unmappable".into()))
        });
        let cm = CostModel::default();
        let mut collector = CollectorSink::new();
        let a = Analytical::new();
        Session::new(&cm).run_with_sinks(&grid, &[bad], &[&a, &a], &mut [&mut collector]);
        assert_eq!(collector.rows.len(), 1);
        let row = &collector.rows[0];
        assert!(row.error.as_deref().unwrap().contains("unmappable"));
        assert_eq!(row.weighted_time, None);
        // Error rows round-trip through JSON-lines too.
        let back = RecordRow::from_json_line(&row.to_json_line()).unwrap();
        assert_eq!(&back, row);
    }

    #[test]
    fn scenario_session_runs_via_registry() {
        let scenario = Scenario::builder("unit")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0, 200.0])
            .with_objectives([Objective::Perf])
            .with_workload("allreduce-2g")
            .with_backends(["analytical", "analytical-offload"])
            .with_tolerance(1.0)
            .build()
            .unwrap();
        let registry = BackendRegistry::new();
        let wls = [planned_workload("allreduce-2g", 2.0)];
        let cm = CostModel::default();
        let session = scenario.session(&cm);
        assert_eq!(session.tolerance(), 1.0);
        let report = session.run_scenario(&scenario, &wls, &registry).unwrap();
        assert_eq!(report.sweep.results.len(), 2);
        assert_eq!(report.divergence.backends, vec!["analytical", "analytical-offload"]);
        assert_eq!(report.divergence.pairs.len(), 1);
        // Unknown backend names fail loudly.
        let broken = Scenario { backends: vec!["nope".into()], ..scenario.clone() };
        let err = session.run_scenario(&broken, &wls, &registry).unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
    }

    #[test]
    fn poisoned_backend_times_survive_the_jsonl_round_trip() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf]);
        let wls = [planned_workload("a", 1.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let poisoned = ScaledBackend::new(Analytical::new(), f64::NAN, "poisoned");
        let mut jsonl = JsonLinesSink::new(Vec::<u8>::new());
        Session::new(&cm).run_with_sinks(&grid, &wls, &[&a, &poisoned], &mut [&mut jsonl]);
        let stream = String::from_utf8(jsonl.into_inner()).unwrap();
        // The NaN time is encoded (as "NaN"), not dropped, and the stream
        // re-parses instead of erroring — shard aggregation must not be
        // poisoned by the very divergence cross-validation exists to catch.
        let rows = records_from_jsonl(&stream).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].secs.len(), 2);
        assert!(rows[0].secs[0].is_finite());
        assert!(rows[0].secs[1].is_nan());
        assert!(stream.lines().last().unwrap().contains("\"NaN\""), "summary max_rel_error");
    }

    /// A parsed line that is neither a record nor a known header/summary
    /// (e.g. a record truncated before its `"index"` survived) must be a
    /// hard error naming the line — not silently dropped, which would let
    /// a partially-written shard stream merge "cleanly" with missing
    /// points. Unparseable JSON gets the same line-numbered treatment.
    #[test]
    fn records_from_jsonl_errors_on_unrecognized_or_truncated_lines() {
        let header = "{\"schema\": \"libra-run-v1\", \"scenario\": null, \"backends\": [], \
                      \"points\": 1, \"tolerance\": 0.1}";
        let summary = "{\"summary\": {\"results\": 1}}";
        let record = "{\"index\": 0, \"shape\": \"RI(4)\", \"workload\": \"w\", \
                      \"budget\": 100, \"objective\": \"perf\", \"weighted_time\": 1.0, \
                      \"cost\": 1.0, \"speedup\": 1.0, \"secs\": [], \"error\": null}";
        let ok = format!("{header}\n{record}\n{summary}\n");
        assert_eq!(records_from_jsonl(&ok).unwrap().len(), 1);

        // A truncated record that still parses as JSON but lost "index".
        let truncated = format!("{header}\n{{\"shape\": \"RI(4)\", \"budget\": 100}}\n");
        let err = records_from_jsonl(&truncated).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("neither a record"), "{err}");

        // A line that is not JSON at all.
        let mangled = format!("{header}\n{record}\n{{\"index\": 1, \"shape");
        let err = records_from_jsonl(&mangled).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");

        // A record with "index" but a missing required field.
        let partial = format!("{header}\n{{\"index\": 0, \"shape\": \"RI(4)\"}}\n");
        let err = records_from_jsonl(&partial).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
    }

    /// Two streams pasted together must never merge as one run: a second
    /// header, a second summary, or any record/header after the summary
    /// is a hard error naming the 1-based line (see the dispatcher's
    /// shard-merge path, which feeds one stream per shard).
    #[test]
    fn records_from_jsonl_rejects_concatenated_streams() {
        let header = "{\"schema\": \"libra-run-v1\", \"scenario\": null, \"backends\": [], \
                      \"points\": 1, \"tolerance\": 0.1}";
        let summary = "{\"summary\": {\"results\": 1}}";
        let record = "{\"index\": 0, \"shape\": \"RI(4)\", \"workload\": \"w\", \
                      \"budget\": 100, \"objective\": \"perf\", \"weighted_time\": 1.0, \
                      \"cost\": 1.0, \"speedup\": 1.0, \"secs\": [], \"error\": null}";

        // Duplicate header mid-stream.
        let two_headers = format!("{header}\n{record}\n{header}\n");
        let err = records_from_jsonl(&two_headers).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("duplicate run header"), "{err}");

        // A record after the summary.
        let tail_record = format!("{header}\n{record}\n{summary}\n{record}\n");
        let err = records_from_jsonl(&tail_record).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("after the summary"), "{err}");

        // A full second run appended (header right after the summary).
        let two_runs = format!("{header}\n{record}\n{summary}\n{header}\n{record}\n{summary}\n");
        let err = records_from_jsonl(&two_runs).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");

        // Duplicate summary.
        let two_summaries = format!("{header}\n{record}\n{summary}\n{summary}\n");
        let err = records_from_jsonl(&two_summaries).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("duplicate summary"), "{err}");
    }

    /// `pair(a, b)` and `pair(b, a)` resolve to the same report, so a
    /// scenario file's backend order can never turn a merge-side lookup
    /// into a silent `None` (see the satellite note on
    /// [`DivergenceMatrix::pair`]).
    #[test]
    fn pair_lookup_is_order_insensitive() {
        let grid = small_grid();
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let skew = ScaledBackend::new(Analytical::new(), 1.1, "skewed");
        let offload = ScaledBackend::new(Analytical::new(), 1.05, "offload");
        let report = Session::new(&cm).run(&grid, &wls, &[&a, &skew, &offload]);
        for (x, y) in [("analytical", "skewed"), ("skewed", "offload"), ("analytical", "offload")] {
            let fwd = report.divergence.pair(x, y).expect("forward lookup resolves");
            let rev = report.divergence.pair(y, x).expect("reverse lookup resolves");
            assert_eq!(fwd, rev, "{x}/{y} must resolve identically in both orders");
        }
        assert!(report.divergence.pair("analytical", "nonexistent").is_none());
    }

    /// A ranged run's records are bit-identical to the corresponding
    /// slice of the full run's — including seeded points whose warm-start
    /// group anchor lies outside the range — and its indices stay global.
    #[test]
    fn ranged_session_runs_match_the_full_run_slice() {
        let grid = small_grid();
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let skew = ScaledBackend::new(Analytical::new(), 1.02, "skewed");

        let mut full = CollectorSink::new();
        Session::new(&cm).run_with_sinks(&grid, &wls, &[&a, &skew], &mut [&mut full]);
        assert_eq!(full.rows.len(), 4);

        // 1..3 straddles the two shapes; index 1 (first shape's second
        // budget) is seeded from an out-of-range anchor at index 0.
        let mut sharded = Vec::new();
        for range in [0..1, 1..3, 3..4] {
            let mut shard = CollectorSink::new();
            Session::new(&cm)
                .run_range_with_sinks(&grid, &wls, &[&a, &skew], range, &mut [&mut shard])
                .unwrap();
            sharded.extend(shard.rows);
        }
        assert_eq!(sharded, full.rows, "shard concatenation must be bit-identical");

        let bad = Session::new(&cm).run_range_with_sinks(&grid, &wls, &[&a], 2..9, &mut []);
        assert!(bad.unwrap_err().to_string().contains("does not fit"));
    }

    #[test]
    fn run_scenario_judges_at_the_scenario_tolerance() {
        let scenario = Scenario::builder("tol")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("allreduce-2g")
            .with_backends(["analytical", "skewed"])
            .with_tolerance(0.5)
            .build()
            .unwrap();
        let mut registry = BackendRegistry::new();
        registry
            .register("skewed", |_| Box::new(ScaledBackend::new(Analytical::new(), 1.2, "skewed")))
            .unwrap();
        let wls = [planned_workload("allreduce-2g", 2.0)];
        let cm = CostModel::default();
        // A session at a *tighter* default tolerance still judges the
        // scenario at the scenario's own 0.5 — scenario files carry their
        // verdict thresholds with them.
        let session = Session::new(&cm).with_tolerance(0.01);
        let report = session.run_scenario(&scenario, &wls, &registry).unwrap();
        assert_eq!(report.divergence.pairs[0].tolerance, 0.5);
        assert!(report.divergence.within_tolerance());
        // Plain runs keep using the session tolerance.
        let skew = ScaledBackend::new(Analytical::new(), 1.2, "skewed");
        let a = Analytical::new();
        let plain = session.run(&scenario.grid(), &wls, &[&a, &skew]);
        assert_eq!(plain.divergence.pairs[0].tolerance, 0.01);
        assert!(!plain.divergence.within_tolerance());
    }

    #[test]
    fn objective_names_round_trip() {
        for o in [Objective::Perf, Objective::PerfPerCost] {
            assert_eq!(objective_from_name(objective_name(o)).unwrap(), o);
        }
        assert!(objective_from_name("speed").is_err());
    }
}
