//! End-to-end training-time estimation (paper §IV-C).
//!
//! Converts a [`Workload`] plus a [`TrainingLoop`] into a [`BwExpr`] giving
//! the per-iteration time as a function of the bandwidth vector:
//!
//! * **NoOverlap** (Fig. 5b):
//!   `Σ_l (Fwd_Comp + Fwd_Comm) + Σ_l (TP_Comp + TP_Comm + DP_Comp + DP_Comm)`
//! * **TpDpOverlap** (Fig. 5c): backward per layer becomes
//!   `TP_Comp + max(TP_Comm, DP_Comp + DP_Comm)`.

use crate::comm::CommModel;
use crate::expr::BwExpr;
use crate::workload::{CommOp, TrainingLoop, Workload};

/// Lowers one optional communication op to an expression.
fn comm_expr(model: &CommModel, op: &Option<CommOp>) -> BwExpr {
    match op {
        Some(c) => model.time_expr(c.collective, c.bytes, &c.span),
        None => BwExpr::zero(),
    }
}

/// Estimates one training iteration's time as a bandwidth expression.
///
/// Runs of *identical* consecutive layers (common in transformer stacks) are
/// collapsed into a single scaled expression, keeping the compiled convex
/// problem small for 100+-layer models.
pub fn estimate(workload: &Workload, training_loop: TrainingLoop, model: &CommModel) -> BwExpr {
    let mut parts: Vec<BwExpr> = Vec::new();
    let mut i = 0usize;
    while i < workload.layers.len() {
        let layer = &workload.layers[i];
        let mut run = 1usize;
        while i + run < workload.layers.len() && workload.layers[i + run] == *layer {
            run += 1;
        }
        // Forward pass: compute then (exposed) forward communication.
        let mut layer_parts =
            vec![BwExpr::Const(layer.fwd_compute), comm_expr(model, &layer.fwd_comm)];
        // Backward pass.
        match training_loop {
            TrainingLoop::NoOverlap => {
                layer_parts.push(BwExpr::Const(layer.igrad_compute));
                layer_parts.push(comm_expr(model, &layer.tp_comm));
                layer_parts.push(BwExpr::Const(layer.wgrad_compute));
                layer_parts.push(comm_expr(model, &layer.dp_comm));
            }
            TrainingLoop::TpDpOverlap => {
                layer_parts.push(BwExpr::Const(layer.igrad_compute));
                let tp = comm_expr(model, &layer.tp_comm);
                let dp_branch = BwExpr::sum(vec![
                    BwExpr::Const(layer.wgrad_compute),
                    comm_expr(model, &layer.dp_comm),
                ]);
                layer_parts.push(BwExpr::max_of(vec![tp, dp_branch]));
            }
        }
        parts.push(BwExpr::sum(layer_parts).scaled(run as f64));
        i += run;
    }
    BwExpr::sum(parts)
}

/// The bandwidth-independent floor of an iteration: pure compute time under
/// `NoOverlap` (the "Pure Compute (No Exposed Communication)" line of
/// Fig. 10).
pub fn compute_floor(workload: &Workload) -> f64 {
    workload.total_compute()
}

/// Average network-bandwidth utilization of a design, following Fig. 10's
/// definition: for each communication phase, each spanned dimension is busy
/// for `traffic_i / B_i` out of the phase's bottleneck duration; utilization
/// averages busy fractions across *all* network dimensions, weighted by
/// phase duration.
pub fn average_utilization(
    workload: &Workload,
    model: &CommModel,
    bw: &[f64],
    n_dims: usize,
) -> f64 {
    let mut weighted = 0.0f64;
    let mut total_comm_time = 0.0f64;
    let mut visit = |op: &Option<CommOp>| {
        let Some(c) = op else { return };
        if c.span.is_trivial() || c.bytes <= 0.0 {
            return;
        }
        let traffic = model.traffic(c.collective, c.bytes, &c.span);
        let times: Vec<(usize, f64)> = traffic.iter().map(|&(d, t)| (d, t / 1e9 / bw[d])).collect();
        let phase = times.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
        if phase <= 0.0 {
            return;
        }
        let busy: f64 = times.iter().map(|&(_, t)| t).sum();
        // Busy fraction averaged over every dimension of the machine.
        weighted += phase * (busy / phase / n_dims as f64);
        total_comm_time += phase;
    };
    for layer in &workload.layers {
        visit(&layer.fwd_comm);
        visit(&layer.tp_comm);
        visit(&layer.dp_comm);
    }
    if total_comm_time == 0.0 {
        0.0
    } else {
        weighted / total_comm_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, GroupSpan};
    use crate::workload::Layer;

    fn toy_workload() -> Workload {
        let span01 = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let layer = Layer {
            name: "l".into(),
            fwd_compute: 0.1,
            fwd_comm: Some(CommOp::new(Collective::AllReduce, 1e9, span01.clone())),
            igrad_compute: 0.2,
            tp_comm: Some(CommOp::new(Collective::AllReduce, 2e9, span01.clone())),
            wgrad_compute: 0.3,
            dp_comm: Some(CommOp::new(Collective::ReduceScatter, 4e9, span01)),
        };
        Workload::new("toy", vec![layer])
    }

    #[test]
    fn no_overlap_sums_everything() {
        let w = toy_workload();
        let e = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        let bw = [10.0, 10.0];
        // fwd comm: max(2·1·(3/4)/10, 2·1·(1/8)/10) = 0.15
        // tp comm: 0.3; dp comm (RS): max(1·4·(3/4)/10, 4·(1/8)/10) = 0.3
        // fwd_comp 0.1 + fwd_comm 0.15 + igrad 0.2 + tp 0.3 + wgrad 0.3 + dp 0.3
        let expect = 0.1 + 0.15 + 0.2 + 0.3 + 0.3 + 0.3;
        assert!((e.eval(&bw) - expect).abs() < 1e-9, "got {}", e.eval(&bw));
    }

    #[test]
    fn overlap_hides_the_smaller_branch() {
        let w = toy_workload();
        let no = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        let ov = estimate(&w, TrainingLoop::TpDpOverlap, &CommModel::default());
        let bw = [10.0, 10.0];
        // Overlap replaces tp_comm + (wgrad + dp_comm) = 0.3 + 0.6 with
        // max(0.3, 0.6) = 0.6.
        assert!((no.eval(&bw) - ov.eval(&bw) - 0.3).abs() < 1e-9);
        assert!(ov.eval(&bw) < no.eval(&bw));
    }

    #[test]
    fn compute_floor_matches_total_compute() {
        let w = toy_workload();
        assert!((compute_floor(&w) - 0.6).abs() < 1e-12);
        let e = estimate(&w, TrainingLoop::NoOverlap, &CommModel::default());
        // As bandwidth grows the estimate approaches the compute floor.
        let t = e.eval(&[1e9, 1e9]);
        assert!((t - 0.6).abs() < 1e-6);
    }

    #[test]
    fn utilization_is_one_when_balanced() {
        // Single collective over one dim: that dim is 100% busy during the
        // phase, but the machine-wide average counts idle dims too.
        let span = GroupSpan::new(vec![(0, 4)]);
        let layer = Layer {
            name: "l".into(),
            fwd_comm: Some(CommOp::new(Collective::AllReduce, 1e9, span)),
            ..Default::default()
        };
        let w = Workload::new("t", vec![layer]);
        let u = average_utilization(&w, &CommModel::default(), &[10.0, 10.0], 2);
        assert!((u - 0.5).abs() < 1e-9, "one of two dims busy → 0.5, got {u}");
    }

    #[test]
    fn utilization_detects_bottleneck_imbalance() {
        let span = GroupSpan::new(vec![(0, 4), (1, 2)]);
        let layer = Layer {
            name: "l".into(),
            fwd_comm: Some(CommOp::new(Collective::AllReduce, 1e9, span)),
            ..Default::default()
        };
        let w = Workload::new("t", vec![layer]);
        // traffic: dim0 = 1.5 GB, dim1 = 0.25 GB. Bandwidth (15, 2.5) makes
        // both dims take 0.1 s → fully utilized.
        let u_bal = average_utilization(&w, &CommModel::default(), &[15.0, 2.5], 2);
        assert!((u_bal - 1.0).abs() < 1e-9);
        // EqualBW (8.75, 8.75): dim0 busy 0.171s, dim1 busy 0.029s → 58.3%.
        let u_eq = average_utilization(&w, &CommModel::default(), &[8.75, 8.75], 2);
        assert!(u_eq < 0.6);
    }
}
