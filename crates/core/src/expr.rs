//! Bandwidth expressions: end-to-end time as a function of the per-dim
//! bandwidth vector `B`.
//!
//! LIBRA models every communication delay as `coeff / B_dim` (traffic over
//! bandwidth) and combines delays with sums (sequential phases) and maxes
//! (bottlenecks / overlap), producing a convex function of `B` that the
//! interior-point solver optimizes directly. [`BwExpr::compile`] lowers an
//! expression into the epigraph form consumed by `libra-solver`.

use libra_solver::convex::{ConvexProblem, RatioTerm};

/// A convex expression over the bandwidth vector `B` (GB/s per dim).
///
/// `Ratio { coeff, dim }` evaluates to `coeff / B[dim]` with `coeff` in
/// gigabytes, yielding seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum BwExpr {
    /// A constant time in seconds (compute delays).
    Const(f64),
    /// `coeff / B[dim]`: `coeff` GB of traffic moving at `B[dim]` GB/s.
    Ratio {
        /// Traffic in gigabytes.
        coeff: f64,
        /// Bandwidth variable (network dimension) index.
        dim: usize,
    },
    /// Sum of sub-expressions (sequential phases).
    Sum(Vec<BwExpr>),
    /// Maximum of sub-expressions (bottleneck / overlapped phases).
    Max(Vec<BwExpr>),
}

impl BwExpr {
    /// A zero-time expression.
    pub fn zero() -> Self {
        BwExpr::Const(0.0)
    }

    /// Builds a sum, flattening nested sums and folding constants.
    pub fn sum(parts: Vec<BwExpr>) -> Self {
        let mut constant = 0.0;
        let mut out: Vec<BwExpr> = Vec::new();
        let mut stack: Vec<BwExpr> = parts;
        stack.reverse();
        while let Some(p) = stack.pop() {
            match p {
                BwExpr::Const(c) => constant += c,
                BwExpr::Sum(inner) => {
                    for e in inner.into_iter().rev() {
                        stack.push(e);
                    }
                }
                other => out.push(other),
            }
        }
        if constant != 0.0 || out.is_empty() {
            out.push(BwExpr::Const(constant));
        }
        if out.len() == 1 {
            out.pop().expect("non-empty")
        } else {
            BwExpr::Sum(out)
        }
    }

    /// Builds a max, flattening nested maxes.
    pub fn max_of(parts: Vec<BwExpr>) -> Self {
        let mut out: Vec<BwExpr> = Vec::new();
        for p in parts {
            match p {
                BwExpr::Max(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BwExpr::zero(),
            1 => out.pop().expect("non-empty"),
            _ => BwExpr::Max(out),
        }
    }

    /// Multiplies the expression by a non-negative scalar (e.g. number of
    /// training iterations).
    ///
    /// # Panics
    /// Panics if `s` is negative (would destroy convexity).
    pub fn scaled(self, s: f64) -> Self {
        assert!(s >= 0.0, "scale factor must be non-negative");
        match self {
            BwExpr::Const(c) => BwExpr::Const(c * s),
            BwExpr::Ratio { coeff, dim } => BwExpr::Ratio { coeff: coeff * s, dim },
            BwExpr::Sum(parts) => BwExpr::Sum(parts.into_iter().map(|p| p.scaled(s)).collect()),
            BwExpr::Max(parts) => BwExpr::Max(parts.into_iter().map(|p| p.scaled(s)).collect()),
        }
    }

    /// Evaluates the expression at a bandwidth vector (GB/s per dim).
    ///
    /// Returns `+inf` when a referenced bandwidth is non-positive.
    pub fn eval(&self, bw: &[f64]) -> f64 {
        match self {
            BwExpr::Const(c) => *c,
            BwExpr::Ratio { coeff, dim } => {
                if bw[*dim] <= 0.0 {
                    f64::INFINITY
                } else {
                    coeff / bw[*dim]
                }
            }
            BwExpr::Sum(parts) => parts.iter().map(|p| p.eval(bw)).sum(),
            BwExpr::Max(parts) => {
                parts.iter().map(|p| p.eval(bw)).fold(f64::NEG_INFINITY, f64::max)
            }
        }
    }

    /// The largest dimension index referenced, if any.
    pub fn max_dim(&self) -> Option<usize> {
        match self {
            BwExpr::Const(_) => None,
            BwExpr::Ratio { dim, .. } => Some(*dim),
            BwExpr::Sum(parts) | BwExpr::Max(parts) => {
                parts.iter().filter_map(|p| p.max_dim()).max()
            }
        }
    }

    /// The constant (bandwidth-independent) part of the expression: its
    /// value as `B → ∞`. This is the "pure compute" floor of Fig. 10.
    pub fn compute_floor(&self) -> f64 {
        match self {
            BwExpr::Const(c) => *c,
            BwExpr::Ratio { .. } => 0.0,
            BwExpr::Sum(parts) => parts.iter().map(|p| p.compute_floor()).sum(),
            BwExpr::Max(parts) => {
                parts.iter().map(|p| p.compute_floor()).fold(f64::NEG_INFINITY, f64::max)
            }
        }
    }
}

/// A linear-plus-ratio accumulator used during compilation: the lowered form
/// of an expression with all `Max` nodes replaced by epigraph variables.
#[derive(Debug, Clone, Default)]
struct Lowered {
    ratios: Vec<(usize, f64)>,
    epis: Vec<(usize, f64)>,
    constant: f64,
}

impl Lowered {
    fn add(&mut self, other: Lowered, scale: f64) {
        self.constant += scale * other.constant;
        for (d, c) in other.ratios {
            self.ratios.push((d, scale * c));
        }
        for (v, c) in other.epis {
            self.epis.push((v, scale * c));
        }
    }

    /// The lowered body's value at a full guess vector (bandwidths and
    /// already-seeded inner epigraph variables). Seeding each epigraph
    /// guess above *this* — rather than above the expression's true value —
    /// keeps the suggested start strictly feasible even when nested
    /// epigraph slacks stack up, so solves skip phase-I.
    fn value_at(&self, guess: &[f64]) -> f64 {
        let mut v = self.constant;
        for &(d, c) in &self.ratios {
            if guess[d] <= 0.0 {
                return f64::INFINITY;
            }
            v += c / guess[d];
        }
        for &(e, c) in &self.epis {
            v += c * guess[e];
        }
        v
    }
}

/// Compiles weighted expressions into a [`ConvexProblem`]:
/// `minimize Σ_k weight_k · expr_k(B)` over `B` plus epigraph variables.
///
/// Returns the problem and the index of the objective epigraph variable.
/// Variables `0..n_dims` are the bandwidths; callers must still add their
/// own designer constraints and bandwidth bounds before solving.
///
/// `bw_guess` seeds the interior-point start (e.g. the EqualBW point).
pub fn compile(
    targets: &[(f64, BwExpr)],
    n_dims: usize,
    bw_guess: &[f64],
) -> (ConvexProblem, usize) {
    compile_seeded(targets, n_dims, bw_guess, false)
}

/// [`compile`] with control over the epigraph-variable slack in the
/// suggested start. A cold compile leaves a unit of slack above each max
/// term (robust for arbitrary guesses); a `tight` compile — used when
/// `bw_guess` is a warm-start seed presumed near-optimal — leaves only a
/// hair of slack, so the interior-point solver starts almost on top of the
/// seed's objective value and `ConvexProblem::solve_from` can enter the
/// barrier ladder high.
pub fn compile_seeded(
    targets: &[(f64, BwExpr)],
    n_dims: usize,
    bw_guess: &[f64],
    tight: bool,
) -> (ConvexProblem, usize) {
    // First pass: count epigraph variables (one per Max node + one for the
    // total objective).
    struct Ctx {
        problem: ConvexProblem,
        next_var: usize,
        guess: Vec<f64>,
        /// Epigraph slack above a node's value `v`: strictly positive so
        /// the start stays strictly feasible.
        slack: fn(f64) -> f64,
    }

    fn count_max_nodes(e: &BwExpr) -> usize {
        match e {
            BwExpr::Const(_) | BwExpr::Ratio { .. } => 0,
            BwExpr::Sum(parts) => parts.iter().map(count_max_nodes).sum(),
            BwExpr::Max(parts) => 1 + parts.iter().map(count_max_nodes).sum::<usize>(),
        }
    }

    fn loose_slack(v: f64) -> f64 {
        v + 1.0
    }
    fn tight_slack(v: f64) -> f64 {
        v * (1.0 + 1e-4) + 1e-9
    }

    let n_epi: usize = targets.iter().map(|(_, e)| count_max_nodes(e)).sum::<usize>() + 1;
    let n_vars = n_dims + n_epi;
    let mut ctx = Ctx {
        problem: ConvexProblem::new(n_vars),
        next_var: n_dims,
        guess: vec![0.0; n_vars],
        slack: if tight { tight_slack } else { loose_slack },
    };
    ctx.guess[..n_dims].copy_from_slice(bw_guess);

    fn lower(e: &BwExpr, ctx: &mut Ctx) -> Lowered {
        match e {
            BwExpr::Const(c) => Lowered { constant: *c, ..Default::default() },
            BwExpr::Ratio { coeff, dim } => {
                Lowered { ratios: vec![(*dim, *coeff)], ..Default::default() }
            }
            BwExpr::Sum(parts) => {
                let mut acc = Lowered::default();
                for p in parts {
                    let l = lower(p, ctx);
                    acc.add(l, 1.0);
                }
                acc
            }
            BwExpr::Max(parts) => {
                let t = ctx.next_var;
                ctx.next_var += 1;
                let mut worst = f64::NEG_INFINITY;
                for p in parts {
                    let l = lower(p, ctx);
                    // Measure the lowered body at the guess (inner epigraph
                    // guesses are already set — DFS is bottom-up) so the
                    // seed for `t` clears every constraint strictly.
                    worst = worst.max(l.value_at(&ctx.guess));
                    // l − t ≤ 0
                    let mut rt = RatioTerm::new(l.ratios).plus_const(l.constant).minus_var(t);
                    for (v, c) in l.epis {
                        rt = rt.plus_linear(v, c);
                    }
                    ctx.problem.add_ratio_le(rt);
                }
                ctx.guess[t] = if worst.is_finite() { (ctx.slack)(worst.abs()) } else { 1.0 };
                Lowered { epis: vec![(t, 1.0)], ..Default::default() }
            }
        }
    }

    let mut total = Lowered::default();
    for (w, e) in targets {
        let l = lower(e, &mut ctx);
        total.add(l, *w);
    }
    // Bind the whole objective to a final epigraph variable so the solver
    // sees a linear objective even when ratios appear at the top level.
    let t_obj = ctx.next_var;
    ctx.next_var += 1;
    debug_assert_eq!(ctx.next_var, n_vars);
    let weighted = total.value_at(&ctx.guess);
    let mut rt = RatioTerm::new(total.ratios).plus_const(total.constant).minus_var(t_obj);
    for (v, c) in total.epis {
        rt = rt.plus_linear(v, c);
    }
    ctx.problem.add_ratio_le(rt);
    ctx.problem.minimize(&[(t_obj, 1.0)]);

    ctx.guess[t_obj] = if weighted.is_finite() { (ctx.slack)(weighted.abs()) } else { 1.0 };
    let guess = ctx.guess.clone();
    ctx.problem.suggest_start(guess);
    (ctx.problem, t_obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(coeff: f64, dim: usize) -> BwExpr {
        BwExpr::Ratio { coeff, dim }
    }

    #[test]
    fn eval_matches_manual() {
        // 1 + max(10/B0, 4/B1) + 2/B0
        let e = BwExpr::sum(vec![
            BwExpr::Const(1.0),
            BwExpr::max_of(vec![ratio(10.0, 0), ratio(4.0, 1)]),
            ratio(2.0, 0),
        ]);
        let v = e.eval(&[2.0, 1.0]);
        assert!((v - (1.0 + 5.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn sum_folds_constants_and_flattens() {
        let e = BwExpr::sum(vec![
            BwExpr::Const(1.0),
            BwExpr::sum(vec![BwExpr::Const(2.0), ratio(1.0, 0)]),
        ]);
        match &e {
            BwExpr::Sum(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts
                    .iter()
                    .any(|p| matches!(p, BwExpr::Const(c) if (*c - 3.0).abs() < 1e-12)));
            }
            other => panic!("expected Sum, got {other:?}"),
        }
    }

    #[test]
    fn max_of_flattens_and_degenerates() {
        assert_eq!(BwExpr::max_of(vec![]), BwExpr::Const(0.0));
        assert_eq!(BwExpr::max_of(vec![ratio(1.0, 0)]), ratio(1.0, 0));
        let e =
            BwExpr::max_of(vec![BwExpr::max_of(vec![ratio(1.0, 0), ratio(2.0, 1)]), ratio(3.0, 0)]);
        match e {
            BwExpr::Max(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected Max, got {other:?}"),
        }
    }

    #[test]
    fn scaled_distributes() {
        let e = BwExpr::sum(vec![BwExpr::Const(1.0), ratio(10.0, 0)]).scaled(3.0);
        assert!((e.eval(&[5.0]) - (3.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn compute_floor_drops_ratios() {
        let e = BwExpr::sum(vec![
            BwExpr::Const(2.0),
            BwExpr::max_of(vec![ratio(10.0, 0), BwExpr::Const(0.5)]),
        ]);
        assert!((e.compute_floor() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eval_with_zero_bandwidth_is_infinite() {
        assert!(ratio(1.0, 0).eval(&[0.0]).is_infinite());
    }

    #[test]
    fn compile_and_solve_bottleneck() {
        // minimize max(8/B0, 2/B1) st B0+B1 ≤ 10 → B=(8,2), t=1.
        let e = BwExpr::max_of(vec![ratio(8.0, 0), ratio(2.0, 1)]);
        let (mut p, _) = compile(&[(1.0, e)], 2, &[5.0, 5.0]);
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        let s = p.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-3, "objective {}", s.objective);
        assert!((s.x[0] - 8.0).abs() < 5e-2);
    }

    #[test]
    fn compile_handles_nested_overlap_structure() {
        // Σ_layers [c + max(tp/B0, d + dp/B1)] with 2 identical layers.
        let layer = BwExpr::sum(vec![
            BwExpr::Const(0.5),
            BwExpr::max_of(vec![
                ratio(6.0, 0),
                BwExpr::sum(vec![BwExpr::Const(0.25), ratio(3.0, 1)]),
            ]),
        ]);
        let e = BwExpr::sum(vec![layer.clone(), layer]);
        let (mut p, _) = compile(&[(1.0, e.clone())], 2, &[5.0, 5.0]);
        p.add_lin_le(&[(0, 1.0), (1, 1.0)], 10.0);
        p.set_lower(0, 1e-3).set_lower(1, 1e-3);
        let s = p.solve().unwrap();
        // Cross-check: solver optimum equals direct evaluation at solver B,
        // and beats a dense grid scan.
        let direct = e.eval(&s.x[..2]);
        assert!((s.objective - direct).abs() < 1e-4 * (1.0 + direct));
        let mut best = f64::INFINITY;
        for i in 1..100 {
            let b0 = 0.1 * i as f64;
            let b1 = 10.0 - b0;
            if b1 <= 0.0 {
                continue;
            }
            best = best.min(e.eval(&[b0, b1]));
        }
        assert!(s.objective <= best + 1e-3, "solver {} grid {best}", s.objective);
    }
}
