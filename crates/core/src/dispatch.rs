//! Shard dispatcher: one [`Scenario`](crate::scenario::Scenario) sweep
//! split across many independent workers.
//!
//! The grid's deterministic enumeration (shape → workload → budget →
//! objective) makes a sweep trivially partitionable: [`shard_ranges`]
//! cuts `0..grid_len` into K contiguous index ranges, each shard runs
//! its range through a **fresh** engine (in-process
//! [`Session`](crate::scenario::Session)s here, or
//! `libra crossval --range a..b` child processes forked by the CLI's
//! `dispatch --spawn`), and the shards' JSON-lines streams are merged
//! back: concatenated, re-parsed with
//! [`records_from_jsonl`](crate::scenario::records_from_jsonl),
//! re-sorted by grid index, coverage-checked against the grid
//! ([`verify_coverage`] — exactly `0..grid_len`, no gaps, no
//! duplicates), and re-judged into a fresh
//! [`DivergenceMatrix`](crate::scenario::DivergenceMatrix) at the
//! scenario's own tolerance.
//!
//! The headline contract, pinned by `prop_dispatch` and the CI golden
//! diff: **the K-shard merged output is bit-identical to the
//! single-process run** — same records, same summary line, same exit
//! code — for every K and both worker modes. Two properties carry it:
//!
//! 1. Range-restricted drives solve any out-of-range warm-start group
//!    anchors before their seeded points, so every shard's solves see
//!    exactly the seeds the full run would have published.
//! 2. JSON-lines records round-trip floats bit-identically, so the
//!    merge side recomputes each pair's relative errors from exactly
//!    the times the workers measured.

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::cost::CostModel;
use crate::error::LibraError;
use crate::eval::rel_error;
use crate::scenario::{
    jsonl_header_line, jsonl_summary_line, records_from_jsonl, BackendRegistry, CollectorSink,
    DivergenceMatrix, JsonLinesSink, JsonParser, RecordRow, RunMeta, Scenario,
};
use crate::sweep::{
    DivergenceReport, ExecMode, GridPoint, PointDivergence, SweepError, SweepWorkload,
};

/// Splits `0..n_points` into `shards` contiguous ranges whose lengths
/// differ by at most one (earlier ranges take the remainder). With more
/// shards than points the tail ranges are empty.
///
/// # Panics
/// Panics when `shards` is zero — [`Dispatcher::new`] rejects that
/// before any plan is built.
pub fn shard_ranges(n_points: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "cannot split a grid into zero shards");
    let base = n_points / shards;
    let extra = n_points % shards;
    let mut start = 0;
    (0..shards)
        .map(|k| {
            let len = base + usize::from(k < extra);
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

/// Verifies that `rows` (sorted by index) cover the grid exactly:
/// indices `0..grid_len`, no gaps, no duplicates. This is what makes a
/// partially-written or doubly-merged shard stream a hard error instead
/// of a silently smaller "clean" merge.
///
/// # Errors
/// [`LibraError::BadRequest`] naming the first missing or duplicated
/// grid index.
pub fn verify_coverage(rows: &[RecordRow], grid_len: usize) -> Result<(), LibraError> {
    let mut expect = 0usize;
    for row in rows {
        if row.index < expect {
            return Err(LibraError::BadRequest(format!(
                "merged shard streams carry grid index {} more than once",
                row.index
            )));
        }
        if row.index > expect {
            return Err(LibraError::BadRequest(format!(
                "merged shard streams are missing grid index {expect} \
                 (expected exactly 0..{grid_len})"
            )));
        }
        expect += 1;
    }
    if expect != grid_len {
        return Err(LibraError::BadRequest(format!(
            "merged shard streams cover {expect} of the grid's {grid_len} points \
             (missing the tail from index {expect})"
        )));
    }
    Ok(())
}

/// The merged outcome of a sharded run: every record in grid order,
/// coverage-verified, plus the divergence matrix re-judged at the
/// scenario's tolerance. [`MergedRun::to_jsonl`] reproduces the
/// single-process JSON-lines stream byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRun {
    /// The scenario's display name (echoed into the merged header).
    pub scenario: String,
    /// Backend display names, in scenario order.
    pub backends: Vec<String>,
    /// The scenario tolerance the merge was judged at.
    pub tolerance: f64,
    /// Every grid point's record, sorted by grid index.
    pub rows: Vec<RecordRow>,
    /// The pairwise divergence matrix rebuilt from the merged records.
    pub divergence: DivergenceMatrix,
}

impl MergedRun {
    /// Points whose design solve succeeded (mirrors the single run's
    /// `report.sweep.results.len()`).
    pub fn results(&self) -> usize {
        self.rows.iter().filter(|r| r.weighted_time.is_some()).count()
    }

    /// Points whose design solve failed (mirrors
    /// `report.sweep.errors.len()`).
    pub fn errors(&self) -> usize {
        self.rows.len() - self.results()
    }

    /// The merged verdict at the scenario's tolerance. Non-finite times
    /// or errors are violations, exactly as in a single-process run.
    pub fn within_tolerance(&self) -> bool {
        self.divergence.within_tolerance()
    }

    /// The process exit code the merged verdict maps to: `0` within
    /// tolerance, `2` diverged — the same contract as `libra crossval`.
    pub fn exit_code(&self) -> i32 {
        if self.within_tolerance() {
            0
        } else {
            2
        }
    }

    /// Re-emits the merged run as one JSON-lines stream — header,
    /// records in grid order, summary — byte-identical to what a
    /// single-process [`JsonLinesSink`] run over the whole grid writes.
    pub fn to_jsonl(&self) -> String {
        let meta = RunMeta {
            scenario: Some(&self.scenario),
            backends: &self.backends,
            n_points: self.rows.len(),
            tolerance: self.tolerance,
        };
        let mut out = String::new();
        out.push_str(&jsonl_header_line(&meta));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_json_line());
            out.push('\n');
        }
        out.push_str(&jsonl_summary_line(self.results(), self.errors(), &self.divergence));
        out.push('\n');
        out
    }
}

/// Splits a [`Scenario`]'s grid into K contiguous shards, runs each
/// shard as an independent worker, and merges the workers' JSON-lines
/// streams back into one coverage-checked, re-judged [`MergedRun`].
///
/// [`Dispatcher::run_in_process`] executes the shards right here, each
/// on a fresh engine (nothing shared — the exact situation a forked
/// worker is in); [`Dispatcher::merge_streams`] merges streams produced
/// elsewhere (the CLI's `dispatch --spawn` children).
#[derive(Debug, Clone)]
pub struct Dispatcher<'s> {
    scenario: &'s Scenario,
    shards: usize,
    mode: ExecMode,
    store: Option<PathBuf>,
}

impl<'s> Dispatcher<'s> {
    /// A dispatcher splitting `scenario`'s grid into `shards` contiguous
    /// ranges.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] when `shards` is zero.
    pub fn new(scenario: &'s Scenario, shards: usize) -> Result<Self, LibraError> {
        if shards == 0 {
            return Err(LibraError::BadRequest("a dispatch needs at least one shard".to_string()));
        }
        Ok(Dispatcher { scenario, shards, mode: ExecMode::Parallel, store: None })
    }

    /// Selects each in-process shard session's execution mode
    /// (bit-identical either way, by the engine's determinism contract).
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shares one persistent solve cache
    /// ([`crate::store::SolveStore`]) across every in-process shard
    /// session: each shard opens the file at `path` on start and
    /// appends its fresh solves on completion, so later shards (and
    /// later runs) skip already-solved points. The merged run stays
    /// byte-identical to the single-process stream — stored solves
    /// round-trip bit-exactly.
    #[must_use]
    pub fn with_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// The shard index ranges for `n_workloads` resolved workloads.
    pub fn ranges(&self, n_workloads: usize) -> Vec<Range<usize>> {
        shard_ranges(self.scenario.grid().len(n_workloads), self.shards)
    }

    /// Runs every shard in-process — each on a **fresh**
    /// [`Session`](crate::scenario::Session) over its own engine, so no
    /// memo cache or seed state leaks between shards — and merges the
    /// shards' JSON-lines streams.
    ///
    /// # Errors
    /// Propagates unknown-backend-name errors and every merge-side
    /// check ([`verify_coverage`], record/grid mismatches).
    pub fn run_in_process<W: SweepWorkload>(
        &self,
        cost_model: &CostModel,
        workloads: &[W],
        registry: &BackendRegistry,
    ) -> Result<MergedRun, LibraError> {
        let built = self.scenario.build_backends(registry)?;
        let names: Vec<String> = built.iter().map(|b| b.name().to_string()).collect();
        let mut streams = Vec::with_capacity(self.shards);
        for range in self.ranges(workloads.len()) {
            let mut session = self.scenario.session(cost_model).with_mode(self.mode);
            if let Some(path) = &self.store {
                session = session.with_store(path)?;
            }
            let mut sink = JsonLinesSink::new(Vec::<u8>::new());
            session.run_scenario_range_with_sinks(
                self.scenario,
                workloads,
                registry,
                range,
                &mut [&mut sink],
            )?;
            streams.push(String::from_utf8(sink.into_inner()).expect("JSON-lines are UTF-8"));
        }
        self.merge(workloads.len(), &streams, names)
    }

    /// Merges shard JSON-lines streams produced by external workers
    /// (`libra crossval --jsonl - --range a..b` children). Backend
    /// display names are read from the first stream's run header.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] when no stream carries a run header,
    /// on malformed records, on coverage gaps or duplicates, and on
    /// records that disagree with the scenario's grid.
    pub fn merge_streams<S: AsRef<str>>(
        &self,
        streams: &[S],
        registry: &BackendRegistry,
    ) -> Result<MergedRun, LibraError> {
        // Resolve display names exactly as the in-process path does;
        // the stream headers echo these same names.
        let built = self.scenario.build_backends(registry)?;
        let names: Vec<String> = built.iter().map(|b| b.name().to_string()).collect();
        self.merge(self.scenario.workloads.len(), streams, names)
    }

    fn merge<S: AsRef<str>>(
        &self,
        n_workloads: usize,
        streams: &[S],
        names: Vec<String>,
    ) -> Result<MergedRun, LibraError> {
        let mut rows: Vec<RecordRow> = Vec::new();
        for (k, stream) in streams.iter().enumerate() {
            rows.extend(
                records_from_jsonl(stream.as_ref())
                    .map_err(|e| LibraError::BadRequest(format!("shard {k}: {e}")))?,
            );
        }
        merge_rows(self.scenario, n_workloads, rows, names)
    }
}

/// Merges already-parsed records — the shared back half of
/// [`Dispatcher::merge_streams`] and [`resume_rows`]: sort by grid
/// index, verify exact coverage, re-judge divergence at the scenario's
/// tolerance.
fn merge_rows(
    scenario: &Scenario,
    n_workloads: usize,
    mut rows: Vec<RecordRow>,
    names: Vec<String>,
) -> Result<MergedRun, LibraError> {
    rows.sort_by_key(|r| r.index);
    let grid_len = scenario.grid().len(n_workloads);
    verify_coverage(&rows, grid_len)?;
    let divergence = rejudge(scenario, &rows, n_workloads, names)?;
    Ok(MergedRun {
        scenario: scenario.name.clone(),
        backends: divergence.backends.clone(),
        tolerance: scenario.tolerance,
        rows,
        divergence,
    })
}

/// Rebuilds the pairwise divergence matrix from merged records,
/// judging at the scenario's tolerance. Relative errors are
/// recomputed from the round-tripped (bit-identical) backend times,
/// so the rebuilt matrix reaches exactly the single run's verdict.
fn rejudge(
    scenario: &Scenario,
    rows: &[RecordRow],
    n_workloads: usize,
    names: Vec<String>,
) -> Result<DivergenceMatrix, LibraError> {
    let grid = scenario.grid();
    let pair_indices = DivergenceMatrix::pair_indices(names.len());
    let mut pairs: Vec<DivergenceReport> = pair_indices
        .iter()
        .map(|&(i, j)| DivergenceReport {
            baseline: names[i].clone(),
            reference: names[j].clone(),
            tolerance: scenario.tolerance,
            points: Vec::new(),
            skipped: 0,
            backend_errors: Vec::new(),
        })
        .collect();
    let n_obj = grid.objectives().len().max(1);
    let n_bud = grid.budgets().len().max(1);
    {
        for row in rows {
            // Decompose the grid index along the shape-major enumeration
            // and cross-check the record against the scenario's grid, so
            // a stream from some other scenario cannot merge quietly.
            let o = row.index % n_obj;
            let b = (row.index / n_obj) % n_bud;
            let w = (row.index / (n_obj * n_bud)) % n_workloads.max(1);
            let s = row.index / (n_obj * n_bud * n_workloads.max(1));
            let shape = &grid.shapes()[s];
            let point = GridPoint {
                shape: s,
                workload: w,
                budget: grid.budgets()[b],
                objective: grid.objectives()[o],
            };
            if row.shape != shape.to_string()
                || row.budget.to_bits() != point.budget.to_bits()
                || row.objective != point.objective
            {
                return Err(LibraError::BadRequest(format!(
                    "record at grid index {} ({}, {}, budget {}) does not match \
                     the scenario's grid — merged streams from a different run?",
                    row.index, row.shape, row.workload, row.budget
                )));
            }
            if row.weighted_time.is_none() {
                // Design-solve failure: lives in the sweep errors, not
                // in any pair (exactly as the single-process fold).
                continue;
            }
            if !row.secs.is_empty() {
                if row.secs.len() != names.len() {
                    return Err(LibraError::BadRequest(format!(
                        "record at grid index {} carries {} backend times, \
                         but the scenario names {} backends",
                        row.index,
                        row.secs.len(),
                        names.len()
                    )));
                }
                for (pair, &(i, j)) in pairs.iter_mut().zip(&pair_indices) {
                    pair.points.push(PointDivergence {
                        point,
                        shape: shape.clone(),
                        workload: row.workload.clone(),
                        baseline_secs: row.secs[i],
                        reference_secs: row.secs[j],
                        rel_error: rel_error(row.secs[i], row.secs[j]),
                    });
                }
            } else if let Some(msg) = &row.error {
                // A backend rejected the plan: reconstruct the failure
                // (the message survives; the original error variant is
                // not serialized).
                for pair in &mut pairs {
                    pair.backend_errors.push(SweepError {
                        point,
                        shape: shape.clone(),
                        workload: row.workload.clone(),
                        error: LibraError::BadRequest(msg.clone()),
                    });
                }
            } else {
                // Designed but planless (or a plain sweep): skipped.
                for pair in &mut pairs {
                    pair.skipped += 1;
                }
            }
        }
        Ok(DivergenceMatrix { backends: names, pairs })
    }
}

/// Leniently reads the valid prefix of a partial (interrupted)
/// JSON-lines stream: the run header is skipped, records are collected,
/// and the stream may stop anywhere — including halfway through its
/// final line, which a torn write produces. Only the **last** line may
/// be malformed; corruption earlier in the stream (a duplicate run
/// header, garbage between records, or anything after the summary line)
/// is an error naming the 1-based line, because it means the file is
/// not a clean prefix of one run.
///
/// # Errors
/// [`LibraError::BadRequest`] on a duplicate run header, a malformed
/// non-final line, or content after the summary line.
pub fn partial_records(stream: &str) -> Result<Vec<RecordRow>, LibraError> {
    let at = |lineno: usize, what: &str| {
        LibraError::BadRequest(format!("partial JSON-lines input line {lineno}: {what}"))
    };
    let lines: Vec<&str> = stream.lines().collect();
    let mut rows = Vec::new();
    let mut seen_header = false;
    let mut seen_summary = false;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let is_last = i + 1 == lines.len();
        if seen_summary {
            return Err(at(
                lineno,
                "content after the summary line — not a clean prefix of one run",
            ));
        }
        let v = match JsonParser::parse(line) {
            Ok(v) => v,
            // A torn final line is exactly what an interrupted writer
            // leaves behind; everything before it is still good.
            Err(_) if is_last => break,
            Err(e) => return Err(at(lineno, &e.to_string())),
        };
        if v.get("schema").is_some() {
            if seen_header {
                return Err(at(lineno, "duplicate run header — two streams concatenated?"));
            }
            seen_header = true;
        } else if v.get("summary").is_some() {
            seen_summary = true;
        } else if v.get("index").is_some() {
            match RecordRow::from_json_line(line) {
                Ok(row) => rows.push(row),
                Err(_) if is_last => break,
                Err(e) => return Err(at(lineno, &e.to_string())),
            }
        } else if is_last {
            // A torn line can still parse as a smaller valid object
            // (e.g. cut inside a string); treat it like any torn tail.
            break;
        } else {
            return Err(at(
                lineno,
                "JSON object is neither a record (no \"index\") nor a known \
                 header/summary line — corrupted stream?",
            ));
        }
    }
    Ok(rows)
}

/// Prices only the grid indices missing from `rows` — each contiguous
/// missing range on a **fresh** session (optionally backed by the
/// persistent solve store at `store`) — and merges surviving + fresh
/// records into one [`MergedRun`] whose [`MergedRun::to_jsonl`] stream
/// is byte-identical to an uninterrupted single-process run.
///
/// Surviving rows round-trip bit-exactly through the JSON-lines record
/// format, and the ranged drive is deterministic point-for-point, so
/// the merged stream does not depend on where the original run stopped.
///
/// # Errors
/// [`LibraError::BadRequest`] when a surviving record's grid index is
/// out of range or duplicated, on unknown backend names, and on every
/// merge-side check ([`verify_coverage`], record/grid mismatches).
pub fn resume_rows<W: SweepWorkload>(
    scenario: &Scenario,
    workloads: &[W],
    registry: &BackendRegistry,
    cost_model: &CostModel,
    rows: Vec<RecordRow>,
    mode: ExecMode,
    store: Option<&Path>,
) -> Result<MergedRun, LibraError> {
    let built = scenario.build_backends(registry)?;
    let names: Vec<String> = built.iter().map(|b| b.name().to_string()).collect();
    let grid_len = scenario.grid().len(workloads.len());
    let mut have = vec![false; grid_len];
    for row in &rows {
        if row.index >= grid_len {
            return Err(LibraError::BadRequest(format!(
                "surviving record carries grid index {} but the grid has only \
                 {grid_len} points — partial stream from a different scenario?",
                row.index
            )));
        }
        if have[row.index] {
            return Err(LibraError::BadRequest(format!(
                "surviving records carry grid index {} more than once",
                row.index
            )));
        }
        have[row.index] = true;
    }
    let mut rows = rows;
    let mut missing: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < grid_len {
        if have[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < grid_len && !have[i] {
            i += 1;
        }
        missing.push(start..i);
    }
    for range in missing {
        let mut session = scenario.session(cost_model).with_mode(mode);
        if let Some(path) = store {
            session = session.with_store(path)?;
        }
        let mut sink = CollectorSink::new();
        session.run_scenario_range_with_sinks(
            scenario,
            workloads,
            registry,
            range,
            &mut [&mut sink],
        )?;
        rows.append(&mut sink.rows);
    }
    merge_rows(scenario, workloads.len(), rows, names)
}

/// [`partial_records`] + [`resume_rows`] in one call: reads the valid
/// prefix of an interrupted JSON-lines stream and prices only what is
/// missing.
///
/// # Errors
/// Everything [`partial_records`] and [`resume_rows`] reject.
pub fn resume_scenario<W: SweepWorkload>(
    scenario: &Scenario,
    workloads: &[W],
    registry: &BackendRegistry,
    cost_model: &CostModel,
    partial_stream: &str,
    mode: ExecMode,
    store: Option<&Path>,
) -> Result<MergedRun, LibraError> {
    let rows = partial_records(partial_stream)?;
    resume_rows(scenario, workloads, registry, cost_model, rows, mode, store)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_are_contiguous_and_balanced() {
        for n in 0..40 {
            for k in 1..=9 {
                let ranges = shard_ranges(n, k);
                assert_eq!(ranges.len(), k);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous split of {n} into {k}");
                }
                let lens: Vec<usize> = ranges.iter().map(Range::len).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "balanced split of {n} into {k}: {lens:?}");
            }
        }
    }

    fn row(index: usize) -> RecordRow {
        RecordRow {
            index,
            shape: "RI(4)".to_string(),
            workload: "w".to_string(),
            budget: 100.0,
            objective: crate::opt::Objective::Perf,
            weighted_time: Some(1.0),
            cost: Some(1.0),
            speedup: Some(1.0),
            secs: vec![1.0, 1.0],
            error: None,
        }
    }

    use crate::comm::{Collective, CommModel, GroupSpan};
    use crate::eval::{Analytical, CommPlan, ScaledBackend};
    use crate::network::NetworkShape;
    use crate::opt::Objective;
    use crate::scenario::CollectorSink;
    use crate::sweep::FnWorkload;
    use crate::workload::CommOp;

    fn planned_workload(name: &'static str, gb: f64) -> FnWorkload {
        FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
        .with_plan(move |shape: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                gb * 1e9,
                GroupSpan::full(shape),
            )]))
        })
    }

    fn small_scenario(backends: [&str; 2], tolerance: f64) -> Scenario {
        Scenario::builder("dispatch-test")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_shape("FC(8)_SW(4)".parse().unwrap())
            .with_budgets([100.0, 300.0])
            .with_objectives([Objective::Perf])
            .with_workload("a")
            .with_backends(backends)
            .with_tolerance(tolerance)
            .build()
            .unwrap()
    }

    /// The tentpole contract at unit scale: for every shard count, the
    /// in-process dispatch's merged stream is byte-identical to the
    /// single-process run's, and the re-judged matrix reaches the same
    /// verdict.
    #[test]
    fn in_process_dispatch_matches_the_single_process_stream() {
        let scenario = small_scenario(["analytical", "analytical-offload"], 0.25);
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let registry = BackendRegistry::new();

        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let mut collector = CollectorSink::new();
        let report = scenario
            .session(&cm)
            .run_scenario_with_sinks(&scenario, &wls, &registry, &mut [&mut sink, &mut collector])
            .unwrap();
        let single = String::from_utf8(sink.into_inner()).unwrap();

        for shards in 1..=6 {
            let merged = Dispatcher::new(&scenario, shards)
                .unwrap()
                .run_in_process(&cm, &wls, &registry)
                .unwrap();
            assert_eq!(merged.to_jsonl(), single, "{shards} shards");
            assert_eq!(merged.rows, collector.rows, "{shards} shards");
            assert_eq!(
                merged.within_tolerance(),
                report.divergence.within_tolerance(),
                "{shards} shards"
            );
            assert_eq!(merged.divergence.pairs.len(), report.divergence.pairs.len());
        }
    }

    /// A poisoned backend's NaN times round-trip through the shard
    /// streams as `"NaN"` and must re-judge as violations on merge: the
    /// merged run fails tolerance and maps to exit code 2 — never to a
    /// "passing" 0 (the NaN-blind `rel_err > tol` bug this PR fixes).
    #[test]
    fn poisoned_shard_records_rejudge_as_violations_and_exit_2() {
        let scenario = small_scenario(["analytical", "poisoned"], 0.5);
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let mut registry = BackendRegistry::new();
        registry
            .register("poisoned", |_| {
                Box::new(ScaledBackend::new(Analytical::new(), f64::NAN, "poisoned"))
            })
            .unwrap();

        let merged =
            Dispatcher::new(&scenario, 2).unwrap().run_in_process(&cm, &wls, &registry).unwrap();
        let pair = merged.divergence.pair("poisoned", "analytical").expect("order-insensitive");
        assert!(pair.points.iter().all(|p| p.rel_error.is_nan()));
        assert_eq!(pair.violations().len(), pair.points.len());
        assert!(!merged.within_tolerance());
        assert_eq!(merged.exit_code(), 2);
        // The merged summary line records the failure for the CI diff.
        let last = merged.to_jsonl();
        let last = last.lines().last().unwrap();
        assert!(last.contains("\"within_tolerance\": false"), "{last}");
        assert!(last.contains("\"NaN\""), "{last}");
    }

    /// Merging a stream from a different scenario (or a doctored one) is
    /// a hard error, not a quiet wrong answer.
    #[test]
    fn merging_foreign_records_is_rejected() {
        let scenario = small_scenario(["analytical", "analytical-offload"], 0.25);
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let registry = BackendRegistry::new();
        let merged =
            Dispatcher::new(&scenario, 1).unwrap().run_in_process(&cm, &wls, &registry).unwrap();
        let mut stream = merged.to_jsonl();
        stream = stream.replace("\"budget\": 300", "\"budget\": 301");
        let err =
            Dispatcher::new(&scenario, 1).unwrap().merge_streams(&[stream], &registry).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    /// Degenerate-but-honest partial streams: a writer interrupted
    /// before any output (empty file) or right after the run header
    /// (header-only file) left zero surviving records, not an error —
    /// resume re-prices the whole grid from there.
    #[test]
    fn partial_records_accepts_empty_and_header_only_streams() {
        assert_eq!(partial_records("").unwrap(), vec![]);
        assert_eq!(partial_records("\n\n").unwrap(), vec![]);
        let header = crate::scenario::jsonl_header_line(&crate::scenario::RunMeta {
            scenario: Some("t"),
            backends: &["analytical".to_string()],
            n_points: 4,
            tolerance: 0.1,
        });
        assert_eq!(partial_records(&header).unwrap(), vec![]);
        // Header torn mid-line: still the empty prefix, not an error.
        assert_eq!(partial_records(&header[..header.len() / 2]).unwrap(), vec![]);
    }

    #[test]
    fn coverage_check_catches_gaps_duplicates_and_short_tails() {
        assert!(verify_coverage(&[row(0), row(1), row(2)], 3).is_ok());
        assert!(verify_coverage(&[], 0).is_ok());
        let gap = verify_coverage(&[row(0), row(2)], 3).unwrap_err();
        assert!(gap.to_string().contains("missing grid index 1"), "{gap}");
        let dup = verify_coverage(&[row(0), row(1), row(1)], 3).unwrap_err();
        assert!(dup.to_string().contains("more than once"), "{dup}");
        let tail = verify_coverage(&[row(0), row(1)], 3).unwrap_err();
        assert!(tail.to_string().contains("2 of the grid's 3"), "{tail}");
    }
}
