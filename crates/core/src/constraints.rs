//! Textual designer-constraint parser.
//!
//! The paper's Fig. 3 shows LIBRA taking constraints as expressions —
//! `Total BW = 100`, `B1+B2 = 50`, `B2+B3 = B4`, `B1 >= B2 >= B3`,
//! `25 <= B3 <= 150`. This module parses that surface syntax into
//! [`Constraint`]s:
//!
//! ```
//! use libra_core::constraints::parse_constraint;
//! use libra_core::opt::Constraint;
//!
//! let cs = parse_constraint("B1 + B2 = 500", 4)?;
//! assert_eq!(cs, vec![Constraint::LinearEq(vec![(0, 1.0), (1, 1.0)], 500.0)]);
//!
//! // Chains expand to pairwise constraints; `total` covers every dim.
//! assert_eq!(parse_constraint("B1 >= B2 >= B3", 4)?.len(), 2);
//! assert_eq!(parse_constraint("total = 300", 4)?.len(), 1);
//! # Ok::<(), libra_core::LibraError>(())
//! ```
//!
//! Dimensions are 1-based in the syntax (`B1` is dim 0), matching the
//! paper's figures.

use crate::error::LibraError;
use crate::opt::Constraint;

/// A parsed linear expression `Σ coef·B_dim + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
struct LinExpr {
    terms: Vec<(usize, f64)>,
    constant: f64,
}

impl LinExpr {
    fn sub(&self, other: &LinExpr) -> LinExpr {
        let mut terms = self.terms.clone();
        for &(d, c) in &other.terms {
            terms.push((d, -c));
        }
        let mut out = LinExpr { terms, constant: self.constant - other.constant };
        out.compact();
        out
    }

    fn compact(&mut self) {
        self.terms.sort_unstable_by_key(|&(d, _)| d);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(self.terms.len());
        for &(d, c) in &self.terms {
            match merged.last_mut() {
                Some((pd, pc)) if *pd == d => *pc += c,
                _ => merged.push((d, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        self.terms = merged;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rel {
    Le,
    Ge,
    Eq,
}

fn err(input: &str, reason: impl Into<String>) -> LibraError {
    LibraError::BadRequest(format!("cannot parse constraint {input:?}: {}", reason.into()))
}

/// Parses one constraint statement (possibly a chained comparison) into the
/// equivalent [`Constraint`] list.
///
/// Syntax: linear expressions over `B1…Bn` and numbers, joined by `<=`,
/// `>=`, `=`/`==`. `total` (case-insensitive, also `total bw`) abbreviates
/// `B1 + B2 + … + Bn`.
///
/// # Errors
/// Returns [`LibraError::BadRequest`] with a description for malformed
/// input, out-of-range dimensions, or missing comparison operators.
pub fn parse_constraint(input: &str, n_dims: usize) -> Result<Vec<Constraint>, LibraError> {
    // Normalize: strip the optional "BW"/"GB/s" noise words.
    let cleaned = input
        .replace("GB/s", " ")
        .replace("GBps", " ")
        .to_ascii_lowercase()
        .replace("total bw", "total")
        .replace("bw", " ");
    // Split into expression / relation alternating sequence.
    let mut exprs: Vec<LinExpr> = Vec::new();
    let mut rels: Vec<Rel> = Vec::new();
    let mut rest = cleaned.as_str();
    loop {
        let (next_rel, pos) = match find_rel(rest) {
            Some((r, p, _)) => (Some(r), p),
            None => (None, rest.len()),
        };
        let chunk = &rest[..pos];
        exprs.push(parse_expr(chunk, input, n_dims)?);
        match next_rel {
            None => break,
            Some(r) => {
                rels.push(r);
                let (_, p, len) = find_rel(rest).expect("just matched");
                rest = &rest[p + len..];
            }
        }
    }
    if rels.is_empty() {
        return Err(err(input, "no comparison operator (<=, >=, =)"));
    }
    let mut out = Vec::with_capacity(rels.len());
    for (i, rel) in rels.iter().enumerate() {
        let (lhs, rhs) = (&exprs[i], &exprs[i + 1]);
        // Move everything left: diff = lhs − rhs {≤,=,≥} 0.
        let diff = lhs.sub(rhs);
        let rhs_const = -diff.constant;
        let terms = diff.terms.clone();
        if terms.is_empty() {
            return Err(err(input, "constraint contains no bandwidth variables"));
        }
        // Canonicalize the machine-wide budget (`total = X`) so the
        // optimizer recognizes it as the bounding constraint.
        let is_total = *rel == Rel::Eq
            && terms.len() == n_dims
            && terms.iter().enumerate().all(|(i, &(d, c))| d == i && (c - 1.0).abs() < 1e-12);
        out.push(if is_total {
            Constraint::TotalBw(rhs_const)
        } else {
            match rel {
                Rel::Le => Constraint::LinearLe(terms, rhs_const),
                Rel::Eq => Constraint::LinearEq(terms, rhs_const),
                Rel::Ge => {
                    // lhs ≥ rhs  ⇔  −lhs ≤ −rhs.
                    let neg: Vec<(usize, f64)> = terms.iter().map(|&(d, c)| (d, -c)).collect();
                    Constraint::LinearLe(neg, -rhs_const)
                }
            }
        });
    }
    Ok(out)
}

/// Parses several newline- or comma-separated statements.
///
/// # Errors
/// Fails on the first malformed statement (empty statements are skipped).
pub fn parse_constraints(input: &str, n_dims: usize) -> Result<Vec<Constraint>, LibraError> {
    let mut out = Vec::new();
    for stmt in input.split(['\n', ',', ';']) {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt.starts_with('#') {
            continue;
        }
        out.extend(parse_constraint(stmt, n_dims)?);
    }
    Ok(out)
}

/// Finds the first relation operator: returns (relation, byte offset, len).
fn find_rel(s: &str) -> Option<(Rel, usize, usize)> {
    let mut best: Option<(Rel, usize, usize)> = None;
    for (pat, rel, len) in
        [("<=", Rel::Le, 2), (">=", Rel::Ge, 2), ("==", Rel::Eq, 2), ("=", Rel::Eq, 1)]
    {
        if let Some(p) = s.find(pat) {
            // Skip "=" that is part of "<=", ">=", "==" already matched.
            if pat == "=" {
                let prev = s[..p].chars().last();
                if matches!(prev, Some('<') | Some('>') | Some('=')) {
                    continue;
                }
            }
            if best.is_none_or(|(_, bp, _)| p < bp) {
                best = Some((rel, p, len));
            }
        }
    }
    best
}

/// Parses a linear expression chunk like `2*b1 + b2 - 5`.
fn parse_expr(chunk: &str, input: &str, n_dims: usize) -> Result<LinExpr, LibraError> {
    let mut expr = LinExpr::default();
    let mut sign = 1.0f64;
    let mut pending_coef: Option<f64> = None;
    let tokens = tokenize(chunk, input)?;
    if tokens.is_empty() {
        return Err(err(input, "empty expression side"));
    }
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            Tok::Plus => sign = 1.0,
            Tok::Minus => sign = -sign,
            Tok::Num(v) => {
                // Either a constant or a coefficient (if `*` or a var follows).
                let coef_like = matches!(tokens.get(i + 1), Some(Tok::Star) | Some(Tok::Var(_)));
                if coef_like {
                    pending_coef = Some(sign * v);
                    sign = 1.0;
                } else {
                    expr.constant += sign * v;
                    sign = 1.0;
                }
            }
            Tok::Star => {
                if pending_coef.is_none() {
                    return Err(err(input, "'*' without a leading coefficient"));
                }
            }
            Tok::Var(d) => {
                if *d == usize::MAX {
                    // `total`: expand to all dims.
                    let c = pending_coef.take().unwrap_or(1.0) * sign;
                    for dim in 0..n_dims {
                        expr.terms.push((dim, c));
                    }
                } else {
                    if *d == 0 || *d > n_dims {
                        return Err(err(
                            input,
                            format!("B{d} out of range for a {n_dims}-dimensional network"),
                        ));
                    }
                    let c = pending_coef.take().unwrap_or(1.0) * sign;
                    expr.terms.push((d - 1, c));
                }
                sign = 1.0;
            }
        }
        i += 1;
    }
    expr.compact();
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Var(usize), // 1-based; usize::MAX encodes `total`
    Plus,
    Minus,
    Star,
}

fn tokenize(chunk: &str, input: &str) -> Result<Vec<Tok>, LibraError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = chunk.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                let v: f64 = s.parse().map_err(|_| err(input, format!("bad number {s:?}")))?;
                out.push(Tok::Num(v));
            }
            'b' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(err(input, "expected a dimension index after 'B'"));
                }
                let s: String = bytes[start..j].iter().collect();
                let d: usize =
                    s.parse().map_err(|_| err(input, format!("bad dimension index {s:?}")))?;
                out.push(Tok::Var(d));
                i = j;
            }
            't' => {
                let word: String = bytes[i..].iter().take(5).collect();
                if word == "total" {
                    out.push(Tok::Var(usize::MAX));
                    i += 5;
                } else {
                    return Err(err(input, format!("unexpected token near {word:?}")));
                }
            }
            other => return Err(err(input, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig3_examples() {
        // "Total BW = 100" canonicalizes to the budget constraint.
        assert_eq!(
            parse_constraint("Total BW = 100", 4).unwrap(),
            vec![Constraint::TotalBw(100.0)]
        );
        // Writing the sum out by hand canonicalizes identically.
        assert_eq!(
            parse_constraint("B1+B2+B3+B4 = 100", 4).unwrap(),
            vec![Constraint::TotalBw(100.0)]
        );
        // "B1 + B2 = 50"
        assert_eq!(
            parse_constraint("B1+B2 = 50", 4).unwrap(),
            vec![Constraint::LinearEq(vec![(0, 1.0), (1, 1.0)], 50.0)]
        );
        // "B2 + B3 = B4"
        assert_eq!(
            parse_constraint("B2+B3=B4", 4).unwrap(),
            vec![Constraint::LinearEq(vec![(1, 1.0), (2, 1.0), (3, -1.0)], 0.0)]
        );
    }

    #[test]
    fn parses_section_ivf_examples() {
        // "B4 ≤ 50 GB/s"
        assert_eq!(
            parse_constraint("B4 <= 50 GB/s", 4).unwrap(),
            vec![Constraint::LinearLe(vec![(3, 1.0)], 50.0)]
        );
        // "B1 ≥ B2 ≥ B3" expands to two inequalities.
        let cs = parse_constraint("B1 >= B2 >= B3", 4).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], Constraint::LinearLe(vec![(0, -1.0), (1, 1.0)], 0.0));
        assert_eq!(cs[1], Constraint::LinearLe(vec![(1, -1.0), (2, 1.0)], 0.0));
        // "25 ≤ B3 ≤ 150"
        let cs = parse_constraint("25 <= B3 <= 150", 4).unwrap();
        assert_eq!(cs[0], Constraint::LinearLe(vec![(2, -1.0)], -25.0));
        assert_eq!(cs[1], Constraint::LinearLe(vec![(2, 1.0)], 150.0));
    }

    #[test]
    fn coefficients_and_constants_mix() {
        let cs = parse_constraint("2*B1 - B2 + 10 <= 60", 2).unwrap();
        assert_eq!(cs, vec![Constraint::LinearLe(vec![(0, 2.0), (1, -1.0)], 50.0)]);
        // Implicit multiplication without '*'.
        let cs = parse_constraint("3B1 <= 30", 2).unwrap();
        assert_eq!(cs, vec![Constraint::LinearLe(vec![(0, 3.0)], 30.0)]);
    }

    #[test]
    fn multi_statement_parsing() {
        let cs = parse_constraints("total = 300\nB4 <= 50, B1 >= B2\n# comment", 4).unwrap();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "B1 + B2",        // no relation
            "B9 <= 10",       // out of range (4 dims)
            "B0 <= 10",       // 1-based indexing
            "10 <= 20",       // no variables
            "B1 <= frobnitz", // junk
            "",               // empty
        ] {
            assert!(parse_constraint(bad, 4).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ge_flips_correctly() {
        let cs = parse_constraint("B1 >= 100", 2).unwrap();
        assert_eq!(cs, vec![Constraint::LinearLe(vec![(0, -1.0)], -100.0)]);
    }

    #[test]
    fn parsed_constraints_solve() {
        use crate::comm::{Collective, CommModel, GroupSpan};
        use crate::cost::CostModel;
        use crate::network::NetworkShape;
        use crate::opt::{self, DesignRequest, Objective};

        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let expr =
            CommModel::default().time_expr(Collective::AllReduce, 10e9, &GroupSpan::full(&shape));
        let mut constraints = parse_constraints("total = 200\nB4 <= 10\nB1 >= B2", 4).unwrap();
        let cm = CostModel::default();
        let d = opt::optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: std::mem::take(&mut constraints),
            cost_model: &cm,
        })
        .unwrap();
        assert!((d.bw.iter().sum::<f64>() - 200.0).abs() < 1e-3);
        assert!(d.bw[3] <= 10.0 + 1e-6);
        assert!(d.bw[0] >= d.bw[1] - 1e-6);
    }
}
