//! Collective-communication time modeling (paper §II-C and §IV-C).
//!
//! LIBRA runs collectives with the *multi-rail* algorithm: an All-Reduce on
//! an N-dimensional network is N Reduce-Scatter stages (dims ascending)
//! followed by N All-Gather stages (dims descending). Because each
//! Reduce-Scatter stage shrinks the payload by the dimension size, the
//! per-dim traffic for an `m`-byte collective over extents `e₁ × e₂ × …` is
//!
//! * All-Reduce: `2·m·(e_i − 1) / Π_{j≤i} e_j`
//! * Reduce-Scatter / All-Gather: `m·(e_i − 1) / Π_{j≤i} e_j`
//! * All-to-All: `m·(e_i − 1) / e_i` (no reduction between stages)
//! * In-network offload (§IV-C): `m / Π_{j<i} e_j`
//!
//! and the collective completes when its slowest dimension does:
//! `T = max_i traffic_i / B_i`.

use crate::expr::BwExpr;
use crate::network::NetworkShape;

/// A collective communication pattern (paper Fig. 6), plus the direct
/// NPU-to-NPU transfer used by pipeline parallelism (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Reduce then broadcast: the workhorse of data parallelism.
    AllReduce,
    /// Reduce with scattered results (first half of All-Reduce).
    ReduceScatter,
    /// Gather all shards everywhere (second half of All-Reduce).
    AllGather,
    /// Personalized exchange (DLRM embedding lookups).
    AllToAll,
    /// Direct point-to-point transfer (pipeline-parallel activations):
    /// the full payload crosses each spanned dimension, `m / B_i`.
    PointToPoint,
}

impl Collective {
    /// Short uppercase name used in workload files.
    pub fn code(self) -> &'static str {
        match self {
            Collective::AllReduce => "ALLREDUCE",
            Collective::ReduceScatter => "REDUCESCATTER",
            Collective::AllGather => "ALLGATHER",
            Collective::AllToAll => "ALLTOALL",
            Collective::PointToPoint => "P2P",
        }
    }

    /// Parses the workload-file name (case-insensitive).
    pub fn from_code(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "ALLREDUCE" | "ALL_REDUCE" => Some(Collective::AllReduce),
            "REDUCESCATTER" | "REDUCE_SCATTER" => Some(Collective::ReduceScatter),
            "ALLGATHER" | "ALL_GATHER" => Some(Collective::AllGather),
            "ALLTOALL" | "ALL_TO_ALL" => Some(Collective::AllToAll),
            "P2P" | "POINTTOPOINT" | "POINT_TO_POINT" => Some(Collective::PointToPoint),
            _ => None,
        }
    }
}

/// The set of NPUs a collective runs over, expressed as per-dimension
/// extents.
///
/// A span lists `(dimension index, extent)` pairs in ascending dimension
/// order; the group size is the product of extents. An extent may be a
/// proper divisor of the dimension size — this is how a TP-16 group maps
/// onto a `RI(4)_FC(8)_…` network as `[(0,4), (1,4)]`, leaving the remaining
/// ×2 of dimension 1 to the orthogonal DP group (the paper's "mismatching
/// TP size" scenario for GPT-3 on 4D-4K).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupSpan {
    extents: Vec<(usize, u64)>,
}

impl GroupSpan {
    /// Builds a span from `(dim, extent)` pairs. Pairs with extent 1 are
    /// dropped; remaining pairs must be sorted by dimension and unique.
    ///
    /// # Panics
    /// Panics if dimensions are unsorted/duplicated or an extent is 0.
    pub fn new(extents: Vec<(usize, u64)>) -> Self {
        let extents: Vec<(usize, u64)> = extents.into_iter().filter(|&(_, e)| e != 1).collect();
        for pair in extents.windows(2) {
            assert!(pair[0].0 < pair[1].0, "span dims must be strictly ascending");
        }
        assert!(extents.iter().all(|&(_, e)| e >= 2), "extent must be ≥ 2 after filtering");
        GroupSpan { extents }
    }

    /// A span covering the entire network (one extent per dimension).
    pub fn full(shape: &NetworkShape) -> Self {
        GroupSpan::new(shape.dims().iter().enumerate().map(|(i, d)| (i, d.size)).collect())
    }

    /// The `(dim, extent)` stages, ascending.
    pub fn extents(&self) -> &[(usize, u64)] {
        &self.extents
    }

    /// Total NPUs in the group.
    pub fn size(&self) -> u64 {
        self.extents.iter().map(|&(_, e)| e).product()
    }

    /// True when the group is a single NPU (no communication needed).
    pub fn is_trivial(&self) -> bool {
        self.extents.is_empty()
    }
}

/// Per-dimension traffic of a collective (bytes moved through each spanned
/// dimension by every NPU).
pub fn traffic_per_dim(collective: Collective, bytes: f64, span: &GroupSpan) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(span.extents().len());
    let mut shrink = 1.0; // Π of extents of earlier stages
    for &(dim, e) in span.extents() {
        let e = e as f64;
        let traffic = match collective {
            Collective::AllReduce => 2.0 * bytes * (e - 1.0) / (shrink * e),
            Collective::ReduceScatter | Collective::AllGather => bytes * (e - 1.0) / (shrink * e),
            Collective::AllToAll => bytes * (e - 1.0) / e,
            Collective::PointToPoint => bytes,
        };
        out.push((dim, traffic));
        shrink *= e;
    }
    out
}

/// Per-dimension traffic with in-network (switch) collective offload: each
/// NPU only injects its current shard, `m / Π_{j<i} e_j` (§IV-C).
pub fn traffic_per_dim_offloaded(bytes: f64, span: &GroupSpan) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(span.extents().len());
    let mut shrink = 1.0;
    for &(dim, e) in span.extents() {
        out.push((dim, bytes / shrink));
        shrink *= e as f64;
    }
    out
}

/// The communication-time model: turns (collective, size, span) into a
/// [`BwExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommModel {
    /// Model in-network collective offload on switch dimensions (reduces
    /// All-Reduce-family traffic to `m / Π_{j<i} e_j`).
    pub in_network_offload: bool,
}

impl CommModel {
    /// A model with in-network collective offload enabled.
    pub fn with_offload() -> Self {
        CommModel { in_network_offload: true }
    }

    /// Per-dimension traffic of a collective under this model's offload
    /// setting — the single source of truth for which collectives offload
    /// (All-to-All and point-to-point never do). Every consumer of the
    /// analytical model ([`CommModel::time_expr`], utilization accounting,
    /// the `eval::Analytical` backend) prices traffic through this method,
    /// so the closed form cannot drift between them.
    pub fn traffic(
        &self,
        collective: Collective,
        bytes: f64,
        span: &GroupSpan,
    ) -> Vec<(usize, f64)> {
        let offloadable = !matches!(collective, Collective::AllToAll | Collective::PointToPoint);
        if self.in_network_offload && offloadable {
            traffic_per_dim_offloaded(bytes, span)
        } else {
            traffic_per_dim(collective, bytes, span)
        }
    }

    /// Communication time of a collective as a function of bandwidth:
    /// `max_i traffic_i / B_i` (zero for trivial groups).
    pub fn time_expr(&self, collective: Collective, bytes: f64, span: &GroupSpan) -> BwExpr {
        if span.is_trivial() || bytes <= 0.0 {
            return BwExpr::zero();
        }
        BwExpr::max_of(
            self.traffic(collective, bytes, span)
                .into_iter()
                .map(|(dim, t)| BwExpr::Ratio { coeff: t / 1e9, dim })
                .collect(),
        )
    }

    /// Direct point-to-point transfer time `m / B_dim` (used by pipeline
    /// parallel sends, §IV-C "Parallelization Strategy").
    pub fn p2p_expr(&self, bytes: f64, dim: usize) -> BwExpr {
        BwExpr::Ratio { coeff: bytes / 1e9, dim }
    }

    /// Total bytes a single NPU moves for this collective (sum over dims) —
    /// the quantity plotted in Fig. 1.
    pub fn total_traffic(&self, collective: Collective, bytes: f64, span: &GroupSpan) -> f64 {
        traffic_per_dim(collective, bytes, span).into_iter().map(|(_, t)| t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §IV-C: All-Reduce on a 2D (n1 × n2) network moves
    /// `2m(n1−1)/n1` and `2m(n2−1)/(n1·n2)`.
    #[test]
    fn allreduce_traffic_matches_paper_formula() {
        let span = GroupSpan::new(vec![(0, 3), (1, 2)]);
        let m = 600.0;
        let t = traffic_per_dim(Collective::AllReduce, m, &span);
        assert_eq!(t.len(), 2);
        assert!((t[0].1 - 2.0 * m * 2.0 / 3.0).abs() < 1e-9); // 2m(3−1)/3
        assert!((t[1].1 - 2.0 * m * 1.0 / 6.0).abs() < 1e-9); // 2m(2−1)/(3·2)
    }

    #[test]
    fn reduce_scatter_is_half_of_allreduce() {
        let span = GroupSpan::new(vec![(0, 4), (1, 8)]);
        let ar = traffic_per_dim(Collective::AllReduce, 1000.0, &span);
        let rs = traffic_per_dim(Collective::ReduceScatter, 1000.0, &span);
        for (a, r) in ar.iter().zip(&rs) {
            assert!((a.1 - 2.0 * r.1).abs() < 1e-9);
        }
    }

    /// All-to-All has no reduction: `m(n_i−1)/n_i` on every dim.
    #[test]
    fn alltoall_traffic_has_no_shrink() {
        let span = GroupSpan::new(vec![(0, 4), (1, 8)]);
        let t = traffic_per_dim(Collective::AllToAll, 800.0, &span);
        assert!((t[0].1 - 800.0 * 3.0 / 4.0).abs() < 1e-9);
        assert!((t[1].1 - 800.0 * 7.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn offload_traffic_shrinks_by_prefix_product() {
        let span = GroupSpan::new(vec![(0, 4), (1, 8), (2, 2)]);
        let t = traffic_per_dim_offloaded(1000.0, &span);
        assert!((t[0].1 - 1000.0).abs() < 1e-9);
        assert!((t[1].1 - 250.0).abs() < 1e-9);
        assert!((t[2].1 - 1000.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn time_expr_is_bottleneck_max() {
        let span = GroupSpan::new(vec![(0, 4), (1, 8)]);
        let m = 4e9; // 4 GB
        let e = CommModel::default().time_expr(Collective::AllReduce, m, &span);
        // traffic: dim0 = 2·4·(3/4) = 6 GB; dim1 = 2·4·(7/8)/4 = 1.75 GB.
        let t = e.eval(&[100.0, 10.0]);
        assert!((t - (1.75f64 / 10.0).max(6.0 / 100.0)).abs() < 1e-9);
    }

    #[test]
    fn trivial_span_is_free() {
        let span = GroupSpan::new(vec![]);
        assert!(span.is_trivial());
        let e = CommModel::default().time_expr(Collective::AllReduce, 1e9, &span);
        assert_eq!(e.eval(&[1.0]), 0.0);
    }

    #[test]
    fn span_drops_unit_extents() {
        let span = GroupSpan::new(vec![(0, 1), (1, 4), (2, 1)]);
        assert_eq!(span.extents(), &[(1, 4)]);
        assert_eq!(span.size(), 4);
    }

    /// The Fig. 8 example: All-Reduce on a 3×2 network — dim 1 carries 4
    /// chunks' worth, dim 2 carries 1 chunk's worth per direction.
    #[test]
    fn fig8_chunk_counts() {
        // Payload of 6 chunks (one per NPU); m = 6 units.
        let span = GroupSpan::new(vec![(0, 3), (1, 2)]);
        let t = traffic_per_dim(Collective::AllReduce, 6.0, &span);
        // Dim 1: 2·6·(2/3) = 8 units = 4 chunks received + 4 sent per NPU.
        assert!((t[0].1 - 8.0).abs() < 1e-9);
        // Dim 2: 2·6·(1/2)/3 = 2 units = 1 chunk received + 1 sent.
        assert!((t[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn offload_keeps_alltoall_unchanged() {
        let span = GroupSpan::new(vec![(0, 4)]);
        let plain = CommModel::default().time_expr(Collective::AllToAll, 1e9, &span);
        let off = CommModel::with_offload().time_expr(Collective::AllToAll, 1e9, &span);
        assert_eq!(plain, off);
    }
}
