//! Bandwidth optimization (paper §IV-E/F): PerfOptBW, PerfPerCostOptBW, the
//! EqualBW baseline, and the designer-constraint DSL.
//!
//! * [`Objective::Perf`] (PerfOptBW) minimizes the weighted end-to-end
//!   training time — a convex program solved directly by the interior-point
//!   method.
//! * [`Objective::PerfPerCost`] (PerfPerCostOptBW) minimizes
//!   `time × dollar-cost`. This product is not jointly convex, so LIBRA
//!   solves it parametrically: for each candidate cost budget `c` the convex
//!   sub-problem `min time s.t. cost ≤ c` is solved, and a 1-D grid+golden
//!   search picks the best budget; a final pass re-minimizes cost at the
//!   achieved time so no stranded bandwidth is billed.

use libra_solver::convex::ConvexProblem;
use libra_solver::scalar::grid_then_golden;

use crate::cost::CostModel;
use crate::error::LibraError;
use crate::expr::{compile, compile_seeded, BwExpr};
use crate::network::NetworkShape;

/// Smallest bandwidth the optimizer may assign to a dimension (GB/s). Keeps
/// the ratio terms inside their convex domain.
pub const MIN_DIM_BW: f64 = 1e-3;

/// The optimization objective (paper §IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// PerfOptBW: minimize end-to-end training time.
    Perf,
    /// PerfPerCostOptBW: minimize training time × network cost.
    PerfPerCost,
}

/// A designer constraint on the bandwidth vector (paper §IV-F examples).
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Total bandwidth per NPU: `Σ B_i = total` (GB/s). An equality, per the
    /// paper's "Total BW = 100" example — the machine is *built* with this
    /// aggregate bandwidth, and the optimizer only chooses its distribution.
    /// (This is what lets PerfPerCostOptBW trade performance for cheaper
    /// dimensions instead of degenerately shrinking the network.)
    TotalBw(f64),
    /// Cap one dimension: `B_dim ≤ limit`.
    DimBwMax(usize, f64),
    /// Floor one dimension: `B_dim ≥ floor`.
    DimBwMin(usize, f64),
    /// Arbitrary linear inequality `Σ a_i·B_i ≤ rhs`.
    LinearLe(Vec<(usize, f64)>, f64),
    /// Arbitrary linear equality `Σ a_i·B_i = rhs` (e.g. `B₁+B₂ = 500`).
    LinearEq(Vec<(usize, f64)>, f64),
    /// Monotone allocation `B_0 ≥ B_1 ≥ … ≥ B_{N−1}` (inner dims fastest).
    Ordered,
    /// Total network dollar cost at most this (iso-cost studies).
    MaxCost(f64),
}

/// A request to design a network's bandwidth configuration.
#[derive(Debug, Clone)]
pub struct DesignRequest<'a> {
    /// The fabric being sized.
    pub shape: &'a NetworkShape,
    /// Weighted target workloads: `(importance, per-iteration time expr)`.
    pub targets: Vec<(f64, BwExpr)>,
    /// What to optimize.
    pub objective: Objective,
    /// Designer constraints; at least one bounding constraint
    /// ([`Constraint::TotalBw`] or [`Constraint::MaxCost`]) is required.
    pub constraints: Vec<Constraint>,
    /// Dollar-cost model (used by [`Objective::PerfPerCost`] and
    /// [`Constraint::MaxCost`]).
    pub cost_model: &'a CostModel,
}

/// An optimized (or baseline) bandwidth design.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Per-dimension bandwidth, GB/s per NPU.
    pub bw: Vec<f64>,
    /// Per-target iteration times at this bandwidth (seconds).
    pub times: Vec<f64>,
    /// Weighted sum of target times (the Perf objective value).
    pub weighted_time: f64,
    /// Network dollar cost.
    pub cost: f64,
}

impl Design {
    /// `1 / (time × cost)` — the perf-per-cost figure of merit.
    pub fn perf_per_cost(&self) -> f64 {
        1.0 / (self.weighted_time * self.cost)
    }

    /// Speedup of `self` over `baseline` (weighted times).
    pub fn speedup_over(&self, baseline: &Design) -> f64 {
        baseline.weighted_time / self.weighted_time
    }

    /// Perf-per-cost gain of `self` over `baseline`.
    pub fn ppc_gain_over(&self, baseline: &Design) -> f64 {
        (baseline.weighted_time * baseline.cost) / (self.weighted_time * self.cost)
    }
}

/// The workload-agnostic EqualBW baseline (paper §V-B): `total / N` per dim.
pub fn equal_bw(n_dims: usize, total: f64) -> Vec<f64> {
    vec![total / n_dims as f64; n_dims]
}

/// Evaluates a fixed bandwidth vector against the targets, producing a
/// [`Design`] (used for baselines and externally chosen configurations).
///
/// # Panics
/// Panics if `bw.len() != shape.ndims()`.
pub fn evaluate(
    shape: &NetworkShape,
    targets: &[(f64, BwExpr)],
    bw: &[f64],
    cost_model: &CostModel,
) -> Design {
    assert_eq!(bw.len(), shape.ndims());
    let times: Vec<f64> = targets.iter().map(|(_, e)| e.eval(bw)).collect();
    let weighted_time = targets.iter().zip(&times).map(|((w, _), t)| w * t).sum();
    Design { bw: bw.to_vec(), times, weighted_time, cost: cost_model.network_cost(shape, bw) }
}

fn validate(req: &DesignRequest<'_>) -> Result<(), LibraError> {
    let n = req.shape.ndims();
    if req.targets.is_empty() {
        return Err(LibraError::BadRequest("no target workloads".into()));
    }
    for (w, e) in &req.targets {
        if !w.is_finite() || *w < 0.0 {
            return Err(LibraError::BadRequest(format!("bad target weight {w}")));
        }
        if let Some(d) = e.max_dim() {
            if d >= n {
                return Err(LibraError::BadRequest(format!(
                    "target references dim {d} but the network has {n} dims"
                )));
            }
        }
    }
    let dim_ok = |d: usize| d < n;
    for c in &req.constraints {
        let ok = match c {
            Constraint::TotalBw(t) | Constraint::MaxCost(t) => *t > 0.0,
            Constraint::DimBwMax(d, v) | Constraint::DimBwMin(d, v) => dim_ok(*d) && v.is_finite(),
            Constraint::LinearLe(terms, _) | Constraint::LinearEq(terms, _) => {
                terms.iter().all(|&(d, _)| dim_ok(d))
            }
            Constraint::Ordered => true,
        };
        if !ok {
            return Err(LibraError::BadRequest(format!("invalid constraint {c:?}")));
        }
    }
    let has_bound = req.constraints.iter().any(|c| match c {
        Constraint::TotalBw(_) | Constraint::MaxCost(_) => true,
        // A positive-coefficient (in)equality covering every dimension also
        // bounds the feasible set (e.g. a parsed `B1+…+Bn = X`).
        Constraint::LinearLe(terms, _) | Constraint::LinearEq(terms, _) => {
            terms.len() >= n && terms.iter().all(|&(_, c)| c > 0.0)
        }
        _ => false,
    });
    if !has_bound {
        return Err(LibraError::BadRequest(
            "need a bounding constraint (TotalBw, MaxCost, or an all-dims budget)".into(),
        ));
    }
    Ok(())
}

/// Applies constraints + default bandwidth bounds to a compiled problem.
fn apply_constraints(p: &mut ConvexProblem, req: &DesignRequest<'_>, extra_cost_cap: Option<f64>) {
    let n = req.shape.ndims();
    for i in 0..n {
        p.set_lower(i, MIN_DIM_BW);
    }
    let cost_coefs = req.cost_model.cost_coefficients(req.shape);
    for c in &req.constraints {
        match c {
            Constraint::TotalBw(total) => {
                let terms: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
                p.add_lin_eq(&terms, *total);
            }
            Constraint::DimBwMax(d, v) => {
                p.set_upper(*d, *v);
            }
            Constraint::DimBwMin(d, v) => {
                p.set_lower(*d, v.max(MIN_DIM_BW));
            }
            Constraint::LinearLe(terms, rhs) => {
                p.add_lin_le(terms, *rhs);
            }
            Constraint::LinearEq(terms, rhs) => {
                p.add_lin_eq(terms, *rhs);
            }
            Constraint::Ordered => {
                for i in 0..n.saturating_sub(1) {
                    p.add_lin_le(&[(i + 1, 1.0), (i, -1.0)], 0.0);
                }
            }
            Constraint::MaxCost(cap) => {
                let terms: Vec<(usize, f64)> =
                    cost_coefs.iter().enumerate().map(|(i, &c)| (i, c)).collect();
                p.add_lin_le(&terms, *cap);
            }
        }
    }
    if let Some(cap) = extra_cost_cap {
        let terms: Vec<(usize, f64)> =
            cost_coefs.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        p.add_lin_le(&terms, cap);
    }
}

/// A starting bandwidth guess consistent with the bounding constraints.
fn bw_guess(req: &DesignRequest<'_>) -> Vec<f64> {
    let n = req.shape.ndims();
    for c in &req.constraints {
        if let Constraint::TotalBw(total) = c {
            return equal_bw(n, *total);
        }
    }
    for c in &req.constraints {
        if let Constraint::MaxCost(cap) = c {
            let coefs = req.cost_model.cost_coefficients(req.shape);
            // Spend the budget evenly across dims.
            return coefs.iter().map(|&co| 0.9 * cap / (n as f64 * co)).collect();
        }
    }
    vec![1.0; n]
}

/// Projects a seed bandwidth vector into a usable warm-start guess:
/// floored at [`MIN_DIM_BW`] and rescaled onto the request's
/// [`Constraint::TotalBw`] budget (the optimum of a pure ratio objective
/// scales linearly with the budget, so a neighbor's optimum rescaled is an
/// excellent seed). Returns `None` for unusable seeds (wrong length,
/// non-finite or non-positive entries) — callers then solve cold.
fn seed_guess(req: &DesignRequest<'_>, seed: &[f64]) -> Option<Vec<f64>> {
    let n = req.shape.ndims();
    if seed.len() != n || seed.iter().any(|b| !b.is_finite() || *b <= 0.0) {
        return None;
    }
    let mut g: Vec<f64> = seed.iter().map(|&b| b.max(MIN_DIM_BW)).collect();
    if let Some(total) = req.constraints.iter().find_map(|c| match c {
        Constraint::TotalBw(t) => Some(*t),
        _ => None,
    }) {
        let sum: f64 = g.iter().sum();
        if sum > 0.0 {
            let k = total / sum;
            for v in &mut g {
                *v = (*v * k).max(MIN_DIM_BW);
            }
        }
    }
    Some(g)
}

/// Minimizes weighted time under the constraints (+ optional cost cap),
/// optionally warm-started from a projected seed bandwidth vector.
fn solve_perf(
    req: &DesignRequest<'_>,
    extra_cost_cap: Option<f64>,
    seed: Option<&[f64]>,
) -> Result<Design, LibraError> {
    let n = req.shape.ndims();
    match seed.and_then(|s| seed_guess(req, s)) {
        Some(guess) => {
            let (mut p, _) = compile_seeded(&req.targets, n, &guess, true);
            apply_constraints(&mut p, req, extra_cost_cap);
            let x0 = p.guess().expect("compile always suggests a start").to_vec();
            let sol = p.solve_from(&x0)?;
            Ok(evaluate(req.shape, &req.targets, &sol.x[..n], req.cost_model))
        }
        None => {
            let (mut p, _) = compile(&req.targets, n, &bw_guess(req));
            apply_constraints(&mut p, req, extra_cost_cap);
            let sol = p.solve()?;
            Ok(evaluate(req.shape, &req.targets, &sol.x[..n], req.cost_model))
        }
    }
}

/// Re-minimizes dollar cost subject to achieving (almost) a given weighted
/// time — reallocates bandwidth that does not contribute to performance
/// onto cheaper dimensions. `guess` overrides the starting bandwidth
/// vector (the perf solve that produced `time_cap` is an excellent start —
/// it is feasible for this problem by construction).
fn refine_cost(
    req: &DesignRequest<'_>,
    time_cap: f64,
    extra_cost_cap: Option<f64>,
    guess: Option<&[f64]>,
) -> Result<Design, LibraError> {
    let n = req.shape.ndims();
    let start = match guess {
        Some(g) => g.to_vec(),
        None => bw_guess(req),
    };
    let (mut p, t_obj) = compile(&req.targets, n, &start);
    apply_constraints(&mut p, req, extra_cost_cap);
    p.add_lin_le(&[(t_obj, 1.0)], time_cap * (1.0 + 1e-7));
    let coefs = req.cost_model.cost_coefficients(req.shape);
    let obj: Vec<(usize, f64)> = coefs.iter().enumerate().map(|(i, &c)| (i, c)).collect();
    p.minimize(&obj);
    let sol = p.solve()?;
    Ok(evaluate(req.shape, &req.targets, &sol.x[..n], req.cost_model))
}

/// Bounds of the reachable cost range under the request's constraints,
/// found by two small LPs.
fn cost_range(req: &DesignRequest<'_>) -> Result<(f64, f64), LibraError> {
    let n = req.shape.ndims();
    let coefs = req.cost_model.cost_coefficients(req.shape);
    let run = |sign: f64| -> Result<f64, LibraError> {
        let mut p = ConvexProblem::new(n);
        apply_constraints(&mut p, req, None);
        let obj: Vec<(usize, f64)> =
            coefs.iter().enumerate().map(|(i, &c)| (i, sign * c)).collect();
        p.minimize(&obj);
        p.suggest_start(bw_guess(req));
        let sol = p.solve()?;
        Ok(coefs.iter().zip(&sol.x).map(|(c, b)| c * b).sum())
    };
    let lo = run(1.0)?;
    let hi = run(-1.0)?;
    Ok((lo, hi))
}

/// Runs the LIBRA optimizer (paper Fig. 3, right-hand box).
///
/// # Errors
/// * [`LibraError::BadRequest`] for malformed requests (no targets, missing
///   bounding constraint, out-of-range dimensions).
/// * [`LibraError::Solver`] if the constraint set is infeasible or the
///   underlying solver fails.
pub fn optimize(req: &DesignRequest<'_>) -> Result<Design, LibraError> {
    optimize_seeded(req, None)
}

/// [`optimize`] warm-started from a neighboring design's bandwidth vector
/// (e.g. the same shape × workload × objective solved at an adjacent
/// budget). The seed is projected onto the request's budget and trusted as
/// near-optimal — the interior-point solver enters its barrier ladder high
/// (`ConvexProblem::solve_from`), typically cutting Newton iterations by
/// 2–4× on sweep grids. Converges to the same optimum as a cold
/// [`optimize`] within solver tolerance; an unusable seed silently falls
/// back to the cold path. Under [`Objective::PerfPerCost`] every parametric
/// probe's perf solve is seeded.
///
/// # Errors
/// See [`optimize`].
pub fn optimize_seeded(
    req: &DesignRequest<'_>,
    seed: Option<&[f64]>,
) -> Result<Design, LibraError> {
    validate(req)?;
    match req.objective {
        Objective::Perf => solve_perf(req, None, seed),
        Objective::PerfPerCost => {
            let (c_min, c_max) = cost_range(req)?;
            if !(c_max.is_finite() && c_min.is_finite()) || c_max <= c_min * (1.0 + 1e-9) {
                // Degenerate cost range: perf solve is the only choice.
                return solve_perf(req, None, seed);
            }
            let span = c_max - c_min;
            let lo = c_min + 1e-4 * span;
            // Parametric search over the cost budget: at each budget, find
            // the fastest design, then the *cheapest* design achieving that
            // speed (the time-optimal allocation is not unique in cost).
            // The product of the refined pair is the true objective value.
            //
            // `probe_seed` warm-starts the perf solve and `warm_refine`
            // starts the refinement from the perf optimum (feasible for the
            // refinement by construction); both are only engaged on the
            // seeded path, so the unseeded [`optimize`] keeps the pre-PR
            // search structure (full 24-point grid, cold probes — starting
            // points may differ at tolerance level since `compile` seeds
            // epigraph guesses from lowered values now).
            let probe_with = |cap: f64,
                              probe_seed: Option<&[f64]>,
                              warm_refine: bool|
             -> Result<Design, LibraError> {
                let fast = solve_perf(req, Some(cap), probe_seed)?;
                let guess = if warm_refine { Some(fast.bw.as_slice()) } else { None };
                match refine_cost(req, fast.weighted_time, Some(cap), guess) {
                    Ok(cheap) if cheap.cost <= fast.cost * (1.0 + 1e-9) => Ok(cheap),
                    _ => Ok(fast),
                }
            };
            // A seed narrows the outer search: cost range, constraints, and
            // ratio optima all scale linearly with the budget, so the
            // optimal cost *fraction* transfers well between neighboring
            // budgets. The seeded search scans a window biased *above* the
            // seed's projected cost (below it the cap squeezes toward the
            // infeasibility boundary and every probe pays phase-I), seeds
            // each probe whose cap the seed satisfies, and falls back to
            // the full cold search if the window's edge wins. The product
            // curve is first-order flat at its minimum, so the coarser cap
            // tolerance costs only O(tol²) on the reported objective.
            if let Some(pg) = seed.and_then(|s| seed_guess(req, s)) {
                let coefs = req.cost_model.cost_coefficients(req.shape);
                let center: f64 = coefs.iter().zip(&pg).map(|(c, b)| c * b).sum();
                let wlo = (center - 0.03 * span).clamp(lo, c_max);
                let whi = (center + 0.15 * span).clamp(lo, c_max);
                let seed_for = |cap: f64| {
                    // Strictly-feasible seeds only: the seed costs `center`.
                    (cap >= center * (1.0 + 1e-6)).then_some(pg.as_slice())
                };
                let f_seeded = |cap: f64| -> f64 {
                    match probe_with(cap, seed_for(cap), true) {
                        Ok(d) => d.weighted_time * d.cost,
                        Err(_) => f64::INFINITY,
                    }
                };
                let (best_cap, _) = grid_then_golden(&f_seeded, wlo, whi, 6, span * 5e-3);
                let edge = 1e-6 * span;
                if best_cap > wlo + edge && best_cap < whi - edge {
                    return probe_with(best_cap, seed_for(best_cap), true);
                }
                // Window edge won — distrust the seed and search cold.
            }
            let f = |cap: f64| -> f64 {
                match probe_with(cap, None, false) {
                    Ok(d) => d.weighted_time * d.cost,
                    Err(_) => f64::INFINITY,
                }
            };
            let (best_cap, _) = grid_then_golden(&f, lo, c_max, 24, span * 1e-4);
            probe_with(best_cap, None, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, CommModel, GroupSpan};

    fn shape_2d() -> NetworkShape {
        "RI(4)_SW(8)".parse().unwrap()
    }

    /// One All-Reduce over the full 2D machine; the optimal split is
    /// traffic-proportional.
    fn allreduce_target(shape: &NetworkShape) -> (f64, BwExpr) {
        let e =
            CommModel::default().time_expr(Collective::AllReduce, 10e9, &GroupSpan::full(shape));
        (1.0, e)
    }

    #[test]
    fn perf_opt_beats_equal_bw() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![allreduce_target(&shape)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(100.0)],
            cost_model: &cm,
        };
        let opt = optimize(&req).unwrap();
        let base = evaluate(&shape, &req.targets, &equal_bw(2, 100.0), &cm);
        assert!(opt.weighted_time < base.weighted_time);
        // Traffic: dim0 = 2·10·(3/4) = 15 GB; dim1 = 2·10·(7/8)/4 = 4.375 GB.
        // Optimal B ∝ traffic → B0 = 100·15/19.375 ≈ 77.42.
        assert!((opt.bw[0] - 77.42).abs() < 0.5, "bw = {:?}", opt.bw);
        let speedup = opt.speedup_over(&base);
        // EqualBW time = 15/50 = 0.3; optimal = 19.375/100 = 0.19375.
        assert!((speedup - 0.3 / 0.19375).abs() < 1e-2, "speedup {speedup}");
    }

    #[test]
    fn total_bw_is_respected() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![allreduce_target(&shape)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(100.0)],
            cost_model: &cm,
        };
        let d = optimize(&req).unwrap();
        assert!(d.bw.iter().sum::<f64>() <= 100.0 + 1e-6);
        // The optimizer should use (almost) the whole budget.
        assert!(d.bw.iter().sum::<f64>() > 99.0);
    }

    #[test]
    fn dim_cap_binds() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![allreduce_target(&shape)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(100.0), Constraint::DimBwMax(0, 50.0)],
            cost_model: &cm,
        };
        let d = optimize(&req).unwrap();
        assert!(d.bw[0] <= 50.0 + 1e-6);
    }

    #[test]
    fn ordered_constraint_enforced() {
        let shape: NetworkShape = "SW(4)_SW(4)_SW(4)".parse().unwrap();
        // Put all the traffic on the *outer* dim so the optimizer wants an
        // inverted allocation, then force Ordered.
        let e = BwExpr::Ratio { coeff: 10.0, dim: 2 };
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![(1.0, e)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(90.0), Constraint::Ordered],
            cost_model: &cm,
        };
        let d = optimize(&req).unwrap();
        assert!(d.bw[0] >= d.bw[1] - 1e-6);
        assert!(d.bw[1] >= d.bw[2] - 1e-6);
        // Best under ordering: all equal (30, 30, 30).
        assert!((d.bw[2] - 30.0).abs() < 0.3, "bw = {:?}", d.bw);
    }

    #[test]
    fn linear_eq_constraint_holds() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![allreduce_target(&shape)],
            objective: Objective::Perf,
            constraints: vec![
                Constraint::TotalBw(100.0),
                Constraint::LinearEq(vec![(0, 1.0), (1, -3.0)], 0.0), // B0 = 3·B1
            ],
            cost_model: &cm,
        };
        let d = optimize(&req).unwrap();
        assert!((d.bw[0] - 3.0 * d.bw[1]).abs() < 1e-4, "bw = {:?}", d.bw);
    }

    #[test]
    fn perf_per_cost_prefers_cheap_dims() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let targets = vec![allreduce_target(&shape)];
        let perf = optimize(&DesignRequest {
            shape: &shape,
            targets: targets.clone(),
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(100.0)],
            cost_model: &cm,
        })
        .unwrap();
        let ppc = optimize(&DesignRequest {
            shape: &shape,
            targets,
            objective: Objective::PerfPerCost,
            constraints: vec![Constraint::TotalBw(100.0)],
            cost_model: &cm,
        })
        .unwrap();
        // PerfPerCost must win on the product metric.
        assert!(
            ppc.weighted_time * ppc.cost <= perf.weighted_time * perf.cost * (1.0 + 1e-6),
            "ppc {} vs perf {}",
            ppc.weighted_time * ppc.cost,
            perf.weighted_time * perf.cost,
        );
        assert!(ppc.perf_per_cost() >= perf.perf_per_cost() * (1.0 - 1e-6));
    }

    #[test]
    fn iso_cost_constraint() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![allreduce_target(&shape)],
            objective: Objective::Perf,
            constraints: vec![Constraint::MaxCost(1e6)],
            cost_model: &cm,
        };
        let d = optimize(&req).unwrap();
        assert!(d.cost <= 1e6 * (1.0 + 1e-6), "cost {}", d.cost);
        assert!(d.cost >= 0.99e6, "should spend the budget, cost {}", d.cost);
    }

    #[test]
    fn rejects_unbounded_request() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![allreduce_target(&shape)],
            objective: Objective::Perf,
            constraints: vec![],
            cost_model: &cm,
        };
        assert!(matches!(optimize(&req), Err(LibraError::BadRequest(_))));
    }

    #[test]
    fn rejects_out_of_range_dim() {
        let shape = shape_2d();
        let cm = CostModel::default();
        let req = DesignRequest {
            shape: &shape,
            targets: vec![(1.0, BwExpr::Ratio { coeff: 1.0, dim: 7 })],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(10.0)],
            cost_model: &cm,
        };
        assert!(matches!(optimize(&req), Err(LibraError::BadRequest(_))));
    }

    #[test]
    fn multi_workload_group_design_interpolates() {
        let shape = shape_2d();
        let cm = CostModel::default();
        // Workload A stresses dim 0, workload B stresses dim 1.
        let a = BwExpr::Ratio { coeff: 10.0, dim: 0 };
        let b = BwExpr::Ratio { coeff: 10.0, dim: 1 };
        let only_a = optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, a.clone())],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(100.0)],
            cost_model: &cm,
        })
        .unwrap();
        let group = optimize(&DesignRequest {
            shape: &shape,
            targets: vec![(1.0, a), (1.0, b)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(100.0)],
            cost_model: &cm,
        })
        .unwrap();
        // Single-target design starves dim 1; the group design balances.
        assert!(only_a.bw[1] < 5.0);
        assert!((group.bw[0] - 50.0).abs() < 0.5, "bw = {:?}", group.bw);
    }

    #[test]
    fn equal_bw_baseline_splits_evenly() {
        assert_eq!(equal_bw(4, 400.0), vec![100.0; 4]);
    }
}
