//! Parallel design-space exploration: the paper's core loop as a subsystem.
//!
//! LIBRA's headline experiments (Figs. 13–16) sweep candidate
//! multi-dimensional topologies × workloads × bandwidth budgets ×
//! objectives and rank the resulting designs. That search is embarrassingly
//! parallel — every grid point is an independent [`opt::optimize`] call —
//! so this module fans it out with rayon while keeping results **bit
//! identical** to a serial fold over the same grid:
//!
//! * [`SweepGrid`] enumerates a duplicate-free cartesian grid in a
//!   deterministic order (shape-major, then workload, budget, objective);
//! * [`crate::scenario::Session::run`] — the public front door, in the
//!   [`crate::scenario`] module — evaluates the grid in parallel,
//!   memoizing repeated `(shape, workload)` target-expression builds and
//!   repeated design solves behind the engine's sharded concurrent cache,
//!   and prices every grid point's [`CommPlan`] under **any number** of
//!   [`EvalBackend`]s in the same fan-out, reporting each pair's
//!   per-point disagreement as a [`DivergenceReport`] — the guard against
//!   ranking thousands of designs with a silently broken model;
//! * [`SweepReport`] returns results in grid order, plus ranking helpers
//!   and the perf-vs-cost [Pareto front](SweepReport::pareto_front);
//! * design solves are **warm-started** along the budget axis: one anchor
//!   budget per shape × workload × objective group solves cold, every
//!   other budget seeds its interior-point solve from the nearest anchor's
//!   optimum ([`opt::optimize_seeded`]) — phase-barriered so parallel and
//!   serial runs stay bit-identical ([`SweepEngine::with_warm_start`]).
//!
//! The historical fixed-arity entry points (`run`, `run_cross_validated`,
//! `run_cross_validated3`, and their `_serial` twins) survive as
//! deprecated shims over the session front door; every one of them
//! funnels into the same internal [`ExecMode`]-parameterized drive, so
//! the serial-vs-parallel bit-identity contract is enforced in exactly
//! one place.
//!
//! ```
//! use libra_core::comm::{Collective, CommModel, GroupSpan};
//! use libra_core::cost::CostModel;
//! use libra_core::opt::Objective;
//! use libra_core::scenario::Session;
//! use libra_core::sweep::{FnWorkload, SweepGrid};
//!
//! // One synthetic workload: a 1-GB All-Reduce over the whole machine.
//! let wl = FnWorkload::new("allreduce-1g", |shape| {
//!     let comm = CommModel::default();
//!     Ok(vec![(1.0, comm.time_expr(Collective::AllReduce, 1e9, &GroupSpan::full(shape)))])
//! });
//! let grid = SweepGrid::new()
//!     .with_shape("RI(8)_SW(4)".parse()?)
//!     .with_shape("FC(4)_SW(8)".parse()?)
//!     .with_budgets([100.0, 200.0])
//!     .with_objectives([Objective::Perf, Objective::PerfPerCost]);
//! let cm = CostModel::default();
//! let report = Session::new(&cm).run(&grid, &[wl], &[]).sweep;
//! assert_eq!(report.results.len(), 8);
//! assert!(report.errors.is_empty());
//! let front = report.pareto_front();
//! assert!(!front.is_empty());
//! # Ok::<(), libra_core::LibraError>(())
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use rayon::prelude::*;

use crate::cost::CostModel;
use crate::error::LibraError;
use crate::eval::{rel_error, CommPlan, EvalBackend};
use crate::expr::BwExpr;
use crate::fault::{self, FaultInjector};
use crate::network::NetworkShape;
use crate::opt::{self, Constraint, Design, DesignRequest, Objective};
use crate::scenario::Session;
use crate::store::{Fingerprint, SharedSolveStore, SolveStore, StoreStats, StoredPoint};

/// One grid point's priced outcome: the design solve plus (when the
/// workload exposes a plan and backends were supplied) the per-backend
/// plan times, in backend order.
pub(crate) type PricedOutcome =
    (Result<SweepResult, SweepError>, Option<Result<Vec<f64>, SweepError>>);

/// The streaming hook [`SweepEngine::run_priced`] calls once per grid
/// point, in grid-enumeration order, as the fold assembles the report.
pub(crate) type PointEmit<'f> = &'f mut dyn FnMut(
    usize,
    &Result<SweepResult, SweepError>,
    Option<&Result<Vec<f64>, SweepError>>,
);

/// A workload that can be swept: given a shape, produce the weighted
/// per-iteration time expressions [`opt::optimize`] consumes.
///
/// Workload **names key the memo cache**, so two distinct workloads in one
/// sweep must carry distinct names.
pub trait SweepWorkload: Send + Sync {
    /// Cache key and display name.
    fn name(&self) -> &str;

    /// Weighted `(importance, time-expression)` targets on `shape`.
    ///
    /// # Errors
    /// Workload construction may fail for unmappable shapes (e.g. a TP
    /// degree the dimensions cannot host); such grid points are reported in
    /// [`SweepReport::errors`] rather than aborting the sweep.
    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError>;

    /// The workload's communication plan on `shape`, if it can express one —
    /// the backend-neutral input cross-validation feeds to every
    /// [`EvalBackend`]. Workloads without a plan (`None`, the default) are
    /// counted as [`DivergenceReport::skipped`] in cross-validated sweeps
    /// but still optimized normally.
    ///
    /// # Errors
    /// Plan construction may fail for unmappable shapes, like
    /// [`SweepWorkload::targets`].
    fn comm_plan(&self, shape: &NetworkShape) -> Result<Option<CommPlan>, LibraError> {
        let _ = shape;
        Ok(None)
    }
}

impl<W: SweepWorkload + ?Sized> SweepWorkload for &W {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> {
        (**self).targets(shape)
    }

    fn comm_plan(&self, shape: &NetworkShape) -> Result<Option<CommPlan>, LibraError> {
        (**self).comm_plan(shape)
    }
}

impl<W: SweepWorkload + ?Sized> SweepWorkload for Box<W> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> {
        (**self).targets(shape)
    }

    fn comm_plan(&self, shape: &NetworkShape) -> Result<Option<CommPlan>, LibraError> {
        (**self).comm_plan(shape)
    }
}

/// The boxed closure type behind [`FnWorkload`].
type TargetsFn = Box<dyn Fn(&NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> + Send + Sync>;

/// The boxed plan-builder closure behind [`FnWorkload::with_plan`].
type PlanFn = Box<dyn Fn(&NetworkShape) -> Result<CommPlan, LibraError> + Send + Sync>;

/// A [`SweepWorkload`] backed by a closure (plus an optional communication
/// plan for cross-validated sweeps).
pub struct FnWorkload {
    name: String,
    f: TargetsFn,
    plan: Option<PlanFn>,
}

impl FnWorkload {
    /// Wraps `f` as a named sweep workload.
    pub fn new<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> + Send + Sync + 'static,
    {
        FnWorkload { name: name.into(), f: Box::new(f), plan: None }
    }

    /// Attaches a communication-plan builder, making the workload eligible
    /// for cross-validation ([`SweepEngine::run_cross_validated`]).
    #[must_use]
    pub fn with_plan<P>(mut self, plan: P) -> Self
    where
        P: Fn(&NetworkShape) -> Result<CommPlan, LibraError> + Send + Sync + 'static,
    {
        self.plan = Some(Box::new(plan));
        self
    }
}

impl SweepWorkload for FnWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> {
        (self.f)(shape)
    }

    fn comm_plan(&self, shape: &NetworkShape) -> Result<Option<CommPlan>, LibraError> {
        match &self.plan {
            Some(p) => p(shape).map(Some),
            None => Ok(None),
        }
    }
}

impl std::fmt::Debug for FnWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnWorkload").field("name", &self.name).finish_non_exhaustive()
    }
}

/// The cartesian design grid: shapes × budgets × objectives (workloads are
/// supplied at run time). Inputs are deduplicated on insertion, preserving
/// first-occurrence order, so enumeration is duplicate-free and
/// deterministic by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    shapes: Vec<NetworkShape>,
    budgets: Vec<f64>,
    objectives: Vec<Objective>,
}

/// One cell of the sweep grid (indices into the grid's axes and the
/// run-time workload list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Index into [`SweepGrid::shapes`].
    pub shape: usize,
    /// Index into the workload slice passed to [`SweepEngine::run`].
    pub workload: usize,
    /// Total per-NPU bandwidth budget (GB/s).
    pub budget: f64,
    /// Optimization objective.
    pub objective: Objective,
}

impl SweepGrid {
    /// An empty grid.
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Adds one candidate shape (ignored if already present).
    #[must_use]
    pub fn with_shape(mut self, shape: NetworkShape) -> Self {
        if !self.shapes.contains(&shape) {
            self.shapes.push(shape);
        }
        self
    }

    /// Adds candidate shapes (duplicates ignored).
    #[must_use]
    pub fn with_shapes(self, shapes: impl IntoIterator<Item = NetworkShape>) -> Self {
        shapes.into_iter().fold(self, SweepGrid::with_shape)
    }

    /// Adds total-bandwidth budgets in GB/s (duplicates and non-finite or
    /// non-positive values ignored). Dedup is by bit pattern behind a
    /// set, not a linear scan — adaptive-search scenarios legally carry
    /// budget axes with millions of entries, where `Vec::contains` per
    /// insert would be quadratic. (Bit equality matches `==` here: the
    /// kept values are finite, positive, and non-zero.)
    #[must_use]
    pub fn with_budgets(mut self, budgets: impl IntoIterator<Item = f64>) -> Self {
        let mut seen: std::collections::HashSet<u64> =
            self.budgets.iter().map(|b| b.to_bits()).collect();
        for b in budgets {
            if b.is_finite() && b > 0.0 && seen.insert(b.to_bits()) {
                self.budgets.push(b);
            }
        }
        self
    }

    /// Adds objectives (duplicates ignored).
    #[must_use]
    pub fn with_objectives(mut self, objectives: impl IntoIterator<Item = Objective>) -> Self {
        for o in objectives {
            if !self.objectives.contains(&o) {
                self.objectives.push(o);
            }
        }
        self
    }

    /// The deduplicated candidate shapes, in insertion order.
    pub fn shapes(&self) -> &[NetworkShape] {
        &self.shapes
    }

    /// The deduplicated budgets, in insertion order.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// The deduplicated objectives, in insertion order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Number of grid points for `n_workloads` workloads.
    pub fn len(&self, n_workloads: usize) -> usize {
        self.shapes.len() * n_workloads * self.budgets.len() * self.objectives.len()
    }

    /// Whether the grid enumerates nothing for `n_workloads` workloads.
    pub fn is_empty(&self, n_workloads: usize) -> bool {
        self.len(n_workloads) == 0
    }

    /// Enumerates the grid in deterministic shape-major order:
    /// shape → workload → budget → objective, each axis in insertion order.
    pub fn points(&self, n_workloads: usize) -> Vec<GridPoint> {
        let mut pts = Vec::with_capacity(self.len(n_workloads));
        for shape in 0..self.shapes.len() {
            for workload in 0..n_workloads {
                for &budget in &self.budgets {
                    for &objective in &self.objectives {
                        pts.push(GridPoint { shape, workload, budget, objective });
                    }
                }
            }
        }
        pts
    }
}

/// Cache hit/miss counters, snapshotted into [`SweepReport::cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Target-expression builds served from cache.
    pub expr_hits: usize,
    /// Target-expression builds actually performed.
    pub expr_misses: usize,
    /// Design solves served from cache.
    pub design_hits: usize,
    /// Design solves actually performed.
    pub design_misses: usize,
    /// Design solves (a subset of `design_misses`) that were warm-started
    /// from a neighboring grid point's published optimum.
    pub warm_seeded: usize,
}

type TargetsEntry = Arc<Result<Vec<(f64, BwExpr)>, LibraError>>;
type PlanEntry = Arc<Result<Option<CommPlan>, LibraError>>;
type ExprKey = (NetworkShape, String);
type BaselineKey = (NetworkShape, String, u64);
type DesignKey = (NetworkShape, String, u64, Objective);
/// Seeds are budget-agnostic: the nearest published budget's optimum is
/// rescaled onto the new budget by the optimizer.
type SeedKey = (NetworkShape, String, Objective);
/// Published anchor optima for one seed key: `(budget bits, bw vector)`.
type SeedEntries = Vec<(u64, Arc<Vec<f64>>)>;

const CACHE_SHARDS: usize = 16;

/// Sharded concurrent memo cache for target expressions and design solves,
/// plus the warm-start seed index.
///
/// Keys are `(shape, workload-name)` — plus budget and objective for
/// designs — so a cache owned by a [`SweepEngine`] keeps paying off across
/// repeated `run` calls (e.g. iterative grid refinement). Shards are
/// `RwLock`s, not mutexes: warm re-runs are hit-dominated, and readers must
/// not serialize behind each other.
struct SweepCache {
    exprs: Vec<RwLock<HashMap<ExprKey, TargetsEntry>>>,
    plans: Vec<RwLock<HashMap<ExprKey, PlanEntry>>>,
    designs: Vec<RwLock<HashMap<DesignKey, Result<Design, LibraError>>>>,
    baselines: Vec<RwLock<HashMap<BaselineKey, Design>>>,
    /// Warm-start neighbor index: per (shape, workload, objective), the
    /// anchor budgets solved so far and their optimal bandwidth vectors.
    /// Only **anchor-phase** solves publish here (see [`SeedMode`]), which
    /// is what keeps seeding deterministic under parallel execution.
    seeds: Vec<RwLock<HashMap<SeedKey, SeedEntries>>>,
    expr_hits: AtomicUsize,
    expr_misses: AtomicUsize,
    design_hits: AtomicUsize,
    design_misses: AtomicUsize,
    warm_seeded: AtomicUsize,
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % CACHE_SHARDS
}

impl SweepCache {
    fn new() -> Self {
        SweepCache {
            exprs: (0..CACHE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            plans: (0..CACHE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            designs: (0..CACHE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            baselines: (0..CACHE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            seeds: (0..CACHE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            expr_hits: AtomicUsize::new(0),
            expr_misses: AtomicUsize::new(0),
            design_hits: AtomicUsize::new(0),
            design_misses: AtomicUsize::new(0),
            warm_seeded: AtomicUsize::new(0),
        }
    }

    /// Drops every memoized design **and** warm-start seed (used when the
    /// engine's constraint set changes: cached designs and seeds were
    /// solved under the old constraints). Target expressions and EqualBW
    /// baselines are constraint-independent and survive.
    fn clear_designs(&self) {
        for shard in &self.designs {
            shard.write().unwrap().clear();
        }
        for shard in &self.seeds {
            shard.write().unwrap().clear();
        }
    }

    /// The memoized targets of `workload` on `shape`.
    fn targets<W: SweepWorkload>(&self, shape: &NetworkShape, workload: &W) -> TargetsEntry {
        let key: ExprKey = (shape.clone(), workload.name().to_string());
        let shard = &self.exprs[shard_of(&key)];
        if let Some(hit) = shard.read().unwrap().get(&key) {
            self.expr_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Build outside the lock: concurrent duplicate work is possible but
        // harmless (the computation is deterministic), and expression
        // construction can be slow enough that holding the shard would
        // serialize unrelated lookups.
        let built = Arc::new(workload.targets(shape));
        self.expr_misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(shard.write().unwrap().entry(key).or_insert(built))
    }

    /// The memoized communication plan of `workload` on `shape` (keyed like
    /// target expressions; plans are constraint- and budget-independent).
    fn plan<W: SweepWorkload>(&self, shape: &NetworkShape, workload: &W) -> PlanEntry {
        let key: ExprKey = (shape.clone(), workload.name().to_string());
        let shard = &self.plans[shard_of(&key)];
        if let Some(hit) = shard.read().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        let built = Arc::new(workload.comm_plan(shape));
        Arc::clone(shard.write().unwrap().entry(key).or_insert(built))
    }

    /// The memoized EqualBW baseline for a `(shape, workload, budget)`
    /// triple (objective-independent, so two objectives share one entry).
    fn baseline(&self, key: BaselineKey, evaluate: impl FnOnce() -> Design) -> Design {
        let shard = &self.baselines[shard_of(&key)];
        if let Some(hit) = shard.read().unwrap().get(&key) {
            return hit.clone();
        }
        let computed = evaluate();
        shard.write().unwrap().entry(key).or_insert(computed).clone()
    }

    /// Seeds the design map with a solve loaded from a persistent
    /// [`SolveStore`] (no counter is touched: a preloaded entry shows up
    /// as an ordinary `design_hits` when the drive reaches it).
    fn preload_design(&self, key: DesignKey, design: Design) {
        let shard = &self.designs[shard_of(&key)];
        shard.write().unwrap().entry(key).or_insert(Ok(design));
    }

    /// [`SweepCache::preload_design`] for the EqualBW baseline map.
    fn preload_baseline(&self, key: BaselineKey, baseline: Design) {
        let shard = &self.baselines[shard_of(&key)];
        shard.write().unwrap().entry(key).or_insert(baseline);
    }

    /// The memoized design for a fully specified grid point.
    fn design(
        &self,
        key: DesignKey,
        solve: impl FnOnce() -> Result<Design, LibraError>,
    ) -> Result<Design, LibraError> {
        let shard = &self.designs[shard_of(&key)];
        if let Some(hit) = shard.read().unwrap().get(&key) {
            self.design_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let solved = solve();
        self.design_misses.fetch_add(1, Ordering::Relaxed);
        shard.write().unwrap().entry(key).or_insert(solved).clone()
    }

    /// Records an anchor point's optimal bandwidth vector for `key` at
    /// `budget` (first publication wins; anchors are solved once per
    /// engine, so this is idempotent).
    fn publish_seed(&self, key: SeedKey, budget: f64, bw: &[f64]) {
        let shard = &self.seeds[shard_of(&key)];
        let mut w = shard.write().unwrap();
        let entry = w.entry(key).or_default();
        let bits = budget.to_bits();
        if !entry.iter().any(|&(b, _)| b == bits) {
            entry.push((bits, Arc::new(bw.to_vec())));
        }
    }

    /// The published bandwidth vector whose budget is nearest to `budget`
    /// (ties break toward the bit-smaller budget — deterministic regardless
    /// of publication order).
    fn seed_for(&self, key: &SeedKey, budget: f64) -> Option<Arc<Vec<f64>>> {
        let shard = &self.seeds[shard_of(key)];
        let guard = shard.read().unwrap();
        let entries = guard.get(key)?;
        let best = entries.iter().min_by(|a, b| {
            let da = (f64::from_bits(a.0) - budget).abs();
            let db = (f64::from_bits(b.0) - budget).abs();
            da.total_cmp(&db).then(a.0.cmp(&b.0))
        })?;
        Some(Arc::clone(&best.1))
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            expr_hits: self.expr_hits.load(Ordering::Relaxed),
            expr_misses: self.expr_misses.load(Ordering::Relaxed),
            design_hits: self.design_hits.load(Ordering::Relaxed),
            design_misses: self.design_misses.load(Ordering::Relaxed),
            warm_seeded: self.warm_seeded.load(Ordering::Relaxed),
        }
    }
}

/// How a run walks the grid: rayon fan-out or a serial reference fold.
///
/// Both modes are **bit-identical** on the same inputs — every point is an
/// independent deterministic solve, the memo cache only avoids
/// recomputation, and warm-start seeding is phase-barriered — which is the
/// engine's core determinism contract. Serial mode is the reference fold
/// (and the right choice under an external thread pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Fan grid points out with rayon (the default).
    #[default]
    Parallel,
    /// Walk grid points in order on the calling thread.
    Serial,
}

/// How a grid point's design solve participates in warm-start seeding.
///
/// Seeding must be **deterministic under parallel execution**: a point may
/// only consume seeds whose presence does not depend on worker scheduling.
/// The engine therefore drives each run in two barrier-separated phases —
/// anchors (one budget per shape × workload × objective group) solve cold
/// and publish their optima; every other point then solves warm-started
/// from its nearest published anchor. Parallel and serial runs see exactly
/// the same seed state at every solve, so results stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedMode {
    /// Warm-start disabled: solve cold, publish nothing.
    Cold,
    /// Phase 1: solve cold, publish the optimum to the seed index.
    Anchor,
    /// Phase 2: consume the nearest anchor seed (cold if none exists).
    Seeded,
}

/// A successfully evaluated grid point: the LIBRA design plus the EqualBW
/// baseline at the same budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The grid cell this result came from.
    pub point: GridPoint,
    /// The evaluated shape.
    pub shape: NetworkShape,
    /// The workload's name.
    pub workload: String,
    /// The optimized design.
    pub design: Design,
    /// The EqualBW baseline at the same budget.
    pub baseline: Design,
}

impl SweepResult {
    /// Speedup of the design over EqualBW.
    pub fn speedup(&self) -> f64 {
        self.design.speedup_over(&self.baseline)
    }

    /// Perf-per-cost gain of the design over EqualBW.
    pub fn ppc_gain(&self) -> f64 {
        self.design.ppc_gain_over(&self.baseline)
    }
}

/// A grid point whose evaluation failed (unmappable workload, infeasible
/// constraint set, solver failure).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepError {
    /// The grid cell that failed.
    pub point: GridPoint,
    /// The evaluated shape.
    pub shape: NetworkShape,
    /// The workload's name.
    pub workload: String,
    /// Why it failed.
    pub error: LibraError,
}

/// How to rank sweep results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// Largest speedup over EqualBW first.
    Speedup,
    /// Largest perf-per-cost gain over EqualBW first.
    PpcGain,
    /// Fastest (smallest weighted time) first.
    WeightedTime,
    /// Cheapest first.
    Cost,
}

/// The outcome of a sweep: results and errors in grid order, plus cache
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Successful evaluations, in grid-enumeration order.
    pub results: Vec<SweepResult>,
    /// Failed grid points, in grid-enumeration order.
    pub errors: Vec<SweepError>,
    /// Cache counters accumulated over the engine's lifetime so far.
    pub cache: CacheStats,
}

impl SweepReport {
    /// Results re-ranked by `metric` (ties keep grid order).
    pub fn ranked(&self, metric: RankBy) -> Vec<&SweepResult> {
        let mut out: Vec<&SweepResult> = self.results.iter().collect();
        match metric {
            RankBy::Speedup => {
                out.sort_by(|a, b| b.speedup().total_cmp(&a.speedup()));
            }
            RankBy::PpcGain => {
                out.sort_by(|a, b| b.ppc_gain().total_cmp(&a.ppc_gain()));
            }
            RankBy::WeightedTime => {
                out.sort_by(|a, b| a.design.weighted_time.total_cmp(&b.design.weighted_time));
            }
            RankBy::Cost => {
                out.sort_by(|a, b| a.design.cost.total_cmp(&b.design.cost));
            }
        }
        out
    }

    /// The perf-vs-cost Pareto front: designs not dominated by any other
    /// result (another design at most as slow **and** at most as expensive,
    /// strictly better on one axis).
    ///
    /// The front is returned in a **deterministic order**: cost ascending,
    /// then weighted time ascending (`f64::total_cmp`, so NaNs order
    /// stably too). Results tied on *both* axes are mutually
    /// non-dominating duplicates — they all stay on the front, ordered
    /// among themselves by grid-enumeration position (the sort is
    /// stable). The adaptive search driver's front-stability test relies
    /// on this ordering being a pure function of the result *set*, never
    /// of evaluation order.
    pub fn pareto_front(&self) -> Vec<&SweepResult> {
        let mut front: Vec<&SweepResult> = self
            .results
            .iter()
            .filter(|r| {
                !self.results.iter().any(|s| {
                    s.design.weighted_time <= r.design.weighted_time
                        && s.design.cost <= r.design.cost
                        && (s.design.weighted_time < r.design.weighted_time
                            || s.design.cost < r.design.cost)
                })
            })
            .collect();
        front.sort_by(|a, b| {
            a.design
                .cost
                .total_cmp(&b.design.cost)
                .then(a.design.weighted_time.total_cmp(&b.design.weighted_time))
        });
        front
    }
}

/// Configuration of a cross-validated sweep: two [`EvalBackend`]s and the
/// relative-error tolerance their times must agree within.
///
/// By convention `baseline` is the fast model being validated (e.g.
/// [`crate::eval::Analytical`]) and `reference` the more faithful one (e.g.
/// `libra-sim`'s `EventSimBackend`), but the divergence metric is
/// symmetric — see [`crate::eval::rel_error`].
#[derive(Clone, Copy)]
pub struct CrossValidation<'b> {
    baseline: &'b dyn EvalBackend,
    reference: &'b dyn EvalBackend,
    tolerance: f64,
}

impl<'b> CrossValidation<'b> {
    /// Pairs two backends at [`CrossValidation::DEFAULT_TOLERANCE`].
    pub fn new(baseline: &'b dyn EvalBackend, reference: &'b dyn EvalBackend) -> Self {
        CrossValidation { baseline, reference, tolerance: Self::DEFAULT_TOLERANCE }
    }

    /// The default relative-error tolerance, sized for validating the
    /// analytical model against the 64-chunk event simulator: the chunk
    /// pipeline's fill/drain bubble costs at most one chunk's serial
    /// traversal, ≈ `ndims / chunks` of the bottleneck time — ≤ 6.25 % for
    /// the paper's ≤ 4-dim fabrics at 64 chunks — plus slack for
    /// picosecond rounding and FIFO scheduling gaps.
    pub const DEFAULT_TOLERANCE: f64 = 0.10;

    /// Overrides the tolerance (relative error, e.g. `0.05` for 5 %).
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance.is_finite() && tolerance >= 0.0, "tolerance must be ≥ 0");
        self.tolerance = tolerance;
        self
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl std::fmt::Debug for CrossValidation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossValidation")
            .field("baseline", &self.baseline.name())
            .field("reference", &self.reference.name())
            .field("tolerance", &self.tolerance)
            .finish()
    }
}

/// Both backends' verdicts on one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointDivergence {
    /// The grid cell.
    pub point: GridPoint,
    /// The evaluated shape.
    pub shape: NetworkShape,
    /// The workload's name.
    pub workload: String,
    /// Baseline backend's plan time at the optimized design's bandwidth
    /// (seconds).
    pub baseline_secs: f64,
    /// Reference backend's plan time at the same bandwidth (seconds).
    pub reference_secs: f64,
    /// Symmetric relative error between the two times.
    pub rel_error: f64,
}

impl PointDivergence {
    /// Whether this point fails judging at `tolerance`: the relative
    /// error exceeds it, **or** anything about the comparison is
    /// non-finite. A poisoned backend time that round-tripped through
    /// JSON-lines as `"NaN"` must never re-judge as passing, so NaN and
    /// infinities in either the error or the raw times are violations —
    /// `rel_err > tol`-style comparisons alone are `false` for NaN.
    pub fn is_violation(&self, tolerance: f64) -> bool {
        !self.rel_error.is_finite()
            || self.rel_error > tolerance
            || !self.baseline_secs.is_finite()
            || !self.reference_secs.is_finite()
    }
}

/// The divergence side of a cross-validated sweep: per-point relative
/// errors between the two backends, in grid-enumeration order.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Baseline backend's display name.
    pub baseline: String,
    /// Reference backend's display name.
    pub reference: String,
    /// The tolerance points are judged against.
    pub tolerance: f64,
    /// Per-point comparisons, in grid order.
    pub points: Vec<PointDivergence>,
    /// Grid points whose workload exposes no [`CommPlan`] (not comparable,
    /// not a failure).
    pub skipped: usize,
    /// Grid points where a backend itself errored (these ARE failures —
    /// a plan both backends should handle was rejected by one of them).
    pub backend_errors: Vec<SweepError>,
}

impl DivergenceReport {
    /// The largest per-point relative error (0 when nothing was compared).
    /// A NaN error — a backend returned a non-finite time — propagates to
    /// the result instead of being silently dropped by the max fold, so a
    /// failing report never summarizes as "0.000%".
    pub fn max_rel_error(&self) -> f64 {
        self.points.iter().map(|p| p.rel_error).fold(0.0, |a, b| {
            if b.is_nan() {
                f64::NAN
            } else {
                a.max(b)
            }
        })
    }

    /// The mean per-point relative error (0 when nothing was compared).
    pub fn mean_rel_error(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.rel_error).sum::<f64>() / self.points.len() as f64
    }

    /// Points failing [`PointDivergence::is_violation`] at the report's
    /// tolerance, worst first. Non-finite errors or times (a backend
    /// returned a poisoned value) count as violations — keeping this
    /// list consistent with [`DivergenceReport::within_tolerance`],
    /// which also fails them.
    pub fn violations(&self) -> Vec<&PointDivergence> {
        let mut out: Vec<&PointDivergence> =
            self.points.iter().filter(|p| p.is_violation(self.tolerance)).collect();
        out.sort_by(|a, b| b.rel_error.total_cmp(&a.rel_error));
        out
    }

    /// The `n` worst-diverging shape × workload × budget cells, worst
    /// first (ties keep grid order).
    pub fn worst(&self, n: usize) -> Vec<&PointDivergence> {
        let mut out: Vec<&PointDivergence> = self.points.iter().collect();
        out.sort_by(|a, b| b.rel_error.total_cmp(&a.rel_error));
        out.truncate(n);
        out
    }

    /// True when every compared point is within tolerance **and** no
    /// backend errored. A report that compared nothing (all skipped) is
    /// vacuously within tolerance. Non-finite errors or times fail
    /// (see [`PointDivergence::is_violation`]).
    pub fn within_tolerance(&self) -> bool {
        self.backend_errors.is_empty()
            && self.points.iter().all(|p| !p.is_violation(self.tolerance))
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} vs {}: {} points compared, {} skipped, {} backend errors; \
             max rel err {:.3}%, mean {:.3}% (tolerance {:.1}%)",
            self.baseline,
            self.reference,
            self.points.len(),
            self.skipped,
            self.backend_errors.len(),
            100.0 * self.max_rel_error(),
            100.0 * self.mean_rel_error(),
            100.0 * self.tolerance,
        );
        if let Some(w) = self.worst(1).first() {
            s.push_str(&format!(
                "; worst cell: {} × {} @ {:.0} GB/s ({:?}) — {:.4}s vs {:.4}s",
                w.shape,
                w.workload,
                w.point.budget,
                w.point.objective,
                w.baseline_secs,
                w.reference_secs,
            ));
        }
        s
    }
}

/// A cross-validated sweep's outcome: the normal sweep report plus the
/// backend-divergence report over the same grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidatedReport {
    /// The design-space results, identical to [`SweepEngine::run`]'s.
    pub sweep: SweepReport,
    /// The per-point backend comparison.
    pub divergence: DivergenceReport,
}

/// Configuration of a **three-way** cross-validated sweep: three
/// [`EvalBackend`]s priced per grid point in the same fan-out, compared
/// pairwise. The canonical triple is Analytical / `EventSimBackend` /
/// `NetSimBackend` — the closed form, the chunk-level event engine, and
/// the network-layer α-β engine.
#[derive(Clone, Copy)]
pub struct CrossValidation3<'b> {
    backends: [&'b dyn EvalBackend; 3],
    tolerance: f64,
}

impl<'b> CrossValidation3<'b> {
    /// Triples three backends at [`CrossValidation::DEFAULT_TOLERANCE`].
    pub fn new(a: &'b dyn EvalBackend, b: &'b dyn EvalBackend, c: &'b dyn EvalBackend) -> Self {
        CrossValidation3 { backends: [a, b, c], tolerance: CrossValidation::DEFAULT_TOLERANCE }
    }

    /// Overrides the tolerance every pair is judged against.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance.is_finite() && tolerance >= 0.0, "tolerance must be ≥ 0");
        self.tolerance = tolerance;
        self
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl std::fmt::Debug for CrossValidation3<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossValidation3")
            .field("backends", &self.backends.map(|b| b.name().to_string()))
            .field("tolerance", &self.tolerance)
            .finish()
    }
}

/// The combined divergence side of a three-way cross-validated sweep: one
/// [`DivergenceReport`] per backend pair, in the order (a, b), (a, c),
/// (b, c) of the [`CrossValidation3`] constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence3Report {
    /// Pairwise reports: `[a vs b, a vs c, b vs c]`.
    pub pairs: Vec<DivergenceReport>,
}

impl Divergence3Report {
    /// The pairwise report whose backends carry the two display names (in
    /// either order), if present.
    pub fn pair(&self, a: &str, b: &str) -> Option<&DivergenceReport> {
        self.pairs.iter().find(|p| {
            (p.baseline == a && p.reference == b) || (p.baseline == b && p.reference == a)
        })
    }

    /// The largest relative error across every pair and point.
    pub fn max_rel_error(&self) -> f64 {
        self.pairs.iter().map(DivergenceReport::max_rel_error).fold(0.0, f64::max)
    }

    /// True when every pair is within tolerance with no backend errors.
    pub fn within_tolerance(&self) -> bool {
        self.pairs.iter().all(DivergenceReport::within_tolerance)
    }

    /// One line per pair.
    pub fn summary(&self) -> String {
        self.pairs.iter().map(DivergenceReport::summary).collect::<Vec<_>>().join("\n")
    }
}

/// A three-way cross-validated sweep's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidated3Report {
    /// The design-space results, identical to [`SweepEngine::run`]'s.
    pub sweep: SweepReport,
    /// The pairwise backend comparisons.
    pub divergence: Divergence3Report,
}

/// The sweep engine: a cost model, optional extra designer constraints, and
/// a concurrent memo cache (plus warm-start seed index) that persists
/// across `run` calls.
pub struct SweepEngine<'a> {
    cost_model: &'a CostModel,
    extra_constraints: Vec<Constraint>,
    cache: SweepCache,
    warm_start: bool,
    /// Optional persistent solve cache (see [`SweepEngine::with_store`]
    /// and [`SweepEngine::with_shared_store`]). A mutex, not a shard:
    /// the store is touched only at run boundaries (preload before the
    /// drive, stage + flush after), never on the per-point hot path.
    /// An `Arc` so a long-lived host (the sweep server) can attach many
    /// short-lived engines to one store.
    store: Option<SharedSolveStore>,
    /// Deterministic fault injection ([`crate::fault`]); `None` — one
    /// branch per point — unless `LIBRA_FAULT_PLAN` (or
    /// [`SweepEngine::with_fault`]) armed a plan.
    fault: Option<FaultInjector>,
}

impl<'a> SweepEngine<'a> {
    /// An engine pricing designs with `cost_model`. Warm-start seeding is
    /// on by default (see [`SweepEngine::with_warm_start`]).
    pub fn new(cost_model: &'a CostModel) -> Self {
        SweepEngine {
            cost_model,
            extra_constraints: Vec::new(),
            cache: SweepCache::new(),
            warm_start: true,
            store: None,
            fault: FaultInjector::from_env(),
        }
    }

    /// Arms deterministic fault injection on this engine (the in-process
    /// seam; production runs arm it via the `LIBRA_FAULT_PLAN`
    /// environment variable instead). See [`crate::fault`] for the
    /// sweep sites: per-point injected errors, panics, and slow solves.
    #[must_use]
    pub fn with_fault(mut self, injector: FaultInjector) -> Self {
        self.fault = Some(injector);
        self
    }

    /// Enables or disables warm-start seeding of design solves.
    ///
    /// When enabled (the default), every run is driven in two
    /// barrier-separated phases: one **anchor** budget per
    /// shape × workload × objective group solves cold and publishes its
    /// optimal bandwidth vector; every other budget then seeds its
    /// interior-point solve from the nearest published anchor
    /// ([`opt::optimize_seeded`]), which typically cuts solver iterations
    /// severalfold on budget ladders. Seeding is deterministic — parallel
    /// and serial runs remain bit-identical — and warm solves converge to
    /// the cold optimum within solver tolerance.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Whether warm-start seeding is enabled (part of the persistent
    /// store's fingerprint: warm and cold solves differ in their low
    /// bits, so the two policies must never share stored records).
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Attaches the persistent solve cache at `path`
    /// ([`crate::store::SolveStore`]): existing records load now, every
    /// run preloads matching points into the in-memory cache before
    /// solving, and freshly solved points are appended after each run
    /// (and on drop). Results stay **byte-identical** with or without a
    /// store — stored designs round-trip bit-exactly, and warm-start
    /// seeds are republished from preloaded anchor designs exactly as an
    /// uninterrupted run would publish them.
    ///
    /// # Errors
    /// Propagates [`SolveStore::open`] failures (unreadable file,
    /// incompatible schema or key-hash version).
    pub fn with_store(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, LibraError> {
        self.store = Some(SolveStore::open_shared(path)?);
        Ok(self)
    }

    /// Attaches an already-open shared store
    /// ([`SolveStore::open_shared`]) instead of opening a file. This is
    /// the multi-client seam: every engine attached to the same
    /// [`SharedSolveStore`] preloads the records its siblings staged —
    /// no file round-trip between them — while flushes still append to
    /// the backing file for the next process. Byte-identity guarantees
    /// are exactly [`SweepEngine::with_store`]'s.
    #[must_use]
    pub fn with_shared_store(mut self, store: SharedSolveStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Persistent-store counters since the store was opened (`None`
    /// without an attached store).
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.lock().unwrap().stats())
    }

    /// Flushes the attached store's staged records to disk (a no-op
    /// without a store; also runs automatically after each run and on
    /// drop, where errors are swallowed — call this to observe them).
    ///
    /// # Errors
    /// Propagates [`SolveStore::flush`] I/O failures.
    pub fn flush_store(&self) -> Result<(), LibraError> {
        match &self.store {
            Some(s) => s.lock().unwrap().flush(),
            None => Ok(()),
        }
    }

    /// Adds designer constraints applied to **every** grid point on top of
    /// the per-point [`Constraint::TotalBw`] budget (e.g.
    /// [`Constraint::Ordered`]).
    ///
    /// Memoized designs (and warm-start seeds) were solved under the
    /// previous constraint set, so both are cleared; target expressions
    /// and EqualBW baselines are constraint-independent and stay cached.
    #[must_use]
    pub fn with_constraints(mut self, constraints: impl IntoIterator<Item = Constraint>) -> Self {
        self.extra_constraints.extend(constraints);
        self.cache.clear_designs();
        // Constraints are not part of the store fingerprint, so a
        // constrained engine must not read or write the persistent
        // cache: detach it (staged records from earlier runs flush on
        // the dropped store's way out).
        self.store = None;
        self
    }

    /// Cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drives `f` over the contiguous index `range` of grid points (the
    /// full range for ordinary runs), parallel or serial, returning
    /// results in grid-enumeration order. **Every** public run path —
    /// session or legacy shim, plain or cross-validated — funnels through
    /// this one function, so the serial-vs-parallel bit-identity contract
    /// is enforced in exactly one place.
    ///
    /// With warm-start enabled the points are processed in two
    /// barrier-separated phases (anchors first — the grid's first budget —
    /// then everything else, seeded), so the seed state visible to any
    /// solve is a pure function of the engine's history, never of worker
    /// scheduling. Serial runs use the same phase order, keeping the
    /// bit-identical parallel ≡ serial contract.
    ///
    /// The restriction is the shard dispatcher's half of the determinism
    /// contract: **a ranged drive's results are bit-identical to the
    /// corresponding slice of the full drive's.**
    ///
    /// With warm-start enabled, an in-range seeded point's group anchor
    /// (its shape × workload × objective at the grid's first budget) may
    /// fall outside the range. Those out-of-range anchors are handed to
    /// `prepare` in phase 1 — the caller solves them for their published
    /// seed and discards the result — so every seed an in-range solve
    /// consumes is exactly the seed the full run would have published.
    fn drive_range<T: Send>(
        &self,
        grid: &SweepGrid,
        points: &[GridPoint],
        range: std::ops::Range<usize>,
        exec: ExecMode,
        f: impl Fn(GridPoint, SeedMode) -> T + Sync,
        prepare: impl Fn(GridPoint) + Sync,
    ) -> Vec<T> {
        let apply = |idx: &[usize], mode: SeedMode| -> Vec<(usize, T)> {
            match exec {
                ExecMode::Parallel => idx.par_iter().map(|&i| (i, f(points[i], mode))).collect(),
                ExecMode::Serial => idx.iter().map(|&i| (i, f(points[i], mode))).collect(),
            }
        };
        if !self.warm_start {
            let all: Vec<usize> = range.collect();
            return apply(&all, SeedMode::Cold).into_iter().map(|(_, t)| t).collect();
        }
        let anchor_budget = grid.budgets().first().copied();
        let (anchors, rest): (Vec<usize>, Vec<usize>) =
            range.clone().partition(|&i| Some(points[i].budget) == anchor_budget);
        // Group anchors of in-range seeded points that lie outside the
        // range. Enumeration is shape-major (shape → workload → budget →
        // objective), so a point at global index i with budget index b
        // has its group's anchor (budget index 0) at i − b·n_objectives.
        let n_obj = grid.objectives().len().max(1);
        let n_bud = grid.budgets().len().max(1);
        let mut extra: Vec<usize> = rest
            .iter()
            .map(|&i| i - ((i / n_obj) % n_bud) * n_obj)
            .filter(|a| !range.contains(a))
            .collect();
        extra.sort_unstable();
        extra.dedup();
        let mut out: Vec<Option<T>> = Vec::with_capacity(range.len());
        out.resize_with(range.len(), || None);
        // Phase 1: anchors (in-range kept, out-of-range seed-only)...
        match exec {
            ExecMode::Parallel => extra.par_iter().for_each(|&i| prepare(points[i])),
            ExecMode::Serial => extra.iter().for_each(|&i| prepare(points[i])),
        }
        for (idx, mode) in [(&anchors, SeedMode::Anchor), (&rest, SeedMode::Seeded)] {
            // ...then the barrier, then phase 2: everything else, seeded.
            for (i, t) in apply(idx, mode) {
                out[i - range.start] = Some(t);
            }
        }
        out.into_iter().map(|t| t.expect("every in-range point driven exactly once")).collect()
    }

    /// Evaluates one grid point (memoized; `mode` controls warm-start
    /// participation).
    // Both variants are full result records stored unboxed in the report;
    // boxing the Err would not shrink anything the caller keeps.
    #[allow(clippy::result_large_err)]
    fn eval<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        point: GridPoint,
        mode: SeedMode,
    ) -> Result<SweepResult, SweepError> {
        let shape = &grid.shapes()[point.shape];
        let workload = &workloads[point.workload];
        let fail = |error: LibraError| SweepError {
            point,
            shape: shape.clone(),
            workload: workload.name().to_string(),
            error,
        };
        let cached = self.cache.targets(shape, workload);
        let targets = match cached.as_ref() {
            Ok(t) => t,
            Err(e) => return Err(fail(e.clone())),
        };
        let mut constraints = vec![Constraint::TotalBw(point.budget)];
        constraints.extend(self.extra_constraints.iter().cloned());
        let key: DesignKey =
            (shape.clone(), workload.name().to_string(), point.budget.to_bits(), point.objective);
        let seed_key: SeedKey = (shape.clone(), workload.name().to_string(), point.objective);
        let design = self
            .cache
            .design(key, || {
                let seed = match mode {
                    SeedMode::Seeded => self.cache.seed_for(&seed_key, point.budget),
                    SeedMode::Anchor | SeedMode::Cold => None,
                };
                if seed.is_some() {
                    self.cache.warm_seeded.fetch_add(1, Ordering::Relaxed);
                }
                // The only deep copy of the target expressions, paid solely
                // on a design-cache miss (DesignRequest owns its targets).
                opt::optimize_seeded(
                    &DesignRequest {
                        shape,
                        targets: targets.clone(),
                        objective: point.objective,
                        constraints,
                        cost_model: self.cost_model,
                    },
                    seed.as_ref().map(|s| s.as_slice()),
                )
            })
            .map_err(fail)?;
        if mode == SeedMode::Anchor {
            self.cache.publish_seed(seed_key, point.budget, &design.bw);
        }
        let baseline_key: BaselineKey =
            (shape.clone(), workload.name().to_string(), point.budget.to_bits());
        let baseline = self.cache.baseline(baseline_key, || {
            opt::evaluate(
                shape,
                targets,
                &opt::equal_bw(shape.ndims(), point.budget),
                self.cost_model,
            )
        });
        Ok(SweepResult {
            point,
            shape: shape.clone(),
            workload: workload.name().to_string(),
            design,
            baseline,
        })
    }

    fn report(
        &self,
        outcomes: impl IntoIterator<Item = Result<SweepResult, SweepError>>,
    ) -> SweepReport {
        let mut results = Vec::new();
        let mut errors = Vec::new();
        for o in outcomes {
            match o {
                Ok(r) => results.push(r),
                Err(e) => errors.push(e),
            }
        }
        SweepReport { results, errors, cache: self.cache.stats() }
    }

    /// Evaluates one grid point and, when its workload exposes a
    /// [`CommPlan`], prices that plan **once under each backend** at the
    /// optimized design's bandwidth vector — the shared body of every
    /// priced sweep (the session front door and each legacy shim), so
    /// warm-start seeding and op-eligibility rules live in exactly one
    /// place. An empty backend slice skips pricing entirely (a plain
    /// sweep never touches the plan cache).
    /// Global grid-enumeration index of `point` (shape-major:
    /// shape → workload → budget → objective), the instance key for
    /// per-point fault decisions. Off the hot path: called only with an
    /// armed injector.
    fn grid_index_of<W: SweepWorkload>(grid: &SweepGrid, workloads: &[W], point: GridPoint) -> u64 {
        let n_obj = grid.objectives().len().max(1);
        let n_bud = grid.budgets().len().max(1);
        let b =
            grid.budgets().iter().position(|x| x.to_bits() == point.budget.to_bits()).unwrap_or(0);
        let o = grid.objectives().iter().position(|&x| x == point.objective).unwrap_or(0);
        (((point.shape * workloads.len().max(1) + point.workload) * n_bud + b) * n_obj + o) as u64
    }

    /// Runs the armed per-point fault sites for `point`: a slow solve
    /// sleeps here, a panic site panics (isolated by the per-point
    /// `catch_unwind` in [`SweepEngine::run_priced`]'s drive), and an
    /// error site returns the injected [`SweepError`] the caller turns
    /// into a poisoned record. `None` on the release path.
    fn injected_point_fault<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        point: GridPoint,
    ) -> Option<SweepError> {
        let injector = self.fault.as_ref()?;
        let index = Self::grid_index_of(grid, workloads, point);
        if injector.fires(fault::SWEEP_POINT_SLOW, index) {
            std::thread::sleep(std::time::Duration::from_millis(
                injector.millis(fault::SWEEP_POINT_SLOW),
            ));
        }
        if injector.fires(fault::SWEEP_POINT_PANIC, index) {
            panic!("injected fault: {} at grid index {index}", fault::SWEEP_POINT_PANIC);
        }
        if injector.fires(fault::SWEEP_POINT_ERROR, index) {
            return Some(SweepError {
                point,
                shape: grid.shapes()[point.shape].clone(),
                workload: workloads[point.workload].name().to_string(),
                error: LibraError::BadRequest(format!(
                    "injected fault: {} at grid index {index}",
                    fault::SWEEP_POINT_ERROR
                )),
            });
        }
        None
    }

    /// Converts a caught per-point panic payload into the poisoned
    /// [`SweepError`] that streams out as a failed record — the point's
    /// failure stays the point's, never the sweep's.
    fn panic_to_error<W: SweepWorkload>(
        grid: &SweepGrid,
        workloads: &[W],
        point: GridPoint,
        payload: &(dyn std::any::Any + Send),
    ) -> SweepError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        SweepError {
            point,
            shape: grid.shapes()[point.shape].clone(),
            workload: workloads[point.workload].name().to_string(),
            error: LibraError::BadRequest(format!("point evaluation panicked: {message}")),
        }
    }

    fn eval_priced<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        point: GridPoint,
        backends: &[&dyn EvalBackend],
        mode: SeedMode,
    ) -> PricedOutcome {
        if let Some(error) = self.injected_point_fault(grid, workloads, point) {
            return (Err(error), None);
        }
        let outcome = self.eval(grid, workloads, point, mode);
        if backends.is_empty() {
            return (outcome, None);
        }
        let Ok(result) = &outcome else { return (outcome, None) };
        let shape = &grid.shapes()[point.shape];
        let workload = &workloads[point.workload];
        let fail = |error: LibraError| SweepError {
            point,
            shape: shape.clone(),
            workload: workload.name().to_string(),
            error,
        };
        let planned = self.cache.plan(shape, workload);
        let priced = match planned.as_ref() {
            Err(e) => Some(Err(fail(e.clone()))),
            Ok(None) => None,
            Ok(Some(plan)) => {
                let n = shape.ndims();
                let price = || -> Result<Vec<f64>, LibraError> {
                    backends.iter().map(|b| b.eval_plan(n, &result.design.bw, plan)).collect()
                };
                Some(price().map_err(fail))
            }
        };
        (outcome, priced)
    }

    /// Folds per-point `N`-backend outcomes into the sweep report plus one
    /// [`DivergenceReport`] per requested backend pair, emitting each
    /// point's outcome to `emit` (the streaming-sink hook) in grid order.
    /// `index_base` is the global grid index of `points[0]` — non-zero for
    /// range-restricted (shard) runs, whose emitted indices must stay
    /// global so shard streams merge back into one grid.
    #[allow(clippy::too_many_arguments)] // internal fold plumbing shared by every priced driver
    fn fold_pairwise<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        points: &[GridPoint],
        index_base: usize,
        outcomes: Vec<PricedOutcome>,
        backends: &[&dyn EvalBackend],
        pair_indices: &[(usize, usize)],
        tolerance: f64,
        emit: PointEmit<'_>,
    ) -> (SweepReport, Vec<DivergenceReport>) {
        let mut pairs: Vec<DivergenceReport> = pair_indices
            .iter()
            .map(|&(i, j)| DivergenceReport {
                baseline: backends[i].name().to_string(),
                reference: backends[j].name().to_string(),
                tolerance,
                points: Vec::new(),
                skipped: 0,
                backend_errors: Vec::new(),
            })
            .collect();
        let mut sweep_outcomes = Vec::with_capacity(outcomes.len());
        for (idx, (&point, (o, priced))) in points.iter().zip(outcomes).enumerate() {
            emit(index_base + idx, &o, priced.as_ref());
            match priced {
                Some(Ok(secs)) => {
                    let shape = &grid.shapes()[point.shape];
                    let workload = workloads[point.workload].name().to_string();
                    for (pair, &(i, j)) in pairs.iter_mut().zip(pair_indices) {
                        pair.points.push(PointDivergence {
                            point,
                            shape: shape.clone(),
                            workload: workload.clone(),
                            baseline_secs: secs[i],
                            reference_secs: secs[j],
                            rel_error: rel_error(secs[i], secs[j]),
                        });
                    }
                }
                Some(Err(e)) => {
                    for pair in &mut pairs {
                        pair.backend_errors.push(e.clone());
                    }
                }
                // A designed-but-planless point is skipped; a failed design
                // is already reported in the sweep errors.
                None if o.is_ok() => {
                    for pair in &mut pairs {
                        pair.skipped += 1;
                    }
                }
                None => {}
            }
            sweep_outcomes.push(o);
        }
        (self.report(sweep_outcomes), pairs)
    }

    /// Runs an `N`-backend priced sweep: the single driver behind
    /// [`crate::scenario::Session::run`] and every legacy entry point.
    /// `range` restricts the run to a contiguous slice of the grid's
    /// enumeration (callers validate bounds); the emitted indices and the
    /// warm-start seeds stay exactly what the full run would produce, so
    /// shard outputs concatenate back into the unsharded run bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_priced<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        backends: &[&dyn EvalBackend],
        pair_indices: &[(usize, usize)],
        tolerance: f64,
        range: std::ops::Range<usize>,
        exec: ExecMode,
        fp: Fingerprint,
        emit: PointEmit<'_>,
    ) -> (SweepReport, Vec<DivergenceReport>) {
        let points = grid.points(workloads.len());
        // Preload stored solves for the *whole* grid, not just the
        // range: a ranged drive may need out-of-range group anchors for
        // warm-start seeding, and `eval` republishes seeds on cache
        // hits, so preloaded anchors reproduce the uninterrupted run's
        // seed state exactly.
        if let Some(store) = &self.store {
            let mut store = store.lock().unwrap();
            for (i, p) in points.iter().enumerate() {
                if let Some(rec) = store.lookup(fp, i) {
                    let rec = rec.clone();
                    let shape = &grid.shapes()[p.shape];
                    let wl = workloads[p.workload].name().to_string();
                    let bits = p.budget.to_bits();
                    self.cache
                        .preload_design((shape.clone(), wl.clone(), bits, p.objective), rec.design);
                    self.cache.preload_baseline((shape.clone(), wl, bits), rec.baseline);
                }
            }
        }
        // Per-point failure isolation: a panicking eval (a buggy
        // backend, a poisoned workload closure, an injected chaos
        // panic) becomes that one point's poisoned record — error set,
        // no times, JSONL-representable — instead of tearing down the
        // whole rayon fan-out. `catch_unwind` costs nothing on the
        // non-panicking path.
        let outcomes = self.drive_range(
            grid,
            &points,
            range.clone(),
            exec,
            |p, m| {
                catch_unwind(AssertUnwindSafe(|| self.eval_priced(grid, workloads, p, backends, m)))
                    .unwrap_or_else(|payload| {
                        (Err(Self::panic_to_error(grid, workloads, p, payload.as_ref())), None)
                    })
            },
            |p| {
                // A panicking out-of-range anchor pre-solve only costs
                // its group the warm-start seed; in-range points still
                // solve (cold) and record their own outcomes.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _ = self.eval(grid, workloads, p, SeedMode::Anchor);
                }));
            },
        );
        if let Some(store) = &self.store {
            let mut store = store.lock().unwrap();
            for (offset, (outcome, _)) in outcomes.iter().enumerate() {
                if let Ok(r) = outcome {
                    store.stage(
                        fp,
                        range.start + offset,
                        StoredPoint { design: r.design.clone(), baseline: r.baseline.clone() },
                    );
                }
            }
            // Best-effort persistence at the run boundary (so an
            // interrupted *next* run still finds this one's solves);
            // flush errors stay observable via `flush_store`, and drop
            // retries.
            let _ = store.flush();
        }
        self.fold_pairwise(
            grid,
            workloads,
            &points[range.clone()],
            range.start,
            outcomes,
            backends,
            pair_indices,
            tolerance,
            emit,
        )
    }

    /// Evaluates the whole grid **in parallel** (rayon). Results are in
    /// grid-enumeration order and bit-identical to
    /// [`SweepEngine::run_serial`] on the same inputs.
    #[deprecated(
        note = "use the scenario front door: `scenario::Session::run(grid, workloads, &[])`"
    )]
    pub fn run<W: SweepWorkload>(&self, grid: &SweepGrid, workloads: &[W]) -> SweepReport {
        Session::over(self).run(grid, workloads, &[]).sweep
    }

    /// Evaluates the whole grid serially (the reference fold for the
    /// determinism contract; also useful under an external thread pool).
    #[deprecated(note = "use the scenario front door: \
                `scenario::Session::run` with `ExecMode::Serial`")]
    pub fn run_serial<W: SweepWorkload>(&self, grid: &SweepGrid, workloads: &[W]) -> SweepReport {
        Session::over(self).with_mode(ExecMode::Serial).run(grid, workloads, &[]).sweep
    }

    /// Evaluates the whole grid **in parallel** with both of `cv`'s
    /// backends priced per point in the same rayon fan-out.
    #[deprecated(note = "use the scenario front door: \
                `scenario::Session::run(grid, workloads, &[baseline, reference])`")]
    pub fn run_cross_validated<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        cv: &CrossValidation<'_>,
    ) -> CrossValidatedReport {
        self.cross_validated(grid, workloads, cv, ExecMode::Parallel)
    }

    /// Serial reference fold of [`SweepEngine::run_cross_validated`].
    #[deprecated(note = "use the scenario front door: \
                `scenario::Session::run` with `ExecMode::Serial`")]
    pub fn run_cross_validated_serial<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        cv: &CrossValidation<'_>,
    ) -> CrossValidatedReport {
        self.cross_validated(grid, workloads, cv, ExecMode::Serial)
    }

    fn cross_validated<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        cv: &CrossValidation<'_>,
        exec: ExecMode,
    ) -> CrossValidatedReport {
        let mut report = Session::over(self).with_tolerance(cv.tolerance()).with_mode(exec).run(
            grid,
            workloads,
            &[cv.baseline, cv.reference],
        );
        let divergence =
            report.divergence.pairs.pop().expect("two backends produce exactly one pair");
        CrossValidatedReport { sweep: report.sweep, divergence }
    }

    /// Evaluates the whole grid **in parallel** with all three of `cv`'s
    /// backends priced per point in the same rayon fan-out, one
    /// [`DivergenceReport`] per backend pair.
    #[deprecated(note = "use the scenario front door: \
                `scenario::Session::run(grid, workloads, &[a, b, c])`")]
    pub fn run_cross_validated3<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        cv: &CrossValidation3<'_>,
    ) -> CrossValidated3Report {
        self.cross_validated3(grid, workloads, cv, ExecMode::Parallel)
    }

    /// Serial reference fold of [`SweepEngine::run_cross_validated3`].
    #[deprecated(note = "use the scenario front door: \
                `scenario::Session::run` with `ExecMode::Serial`")]
    pub fn run_cross_validated3_serial<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        cv: &CrossValidation3<'_>,
    ) -> CrossValidated3Report {
        self.cross_validated3(grid, workloads, cv, ExecMode::Serial)
    }

    fn cross_validated3<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        cv: &CrossValidation3<'_>,
        exec: ExecMode,
    ) -> CrossValidated3Report {
        let report = Session::over(self).with_tolerance(cv.tolerance()).with_mode(exec).run(
            grid,
            workloads,
            &cv.backends,
        );
        CrossValidated3Report {
            sweep: report.sweep,
            divergence: Divergence3Report { pairs: report.divergence.pairs },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, CommModel, GroupSpan};
    use crate::eval::{Analytical, ScaledBackend};
    use crate::workload::CommOp;

    fn allreduce_workload(name: &str, gb: f64) -> FnWorkload {
        FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
    }

    /// Like [`allreduce_workload`], with the matching communication plan
    /// attached so the workload is cross-validatable.
    fn planned_workload(name: &'static str, gb: f64) -> FnWorkload {
        allreduce_workload(name, gb).with_plan(move |shape: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                gb * 1e9,
                GroupSpan::full(shape),
            )]))
        })
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_shape("FC(8)_SW(4)".parse().unwrap())
            .with_budgets([100.0, 300.0])
            .with_objectives([Objective::Perf])
    }

    #[test]
    fn grid_dedups_and_counts() {
        let g = small_grid()
            .with_shape("RI(4)_SW(8)".parse().unwrap()) // dup shape
            .with_budgets([100.0, -5.0, f64::NAN]) // dup + invalid budgets
            .with_objectives([Objective::Perf]); // dup objective
        assert_eq!(g.shapes().len(), 2);
        assert_eq!(g.budgets(), &[100.0, 300.0]);
        assert_eq!(g.objectives(), &[Objective::Perf]);
        assert_eq!(g.len(3), 2 * 3 * 2);
        assert!(g.is_empty(0));
        assert_eq!(g.points(1).len(), g.len(1));
    }

    #[test]
    fn sweep_evaluates_every_point_and_memoizes() {
        let grid = small_grid().with_objectives([Objective::PerfPerCost]);
        let wls = [allreduce_workload("a", 1.0), allreduce_workload("b", 4.0)];
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm);
        // Serial first run: exact cache counters (under a parallel cold run
        // two workers may race past a cold key's first lookup and both
        // build it — by design, so exact counts only hold serially).
        let report = Session::over(&engine).with_mode(ExecMode::Serial).run(&grid, &wls, &[]).sweep;
        assert_eq!(report.results.len(), 2 * 2 * 2 * 2);
        assert!(report.errors.is_empty());
        // Expressions are built once per (shape, workload)...
        assert_eq!(report.cache.expr_misses, 4);
        assert_eq!(report.cache.expr_hits, 12);
        // ...and every distinct design is solved exactly once.
        assert_eq!(report.cache.design_misses, 16);
        // A parallel re-run over the same grid is served entirely from cache.
        let again = Session::over(&engine).run(&grid, &wls, &[]).sweep;
        assert_eq!(again.results, report.results);
        assert_eq!(again.cache.design_misses, 16);
        assert_eq!(again.cache.design_hits, 16);
    }

    #[test]
    fn results_arrive_in_grid_order() {
        let grid = small_grid();
        let wls = [allreduce_workload("a", 1.0)];
        let cm = CostModel::default();
        let report = Session::new(&cm).run(&grid, &wls, &[]).sweep;
        let points = grid.points(wls.len());
        assert_eq!(report.results.len(), points.len());
        for (r, p) in report.results.iter().zip(&points) {
            assert_eq!(r.point, *p);
        }
    }

    #[test]
    fn designs_beat_equal_bw_and_rankings_agree() {
        let grid = small_grid();
        let wls = [allreduce_workload("a", 10.0)];
        let cm = CostModel::default();
        let report = Session::new(&cm).run(&grid, &wls, &[]).sweep;
        for r in &report.results {
            assert!(r.speedup() >= 1.0 - 1e-6, "PerfOpt lost to EqualBW: {r:?}");
        }
        let by_speed = report.ranked(RankBy::Speedup);
        for w in by_speed.windows(2) {
            assert!(w[0].speedup() >= w[1].speedup());
        }
        let by_time = report.ranked(RankBy::WeightedTime);
        for w in by_time.windows(2) {
            assert!(w[0].design.weighted_time <= w[1].design.weighted_time);
        }
    }

    #[test]
    fn pareto_front_is_nondominated_and_covers_extremes() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0, 200.0, 400.0, 800.0])
            .with_objectives([Objective::Perf, Objective::PerfPerCost]);
        let wls = [allreduce_workload("a", 10.0)];
        let cm = CostModel::default();
        let report = Session::new(&cm).run(&grid, &wls, &[]).sweep;
        let front = report.pareto_front();
        assert!(!front.is_empty());
        for f in &front {
            for r in &report.results {
                let dominates = r.design.weighted_time <= f.design.weighted_time
                    && r.design.cost <= f.design.cost
                    && (r.design.weighted_time < f.design.weighted_time
                        || r.design.cost < f.design.cost);
                assert!(!dominates, "front member dominated by {r:?}");
            }
        }
        // The globally fastest and globally cheapest designs are always on
        // the front.
        let fastest = report.ranked(RankBy::WeightedTime)[0];
        let cheapest = report.ranked(RankBy::Cost)[0];
        assert!(front.iter().any(|f| f.point == fastest.point));
        assert!(front.iter().any(|f| f.point == cheapest.point));
        // Deterministic ordering: cost ascending, equal costs broken by
        // weighted time ascending.
        for w in front.windows(2) {
            let by_cost = w[0].design.cost.total_cmp(&w[1].design.cost);
            assert!(
                by_cost == std::cmp::Ordering::Less
                    || (by_cost == std::cmp::Ordering::Equal
                        && w[0].design.weighted_time <= w[1].design.weighted_time),
                "front must be ordered by cost then weighted time"
            );
        }
    }

    #[test]
    fn workload_errors_are_collected_not_fatal() {
        let bad = FnWorkload::new("bad", |_: &NetworkShape| {
            Err(LibraError::BadRequest("unmappable".into()))
        });
        let grid = small_grid();
        let wls: Vec<Box<dyn SweepWorkload>> =
            vec![Box::new(allreduce_workload("good", 1.0)), Box::new(bad)];
        let cm = CostModel::default();
        let report = Session::new(&cm).run(&grid, &wls, &[]).sweep;
        assert_eq!(report.results.len(), 4, "good workload still evaluated");
        assert_eq!(report.errors.len(), 4, "bad workload fails at every point");
        for e in &report.errors {
            assert_eq!(e.workload, "bad");
            assert!(matches!(e.error, LibraError::BadRequest(_)));
        }
    }

    #[test]
    fn extra_constraints_apply_to_every_point() {
        let grid = SweepGrid::new()
            .with_shape("SW(4)_SW(4)_SW(4)".parse().unwrap())
            .with_budgets([90.0])
            .with_objectives([Objective::Perf]);
        // All traffic on the outer dim wants an inverted allocation; Ordered
        // forces the equal split (see opt::tests::ordered_constraint_enforced).
        let wl = FnWorkload::new("outer", |_: &NetworkShape| {
            Ok(vec![(1.0, BwExpr::Ratio { coeff: 10.0, dim: 2 })])
        });
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm).with_constraints([Constraint::Ordered]);
        let report = Session::from_engine(engine).run(&grid, &[wl], &[]).sweep;
        assert_eq!(report.results.len(), 1);
        let bw = &report.results[0].design.bw;
        assert!(bw[0] >= bw[1] - 1e-6 && bw[1] >= bw[2] - 1e-6, "bw = {bw:?}");
    }

    #[test]
    fn cross_validation_of_identical_backends_is_exact() {
        let grid = small_grid().with_objectives([Objective::PerfPerCost]);
        let wls = [planned_workload("a", 1.0), planned_workload("b", 4.0)];
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm);
        let a = Analytical::new();
        let session = Session::over(&engine).with_tolerance(0.0);
        let report = session.run(&grid, &wls, &[&a, &a]);
        let n_points = grid.len(wls.len());
        assert_eq!(report.sweep.results.len(), n_points);
        let pair = &report.divergence.pairs[0];
        assert_eq!(pair.points.len(), n_points);
        assert_eq!(pair.skipped, 0);
        assert!(pair.backend_errors.is_empty());
        assert_eq!(report.divergence.max_rel_error(), 0.0);
        assert!(report.divergence.within_tolerance());
        // The sweep half is identical to a plain run over the same engine.
        let plain = Session::over(&engine).run(&grid, &wls, &[]).sweep;
        assert_eq!(plain.results, report.sweep.results);
        // Parallel and serial cross-validated folds agree bit-for-bit.
        let serial = session.with_mode(ExecMode::Serial).run(&grid, &wls, &[&a, &a]);
        assert_eq!(serial.sweep.results, report.sweep.results);
        assert_eq!(serial.divergence, report.divergence);
    }

    #[test]
    fn planless_workloads_are_skipped_not_failed() {
        let grid = small_grid();
        let wls = [allreduce_workload("plain", 1.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let report = Session::new(&cm).run(&grid, &wls, &[&a, &a]);
        assert_eq!(report.sweep.results.len(), grid.len(1));
        let pair = &report.divergence.pairs[0];
        assert!(pair.points.is_empty());
        assert_eq!(pair.skipped, grid.len(1));
        assert!(report.divergence.within_tolerance(), "nothing compared → vacuously fine");
    }

    #[test]
    fn skewed_backend_trips_the_divergence_report() {
        let grid = small_grid();
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let analytical = Analytical::new();
        let skewed = ScaledBackend::new(Analytical::new(), 1.5, "skewed");
        let report =
            Session::new(&cm).with_tolerance(0.10).run(&grid, &wls, &[&analytical, &skewed]);
        let d = &report.divergence.pairs[0];
        assert_eq!(d.reference, "skewed");
        assert!(!d.within_tolerance());
        assert_eq!(d.violations().len(), d.points.len(), "every point is off by 1.5×");
        // rel_error(t, 1.5t) = 0.5t / 1.5t = 1/3.
        assert!((d.max_rel_error() - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.mean_rel_error() - 1.0 / 3.0).abs() < 1e-12);
        // worst() ranks by error and truncates.
        assert_eq!(d.worst(2).len(), 2);
        assert!(d.worst(1)[0].rel_error >= d.worst(2)[1].rel_error);
        assert!(d.summary().contains("worst cell"));
    }

    /// A backend producing NaN times must yield a *diagnosable* failing
    /// report: the NaN point shows up in violations(), max_rel_error()
    /// propagates the NaN instead of reporting 0, and within_tolerance()
    /// fails — all three views agree.
    #[test]
    fn nan_rel_errors_are_violations_not_silence() {
        let grid = small_grid();
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let analytical = Analytical::new();
        let poisoned = ScaledBackend::new(Analytical::new(), f64::NAN, "poisoned");
        let report =
            Session::new(&cm).with_tolerance(0.10).run(&grid, &wls, &[&analytical, &poisoned]);
        let d = &report.divergence.pairs[0];
        assert!(d.points.iter().all(|p| p.rel_error.is_nan()));
        assert!(!d.within_tolerance());
        assert_eq!(d.violations().len(), d.points.len(), "NaN points must be violations");
        assert!(d.max_rel_error().is_nan(), "a failing report must not summarize as 0%");
    }

    #[test]
    fn three_way_cross_validation_of_identical_backends_is_exact() {
        let grid = small_grid();
        let wls = [planned_workload("a", 1.0), planned_workload("b", 4.0)];
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm);
        let a = Analytical::new();
        let session = Session::over(&engine).with_tolerance(0.0);
        let report = session.run(&grid, &wls, &[&a, &a, &a]);
        let n_points = grid.len(wls.len());
        assert_eq!(report.sweep.results.len(), n_points);
        assert_eq!(report.divergence.pairs.len(), 3);
        for pair in &report.divergence.pairs {
            assert_eq!(pair.points.len(), n_points);
            assert_eq!(pair.skipped, 0);
            assert!(pair.backend_errors.is_empty());
            assert_eq!(pair.max_rel_error(), 0.0);
        }
        assert_eq!(report.divergence.max_rel_error(), 0.0);
        assert!(report.divergence.within_tolerance());
        // Parallel and serial folds agree bit-for-bit (cache counters
        // accumulate across runs, so compare the semantic halves); the
        // sweep half is a plain run.
        let serial = session.with_mode(ExecMode::Serial).run(&grid, &wls, &[&a, &a, &a]);
        assert_eq!(serial.sweep.results, report.sweep.results);
        assert_eq!(serial.divergence, report.divergence);
        assert_eq!(
            Session::over(&engine).run(&grid, &wls, &[]).sweep.results,
            report.sweep.results
        );
    }

    #[test]
    fn three_way_skew_trips_only_pairs_involving_the_skewed_backend() {
        let grid = small_grid();
        let wls = [planned_workload("a", 2.0)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let b = Analytical::new();
        let skewed = ScaledBackend::new(Analytical::new(), 1.5, "skewed");
        let report = Session::new(&cm).with_tolerance(0.10).run(&grid, &wls, &[&a, &b, &skewed]);
        let d = &report.divergence;
        assert!(!d.within_tolerance());
        // (a, b) agree exactly; both pairs against the skew are off by 1/3.
        let ab = d.pair("analytical", "analytical").unwrap();
        assert_eq!(ab.max_rel_error(), 0.0);
        assert!(ab.within_tolerance());
        let a_skew = d.pair("analytical", "skewed").unwrap();
        assert!((a_skew.max_rel_error() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a_skew.violations().len(), a_skew.points.len());
        assert!(d.pair("skewed", "nonexistent").is_none());
        assert!((d.max_rel_error() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.summary().lines().count(), 3);
    }

    #[test]
    fn three_way_skips_and_backend_errors_propagate_to_every_pair() {
        let grid = small_grid();
        let planless = allreduce_workload("planless", 1.0);
        let bad = allreduce_workload("bad-plan", 1.0).with_plan(|_: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                1e9,
                GroupSpan::new(vec![(7, 4)]),
            )]))
        });
        let wls: Vec<Box<dyn SweepWorkload>> = vec![Box::new(planless), Box::new(bad)];
        let cm = CostModel::default();
        let a = Analytical::new();
        let report = Session::new(&cm).run(&grid, &wls, &[&a, &a, &a]);
        let per_wl = grid.len(1);
        for pair in &report.divergence.pairs {
            assert!(pair.points.is_empty());
            assert_eq!(pair.skipped, per_wl, "planless points skip in every pair");
            assert_eq!(pair.backend_errors.len(), per_wl, "bad plans error in every pair");
        }
        assert!(!report.divergence.within_tolerance());
    }

    #[test]
    fn backend_failures_are_reported_as_errors() {
        // A plan spanning a dimension the fabric lacks: both backends must
        // reject it, and the report must surface that as a backend error.
        let grid = small_grid();
        let wl = allreduce_workload("bad-plan", 1.0).with_plan(|_: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                1e9,
                GroupSpan::new(vec![(7, 4)]),
            )]))
        });
        let cm = CostModel::default();
        let a = Analytical::new();
        let report = Session::new(&cm).run(&grid, &[wl], &[&a, &a]);
        assert_eq!(report.sweep.results.len(), grid.len(1), "designs still solve");
        let pair = &report.divergence.pairs[0];
        assert!(pair.points.is_empty());
        assert_eq!(pair.backend_errors.len(), grid.len(1));
        assert!(!report.divergence.within_tolerance());
    }

    /// Warm-started budget-ladder sweeps agree with cold sweeps to within
    /// solver tolerance, actually seed the non-anchor budgets, and keep
    /// the parallel ≡ serial bit-identity.
    #[test]
    fn warm_start_agrees_with_cold_and_seeds_the_ladder() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0, 200.0, 400.0, 800.0])
            .with_objectives([Objective::Perf]);
        let wls = [allreduce_workload("a", 10.0)];
        let cm = CostModel::default();
        let warm_engine = SweepEngine::new(&cm);
        let warm = Session::over(&warm_engine).run(&grid, &wls, &[]).sweep;
        let cold = Session::from_engine(SweepEngine::new(&cm).with_warm_start(false))
            .run(&grid, &wls, &[])
            .sweep;
        assert!(warm.errors.is_empty() && cold.errors.is_empty());
        // 3 of the 4 budgets are non-anchor and found a published seed.
        assert_eq!(warm.cache.warm_seeded, 3);
        assert_eq!(cold.cache.warm_seeded, 0);
        for (w, c) in warm.results.iter().zip(&cold.results) {
            let rel =
                (w.design.weighted_time - c.design.weighted_time).abs() / c.design.weighted_time;
            assert!(rel < 1e-4, "warm vs cold diverged: {rel} at {:?}", w.point);
        }
        // Parallel and serial warm runs are bit-identical on fresh engines.
        let serial = Session::new(&cm).with_mode(ExecMode::Serial).run(&grid, &wls, &[]).sweep;
        assert_eq!(warm.results, serial.results);
    }

    #[test]
    fn with_constraints_invalidates_cached_designs() {
        let grid = SweepGrid::new()
            .with_shape("SW(4)_SW(4)_SW(4)".parse().unwrap())
            .with_budgets([90.0])
            .with_objectives([Objective::Perf]);
        let wl = [FnWorkload::new("outer", |_: &NetworkShape| {
            Ok(vec![(1.0, BwExpr::Ratio { coeff: 10.0, dim: 2 })])
        })];
        let cm = CostModel::default();
        // Warm the engine unconstrained: the optimum pours bandwidth into
        // the outer dimension.
        let engine = SweepEngine::new(&cm);
        let unconstrained = Session::over(&engine).run(&grid, &wl, &[]).sweep;
        assert!(unconstrained.results[0].design.bw[2] > 80.0);
        // Adding Ordered must drop the memoized design, not serve it stale.
        let engine = engine.with_constraints([Constraint::Ordered]);
        let constrained = Session::over(&engine).run(&grid, &wl, &[]).sweep;
        let bw = &constrained.results[0].design.bw;
        assert!(
            bw[0] >= bw[1] - 1e-6 && bw[1] >= bw[2] - 1e-6,
            "stale unconstrained design served from cache: bw = {bw:?}"
        );
    }

    /// An armed `sweep.point.error` site poisons exactly its grid
    /// indices — the rest of the sweep completes — and an identically
    /// seeded rerun reproduces the chaos bit-for-bit.
    #[test]
    fn injected_point_errors_poison_only_their_points() {
        // 2 shapes × 1 workload × 2 budgets × 1 objective, shape-major:
        // `#2` fires at grid indices 0 and 1 — both budgets of shape 0.
        let grid = small_grid();
        let wls = [allreduce_workload("a", 1.0)];
        let cm = CostModel::default();
        let chaos = FaultInjector::from_spec("seed=3;sweep.point.error=#2").unwrap();
        let engine = SweepEngine::new(&cm).with_fault(chaos.clone());
        let report = Session::over(&engine).run(&grid, &wls, &[]).sweep;
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.results.len(), 2);
        for e in &report.errors {
            assert_eq!(e.point.shape, 0, "only shape 0's indices fire");
            let message = e.error.to_string();
            assert!(
                message.contains("injected fault: sweep.point.error"),
                "unexpected error {message:?}"
            );
        }
        // Chaos is deterministic: a fresh engine with the same plan
        // produces the same surviving results and the same failures.
        let again =
            Session::from_engine(SweepEngine::new(&cm).with_fault(chaos)).run(&grid, &wls, &[]);
        assert_eq!(again.sweep.results, report.results);
        assert_eq!(
            again.sweep.errors.iter().map(|e| e.point).collect::<Vec<_>>(),
            report.errors.iter().map(|e| e.point).collect::<Vec<_>>()
        );
        // Disarmed, the same grid is clean — injection is opt-in only.
        let clean = Session::new(&cm).run(&grid, &wls, &[]).sweep;
        assert!(clean.errors.is_empty());
        assert_eq!(clean.results.len(), 4);
    }

    /// A panicking point eval (here an injected `sweep.point.panic`) is
    /// caught at the point level: it becomes that point's poisoned
    /// error while every other point still solves, identically under
    /// the parallel and serial folds.
    #[test]
    fn injected_panics_are_isolated_per_point() {
        let grid = small_grid();
        let wls = [allreduce_workload("a", 1.0)];
        let cm = CostModel::default();
        let chaos = FaultInjector::from_spec("sweep.point.panic=#1").unwrap();
        let engine = SweepEngine::new(&cm).with_fault(chaos.clone());
        let report = Session::over(&engine).run(&grid, &wls, &[]).sweep;
        assert_eq!(report.results.len(), 3, "the other three points survive");
        assert_eq!(report.errors.len(), 1);
        let message = report.errors[0].error.to_string();
        assert!(message.contains("point evaluation panicked"), "got {message:?}");
        assert!(message.contains("injected fault: sweep.point.panic"), "got {message:?}");
        let serial = Session::from_engine(SweepEngine::new(&cm).with_fault(chaos))
            .with_mode(ExecMode::Serial)
            .run(&grid, &wls, &[])
            .sweep;
        assert_eq!(serial.results, report.results);
        assert_eq!(serial.errors.len(), 1);
    }
}
