//! Parallel design-space exploration: the paper's core loop as a subsystem.
//!
//! LIBRA's headline experiments (Figs. 13–16) sweep candidate
//! multi-dimensional topologies × workloads × bandwidth budgets ×
//! objectives and rank the resulting designs. That search is embarrassingly
//! parallel — every grid point is an independent [`opt::optimize`] call —
//! so this module fans it out with rayon while keeping results **bit
//! identical** to a serial fold over the same grid:
//!
//! * [`SweepGrid`] enumerates a duplicate-free cartesian grid in a
//!   deterministic order (shape-major, then workload, budget, objective);
//! * [`SweepEngine::run`] evaluates the grid in parallel, memoizing
//!   repeated `(shape, workload)` target-expression builds and repeated
//!   design solves behind a sharded concurrent cache;
//! * [`SweepReport`] returns results in grid order, plus ranking helpers
//!   and the perf-vs-cost [Pareto front](SweepReport::pareto_front).
//!
//! ```
//! use libra_core::comm::{Collective, CommModel, GroupSpan};
//! use libra_core::cost::CostModel;
//! use libra_core::opt::Objective;
//! use libra_core::sweep::{FnWorkload, SweepEngine, SweepGrid};
//!
//! // One synthetic workload: a 1-GB All-Reduce over the whole machine.
//! let wl = FnWorkload::new("allreduce-1g", |shape| {
//!     let comm = CommModel::default();
//!     Ok(vec![(1.0, comm.time_expr(Collective::AllReduce, 1e9, &GroupSpan::full(shape)))])
//! });
//! let grid = SweepGrid::new()
//!     .with_shape("RI(8)_SW(4)".parse()?)
//!     .with_shape("FC(4)_SW(8)".parse()?)
//!     .with_budgets([100.0, 200.0])
//!     .with_objectives([Objective::Perf, Objective::PerfPerCost]);
//! let cm = CostModel::default();
//! let report = SweepEngine::new(&cm).run(&grid, &[wl]);
//! assert_eq!(report.results.len(), 8);
//! assert!(report.errors.is_empty());
//! let front = report.pareto_front();
//! assert!(!front.is_empty());
//! # Ok::<(), libra_core::LibraError>(())
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use crate::cost::CostModel;
use crate::error::LibraError;
use crate::expr::BwExpr;
use crate::network::NetworkShape;
use crate::opt::{self, Constraint, Design, DesignRequest, Objective};

/// A workload that can be swept: given a shape, produce the weighted
/// per-iteration time expressions [`opt::optimize`] consumes.
///
/// Workload **names key the memo cache**, so two distinct workloads in one
/// sweep must carry distinct names.
pub trait SweepWorkload: Send + Sync {
    /// Cache key and display name.
    fn name(&self) -> &str;

    /// Weighted `(importance, time-expression)` targets on `shape`.
    ///
    /// # Errors
    /// Workload construction may fail for unmappable shapes (e.g. a TP
    /// degree the dimensions cannot host); such grid points are reported in
    /// [`SweepReport::errors`] rather than aborting the sweep.
    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError>;
}

impl<W: SweepWorkload + ?Sized> SweepWorkload for &W {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> {
        (**self).targets(shape)
    }
}

impl<W: SweepWorkload + ?Sized> SweepWorkload for Box<W> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> {
        (**self).targets(shape)
    }
}

/// The boxed closure type behind [`FnWorkload`].
type TargetsFn = Box<dyn Fn(&NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> + Send + Sync>;

/// A [`SweepWorkload`] backed by a closure.
pub struct FnWorkload {
    name: String,
    f: TargetsFn,
}

impl FnWorkload {
    /// Wraps `f` as a named sweep workload.
    pub fn new<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> + Send + Sync + 'static,
    {
        FnWorkload { name: name.into(), f: Box::new(f) }
    }
}

impl SweepWorkload for FnWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn targets(&self, shape: &NetworkShape) -> Result<Vec<(f64, BwExpr)>, LibraError> {
        (self.f)(shape)
    }
}

impl std::fmt::Debug for FnWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnWorkload").field("name", &self.name).finish_non_exhaustive()
    }
}

/// The cartesian design grid: shapes × budgets × objectives (workloads are
/// supplied at run time). Inputs are deduplicated on insertion, preserving
/// first-occurrence order, so enumeration is duplicate-free and
/// deterministic by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    shapes: Vec<NetworkShape>,
    budgets: Vec<f64>,
    objectives: Vec<Objective>,
}

/// One cell of the sweep grid (indices into the grid's axes and the
/// run-time workload list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Index into [`SweepGrid::shapes`].
    pub shape: usize,
    /// Index into the workload slice passed to [`SweepEngine::run`].
    pub workload: usize,
    /// Total per-NPU bandwidth budget (GB/s).
    pub budget: f64,
    /// Optimization objective.
    pub objective: Objective,
}

impl SweepGrid {
    /// An empty grid.
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Adds one candidate shape (ignored if already present).
    #[must_use]
    pub fn with_shape(mut self, shape: NetworkShape) -> Self {
        if !self.shapes.contains(&shape) {
            self.shapes.push(shape);
        }
        self
    }

    /// Adds candidate shapes (duplicates ignored).
    #[must_use]
    pub fn with_shapes(self, shapes: impl IntoIterator<Item = NetworkShape>) -> Self {
        shapes.into_iter().fold(self, SweepGrid::with_shape)
    }

    /// Adds total-bandwidth budgets in GB/s (duplicates and non-finite or
    /// non-positive values ignored).
    #[must_use]
    pub fn with_budgets(mut self, budgets: impl IntoIterator<Item = f64>) -> Self {
        for b in budgets {
            if b.is_finite() && b > 0.0 && !self.budgets.contains(&b) {
                self.budgets.push(b);
            }
        }
        self
    }

    /// Adds objectives (duplicates ignored).
    #[must_use]
    pub fn with_objectives(mut self, objectives: impl IntoIterator<Item = Objective>) -> Self {
        for o in objectives {
            if !self.objectives.contains(&o) {
                self.objectives.push(o);
            }
        }
        self
    }

    /// The deduplicated candidate shapes, in insertion order.
    pub fn shapes(&self) -> &[NetworkShape] {
        &self.shapes
    }

    /// The deduplicated budgets, in insertion order.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// The deduplicated objectives, in insertion order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Number of grid points for `n_workloads` workloads.
    pub fn len(&self, n_workloads: usize) -> usize {
        self.shapes.len() * n_workloads * self.budgets.len() * self.objectives.len()
    }

    /// Whether the grid enumerates nothing for `n_workloads` workloads.
    pub fn is_empty(&self, n_workloads: usize) -> bool {
        self.len(n_workloads) == 0
    }

    /// Enumerates the grid in deterministic shape-major order:
    /// shape → workload → budget → objective, each axis in insertion order.
    pub fn points(&self, n_workloads: usize) -> Vec<GridPoint> {
        let mut pts = Vec::with_capacity(self.len(n_workloads));
        for shape in 0..self.shapes.len() {
            for workload in 0..n_workloads {
                for &budget in &self.budgets {
                    for &objective in &self.objectives {
                        pts.push(GridPoint { shape, workload, budget, objective });
                    }
                }
            }
        }
        pts
    }
}

/// Cache hit/miss counters, snapshotted into [`SweepReport::cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Target-expression builds served from cache.
    pub expr_hits: usize,
    /// Target-expression builds actually performed.
    pub expr_misses: usize,
    /// Design solves served from cache.
    pub design_hits: usize,
    /// Design solves actually performed.
    pub design_misses: usize,
}

type TargetsEntry = Arc<Result<Vec<(f64, BwExpr)>, LibraError>>;
type ExprKey = (NetworkShape, String);
type BaselineKey = (NetworkShape, String, u64);
type DesignKey = (NetworkShape, String, u64, Objective);

const CACHE_SHARDS: usize = 16;

/// Sharded concurrent memo cache for target expressions and design solves.
///
/// Keys are `(shape, workload-name)` — plus budget and objective for
/// designs — so a cache owned by a [`SweepEngine`] keeps paying off across
/// repeated `run` calls (e.g. iterative grid refinement).
struct SweepCache {
    exprs: Vec<Mutex<HashMap<ExprKey, TargetsEntry>>>,
    designs: Vec<Mutex<HashMap<DesignKey, Result<Design, LibraError>>>>,
    baselines: Vec<Mutex<HashMap<BaselineKey, Design>>>,
    expr_hits: AtomicUsize,
    expr_misses: AtomicUsize,
    design_hits: AtomicUsize,
    design_misses: AtomicUsize,
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % CACHE_SHARDS
}

impl SweepCache {
    fn new() -> Self {
        SweepCache {
            exprs: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            designs: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            baselines: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            expr_hits: AtomicUsize::new(0),
            expr_misses: AtomicUsize::new(0),
            design_hits: AtomicUsize::new(0),
            design_misses: AtomicUsize::new(0),
        }
    }

    /// Drops every memoized design (used when the engine's constraint set
    /// changes: cached designs were solved under the old constraints).
    /// Target expressions and EqualBW baselines are constraint-independent
    /// and survive.
    fn clear_designs(&self) {
        for shard in &self.designs {
            shard.lock().unwrap().clear();
        }
    }

    /// The memoized targets of `workload` on `shape`.
    fn targets<W: SweepWorkload>(&self, shape: &NetworkShape, workload: &W) -> TargetsEntry {
        let key: ExprKey = (shape.clone(), workload.name().to_string());
        let shard = &self.exprs[shard_of(&key)];
        if let Some(hit) = shard.lock().unwrap().get(&key) {
            self.expr_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Build outside the lock: concurrent duplicate work is possible but
        // harmless (the computation is deterministic), and expression
        // construction can be slow enough that holding the shard would
        // serialize unrelated lookups.
        let built = Arc::new(workload.targets(shape));
        self.expr_misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(shard.lock().unwrap().entry(key).or_insert(built))
    }

    /// The memoized EqualBW baseline for a `(shape, workload, budget)`
    /// triple (objective-independent, so two objectives share one entry).
    fn baseline(&self, key: BaselineKey, evaluate: impl FnOnce() -> Design) -> Design {
        let shard = &self.baselines[shard_of(&key)];
        if let Some(hit) = shard.lock().unwrap().get(&key) {
            return hit.clone();
        }
        let computed = evaluate();
        shard.lock().unwrap().entry(key).or_insert(computed).clone()
    }

    /// The memoized design for a fully specified grid point.
    fn design(
        &self,
        key: DesignKey,
        solve: impl FnOnce() -> Result<Design, LibraError>,
    ) -> Result<Design, LibraError> {
        let shard = &self.designs[shard_of(&key)];
        if let Some(hit) = shard.lock().unwrap().get(&key) {
            self.design_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let solved = solve();
        self.design_misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().unwrap().entry(key).or_insert(solved).clone()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            expr_hits: self.expr_hits.load(Ordering::Relaxed),
            expr_misses: self.expr_misses.load(Ordering::Relaxed),
            design_hits: self.design_hits.load(Ordering::Relaxed),
            design_misses: self.design_misses.load(Ordering::Relaxed),
        }
    }
}

/// A successfully evaluated grid point: the LIBRA design plus the EqualBW
/// baseline at the same budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The grid cell this result came from.
    pub point: GridPoint,
    /// The evaluated shape.
    pub shape: NetworkShape,
    /// The workload's name.
    pub workload: String,
    /// The optimized design.
    pub design: Design,
    /// The EqualBW baseline at the same budget.
    pub baseline: Design,
}

impl SweepResult {
    /// Speedup of the design over EqualBW.
    pub fn speedup(&self) -> f64 {
        self.design.speedup_over(&self.baseline)
    }

    /// Perf-per-cost gain of the design over EqualBW.
    pub fn ppc_gain(&self) -> f64 {
        self.design.ppc_gain_over(&self.baseline)
    }
}

/// A grid point whose evaluation failed (unmappable workload, infeasible
/// constraint set, solver failure).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepError {
    /// The grid cell that failed.
    pub point: GridPoint,
    /// The evaluated shape.
    pub shape: NetworkShape,
    /// The workload's name.
    pub workload: String,
    /// Why it failed.
    pub error: LibraError,
}

/// How to rank sweep results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// Largest speedup over EqualBW first.
    Speedup,
    /// Largest perf-per-cost gain over EqualBW first.
    PpcGain,
    /// Fastest (smallest weighted time) first.
    WeightedTime,
    /// Cheapest first.
    Cost,
}

/// The outcome of a sweep: results and errors in grid order, plus cache
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Successful evaluations, in grid-enumeration order.
    pub results: Vec<SweepResult>,
    /// Failed grid points, in grid-enumeration order.
    pub errors: Vec<SweepError>,
    /// Cache counters accumulated over the engine's lifetime so far.
    pub cache: CacheStats,
}

impl SweepReport {
    /// Results re-ranked by `metric` (ties keep grid order).
    pub fn ranked(&self, metric: RankBy) -> Vec<&SweepResult> {
        let mut out: Vec<&SweepResult> = self.results.iter().collect();
        match metric {
            RankBy::Speedup => {
                out.sort_by(|a, b| b.speedup().total_cmp(&a.speedup()));
            }
            RankBy::PpcGain => {
                out.sort_by(|a, b| b.ppc_gain().total_cmp(&a.ppc_gain()));
            }
            RankBy::WeightedTime => {
                out.sort_by(|a, b| a.design.weighted_time.total_cmp(&b.design.weighted_time));
            }
            RankBy::Cost => {
                out.sort_by(|a, b| a.design.cost.total_cmp(&b.design.cost));
            }
        }
        out
    }

    /// The perf-vs-cost Pareto front: designs not dominated by any other
    /// result (another design at most as slow **and** at most as expensive,
    /// strictly better on one axis). Returned in grid order.
    pub fn pareto_front(&self) -> Vec<&SweepResult> {
        self.results
            .iter()
            .filter(|r| {
                !self.results.iter().any(|s| {
                    s.design.weighted_time <= r.design.weighted_time
                        && s.design.cost <= r.design.cost
                        && (s.design.weighted_time < r.design.weighted_time
                            || s.design.cost < r.design.cost)
                })
            })
            .collect()
    }
}

/// The sweep engine: a cost model, optional extra designer constraints, and
/// a concurrent memo cache that persists across `run` calls.
pub struct SweepEngine<'a> {
    cost_model: &'a CostModel,
    extra_constraints: Vec<Constraint>,
    cache: SweepCache,
}

impl<'a> SweepEngine<'a> {
    /// An engine pricing designs with `cost_model`.
    pub fn new(cost_model: &'a CostModel) -> Self {
        SweepEngine { cost_model, extra_constraints: Vec::new(), cache: SweepCache::new() }
    }

    /// Adds designer constraints applied to **every** grid point on top of
    /// the per-point [`Constraint::TotalBw`] budget (e.g.
    /// [`Constraint::Ordered`]).
    ///
    /// Memoized designs were solved under the previous constraint set, so
    /// the design cache is cleared; target expressions and EqualBW
    /// baselines are constraint-independent and stay cached.
    #[must_use]
    pub fn with_constraints(mut self, constraints: impl IntoIterator<Item = Constraint>) -> Self {
        self.extra_constraints.extend(constraints);
        self.cache.clear_designs();
        self
    }

    /// Cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Evaluates one grid point (memoized).
    // Both variants are full result records stored unboxed in the report;
    // boxing the Err would not shrink anything the caller keeps.
    #[allow(clippy::result_large_err)]
    fn eval<W: SweepWorkload>(
        &self,
        grid: &SweepGrid,
        workloads: &[W],
        point: GridPoint,
    ) -> Result<SweepResult, SweepError> {
        let shape = &grid.shapes()[point.shape];
        let workload = &workloads[point.workload];
        let fail = |error: LibraError| SweepError {
            point,
            shape: shape.clone(),
            workload: workload.name().to_string(),
            error,
        };
        let cached = self.cache.targets(shape, workload);
        let targets = match cached.as_ref() {
            Ok(t) => t,
            Err(e) => return Err(fail(e.clone())),
        };
        let mut constraints = vec![Constraint::TotalBw(point.budget)];
        constraints.extend(self.extra_constraints.iter().cloned());
        let key: DesignKey =
            (shape.clone(), workload.name().to_string(), point.budget.to_bits(), point.objective);
        let design = self
            .cache
            .design(key, || {
                // The only deep copy of the target expressions, paid solely
                // on a design-cache miss (DesignRequest owns its targets).
                opt::optimize(&DesignRequest {
                    shape,
                    targets: targets.clone(),
                    objective: point.objective,
                    constraints,
                    cost_model: self.cost_model,
                })
            })
            .map_err(fail)?;
        let baseline_key: BaselineKey =
            (shape.clone(), workload.name().to_string(), point.budget.to_bits());
        let baseline = self.cache.baseline(baseline_key, || {
            opt::evaluate(
                shape,
                targets,
                &opt::equal_bw(shape.ndims(), point.budget),
                self.cost_model,
            )
        });
        Ok(SweepResult {
            point,
            shape: shape.clone(),
            workload: workload.name().to_string(),
            design,
            baseline,
        })
    }

    fn report(
        &self,
        outcomes: impl IntoIterator<Item = Result<SweepResult, SweepError>>,
    ) -> SweepReport {
        let mut results = Vec::new();
        let mut errors = Vec::new();
        for o in outcomes {
            match o {
                Ok(r) => results.push(r),
                Err(e) => errors.push(e),
            }
        }
        SweepReport { results, errors, cache: self.cache.stats() }
    }

    /// Evaluates the whole grid **in parallel** (rayon). Results are in
    /// grid-enumeration order and bit-identical to [`SweepEngine::run_serial`]
    /// on the same inputs: every point is an independent deterministic
    /// solve, and the cache only avoids recomputation — it never changes
    /// values.
    #[allow(clippy::result_large_err)]
    pub fn run<W: SweepWorkload>(&self, grid: &SweepGrid, workloads: &[W]) -> SweepReport {
        let points = grid.points(workloads.len());
        let outcomes: Vec<Result<SweepResult, SweepError>> =
            points.par_iter().map(|&p| self.eval(grid, workloads, p)).collect();
        self.report(outcomes)
    }

    /// Evaluates the whole grid serially (the reference fold for the
    /// determinism contract; also useful under an external thread pool).
    #[allow(clippy::result_large_err)]
    pub fn run_serial<W: SweepWorkload>(&self, grid: &SweepGrid, workloads: &[W]) -> SweepReport {
        let points = grid.points(workloads.len());
        let outcomes: Vec<Result<SweepResult, SweepError>> =
            points.iter().map(|&p| self.eval(grid, workloads, p)).collect();
        self.report(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, CommModel, GroupSpan};

    fn allreduce_workload(name: &str, gb: f64) -> FnWorkload {
        FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_shape("FC(8)_SW(4)".parse().unwrap())
            .with_budgets([100.0, 300.0])
            .with_objectives([Objective::Perf])
    }

    #[test]
    fn grid_dedups_and_counts() {
        let g = small_grid()
            .with_shape("RI(4)_SW(8)".parse().unwrap()) // dup shape
            .with_budgets([100.0, -5.0, f64::NAN]) // dup + invalid budgets
            .with_objectives([Objective::Perf]); // dup objective
        assert_eq!(g.shapes().len(), 2);
        assert_eq!(g.budgets(), &[100.0, 300.0]);
        assert_eq!(g.objectives(), &[Objective::Perf]);
        assert_eq!(g.len(3), 2 * 3 * 2);
        assert!(g.is_empty(0));
        assert_eq!(g.points(1).len(), g.len(1));
    }

    #[test]
    fn sweep_evaluates_every_point_and_memoizes() {
        let grid = small_grid().with_objectives([Objective::PerfPerCost]);
        let wls = [allreduce_workload("a", 1.0), allreduce_workload("b", 4.0)];
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm);
        // Serial first run: exact cache counters (under a parallel cold run
        // two workers may race past a cold key's first lookup and both
        // build it — by design, so exact counts only hold serially).
        let report = engine.run_serial(&grid, &wls);
        assert_eq!(report.results.len(), 2 * 2 * 2 * 2);
        assert!(report.errors.is_empty());
        // Expressions are built once per (shape, workload)...
        assert_eq!(report.cache.expr_misses, 4);
        assert_eq!(report.cache.expr_hits, 12);
        // ...and every distinct design is solved exactly once.
        assert_eq!(report.cache.design_misses, 16);
        // A parallel re-run over the same grid is served entirely from cache.
        let again = engine.run(&grid, &wls);
        assert_eq!(again.results, report.results);
        assert_eq!(again.cache.design_misses, 16);
        assert_eq!(again.cache.design_hits, 16);
    }

    #[test]
    fn results_arrive_in_grid_order() {
        let grid = small_grid();
        let wls = [allreduce_workload("a", 1.0)];
        let cm = CostModel::default();
        let report = SweepEngine::new(&cm).run(&grid, &wls);
        let points = grid.points(wls.len());
        assert_eq!(report.results.len(), points.len());
        for (r, p) in report.results.iter().zip(&points) {
            assert_eq!(r.point, *p);
        }
    }

    #[test]
    fn designs_beat_equal_bw_and_rankings_agree() {
        let grid = small_grid();
        let wls = [allreduce_workload("a", 10.0)];
        let cm = CostModel::default();
        let report = SweepEngine::new(&cm).run(&grid, &wls);
        for r in &report.results {
            assert!(r.speedup() >= 1.0 - 1e-6, "PerfOpt lost to EqualBW: {r:?}");
        }
        let by_speed = report.ranked(RankBy::Speedup);
        for w in by_speed.windows(2) {
            assert!(w[0].speedup() >= w[1].speedup());
        }
        let by_time = report.ranked(RankBy::WeightedTime);
        for w in by_time.windows(2) {
            assert!(w[0].design.weighted_time <= w[1].design.weighted_time);
        }
    }

    #[test]
    fn pareto_front_is_nondominated_and_covers_extremes() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0, 200.0, 400.0, 800.0])
            .with_objectives([Objective::Perf, Objective::PerfPerCost]);
        let wls = [allreduce_workload("a", 10.0)];
        let cm = CostModel::default();
        let report = SweepEngine::new(&cm).run(&grid, &wls);
        let front = report.pareto_front();
        assert!(!front.is_empty());
        for f in &front {
            for r in &report.results {
                let dominates = r.design.weighted_time <= f.design.weighted_time
                    && r.design.cost <= f.design.cost
                    && (r.design.weighted_time < f.design.weighted_time
                        || r.design.cost < f.design.cost);
                assert!(!dominates, "front member dominated by {r:?}");
            }
        }
        // The globally fastest and globally cheapest designs are always on
        // the front.
        let fastest = report.ranked(RankBy::WeightedTime)[0];
        let cheapest = report.ranked(RankBy::Cost)[0];
        assert!(front.iter().any(|f| f.point == fastest.point));
        assert!(front.iter().any(|f| f.point == cheapest.point));
    }

    #[test]
    fn workload_errors_are_collected_not_fatal() {
        let bad = FnWorkload::new("bad", |_: &NetworkShape| {
            Err(LibraError::BadRequest("unmappable".into()))
        });
        let grid = small_grid();
        let wls: Vec<Box<dyn SweepWorkload>> =
            vec![Box::new(allreduce_workload("good", 1.0)), Box::new(bad)];
        let cm = CostModel::default();
        let report = SweepEngine::new(&cm).run(&grid, &wls);
        assert_eq!(report.results.len(), 4, "good workload still evaluated");
        assert_eq!(report.errors.len(), 4, "bad workload fails at every point");
        for e in &report.errors {
            assert_eq!(e.workload, "bad");
            assert!(matches!(e.error, LibraError::BadRequest(_)));
        }
    }

    #[test]
    fn extra_constraints_apply_to_every_point() {
        let grid = SweepGrid::new()
            .with_shape("SW(4)_SW(4)_SW(4)".parse().unwrap())
            .with_budgets([90.0])
            .with_objectives([Objective::Perf]);
        // All traffic on the outer dim wants an inverted allocation; Ordered
        // forces the equal split (see opt::tests::ordered_constraint_enforced).
        let wl = FnWorkload::new("outer", |_: &NetworkShape| {
            Ok(vec![(1.0, BwExpr::Ratio { coeff: 10.0, dim: 2 })])
        });
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm).with_constraints([Constraint::Ordered]);
        let report = engine.run(&grid, &[wl]);
        assert_eq!(report.results.len(), 1);
        let bw = &report.results[0].design.bw;
        assert!(bw[0] >= bw[1] - 1e-6 && bw[1] >= bw[2] - 1e-6, "bw = {bw:?}");
    }

    #[test]
    fn with_constraints_invalidates_cached_designs() {
        let grid = SweepGrid::new()
            .with_shape("SW(4)_SW(4)_SW(4)".parse().unwrap())
            .with_budgets([90.0])
            .with_objectives([Objective::Perf]);
        let wl = [FnWorkload::new("outer", |_: &NetworkShape| {
            Ok(vec![(1.0, BwExpr::Ratio { coeff: 10.0, dim: 2 })])
        })];
        let cm = CostModel::default();
        // Warm the engine unconstrained: the optimum pours bandwidth into
        // the outer dimension.
        let engine = SweepEngine::new(&cm);
        let unconstrained = engine.run(&grid, &wl);
        assert!(unconstrained.results[0].design.bw[2] > 80.0);
        // Adding Ordered must drop the memoized design, not serve it stale.
        let engine = engine.with_constraints([Constraint::Ordered]);
        let constrained = engine.run(&grid, &wl);
        let bw = &constrained.results[0].design.bw;
        assert!(
            bw[0] >= bw[1] - 1e-6 && bw[1] >= bw[2] - 1e-6,
            "stale unconstrained design served from cache: bw = {bw:?}"
        );
    }
}
