//! Adaptive Pareto-guided design-space search.
//!
//! The exhaustive [`crate::sweep::SweepEngine`] caps out at
//! [`Scenario::MAX_GRID_POINTS`]; production questions ("the best
//! topology under $X for this workload") live in spaces orders of
//! magnitude larger. This module is the adaptive driver on top of
//! [`Session`]: it prices a **coarse subgrid** of the nominal
//! shapes × workloads × budgets × objectives space, then **successively
//! refines** the budget axis around the current perf-vs-cost Pareto
//! front while **pruning** budget intervals that are provably dominated
//! under the monotone budget structure (more bandwidth budget never
//! slows the optimum down and never makes it cheaper), until the front
//! is stable or an evaluation budget runs out. The nominal grid is
//! never materialized — only the evaluated subgrids are — so scenarios
//! **above** the exhaustive point cap are legal in search mode.
//!
//! Every round is priced through the same [`Session`], so the engine's
//! memo cache, the warm-start seed index, and an attached
//! [`crate::store::SolveStore`] all hit for free across rounds and
//! across runs.
//!
//! # Contracts (pinned by tests here and in `tests/prop_search.rs`)
//!
//! * **Exactness on small grids.** Refinement subgrids prepend each
//!   group's nominal anchor budget, so warm-start seeds are exactly the
//!   ones the exhaustive run publishes and every evaluated cell's
//!   design is **bit-identical** to the exhaustive run's. On any grid
//!   the exhaustive engine can also sweep, the adaptive front equals
//!   [`SweepReport::pareto_front`] of the exhaustive run exactly — same
//!   designs, same order. (Pruning is conservative: an interval is only
//!   dropped when an evaluated point *strictly* dominates the best
//!   corner any interior cell could reach; ties keep refining.)
//! * **Determinism.** The refinement trajectory is a pure function of
//!   the scenario: parallel ≡ serial, warm-from-store ≡ cold, and a
//!   re-run replays bit-identically, including the streamed JSONL.
//! * **Failure containment.** A poisoned cell (solver error, injected
//!   `sweep.point.error`) is treated as dominated — never a front
//!   member, never a prune witness — and its budget intervals stay
//!   live, so chaos never *removes* refinement work.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::error::LibraError;
use crate::scenario::{
    DivergenceMatrix, RecordRow, ReportSink, RunMeta, Scenario, Session, SessionReport,
};
use crate::sweep::{SweepError, SweepGrid, SweepReport, SweepResult, SweepWorkload};

/// Knobs of one adaptive search, embedded in a scenario's `"search"`
/// block (all fields optional in JSON; defaults below).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Budget samples in the coarse seed round (per group; always
    /// includes the grid's first and last budget). Must be ≥ 2.
    pub seed_budgets: usize,
    /// Budget-index neighborhood refined around each front member
    /// (0 = bisection of live intervals only).
    pub refine_radius: usize,
    /// Maximum rounds including the seed round (0 = until the front is
    /// stable).
    pub max_rounds: usize,
    /// Maximum grid cells to evaluate (0 = unlimited). Rounds are
    /// truncated deterministically to stay under the cap.
    pub max_evals: usize,
    /// Optional parallelization co-search axis: extra workloads, one
    /// per TP split, appended by the workload resolver.
    pub cosearch: Option<Cosearch>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            seed_budgets: 8,
            refine_radius: 1,
            max_rounds: 0,
            max_evals: 0,
            cosearch: None,
        }
    }
}

impl SearchConfig {
    /// Validates the knobs (called by [`crate::scenario::ScenarioBuilder`]
    /// and again by [`run_grid`]).
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] naming the offending field.
    pub fn validate(&self) -> Result<(), LibraError> {
        let bad = |what: String| Err(LibraError::BadRequest(what));
        if self.seed_budgets < 2 {
            return bad(format!(
                "search field \"seed_budgets\" must be >= 2, got {}",
                self.seed_budgets
            ));
        }
        if let Some(cs) = &self.cosearch {
            if cs.model.is_empty() {
                return bad("cosearch field \"model\" must not be empty".into());
            }
            if cs.tp.is_empty() {
                return bad("cosearch field \"tp\" must list at least one TP degree".into());
            }
            if let Some(&t) = cs.tp.iter().find(|&&t| t == 0) {
                return bad(format!("cosearch TP degrees must be >= 1, got {t}"));
            }
            if cs.global_batch == 0 {
                return bad("cosearch field \"global_batch\" must be >= 1".into());
            }
        }
        Ok(())
    }
}

/// The parallelization co-search axis: sweep the parallelism split
/// (TP, and implicitly DP = NPUs / TP) of `model` as searched
/// workloads, not a fixed input. Resolved into concrete workloads by
/// the caller's workload resolver (`libra-bench` maps transformer
/// models); the core stays zoo-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cosearch {
    /// The model whose split is searched (e.g. `"MSFT-1T"`).
    pub model: String,
    /// Candidate tensor-parallel degrees; each becomes one workload
    /// named `"<model>@tp<t>"`.
    pub tp: Vec<u64>,
    /// Global batch size divided across data-parallel replicas.
    pub global_batch: u64,
}

/// One round of the search trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round number (0 = the coarse seed round).
    pub round: usize,
    /// Distinct budget indices newly evaluated this round.
    pub budgets_added: usize,
    /// Grid cells newly evaluated this round (budgets × groups).
    pub new_evals: usize,
    /// Size of the global Pareto front after this round.
    pub front_size: usize,
}

/// The outcome of an adaptive search: the evaluated cells (in nominal
/// grid order, so [`SweepReport::pareto_front`] orders exactly like an
/// exhaustive run's), the per-round trace, and the evals-vs-grid-size
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Every evaluated cell, results and errors in **nominal**
    /// grid-enumeration order.
    pub sweep: SweepReport,
    /// Per-round refinement trace, seed round first.
    pub rounds: Vec<RoundTrace>,
    /// Distinct grid cells evaluated (healthy + poisoned).
    pub evals: usize,
    /// The nominal grid's size (never materialized).
    pub nominal_points: usize,
}

impl SearchReport {
    /// The final perf-vs-cost Pareto front over every evaluated cell
    /// (deterministically ordered — see [`SweepReport::pareto_front`]).
    pub fn front(&self) -> Vec<&SweepResult> {
        self.sweep.pareto_front()
    }

    /// Fraction of the nominal grid actually evaluated.
    pub fn coverage(&self) -> f64 {
        self.evals as f64 / self.nominal_points.max(1) as f64
    }
}

/// Nominal-grid axis arithmetic (shape-major enumeration:
/// shape → workload → budget → objective).
#[derive(Clone, Copy)]
struct Axes {
    n_wl: usize,
    n_bud: usize,
    n_obj: usize,
}

impl Axes {
    fn nominal_index(&self, shape: usize, wl: usize, bud: usize, obj: usize) -> usize {
        ((shape * self.n_wl + wl) * self.n_bud + bud) * self.n_obj + obj
    }

    fn budget_index_of(&self, nominal: usize) -> usize {
        (nominal / self.n_obj) % self.n_bud
    }
}

/// Runs the adaptive search a [`Scenario`]'s `"search"` block asks for,
/// over the scenario's (possibly over-cap) nominal grid. `workloads`
/// are the resolved implementations of [`Scenario::workloads`] plus any
/// co-search splits (see `libra-bench`'s resolver). Backends named by
/// the scenario are ignored: search prices the design space only.
///
/// # Errors
/// [`LibraError::BadRequest`] when the scenario has no `"search"`
/// block, or on an invalid configuration.
pub fn run_scenario<W: SweepWorkload>(
    session: &Session<'_>,
    scenario: &Scenario,
    workloads: &[W],
    sinks: &mut [&mut dyn ReportSink],
) -> Result<SearchReport, LibraError> {
    let config = scenario.search.as_ref().ok_or_else(|| {
        LibraError::BadRequest(format!(
            "scenario {:?} has no \"search\" block; add one, or run it exhaustively \
             with sweep/crossval",
            scenario.name
        ))
    })?;
    run_inner(
        session,
        Some(&scenario.name),
        scenario.tolerance,
        &scenario.grid(),
        workloads,
        config,
        sinks,
    )
}

/// [`run_scenario`] for a plain grid (no scenario file): searches
/// `grid` under `config`, streaming newly evaluated cells to `sinks`
/// with **nominal** grid indices.
///
/// # Errors
/// [`LibraError::BadRequest`] on an invalid configuration or an empty
/// grid.
pub fn run_grid<W: SweepWorkload>(
    session: &Session<'_>,
    grid: &SweepGrid,
    workloads: &[W],
    config: &SearchConfig,
    sinks: &mut [&mut dyn ReportSink],
) -> Result<SearchReport, LibraError> {
    run_inner(session, None, session.tolerance(), grid, workloads, config, sinks)
}

fn run_inner<W: SweepWorkload>(
    session: &Session<'_>,
    scenario: Option<&str>,
    tolerance: f64,
    grid: &SweepGrid,
    workloads: &[W],
    config: &SearchConfig,
    sinks: &mut [&mut dyn ReportSink],
) -> Result<SearchReport, LibraError> {
    config.validate()?;
    let axes =
        Axes { n_wl: workloads.len(), n_bud: grid.budgets().len(), n_obj: grid.objectives().len() };
    let groups = grid.shapes().len() * axes.n_wl * axes.n_obj;
    let nominal = groups
        .checked_mul(axes.n_bud)
        .ok_or_else(|| LibraError::BadRequest("search grid size overflows usize".into()))?;
    if nominal == 0 {
        return Err(LibraError::BadRequest(
            "search grid is empty (every axis needs at least one entry)".into(),
        ));
    }
    // Budget values are grid-deduplicated, so bit-pattern lookup is
    // unambiguous: nominal budget index of an evaluated point.
    let budget_index: HashMap<u64, usize> =
        grid.budgets().iter().enumerate().map(|(i, &b)| (b.to_bits(), i)).collect();

    let meta = RunMeta { scenario, backends: &[], n_points: nominal, tolerance };
    for sink in sinks.iter_mut() {
        sink.on_run_start(&meta);
    }

    // Every round evaluates the same budget indices for every group, so
    // the evaluated set is one global budget-index set.
    let mut evaluated: BTreeSet<usize> = BTreeSet::new();
    let mut outcomes: BTreeMap<usize, Result<SweepResult, SweepError>> = BTreeMap::new();
    let mut rounds: Vec<RoundTrace> = Vec::new();
    let mut evals = 0usize;
    let mut next = seed_indices(axes.n_bud, config.seed_budgets);
    loop {
        if config.max_evals > 0 {
            let allowed = (config.max_evals - evals) / groups;
            next.truncate(allowed);
        }
        if next.is_empty() {
            break;
        }
        let new_evals =
            run_round(session, grid, workloads, &axes, &budget_index, &next, sinks, &mut outcomes)?;
        evals += new_evals;
        evaluated.extend(next.iter().copied());
        let front_size = front_of(&outcomes).len();
        rounds.push(RoundTrace {
            round: rounds.len(),
            budgets_added: next.len(),
            new_evals,
            front_size,
        });
        if config.max_rounds > 0 && rounds.len() >= config.max_rounds {
            break;
        }
        if config.max_evals > 0 && evals + groups > config.max_evals {
            break;
        }
        next = candidates(&outcomes, &evaluated, grid, &axes, config.refine_radius);
    }

    let mut results = Vec::new();
    let mut errors = Vec::new();
    for (_, outcome) in outcomes {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => errors.push(e),
        }
    }
    let sweep = SweepReport { results, errors, cache: session.engine().cache_stats() };
    let report = SearchReport { sweep, rounds, evals, nominal_points: nominal };
    let session_report = SessionReport {
        sweep: report.sweep.clone(),
        divergence: DivergenceMatrix { backends: Vec::new(), pairs: Vec::new() },
    };
    for sink in sinks.iter_mut() {
        sink.on_run_end(&session_report);
    }
    Ok(report)
}

/// The coarse seed round's budget indices: `k` samples spread evenly
/// over `0..n_bud`, always including the first and last index (or the
/// whole axis when it is no bigger than `k`).
fn seed_indices(n_bud: usize, k: usize) -> Vec<usize> {
    if n_bud <= k {
        return (0..n_bud).collect();
    }
    let mut out: Vec<usize> = (0..k).map(|i| i * (n_bud - 1) / (k - 1)).collect();
    out.dedup();
    out
}

/// Prices one round's subgrid through the session, forwarding newly
/// evaluated cells to `sinks` with nominal indices and merging their
/// outcomes; returns the number of cells newly evaluated.
///
/// Refinement rounds **prepend the nominal anchor budget** (the grid's
/// first) to the subgrid: its cells are memo-cache hits, and solving
/// them in anchor mode republishes exactly the warm-start seeds the
/// exhaustive run publishes, so every candidate solves from the same
/// seed as its exhaustive twin — this is what makes the adaptive front
/// bit-identical to the exhaustive one. Anchor duplicates are neither
/// re-emitted nor re-counted.
#[allow(clippy::too_many_arguments)] // private fan-in below the two public entry points
fn run_round<W: SweepWorkload>(
    session: &Session<'_>,
    grid: &SweepGrid,
    workloads: &[W],
    axes: &Axes,
    budget_index: &HashMap<u64, usize>,
    indices: &[usize],
    sinks: &mut [&mut dyn ReportSink],
    outcomes: &mut BTreeMap<usize, Result<SweepResult, SweepError>>,
) -> Result<usize, LibraError> {
    let prepend_anchor = !indices.contains(&0);
    let mut budgets: Vec<f64> = Vec::with_capacity(indices.len() + 1);
    if prepend_anchor {
        budgets.push(grid.budgets()[0]);
    }
    budgets.extend(indices.iter().map(|&i| grid.budgets()[i]));
    let sub = SweepGrid::new()
        .with_shapes(grid.shapes().iter().cloned())
        .with_budgets(budgets)
        .with_objectives(grid.objectives().iter().copied());
    // Subgrid enumeration index → nominal index (None = anchor
    // duplicate, already evaluated and emitted in an earlier round).
    let skip = usize::from(prepend_anchor);
    let n_sub_bud = indices.len() + skip;
    let mut map: Vec<Option<usize>> = Vec::with_capacity(sub.len(workloads.len()));
    for shape in 0..grid.shapes().len() {
        for wl in 0..axes.n_wl {
            for sb in 0..n_sub_bud {
                for obj in 0..axes.n_obj {
                    map.push(if sb < skip {
                        None
                    } else {
                        Some(axes.nominal_index(shape, wl, indices[sb - skip], obj))
                    });
                }
            }
        }
    }
    let mut forward = RoundForward { map: &map, sinks };
    let sub_len = sub.len(workloads.len());
    let round_report =
        session.run_range_with_sinks(&sub, workloads, &[], 0..sub_len, &mut [&mut forward])?;
    let mut new_evals = 0usize;
    let mut merge = |nominal: usize, outcome: Result<SweepResult, SweepError>| {
        if let std::collections::btree_map::Entry::Vacant(slot) = outcomes.entry(nominal) {
            slot.insert(outcome);
            new_evals += 1;
        }
    };
    for r in round_report.sweep.results {
        let bud = budget_index[&r.point.budget.to_bits()];
        merge(
            axes.nominal_index(
                r.point.shape,
                r.point.workload,
                bud,
                obj_index(grid, r.point.objective),
            ),
            Ok(r),
        );
    }
    for e in round_report.sweep.errors {
        let bud = budget_index[&e.point.budget.to_bits()];
        merge(
            axes.nominal_index(
                e.point.shape,
                e.point.workload,
                bud,
                obj_index(grid, e.point.objective),
            ),
            Err(e),
        );
    }
    Ok(new_evals)
}

fn obj_index(grid: &SweepGrid, obj: crate::opt::Objective) -> usize {
    grid.objectives().iter().position(|&o| o == obj).unwrap_or(0)
}

/// The healthy evaluated cells currently on the global perf-vs-cost
/// front (poisoned cells are treated as dominated).
fn front_of(
    outcomes: &BTreeMap<usize, Result<SweepResult, SweepError>>,
) -> Vec<(usize, &SweepResult)> {
    let healthy: Vec<(usize, &SweepResult)> =
        outcomes.iter().filter_map(|(&i, o)| o.as_ref().ok().map(|r| (i, r))).collect();
    healthy
        .iter()
        .filter(|(_, r)| {
            !healthy.iter().any(|(_, s)| {
                dominates(
                    s.design.weighted_time,
                    s.design.cost,
                    r.design.weighted_time,
                    r.design.cost,
                )
            })
        })
        .copied()
        .collect()
}

fn dominates(t1: f64, c1: f64, t2: f64, c2: f64) -> bool {
    t1 <= t2 && c1 <= c2 && (t1 < t2 || c1 < c2)
}

/// The next round's budget indices: the refine-radius neighborhood of
/// every front member, plus the bisection midpoint of every **live**
/// evaluated-budget interval. An interval `[lo, hi]` (consecutive
/// evaluated indices, gap ≥ 2) is *dead* for a group when some
/// evaluated point strictly dominates the best corner any interior
/// cell could reach under budget monotonicity — optimal time is
/// non-increasing and optimal cost non-decreasing in the budget, so no
/// interior cell can beat `(time(hi), cost(lo))`. An interval with a
/// poisoned endpoint has no such bound and stays live. Dead for every
/// group ⇒ pruned; an empty candidate set is the front-stability
/// termination.
fn candidates(
    outcomes: &BTreeMap<usize, Result<SweepResult, SweepError>>,
    evaluated: &BTreeSet<usize>,
    grid: &SweepGrid,
    axes: &Axes,
    radius: usize,
) -> Vec<usize> {
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    let healthy: Vec<&SweepResult> = outcomes.values().filter_map(|o| o.as_ref().ok()).collect();
    // Refine around the front.
    for (nominal, _) in front_of(outcomes) {
        let at = axes.budget_index_of(nominal);
        let lo = at.saturating_sub(radius);
        let hi = (at + radius).min(axes.n_bud - 1);
        for j in lo..=hi {
            if !evaluated.contains(&j) {
                picked.insert(j);
            }
        }
    }
    // Bisect live intervals.
    let eval_sorted: Vec<usize> = evaluated.iter().copied().collect();
    for pair in eval_sorted.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        if hi - lo < 2 {
            continue;
        }
        let live = (0..grid.shapes().len()).any(|s| {
            (0..axes.n_wl).any(|w| {
                (0..axes.n_obj).any(|o| {
                    let at_lo = outcomes.get(&axes.nominal_index(s, w, lo, o));
                    let at_hi = outcomes.get(&axes.nominal_index(s, w, hi, o));
                    match (at_lo, at_hi) {
                        (Some(Ok(rl)), Some(Ok(rh))) => {
                            let corner_t = rh.design.weighted_time;
                            let corner_c = rl.design.cost;
                            !healthy.iter().any(|e| {
                                dominates(e.design.weighted_time, e.design.cost, corner_t, corner_c)
                            })
                        }
                        // A missing or poisoned endpoint gives no bound:
                        // the interval cannot be proven dominated.
                        _ => true,
                    }
                })
            })
        });
        if live {
            picked.insert(lo + (hi - lo) / 2);
        }
    }
    picked.into_iter().collect()
}

/// The per-round sink adapter: remaps subgrid record indices to nominal
/// ones and drops anchor duplicates, so the caller's sinks observe one
/// continuous stream of first evaluations across all rounds.
struct RoundForward<'a, 'b> {
    map: &'a [Option<usize>],
    sinks: &'a mut [&'b mut dyn ReportSink],
}

impl ReportSink for RoundForward<'_, '_> {
    fn on_record(&mut self, row: &RecordRow) {
        if let Some(nominal) = self.map.get(row.index).copied().flatten() {
            let mut forwarded = row.clone();
            forwarded.index = nominal;
            for sink in self.sinks.iter_mut() {
                sink.on_record(&forwarded);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Collective, CommModel, GroupSpan};
    use crate::cost::CostModel;
    use crate::fault::FaultInjector;
    use crate::network::NetworkShape;
    use crate::opt::Objective;
    use crate::scenario::{records_from_jsonl, JsonLinesSink};
    use crate::sweep::{ExecMode, FnWorkload, SweepEngine};

    fn allreduce_workload(name: &str, gb: f64) -> FnWorkload {
        FnWorkload::new(name, move |shape: &NetworkShape| {
            let comm = CommModel::default();
            Ok(vec![(
                1.0,
                comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)),
            )])
        })
    }

    fn budgets(n: usize) -> Vec<f64> {
        (0..n).map(|i| 100.0 + 40.0 * i as f64).collect()
    }

    fn search_grid(n_budgets: usize) -> SweepGrid {
        SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_shape("RI(8)".parse().unwrap())
            .with_budgets(budgets(n_budgets))
            .with_objectives([Objective::Perf, Objective::PerfPerCost])
    }

    fn run_search(
        warm: bool,
        mode: ExecMode,
        grid: &SweepGrid,
        workloads: &[FnWorkload],
        config: &SearchConfig,
    ) -> (SearchReport, String) {
        let cm = CostModel::default();
        let engine = SweepEngine::new(&cm).with_warm_start(warm);
        let session = Session::from_engine(engine).with_mode(mode);
        let mut out = Vec::new();
        let report = {
            let mut sink = JsonLinesSink::new(&mut out);
            run_grid(&session, grid, workloads, config, &mut [&mut sink]).expect("search runs")
        };
        (report, String::from_utf8(out).unwrap())
    }

    #[test]
    fn seed_indices_spread_and_cover_endpoints() {
        assert_eq!(seed_indices(5, 8), vec![0, 1, 2, 3, 4]);
        assert_eq!(seed_indices(9, 5), vec![0, 2, 4, 6, 8]);
        let s = seed_indices(1000, 8);
        assert_eq!(s.len(), 8);
        assert_eq!((s[0], s[7]), (0, 999));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn config_validation_names_offending_fields() {
        let bad = SearchConfig { seed_budgets: 1, ..SearchConfig::default() };
        assert!(bad.validate().unwrap_err().to_string().contains("seed_budgets"));
        let bad = SearchConfig {
            cosearch: Some(Cosearch { model: "M".into(), tp: vec![], global_batch: 1 }),
            ..SearchConfig::default()
        };
        assert!(bad.validate().unwrap_err().to_string().contains("tp"));
        let bad = SearchConfig {
            cosearch: Some(Cosearch { model: "M".into(), tp: vec![0], global_batch: 1 }),
            ..SearchConfig::default()
        };
        assert!(bad.validate().unwrap_err().to_string().contains(">= 1"));
        let bad = SearchConfig {
            cosearch: Some(Cosearch { model: "M".into(), tp: vec![8], global_batch: 0 }),
            ..SearchConfig::default()
        };
        assert!(bad.validate().unwrap_err().to_string().contains("global_batch"));
    }

    /// The headline contract: on a grid small enough to sweep
    /// exhaustively, the adaptive front equals the exhaustive
    /// [`SweepReport::pareto_front`] exactly (same designs, same order),
    /// and every evaluated cell's design is bit-identical to the
    /// exhaustive run's — warm-started or not.
    #[test]
    fn search_front_matches_exhaustive_exactly() {
        let grid = search_grid(11);
        let wls = [allreduce_workload("a", 1.0), allreduce_workload("b", 4.0)];
        for warm in [true, false] {
            let cm = CostModel::default();
            let engine = SweepEngine::new(&cm).with_warm_start(warm);
            let exhaustive = Session::from_engine(engine).run(&grid, &wls, &[]).sweep;
            let (report, _) =
                run_search(warm, ExecMode::Parallel, &grid, &wls, &SearchConfig::default());
            assert!(report.evals <= grid.len(wls.len()));
            let expected: Vec<_> = exhaustive.pareto_front().into_iter().cloned().collect();
            let got: Vec<_> = report.front().into_iter().cloned().collect();
            assert_eq!(
                got, expected,
                "adaptive front must equal the exhaustive front (warm={warm})"
            );
            // Every evaluated cell is bit-identical to its exhaustive twin.
            for r in &report.sweep.results {
                let twin = exhaustive
                    .results
                    .iter()
                    .find(|e| e.point == r.point && e.workload == r.workload)
                    .expect("evaluated cell exists in the exhaustive run");
                assert_eq!(r, twin);
            }
        }
    }

    /// Search replays bit-identically: parallel ≡ serial, on the report
    /// and on the streamed JSONL bytes.
    #[test]
    fn search_parallel_equals_serial_bitwise() {
        let grid = search_grid(13);
        let wls = [allreduce_workload("a", 2.0)];
        let config = SearchConfig { seed_budgets: 4, ..SearchConfig::default() };
        let (serial, serial_jsonl) = run_search(true, ExecMode::Serial, &grid, &wls, &config);
        let (parallel, parallel_jsonl) = run_search(true, ExecMode::Parallel, &grid, &wls, &config);
        assert_eq!(serial.sweep.results, parallel.sweep.results);
        assert_eq!(serial.rounds, parallel.rounds);
        assert_eq!(serial.evals, parallel.evals);
        assert_eq!(serial_jsonl, parallel_jsonl);
    }

    /// The streamed JSONL is one well-formed run: a single header, one
    /// record per evaluated cell (nominal indices, no anchor
    /// duplicates), a single summary — re-parseable by
    /// [`records_from_jsonl`].
    #[test]
    fn search_streams_one_reparseable_run() {
        let grid = search_grid(11);
        let wls = [allreduce_workload("a", 1.0)];
        let (report, jsonl) =
            run_search(true, ExecMode::Parallel, &grid, &wls, &SearchConfig::default());
        let rows = records_from_jsonl(&jsonl).expect("stream parses");
        assert_eq!(rows.len(), report.evals);
        let mut indices: Vec<usize> = rows.iter().map(|r| r.index).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), rows.len(), "no cell is emitted twice");
        assert!(*indices.last().unwrap() < grid.len(wls.len()));
    }

    /// `max_evals` is a hard deterministic cap: the search stops under
    /// it and still reports a front over what it saw.
    #[test]
    fn max_evals_caps_the_run() {
        let grid = search_grid(64);
        let wls = [allreduce_workload("a", 1.0)];
        let groups = 2 * wls.len() * 2; // shapes × workloads × objectives
        let config =
            SearchConfig { seed_budgets: 4, max_evals: 6 * groups, ..SearchConfig::default() };
        let (report, _) = run_search(true, ExecMode::Parallel, &grid, &wls, &config);
        assert!(report.evals <= config.max_evals, "{} > {}", report.evals, config.max_evals);
        assert!(report.evals < grid.len(wls.len()));
        assert!(!report.front().is_empty());
        assert!(report.coverage() < 1.0);
    }

    /// `max_rounds: 1` is exactly the coarse seed round.
    #[test]
    fn max_rounds_one_is_the_seed_round() {
        let grid = search_grid(32);
        let wls = [allreduce_workload("a", 1.0)];
        let config = SearchConfig { seed_budgets: 5, max_rounds: 1, ..SearchConfig::default() };
        let (report, _) = run_search(true, ExecMode::Parallel, &grid, &wls, &config);
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.rounds[0].budgets_added, 5);
        assert_eq!(report.evals, 5 * 2 * 2);
    }

    /// Satellite: chaos does not steer the search. A `sweep.point.error`
    /// fault plan poisons cells without changing which cells get
    /// refined (poisoned cells are treated as dominated, and intervals
    /// with poisoned endpoints stay live), and the healthy records are
    /// bit-identical to the fault-free run's.
    #[test]
    fn fault_injection_poisons_points_without_steering_refinement() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets(budgets(9))
            .with_objectives([Objective::Perf]);
        let wls = [allreduce_workload("a", 2.0)];
        let config = SearchConfig { seed_budgets: 5, ..SearchConfig::default() };
        let run = |fault: Option<&str>| {
            let cm = CostModel::default();
            let mut session = Session::from_engine(SweepEngine::new(&cm).with_warm_start(false))
                .with_mode(ExecMode::Parallel);
            if let Some(spec) = fault {
                session = session.with_fault(FaultInjector::from_spec(spec).unwrap()).unwrap();
            }
            let mut out = Vec::new();
            let report = {
                let mut sink = JsonLinesSink::new(&mut out);
                run_grid(&session, &grid, &wls, &config, &mut [&mut sink]).expect("search runs")
            };
            (report, String::from_utf8(out).unwrap())
        };
        let (clean, clean_jsonl) = run(None);
        let (chaos, chaos_jsonl) = run(Some("seed=3;sweep.point.error=#2"));
        // Same refinement trajectory: same evaluated cells per round.
        assert_eq!(
            clean.rounds.iter().map(|r| (r.budgets_added, r.new_evals)).collect::<Vec<_>>(),
            chaos.rounds.iter().map(|r| (r.budgets_added, r.new_evals)).collect::<Vec<_>>(),
        );
        assert_eq!(clean.evals, chaos.evals);
        // The fault poisoned the first two cells of each round's subgrid:
        // nominal budget indices 0 and 2 (seed round), then 1 (the first
        // refinement candidate; the re-run anchor's poisoning is merged
        // away since round 0 already owns that cell).
        assert_eq!(chaos.sweep.errors.len(), 3);
        assert!(clean.sweep.errors.is_empty());
        assert_eq!(chaos.sweep.results.len() + 3, clean.sweep.results.len());
        // Healthy JSONL lines are bit-identical to the fault-free run's.
        let healthy: Vec<&str> =
            chaos_jsonl.lines().filter(|l| l.contains("\"error\": null")).collect();
        assert_eq!(healthy.len(), chaos.sweep.results.len());
        for line in &healthy {
            assert!(
                clean_jsonl.lines().any(|c| c == *line),
                "healthy line must appear verbatim in the fault-free stream: {line}"
            );
        }
        // And the poisoned cells are exactly budget indices {0, 1, 2}.
        let err_budgets: Vec<f64> = chaos.sweep.errors.iter().map(|e| e.point.budget).collect();
        let expect: Vec<f64> = (0..3).map(|i| grid.budgets()[i]).collect();
        let mut sorted = err_budgets.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, expect);
    }

    /// `run_scenario` demands a `"search"` block.
    #[test]
    fn run_scenario_requires_search_block() {
        let scenario = Scenario::builder("plain")
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets([100.0])
            .with_objectives([Objective::Perf])
            .with_workload("a")
            .build()
            .unwrap();
        let cm = CostModel::default();
        let session = scenario.session(&cm);
        let wls = [allreduce_workload("a", 1.0)];
        let err = run_scenario(&session, &scenario, &wls, &mut []).unwrap_err();
        assert!(err.to_string().contains("no \"search\" block"), "{err}");
    }

    /// An over-cap nominal grid (larger than the exhaustive engine's
    /// point cap) completes through search with a tiny fraction of the
    /// nominal evals.
    #[test]
    fn over_cap_grid_completes_with_bounded_evals() {
        let grid = SweepGrid::new()
            .with_shape("RI(4)_SW(8)".parse().unwrap())
            .with_budgets((0..6000).map(|i| 100.0 + 0.25 * i as f64))
            .with_objectives([Objective::Perf]);
        let wls = [allreduce_workload("a", 1.0)];
        let config = SearchConfig { seed_budgets: 8, max_evals: 40, ..SearchConfig::default() };
        let (report, _) = run_search(true, ExecMode::Parallel, &grid, &wls, &config);
        assert_eq!(report.nominal_points, 6000);
        assert!(report.evals <= 40);
        assert!(report.coverage() <= 0.01);
        assert!(!report.front().is_empty());
    }
}
