//! Named network topologies from the paper (Table III and Fig. 11).

use crate::network::NetworkShape;

/// Parses a known-good literal shape.
fn parse(s: &str) -> NetworkShape {
    s.parse().expect("preset shapes are valid by construction")
}

/// Table III: `4D-4K = RI(4)_FC(8)_RI(4)_SW(32)` — 4,096 NPUs, the paper's
/// representative configuration.
pub fn topo_4d_4k() -> NetworkShape {
    parse("RI(4)_FC(8)_RI(4)_SW(32)")
}

/// Table III: `3D-4K = RI(16)_FC(8)_SW(32)` — the 4D-4K network with its
/// two Ring dimensions combined.
pub fn topo_3d_4k() -> NetworkShape {
    parse("RI(16)_FC(8)_SW(32)")
}

/// Table III: `3D-512 = SW(16)_SW(8)_SW(4)`.
pub fn topo_3d_512() -> NetworkShape {
    parse("SW(16)_SW(8)_SW(4)")
}

/// Table III: `3D-1K = FC(8)_RI(16)_SW(8)`.
pub fn topo_3d_1k() -> NetworkShape {
    parse("FC(8)_RI(16)_SW(8)")
}

/// Table III: `4D-2K = RI(4)_SW(4)_SW(8)_SW(16)`.
pub fn topo_4d_2k() -> NetworkShape {
    parse("RI(4)_SW(4)_SW(8)_SW(16)")
}

/// Table III: `3D-Torus = RI(4)_RI(4)_RI(4)` (the LIBRA+TACOS study fabric).
pub fn topo_3d_torus() -> NetworkShape {
    parse("RI(4)_RI(4)_RI(4)")
}

/// All Table III topologies as `(name, shape)` pairs.
pub fn table_iii() -> Vec<(&'static str, NetworkShape)> {
    vec![
        ("4D-4K", topo_4d_4k()),
        ("3D-4K", topo_3d_4k()),
        ("3D-512", topo_3d_512()),
        ("3D-1K", topo_3d_1k()),
        ("4D-2K", topo_4d_2k()),
        ("3D-Torus", topo_3d_torus()),
    ]
}

/// Fig. 11: real ML HPC clusters expressible in the shape notation, as
/// `(shape, systems using it)` pairs.
pub fn fig11_real_systems() -> Vec<(NetworkShape, Vec<&'static str>)> {
    vec![
        (parse("RI(4)_RI(2)_RI(2)"), vec!["Google TPUv4"]),
        (parse("RI(4)_RI(2)"), vec!["Google TPUv2", "Google TPUv3"]),
        (parse("SW(3)_SW(2)"), vec!["NVIDIA DGX-2", "NVIDIA DGX-A100"]),
        (parse("FC(4)_SW(2)"), vec!["Intel Habana HLS-1", "NVIDIA HGX-H100"]),
        (parse("RI(4)_SW(2)"), vec!["Meta Zion", "NVIDIA DGX-1"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_npu_counts_match_names() {
        let expect = [
            ("4D-4K", 4096),
            ("3D-4K", 4096),
            ("3D-512", 512),
            ("3D-1K", 1024),
            ("4D-2K", 2048),
            ("3D-Torus", 64),
        ];
        for ((name, shape), (ename, enpus)) in table_iii().iter().zip(expect) {
            assert_eq!(*name, ename);
            assert_eq!(shape.npus(), enpus, "{name}");
        }
    }

    #[test]
    fn three_d_4k_merges_the_ring_dims_of_4d_4k() {
        let d4 = topo_4d_4k();
        let d3 = topo_3d_4k();
        assert_eq!(d4.dims()[0].size * d4.dims()[2].size, d3.dims()[0].size);
        assert_eq!(d4.npus(), d3.npus());
    }

    #[test]
    fn fig11_round_trips() {
        for (shape, _) in fig11_real_systems() {
            let s = shape.to_string();
            let back: NetworkShape = s.parse().unwrap();
            assert_eq!(back, shape);
        }
    }
}
