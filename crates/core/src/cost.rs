//! Network dollar-cost model (paper §IV-D, Table I, Fig. 12).
//!
//! The cost of a network is linear in the per-NPU bandwidth of each
//! dimension: every GB/s of a dimension pays for link capacity, a share of
//! switch capacity (for `SW` dimensions), and NIC capacity (for scale-out
//! `Pod` dimensions). The worked example of Fig. 12 — three NPUs behind an
//! inter-Pod switch at 10 GB/s costing $1,722 — is reproduced in the tests.

use crate::network::{DimScope, NetworkShape, UnitTopology};

/// $/GBps prices for one packaging scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopeCost {
    /// Link cost in $/GBps.
    pub link: f64,
    /// Switch cost in $/GBps (per unit of radix bandwidth); `None` when the
    /// scope never uses switches (inter-Chiplet is always peer-to-peer).
    pub switch: Option<f64>,
    /// NIC cost in $/GBps; `None` when the scope does not use NICs.
    pub nic: Option<f64>,
}

/// A full network cost model: one [`ScopeCost`] per packaging scope.
///
/// The default is Table I of the paper using the lowest value of each range,
/// as the paper's evaluation does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Inter-Chiplet (on-package) pricing.
    pub chiplet: ScopeCost,
    /// Inter-Package pricing.
    pub package: ScopeCost,
    /// Inter-Node pricing.
    pub node: ScopeCost,
    /// Inter-Pod (scale-out) pricing.
    pub pod: ScopeCost,
}

impl Default for CostModel {
    /// Table I, lowest value of each entry.
    fn default() -> Self {
        CostModel {
            chiplet: ScopeCost { link: 2.0, switch: None, nic: None },
            package: ScopeCost { link: 4.0, switch: Some(13.0), nic: None },
            node: ScopeCost { link: 4.0, switch: Some(13.0), nic: None },
            pod: ScopeCost { link: 7.8, switch: Some(18.0), nic: Some(31.6) },
        }
    }
}

impl CostModel {
    /// The pricing row for a scope.
    pub fn scope(&self, scope: DimScope) -> ScopeCost {
        match scope {
            DimScope::Chiplet => self.chiplet,
            DimScope::Package => self.package,
            DimScope::Node => self.node,
            DimScope::Pod => self.pod,
        }
    }

    /// Returns a copy with the inter-Package link cost replaced (used by the
    /// Fig. 18 sensitivity study).
    pub fn with_package_link_cost(mut self, dollars_per_gbps: f64) -> Self {
        self.package.link = dollars_per_gbps;
        self
    }

    /// $ per GB/s of per-NPU bandwidth for **one NPU** on one dimension.
    ///
    /// Composition per Fig. 12:
    /// * every NPU pays `link` for its injection bandwidth;
    /// * `SW` dimensions pay `switch` per NPU (the switch's radix×BW cost
    ///   divided evenly across its `radix = size` NPUs);
    /// * `Pod`-scope dimensions additionally pay `nic` per NPU.
    pub fn per_npu_dollar_per_gbps(&self, topology: UnitTopology, scope: DimScope) -> f64 {
        let row = self.scope(scope);
        let mut c = row.link;
        if topology == UnitTopology::Switch {
            // Inter-chiplet networks are peer-to-peer by assumption; a
            // missing switch price means the topology is priced as links.
            if let Some(sw) = row.switch {
                c += sw;
            }
        }
        if scope == DimScope::Pod {
            if let Some(nic) = row.nic {
                c += nic;
            }
        }
        c
    }

    /// $ per GB/s per dimension for the **whole network** (all NPUs), so
    /// that `network_cost = coefficients · bw`.
    pub fn cost_coefficients(&self, shape: &NetworkShape) -> Vec<f64> {
        let npus = shape.npus() as f64;
        shape
            .dims()
            .iter()
            .map(|d| npus * self.per_npu_dollar_per_gbps(d.topology, d.scope))
            .collect()
    }

    /// Total network dollar cost for a bandwidth configuration `bw`
    /// (GB/s per NPU per dimension).
    ///
    /// # Panics
    /// Panics if `bw.len() != shape.ndims()`.
    pub fn network_cost(&self, shape: &NetworkShape, bw: &[f64]) -> f64 {
        assert_eq!(bw.len(), shape.ndims(), "bandwidth vector must match dimensionality");
        self.cost_coefficients(shape).iter().zip(bw).map(|(c, b)| c * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkShape;

    /// The worked example of Fig. 12: 3 NPUs behind an inter-Pod switch at
    /// 10 GB/s → links $234 + switch $540 + NICs $948 = $1,722.
    #[test]
    fn fig12_cost_example() {
        let model = CostModel::default();
        // A single-dimension switch network of 3 NPUs; scope defaults to Pod
        // (outermost dimension).
        let shape: NetworkShape = "SW(3)".parse().unwrap();
        let cost = model.network_cost(&shape, &[10.0]);
        assert!((cost - 1722.0).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn chiplet_switch_is_priced_as_links() {
        let model = CostModel::default();
        // 4D network: innermost dim is Chiplet scope.
        let shape: NetworkShape = "SW(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let c = model.per_npu_dollar_per_gbps(shape.dims()[0].topology, shape.dims()[0].scope);
        // No switch surcharge at chiplet scope.
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pod_dimension_includes_nic() {
        let model = CostModel::default();
        // Ring at Pod scope: link + NIC, no switch.
        let c = model.per_npu_dollar_per_gbps(UnitTopology::Ring, DimScope::Pod);
        assert!((c - (7.8 + 31.6)).abs() < 1e-12);
        // Switch at Pod scope: link + switch + NIC.
        let c = model.per_npu_dollar_per_gbps(UnitTopology::Switch, DimScope::Pod);
        assert!((c - (7.8 + 18.0 + 31.6)).abs() < 1e-12);
    }

    #[test]
    fn cost_is_linear_in_bandwidth() {
        let model = CostModel::default();
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let c1 = model.network_cost(&shape, &[10.0, 10.0, 10.0, 10.0]);
        let c2 = model.network_cost(&shape, &[20.0, 20.0, 20.0, 20.0]);
        assert!((c2 - 2.0 * c1).abs() < 1e-6);
        let coefs = model.cost_coefficients(&shape);
        let manual: f64 = coefs.iter().map(|c| c * 10.0).sum();
        assert!((manual - c1).abs() < 1e-6);
    }

    #[test]
    fn inner_dimensions_are_cheaper() {
        let model = CostModel::default();
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let coefs = model.cost_coefficients(&shape);
        assert!(coefs[0] < coefs[1], "chiplet cheaper than package");
        assert!(coefs[2] < coefs[3], "node cheaper than pod");
    }

    #[test]
    fn package_link_override_for_sensitivity() {
        let model = CostModel::default().with_package_link_cost(5.0);
        assert_eq!(model.package.link, 5.0);
        assert_eq!(model.node.link, 4.0, "other scopes untouched");
    }
}
