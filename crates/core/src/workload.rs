//! Workload intermediate representation (the output of the paper's
//! "Workload Parser" box in Fig. 3).
//!
//! A [`Workload`] is a list of [`Layer`]s. Each layer carries
//! bandwidth-independent compute delays (seconds) and up to three
//! communication operations: a forward-pass collective, a backward
//! input-gradient (TP) collective, and a backward weight-gradient (DP)
//! collective — the decomposition the paper uses for its training-loop
//! formulas (§IV-C).
//!
//! Generators for the paper's Table II models live in the
//! `libra-workloads` crate; this module only defines the shared IR so the
//! simulator and optimizer can consume workloads without depending on the
//! generators.

use crate::comm::{Collective, GroupSpan};

/// One collective communication operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CommOp {
    /// Collective pattern.
    pub collective: Collective,
    /// Payload bytes per NPU.
    pub bytes: f64,
    /// The NPU group the collective runs over.
    pub span: GroupSpan,
}

impl CommOp {
    /// Creates a communication operation.
    pub fn new(collective: Collective, bytes: f64, span: GroupSpan) -> Self {
        CommOp { collective, bytes, span }
    }
}

/// One model layer with its compute and communication demands.
///
/// Compute fields are in seconds; they are bandwidth-independent constants
/// produced from FLOP counts by a compute model (e.g. 234 TFLOPS for the
/// paper's 75 %-efficient A100).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Layer {
    /// Layer name (diagnostics and workload files).
    pub name: String,
    /// Forward-pass compute time.
    pub fwd_compute: f64,
    /// Forward-pass communication (e.g. Megatron TP activation All-Reduce).
    pub fwd_comm: Option<CommOp>,
    /// Backward input-gradient compute time ("TP compute").
    pub igrad_compute: f64,
    /// Backward input-gradient communication ("TP comm").
    pub tp_comm: Option<CommOp>,
    /// Backward weight-gradient compute time ("DP compute").
    pub wgrad_compute: f64,
    /// Weight-gradient synchronization ("DP comm", e.g. ZeRO-2
    /// Reduce-Scatter + All-Gather).
    pub dp_comm: Option<CommOp>,
}

impl Layer {
    /// A compute-only layer.
    pub fn compute_only(name: impl Into<String>, fwd: f64, igrad: f64, wgrad: f64) -> Self {
        Layer {
            name: name.into(),
            fwd_compute: fwd,
            igrad_compute: igrad,
            wgrad_compute: wgrad,
            ..Default::default()
        }
    }

    /// Total compute seconds across all phases.
    pub fn total_compute(&self) -> f64 {
        self.fwd_compute + self.igrad_compute + self.wgrad_compute
    }

    /// Total communication bytes across all phases.
    pub fn total_comm_bytes(&self) -> f64 {
        [&self.fwd_comm, &self.tp_comm, &self.dp_comm].into_iter().flatten().map(|c| c.bytes).sum()
    }
}

/// The training-loop schedule (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrainingLoop {
    /// Every compute and communication stage runs exclusively (Fig. 5b).
    #[default]
    NoOverlap,
    /// TP communication overlaps DP compute + DP communication during the
    /// backward pass (Fig. 5c): per layer,
    /// `igrad_compute + max(tp_comm, wgrad_compute + dp_comm)`.
    TpDpOverlap,
}

/// A named workload: an ordered list of layers making up one training
/// iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Model name (e.g. "GPT-3").
    pub name: String,
    /// Layers executed per iteration.
    pub layers: Vec<Layer>,
}

impl Workload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Workload { name: name.into(), layers }
    }

    /// Total compute seconds per iteration.
    pub fn total_compute(&self) -> f64 {
        self.layers.iter().map(Layer::total_compute).sum()
    }

    /// Total communication bytes per iteration per NPU (the quantity in
    /// Fig. 1 when summed over collectives' payloads).
    pub fn total_comm_bytes(&self) -> f64 {
        self.layers.iter().map(Layer::total_comm_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> GroupSpan {
        GroupSpan::new(vec![(0, 4)])
    }

    #[test]
    fn layer_totals() {
        let mut l = Layer::compute_only("l0", 1.0, 2.0, 3.0);
        assert_eq!(l.total_compute(), 6.0);
        assert_eq!(l.total_comm_bytes(), 0.0);
        l.tp_comm = Some(CommOp::new(Collective::AllReduce, 100.0, span()));
        l.dp_comm = Some(CommOp::new(Collective::ReduceScatter, 50.0, span()));
        assert_eq!(l.total_comm_bytes(), 150.0);
    }

    #[test]
    fn workload_totals_sum_layers() {
        let l = Layer {
            name: "l".into(),
            fwd_compute: 0.5,
            fwd_comm: Some(CommOp::new(Collective::AllReduce, 10.0, span())),
            ..Default::default()
        };
        let w = Workload::new("toy", vec![l.clone(), l]);
        assert_eq!(w.total_compute(), 1.0);
        assert_eq!(w.total_comm_bytes(), 20.0);
    }
}
