//! Persistent cross-run solve cache: the on-disk half of the sweep
//! engine's memo cache.
//!
//! The in-memory [`SweepEngine`](crate::sweep::SweepEngine) cache dies
//! with the process, so every `libra` invocation and every spawned
//! dispatch shard re-solves from cold. A [`SolveStore`] persists the
//! expensive per-point artifacts — the optimized [`Design`] and its
//! EqualBW baseline — keyed by **(scenario fingerprint, grid index)**,
//! so a re-run of the same scenario (or a resumed partial run, or a
//! sibling shard worker) loads them instead of solving.
//!
//! # File format: `libra-cache-v1`
//!
//! Append-only JSON-lines. The first line is a header object
//! (`{"schema": "libra-cache-v1", "key_hash": "fnv1a64/v1"}`); every
//! other line is one point record:
//!
//! ```text
//! {"fp": "<16 hex digits>", "index": N, "design": {...}, "baseline": {...}}
//! ```
//!
//! Floats are encoded with the same bit-exact round-tripping encoding
//! the JSON-lines run streams use (shortest round-trip decimal, quoted
//! `"NaN"`/`"Infinity"`/`"-Infinity"`), so a design loaded from disk is
//! **bit-identical** to the solve that produced it — the property that
//! keeps warm-from-disk runs byte-identical to cold ones.
//!
//! Concurrency and corruption:
//!
//! * Writers only ever append, one `write` syscall per line, so
//!   concurrent writers (spawned dispatch shards sharing one `--cache`)
//!   interleave whole lines in the common case.
//! * Duplicate keys are **last-write-wins** on load. Two writers racing
//!   on the same key wrote the same deterministic solve anyway.
//! * The reader is corruption-tolerant: it stops at the first bad
//!   record (e.g. a line torn by a crash mid-write) and remembers the
//!   valid prefix length; the next flush truncates the file back to
//!   that prefix before appending, so the cache heals instead of
//!   poisoning every later read.
//!
//! # Keying
//!
//! The fingerprint is a **stable, explicitly versioned** 64-bit FNV-1a
//! hash ([`Fingerprint::KEY_HASH_VERSION`]) over the run's semantic
//! identity: shape display strings, budget bits, objective names,
//! workload names, link parameters, chunk count, and the warm-start
//! policy. `std`'s `DefaultHasher` is deliberately **not** used — its
//! output is not guaranteed stable across Rust releases, and a cache
//! keyed by it would silently go cold (or worse) on a toolchain bump.
//!
//! Warm-start on/off is part of the fingerprint even though the ISSUE's
//! field list stops at chunks: warm and cold solves of the same point
//! differ in their low bits (the solver converges from different
//! starts), so sharing records across the two policies would break the
//! byte-identity contract for resumed runs.
//!
//! Warm-start *seeds* need no separate record kind: an anchor point's
//! record already carries `design.bw`, which is exactly the vector the
//! engine publishes to its seed index — and the engine publishes it on
//! cache **hits** too, so preloading anchor records reproduces the seed
//! state of an uninterrupted run bit for bit.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::LibraError;
use crate::fault::{self, FaultInjector};
use crate::opt::Design;
use crate::scenario::{json_f64, Json, JsonParser};

/// A stable 64-bit key identifying one run configuration (see the
/// module docs for the hashed fields). Displayed as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// The key-hash algorithm/version tag written into cache headers.
    /// Bump the `/vN` suffix whenever the hashed fields or their
    /// serialization change; old files then fail the header check
    /// instead of silently mismatching every lookup.
    pub const KEY_HASH_VERSION: &'static str = "fnv1a64/v1";

    /// Computes the fingerprint of one run configuration.
    ///
    /// `link` is the `(alpha_ps, switch_ps)` pair when link parameters
    /// are attached; plain (non-scenario) runs pass `None` and
    /// `chunks == 0` as the sentinel configuration.
    pub fn compute(
        shapes: &[String],
        budgets: &[f64],
        objectives: &[&str],
        workloads: &[String],
        link: Option<(f64, f64)>,
        chunks: usize,
        warm_start: bool,
    ) -> Self {
        let mut h = Fnv1a::new();
        h.str(Self::KEY_HASH_VERSION);
        h.section("shapes");
        for s in shapes {
            h.str(s);
        }
        h.section("budgets");
        for &b in budgets {
            h.u64(b.to_bits());
        }
        h.section("objectives");
        for o in objectives {
            h.str(o);
        }
        h.section("workloads");
        for w in workloads {
            h.str(w);
        }
        h.section("link");
        match link {
            None => h.u64(0),
            Some((alpha, switch)) => {
                h.u64(1);
                h.u64(alpha.to_bits());
                h.u64(switch.to_bits());
            }
        }
        h.section("chunks");
        h.u64(chunks as u64);
        h.section("warm_start");
        h.u64(u64::from(warm_start));
        Fingerprint(h.finish())
    }

    fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Explicit FNV-1a, byte by byte — small, stable, and dependency-free.
/// Each field is length-prefixed so `["ab"], ["c"]` and `["a"], ["bc"]`
/// hash differently.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn section(&mut self, name: &str) {
        self.str(name);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One persisted grid-point solve: the optimized design plus the
/// EqualBW baseline at the same budget (both bit-exact).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// The optimized design.
    pub design: Design,
    /// The EqualBW baseline at the same budget.
    pub baseline: Design,
}

/// Hit/append counters for one open store, surfaced by the CLI so CI
/// can assert a warm run actually read from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the loaded file.
    pub hits: usize,
    /// Fresh records staged for append since open.
    pub staged: usize,
}

/// A [`SolveStore`] shared between concurrently running engines. The
/// mutex is coarse on purpose: engines touch the store only at run
/// boundaries (preload before the drive, stage + flush after), never on
/// the per-point hot path.
pub type SharedSolveStore = Arc<Mutex<SolveStore>>;

/// The persistent solve cache: a loaded snapshot of one cache file plus
/// a pending append buffer. See the module docs for format and
/// concurrency rules.
///
/// Dropping a store flushes pending records (best-effort); call
/// [`SolveStore::flush`] to observe write errors.
#[derive(Debug)]
pub struct SolveStore {
    path: PathBuf,
    loaded: HashMap<(Fingerprint, usize), StoredPoint>,
    /// Staged records in staging order (the append order on flush).
    pending: Vec<((Fingerprint, usize), StoredPoint)>,
    /// Byte length of the valid prefix when the load stopped at a
    /// corrupt record; the next flush truncates the file back to this
    /// before appending.
    truncate_to: Option<u64>,
    /// Whether the file already starts with a valid header line.
    has_header: bool,
    hits: usize,
    staged_total: usize,
    /// Deterministic fault injection ([`crate::fault`]); `None` unless
    /// `LIBRA_FAULT_PLAN` (or [`SolveStore::with_fault`]) armed a plan.
    fault: Option<FaultInjector>,
    /// Ordinal of the next non-trivial flush — the instance key for the
    /// store's fault sites.
    flushes: u64,
}

impl SolveStore {
    /// Schema tag written into cache-file headers.
    pub const SCHEMA: &'static str = "libra-cache-v1";

    /// Opens (and loads) the cache at `path`, creating an empty store
    /// when the file does not exist yet.
    ///
    /// Loading is corruption-tolerant: records after the first bad line
    /// are ignored and the file is truncated back to the valid prefix on
    /// the next flush. Duplicate keys are last-write-wins.
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] on I/O failures or when the file's
    /// header names a different schema or key-hash version (a cache
    /// from an incompatible writer must not be silently misread).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, LibraError> {
        let path = path.as_ref().to_path_buf();
        let mut store = SolveStore {
            path,
            loaded: HashMap::new(),
            pending: Vec::new(),
            truncate_to: None,
            has_header: false,
            hits: 0,
            staged_total: 0,
            fault: FaultInjector::from_env(),
            flushes: 0,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => {
                return Err(LibraError::BadRequest(format!(
                    "cannot read cache {}: {e}",
                    store.path.display()
                )))
            }
        };
        store.load(&text)?;
        Ok(store)
    }

    /// Opens the cache at `path` wrapped for sharing across engines
    /// (see [`SharedSolveStore`]): a long-lived process — the sweep
    /// server foremost — opens the file once and attaches every
    /// per-job engine to the same in-memory store via
    /// [`crate::sweep::SweepEngine::with_shared_store`], so hits,
    /// staged records, and preloads accumulate across jobs instead of
    /// re-reading the file per run.
    ///
    /// # Errors
    /// Propagates [`SolveStore::open`] failures.
    pub fn open_shared(path: impl AsRef<Path>) -> Result<SharedSolveStore, LibraError> {
        Ok(Arc::new(Mutex::new(Self::open(path)?)))
    }

    /// Arms deterministic fault injection on this store (the in-process
    /// seam; production runs arm it via `LIBRA_FAULT_PLAN`). See
    /// [`crate::fault`] for the store sites: torn appends and failed
    /// flushes.
    #[must_use]
    pub fn with_fault(mut self, injector: FaultInjector) -> Self {
        self.fault = Some(injector);
        self
    }

    /// The path this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently known (loaded + staged).
    pub fn len(&self) -> usize {
        self.loaded.len() + self.pending.len()
    }

    /// True when nothing is loaded or staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/append counters since open.
    pub fn stats(&self) -> StoreStats {
        StoreStats { hits: self.hits, staged: self.staged_total }
    }

    fn load(&mut self, text: &str) -> Result<(), LibraError> {
        let mut offset = 0u64;
        for line in text.split_inclusive('\n') {
            let trimmed = line.trim_end_matches(['\n', '\r']);
            let advance = line.len() as u64;
            if trimmed.trim().is_empty() {
                offset += advance;
                continue;
            }
            let Some(record) = Self::parse_line(trimmed) else {
                // First bad record (often a line torn mid-write):
                // everything before it stays valid, everything from
                // here on is dropped and truncated away on flush.
                self.truncate_to = Some(offset);
                break;
            };
            match record {
                Line::Header { schema, key_hash } => {
                    // The very first header pins compatibility; later
                    // ones (concurrent writers racing on an empty
                    // file) are skipped like any duplicate.
                    if offset == 0
                        && (schema != Self::SCHEMA || key_hash != Fingerprint::KEY_HASH_VERSION)
                    {
                        return Err(LibraError::BadRequest(format!(
                            "cache {} has schema {schema:?} with key hash {key_hash:?} \
                             (this reader wants {:?} / {:?})",
                            self.path.display(),
                            Self::SCHEMA,
                            Fingerprint::KEY_HASH_VERSION,
                        )));
                    }
                    self.has_header = true;
                }
                Line::Point { fp, index, point } => {
                    // Last-write-wins on identical keys.
                    self.loaded.insert((fp, index), point);
                }
            }
            offset += advance;
        }
        Ok(())
    }

    fn parse_line(line: &str) -> Option<Line> {
        let v = JsonParser::parse(line).ok()?;
        if let Some(schema) = v.get("schema").and_then(Json::as_str) {
            let key_hash = v.get("key_hash").and_then(Json::as_str)?;
            return Some(Line::Header {
                schema: schema.to_string(),
                key_hash: key_hash.to_string(),
            });
        }
        let fp = Fingerprint::from_hex(v.get("fp")?.as_str()?)?;
        let index = v.get("index")?.as_f64()?;
        if index < 0.0 || index.fract() != 0.0 {
            return None;
        }
        let design = parse_design(v.get("design")?)?;
        let baseline = parse_design(v.get("baseline")?)?;
        Some(Line::Point { fp, index: index as usize, point: StoredPoint { design, baseline } })
    }

    /// The stored solve for `(fp, index)`, if present (counted as a hit).
    pub fn lookup(&mut self, fp: Fingerprint, index: usize) -> Option<&StoredPoint> {
        let hit = self.loaded.get(&(fp, index));
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Stages `point` for append under `(fp, index)` unless that key is
    /// already loaded or staged (re-running a warm scenario appends
    /// nothing).
    pub fn stage(&mut self, fp: Fingerprint, index: usize, point: StoredPoint) {
        let key = (fp, index);
        if self.loaded.contains_key(&key) || self.pending.iter().any(|(k, _)| *k == key) {
            return;
        }
        self.staged_total += 1;
        self.pending.push((key, point));
    }

    /// Appends every staged record to the file (one `write` syscall per
    /// line), writing the header first when the file is new or empty and
    /// truncating a corrupt tail first when the load detected one.
    /// Staged records move into the loaded set only on success, so a
    /// failed flush can be retried (and is, on drop).
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] on I/O failures.
    pub fn flush(&mut self) -> Result<(), LibraError> {
        if self.pending.is_empty() && self.truncate_to.is_none() {
            return Ok(());
        }
        let flush_index = self.flushes;
        self.flushes += 1;
        if let Some(injector) = &self.fault {
            if injector.fires(fault::STORE_FLUSH_FAIL, flush_index) {
                return Err(LibraError::BadRequest(format!(
                    "injected fault: {} on flush {flush_index} of cache {}",
                    fault::STORE_FLUSH_FAIL,
                    self.path.display()
                )));
            }
        }
        let io = |e: std::io::Error| {
            LibraError::BadRequest(format!("cannot write cache {}: {e}", self.path.display()))
        };
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(&self.path).map_err(io)?;
        if let Some(offset) = self.truncate_to.take() {
            file.set_len(offset).map_err(io)?;
            // The corrupt tail may have eaten the header too.
            self.has_header = self.has_header && offset > 0;
        }
        if !self.has_header && file.metadata().map_err(io)?.len() == 0 {
            let header = format!(
                "{{\"schema\": {:?}, \"key_hash\": {:?}}}\n",
                Self::SCHEMA,
                Fingerprint::KEY_HASH_VERSION
            );
            file.write_all(header.as_bytes()).map_err(io)?;
        }
        self.has_header = true;
        if let Some(injector) = &self.fault {
            if injector.fires(fault::STORE_FLUSH_TORN, flush_index) {
                // Emulate dying mid-append: half of one record lands on
                // disk, the rest of the staged batch never does. The
                // loader heals this on the next open by truncating back
                // to the valid prefix.
                if let Some((key, point)) = self.pending.first() {
                    let line = point_line(*key, point);
                    file.write_all(&line.as_bytes()[..line.len() / 2]).map_err(io)?;
                }
                self.pending.clear();
                return Err(LibraError::BadRequest(format!(
                    "injected fault: {} on flush {flush_index} of cache {}",
                    fault::STORE_FLUSH_TORN,
                    self.path.display()
                )));
            }
        }
        for (key, point) in &self.pending {
            file.write_all(point_line(*key, point).as_bytes()).map_err(io)?;
        }
        for (key, point) in self.pending.drain(..) {
            self.loaded.insert(key, point);
        }
        Ok(())
    }
}

impl Drop for SolveStore {
    fn drop(&mut self) {
        // Best-effort: the cache is an optimization, and callers who
        // need to observe write errors call `flush` explicitly.
        let _ = self.flush();
    }
}

enum Line {
    Header { schema: String, key_hash: String },
    Point { fp: Fingerprint, index: usize, point: StoredPoint },
}

fn design_json(d: &Design) -> String {
    let arr = |v: &[f64]| {
        let items: Vec<String> = v.iter().map(|&x| json_f64(x)).collect();
        format!("[{}]", items.join(", "))
    };
    format!(
        "{{\"bw\": {}, \"times\": {}, \"weighted_time\": {}, \"cost\": {}}}",
        arr(&d.bw),
        arr(&d.times),
        json_f64(d.weighted_time),
        json_f64(d.cost),
    )
}

fn point_line((fp, index): (Fingerprint, usize), point: &StoredPoint) -> String {
    format!(
        "{{\"fp\": \"{fp}\", \"index\": {index}, \"design\": {}, \"baseline\": {}}}\n",
        design_json(&point.design),
        design_json(&point.baseline),
    )
}

fn parse_design(v: &Json) -> Option<Design> {
    let floats = |key: &str| -> Option<Vec<f64>> {
        v.get(key)?.as_arr()?.iter().map(Json::as_f64).collect()
    };
    Some(Design {
        bw: floats("bw")?,
        times: floats("times")?,
        weighted_time: v.get("weighted_time")?.as_f64()?,
        cost: v.get("cost")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("libra-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn fp(tag: u64) -> Fingerprint {
        Fingerprint(tag)
    }

    fn point(x: f64) -> StoredPoint {
        let d = |scale: f64| Design {
            bw: vec![x * scale, 0.1 + x],
            times: vec![1.0 / x],
            weighted_time: 1.0 / x,
            cost: x * 7.0,
        };
        StoredPoint { design: d(1.0), baseline: d(2.0) }
    }

    /// The key hash is hand-rolled FNV-1a with pinned constants — NOT
    /// `DefaultHasher` — so its value is stable across Rust releases.
    /// This pins the exact output: if it ever changes, the version tag
    /// must be bumped.
    #[test]
    fn fingerprint_is_stable_and_versioned() {
        let f = Fingerprint::compute(
            &["RI(4)_SW(8)".into()],
            &[100.0, 300.0],
            &["perf"],
            &["w".into()],
            None,
            0,
            true,
        );
        assert_eq!(
            f,
            Fingerprint::compute(
                &["RI(4)_SW(8)".into()],
                &[100.0, 300.0],
                &["perf"],
                &["w".into()],
                None,
                0,
                true,
            )
        );
        assert_eq!(format!("{f}").len(), 16);
        assert_eq!(Fingerprint::from_hex(&format!("{f}")), Some(f));
        assert_eq!(Fingerprint::KEY_HASH_VERSION, "fnv1a64/v1");
        // Every hashed field is load-bearing.
        let base = |warm| {
            Fingerprint::compute(
                &["RI(4)_SW(8)".into()],
                &[100.0, 300.0],
                &["perf"],
                &["w".into()],
                None,
                0,
                warm,
            )
        };
        assert_ne!(base(true), base(false), "warm-start must be keyed");
        let linked = Fingerprint::compute(
            &["RI(4)_SW(8)".into()],
            &[100.0, 300.0],
            &["perf"],
            &["w".into()],
            Some((20_000.0, 0.0)),
            0,
            true,
        );
        assert_ne!(base(true), linked, "link parameters must be keyed");
        // Field boundaries are length-prefixed: moving a character
        // across a boundary changes the hash.
        let ab_c = Fingerprint::compute(&["ab".into(), "c".into()], &[], &[], &[], None, 0, true);
        let a_bc = Fingerprint::compute(&["a".into(), "bc".into()], &[], &[], &[], None, 0, true);
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn round_trips_bit_identically_and_dedups_stages() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let odd = StoredPoint {
            design: Design {
                bw: vec![0.1 + 0.2, f64::NAN, f64::INFINITY],
                times: vec![-0.0],
                weighted_time: 1.0 / 3.0,
                cost: f64::NEG_INFINITY,
            },
            baseline: point(2.0).baseline,
        };
        {
            let mut s = SolveStore::open(&path).unwrap();
            assert!(s.is_empty());
            s.stage(fp(1), 0, point(1.0));
            s.stage(fp(1), 0, point(9.0)); // duplicate key: ignored
            s.stage(fp(1), 7, odd.clone());
            s.stage(fp(2), 0, point(3.0));
            assert_eq!(s.stats().staged, 3);
            s.flush().unwrap();
            s.stage(fp(1), 0, point(9.0)); // already loaded: ignored
            assert_eq!(s.stats().staged, 3);
        }
        let mut s = SolveStore::open(&path).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.lookup(fp(1), 0).unwrap(), &point(1.0));
        let got = s.lookup(fp(1), 7).unwrap().clone();
        assert_eq!(got.design.bw[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(got.design.bw[1].is_nan());
        assert_eq!(got.design.times[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(got.design.cost, f64::NEG_INFINITY);
        assert!(s.lookup(fp(3), 0).is_none());
        assert_eq!(s.stats().hits, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn last_write_wins_on_duplicate_keys() {
        let path = tmp("lww.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = SolveStore::open(&path).unwrap();
            s.stage(fp(1), 0, point(1.0));
            s.flush().unwrap();
        }
        // A second writer appends the same key with a different value
        // (cannot happen with deterministic solves, but the reader's
        // contract is last-write-wins regardless).
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(point_line((fp(1), 0), &point(5.0)).as_bytes()).unwrap();
        drop(f);
        let mut s = SolveStore::open(&path).unwrap();
        assert_eq!(s.lookup(fp(1), 0).unwrap(), &point(5.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncates_at_the_first_bad_record_and_heals_on_flush() {
        let path = tmp("corrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = SolveStore::open(&path).unwrap();
            s.stage(fp(1), 0, point(1.0));
            s.stage(fp(1), 1, point(2.0));
            s.flush().unwrap();
        }
        // Tear the file mid-record, as a crashed writer would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let mut s = SolveStore::open(&path).unwrap();
        assert_eq!(s.len(), 1, "valid prefix survives, torn tail dropped");
        assert_eq!(s.lookup(fp(1), 0).unwrap(), &point(1.0));
        // Re-staging the lost record and flushing heals the file.
        s.stage(fp(1), 1, point(2.0));
        s.flush().unwrap();
        drop(s);
        let mut healed = SolveStore::open(&path).unwrap();
        assert_eq!(healed.len(), 2);
        assert_eq!(healed.lookup(fp(1), 1).unwrap(), &point(2.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_a_foreign_schema_or_key_hash_version() {
        let path = tmp("foreign.jsonl");
        std::fs::write(&path, "{\"schema\": \"libra-cache-v0\", \"key_hash\": \"fnv1a64/v1\"}\n")
            .unwrap();
        let err = SolveStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("libra-cache-v0"), "{err}");
        std::fs::write(&path, "{\"schema\": \"libra-cache-v1\", \"key_hash\": \"siphash/v1\"}\n")
            .unwrap();
        let err = SolveStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("siphash"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    /// Two independent handles appending the same cache file
    /// concurrently — the sweep server's shared-store scenario run as
    /// its worst case, with *no* shared in-memory dedup at all. Every
    /// flush appends whole lines in O_APPEND mode, so the interleaved
    /// file must reload cleanly: no torn reads, every private key
    /// present with its exact value, contended keys resolving
    /// last-write-wins to one of the writers' values — and
    /// deterministically, since the winner is a property of the file.
    #[test]
    fn concurrent_writers_merge_last_write_wins_without_torn_reads() {
        const KEYS: usize = 200;
        const CONTENDED: u64 = 7;
        let path = tmp("concurrent.jsonl");
        let _ = std::fs::remove_file(&path);
        let value = |tag: u64, index: usize| (1 + index) as f64 * tag as f64;
        let writer = |tag: u64| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut store = SolveStore::open(&path).unwrap();
                for index in 0..KEYS {
                    store.stage(fp(CONTENDED), index, point(value(tag, index)));
                    store.stage(fp(tag), index, point(value(tag, index)));
                    // Flush every iteration so the two writers' appends
                    // interleave line by line instead of landing as two
                    // big blocks.
                    store.flush().unwrap();
                }
            })
        };
        let a = writer(1);
        let b = writer(2);
        a.join().unwrap();
        b.join().unwrap();

        let mut merged = SolveStore::open(&path).unwrap();
        // Each writer staged against its own empty in-memory view, so
        // the file holds duplicates; the *reload* dedups to exactly the
        // three fingerprints' key sets.
        assert_eq!(merged.len(), 3 * KEYS, "no torn or dropped lines");
        // Deterministic winner: whichever writer's line landed last in
        // the file wins on every reload.
        let mut again = SolveStore::open(&path).unwrap();
        for index in 0..KEYS {
            assert_eq!(merged.lookup(fp(1), index).unwrap(), &point(value(1, index)));
            assert_eq!(merged.lookup(fp(2), index).unwrap(), &point(value(2, index)));
            let shared = merged.lookup(fp(CONTENDED), index).unwrap().clone();
            assert!(
                shared == point(value(1, index)) || shared == point(value(2, index)),
                "contended key {index} holds neither writer's value: {shared:?}"
            );
            assert_eq!(again.lookup(fp(CONTENDED), index), Some(&shared));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drop_flushes_pending_records() {
        let path = tmp("dropflush.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = SolveStore::open(&path).unwrap();
            s.stage(fp(4), 2, point(4.0));
            // No explicit flush: drop persists.
        }
        let mut s = SolveStore::open(&path).unwrap();
        assert_eq!(s.lookup(fp(4), 2).unwrap(), &point(4.0));
        std::fs::remove_file(&path).unwrap();
    }

    /// An injected `store.flush.torn` leaves half a record on disk —
    /// the wire image of dying mid-append. The next open must truncate
    /// back to the valid prefix and the following flush heals the file.
    #[test]
    fn torn_flush_heals_on_reopen() {
        use crate::fault::FaultInjector;
        let path = tmp("torn-flush.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = SolveStore::open(&path)
                .unwrap()
                .with_fault(FaultInjector::from_spec("store.flush.torn=#1").unwrap());
            s.stage(fp(1), 0, point(1.0));
            s.stage(fp(1), 1, point(2.0));
            let err = s.flush().unwrap_err();
            assert!(err.to_string().contains("store.flush.torn"), "got {err}");
        }
        // The torn record must not load; the healed store works again.
        let mut s = SolveStore::open(&path).unwrap();
        assert!(s.is_empty(), "half a record loaded as data");
        s.stage(fp(3), 0, point(3.0));
        s.flush().unwrap();
        let mut s = SolveStore::open(&path).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(fp(3), 0).unwrap(), &point(3.0));
        std::fs::remove_file(&path).unwrap();
    }

    /// An injected `store.flush.fail` fails before writing anything:
    /// the staged batch survives in memory and the next flush lands it
    /// whole — a transient write failure never loses solves.
    #[test]
    fn failed_flush_keeps_staged_points_for_the_next_flush() {
        use crate::fault::FaultInjector;
        let path = tmp("failed-flush.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = SolveStore::open(&path)
                .unwrap()
                .with_fault(FaultInjector::from_spec("store.flush.fail=#1").unwrap());
            s.stage(fp(1), 0, point(1.0));
            let err = s.flush().unwrap_err();
            assert!(err.to_string().contains("store.flush.fail"), "got {err}");
            // Flush ordinal 1 is past the plan's `#1`: the retry lands.
            s.flush().unwrap();
        }
        let mut s = SolveStore::open(&path).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(fp(1), 0).unwrap(), &point(1.0));
        std::fs::remove_file(&path).unwrap();
    }
}
