//! Error type shared across the LIBRA framework.

use std::error::Error;
use std::fmt;

use libra_solver::SolverError;

/// Errors produced by the LIBRA framework.
#[derive(Debug, Clone, PartialEq)]
pub enum LibraError {
    /// A network-shape string could not be parsed.
    ParseNetwork {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A workload file could not be parsed.
    ParseWorkload {
        /// 1-based line number, 0 for file-level errors.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A parallel group (e.g. TP-6 on a `RI(4)` dimension) cannot be mapped
    /// onto the network dimensions.
    GroupMapping {
        /// Requested group size.
        group: u64,
        /// The network's NPU layout.
        dims: Vec<u64>,
        /// Reason the decomposition failed.
        reason: String,
    },
    /// The optimizer was configured inconsistently (e.g. a constraint
    /// references a dimension the network does not have).
    BadRequest(String),
    /// A bounded wait ran out of time (e.g. a service client's deadline
    /// expired while a job was still queued or running). Typed so
    /// callers can tell "the server is slow" from "the request was
    /// rejected" without string matching.
    Timeout {
        /// What was being waited on.
        what: String,
        /// The deadline that expired, in milliseconds.
        after_ms: u64,
    },
    /// The underlying convex solver failed.
    Solver(SolverError),
}

impl fmt::Display for LibraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraError::ParseNetwork { input, reason } => {
                write!(f, "invalid network shape {input:?}: {reason}")
            }
            LibraError::ParseWorkload { line, reason } => {
                write!(f, "invalid workload file (line {line}): {reason}")
            }
            LibraError::GroupMapping { group, dims, reason } => {
                write!(f, "cannot map a {group}-NPU group onto dims {dims:?}: {reason}")
            }
            LibraError::BadRequest(what) => write!(f, "invalid design request: {what}"),
            LibraError::Timeout { what, after_ms } => {
                write!(f, "timed out after {after_ms} ms waiting for {what}")
            }
            LibraError::Solver(e) => write!(f, "solver: {e}"),
        }
    }
}

impl Error for LibraError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LibraError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for LibraError {
    fn from(e: SolverError) -> Self {
        LibraError::Solver(e)
    }
}
