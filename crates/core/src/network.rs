//! Multi-dimensional network representation.
//!
//! LIBRA describes fabrics by stacking *unit topologies* — Ring (`RI`),
//! FullyConnected (`FC`), Switch (`SW`) — one per dimension, written
//! `RI(4)_FC(8)_RI(4)_SW(32)` (paper §IV-A, Fig. 7/11). Dimensions are
//! ordered from the innermost (cheapest, closest to the NPU) to the
//! outermost (scale-out).

use std::fmt;
use std::str::FromStr;

use crate::error::LibraError;

/// The unit topology of one network dimension (paper Fig. 7a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitTopology {
    /// Bidirectional ring; runs the Ring collective algorithm.
    Ring,
    /// All-to-all point-to-point links; runs the Direct algorithm.
    FullyConnected,
    /// A crossbar switch; runs recursive Halving-Doubling.
    Switch,
}

impl UnitTopology {
    /// The two-letter code used in the shape notation.
    pub fn code(self) -> &'static str {
        match self {
            UnitTopology::Ring => "RI",
            UnitTopology::FullyConnected => "FC",
            UnitTopology::Switch => "SW",
        }
    }
}

impl fmt::Display for UnitTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// The physical packaging level a dimension lives at (paper Fig. 2b).
///
/// Determines which cost-model row applies: inter-Chiplet links need no
/// switches, and only inter-Pod dimensions use NICs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DimScope {
    /// On-package chiplet-to-chiplet (MCM) connectivity.
    Chiplet,
    /// Package-to-package links on a board.
    Package,
    /// Board-to-board links within a server node (scale-up).
    Node,
    /// NIC-based scale-out fabric between server pods.
    Pod,
}

impl fmt::Display for DimScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DimScope::Chiplet => "Chiplet",
            DimScope::Package => "Package",
            DimScope::Node => "Node",
            DimScope::Pod => "Pod",
        };
        f.write_str(s)
    }
}

/// One network dimension: a unit topology of a given size at a packaging
/// scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimSpec {
    /// The unit topology of this dimension.
    pub topology: UnitTopology,
    /// Number of NPUs connected along this dimension (≥ 2).
    pub size: u64,
    /// Physical packaging level (drives the cost model).
    pub scope: DimScope,
}

/// A multi-dimensional network shape: an ordered stack of [`DimSpec`]s.
///
/// # Example
/// ```
/// use libra_core::network::NetworkShape;
/// let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse()?;
/// assert_eq!(shape.npus(), 4096);
/// assert_eq!(shape.to_string(), "RI(4)_FC(8)_RI(4)_SW(32)");
/// # Ok::<(), libra_core::LibraError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetworkShape {
    dims: Vec<DimSpec>,
}

impl NetworkShape {
    /// Builds a shape from `(topology, size)` pairs, assigning default
    /// physical scopes per the paper's Fig. 2(b): the outermost dimension is
    /// `Pod`, the one before it `Node`, then `Package`, then `Chiplet`.
    ///
    /// # Errors
    /// Rejects empty shapes, more than four dimensions (no default scope
    /// assignment exists), and dimension sizes below 2.
    pub fn new(dims: &[(UnitTopology, u64)]) -> Result<Self, LibraError> {
        let n = dims.len();
        if n == 0 {
            return Err(LibraError::ParseNetwork {
                input: String::new(),
                reason: "network needs at least one dimension".into(),
            });
        }
        if n > 4 {
            return Err(LibraError::ParseNetwork {
                input: format!("{n} dims"),
                reason: "default scope assignment covers at most 4 dimensions; use with_scopes"
                    .into(),
            });
        }
        let ladder = [DimScope::Pod, DimScope::Node, DimScope::Package, DimScope::Chiplet];
        let specs = dims
            .iter()
            .enumerate()
            .map(|(i, &(topology, size))| DimSpec { topology, size, scope: ladder[n - 1 - i] })
            .collect();
        Self::with_dims(specs)
    }

    /// Builds a shape from fully specified dimensions.
    ///
    /// # Errors
    /// Rejects empty shapes and dimension sizes below 2.
    pub fn with_dims(dims: Vec<DimSpec>) -> Result<Self, LibraError> {
        if dims.is_empty() {
            return Err(LibraError::ParseNetwork {
                input: String::new(),
                reason: "network needs at least one dimension".into(),
            });
        }
        for (i, d) in dims.iter().enumerate() {
            if d.size < 2 {
                return Err(LibraError::ParseNetwork {
                    input: format!("dim {i}"),
                    reason: format!("dimension size must be at least 2, got {}", d.size),
                });
            }
        }
        Ok(NetworkShape { dims })
    }

    /// The dimensions, innermost first.
    pub fn dims(&self) -> &[DimSpec] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total NPU count (product of all dimension sizes).
    pub fn npus(&self) -> u64 {
        self.dims.iter().map(|d| d.size).product()
    }

    /// Dimension sizes, innermost first.
    pub fn sizes(&self) -> Vec<u64> {
        self.dims.iter().map(|d| d.size).collect()
    }
}

impl fmt::Display for NetworkShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                f.write_str("_")?;
            }
            write!(f, "{}({})", d.topology, d.size)?;
        }
        Ok(())
    }
}

impl FromStr for NetworkShape {
    type Err = LibraError;

    /// Parses the `RI(4)_FC(8)_SW(32)` notation (case-insensitive codes).
    fn from_str(s: &str) -> Result<Self, LibraError> {
        let err = |reason: &str| LibraError::ParseNetwork {
            input: s.to_string(),
            reason: reason.to_string(),
        };
        let mut dims = Vec::new();
        for part in s.split('_') {
            let part = part.trim();
            if part.is_empty() {
                return Err(err("empty dimension segment"));
            }
            let open = part.find('(').ok_or_else(|| err("missing '(' in segment"))?;
            if !part.ends_with(')') {
                return Err(err("missing ')' in segment"));
            }
            let code = part[..open].to_ascii_uppercase();
            let topology = match code.as_str() {
                "RI" => UnitTopology::Ring,
                "FC" => UnitTopology::FullyConnected,
                "SW" => UnitTopology::Switch,
                other => {
                    return Err(err(&format!(
                        "unknown topology code {other:?} (expected RI, FC, or SW)"
                    )))
                }
            };
            let size: u64 = part[open + 1..part.len() - 1]
                .trim()
                .parse()
                .map_err(|_| err("dimension size is not a positive integer"))?;
            dims.push((topology, size));
        }
        NetworkShape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_round_trip() {
        for s in ["RI(4)_FC(8)_RI(4)_SW(32)", "SW(16)_SW(8)_SW(4)", "RI(4)_RI(4)_RI(4)", "FC(8)"] {
            let shape: NetworkShape = s.parse().unwrap();
            assert_eq!(shape.to_string(), s);
        }
    }

    #[test]
    fn npu_count_is_product() {
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        assert_eq!(shape.npus(), 4096);
        assert_eq!(shape.ndims(), 4);
    }

    #[test]
    fn default_scopes_follow_fig2b() {
        let d2: NetworkShape = "RI(4)_SW(2)".parse().unwrap();
        assert_eq!(d2.dims()[0].scope, DimScope::Node);
        assert_eq!(d2.dims()[1].scope, DimScope::Pod);

        let d3: NetworkShape = "FC(8)_RI(16)_SW(8)".parse().unwrap();
        assert_eq!(d3.dims()[0].scope, DimScope::Package);
        assert_eq!(d3.dims()[1].scope, DimScope::Node);
        assert_eq!(d3.dims()[2].scope, DimScope::Pod);

        let d4: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        assert_eq!(d4.dims()[0].scope, DimScope::Chiplet);
        assert_eq!(d4.dims()[3].scope, DimScope::Pod);
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        let shape: NetworkShape = "ri(4)_sw( 8 )".parse().unwrap();
        assert_eq!(shape.to_string(), "RI(4)_SW(8)");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "RI", "RI(", "RI(4", "XX(4)", "RI(0)", "RI(1)", "RI(-3)", "RI(4)__SW(2)"] {
            assert!(bad.parse::<NetworkShape>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn five_dims_need_explicit_scopes() {
        assert!("RI(2)_RI(2)_RI(2)_RI(2)_RI(2)".parse::<NetworkShape>().is_err());
        let dims =
            vec![DimSpec { topology: UnitTopology::Ring, size: 2, scope: DimScope::Chiplet }; 5];
        assert!(NetworkShape::with_dims(dims).is_ok());
    }
}
