//! Deterministic fault injection for chaos-testing the sweep stack.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (usually the
//! `LIBRA_FAULT_PLAN` environment variable) and names **injection
//! sites** — fixed choke points threaded through the engine, the
//! persistent store, the sweep server, and the shard dispatcher — each
//! with a *trigger* deciding when the site fires. Every decision is a
//! pure function of the plan's seed, the site name, and a caller-chosen
//! instance index (a grid index, a flush ordinal, a job number, a spawn
//! attempt): no wall clock, no OS randomness, so a chaotic run is
//! exactly reproducible and its assertions can be byte-precise.
//!
//! The spec grammar, by example:
//!
//! ```text
//! seed=42;sweep.point.error=0.25;sweep.point.slow=#1,ms=500;dispatch.shard.crash=#2
//! ```
//!
//! Clauses are `;`-separated. `seed=N` (optional, default 0) seeds the
//! decision hash. Every other clause is `SITE=TRIGGER[,ms=N]` where
//! `TRIGGER` is either a probability in `[0, 1]` (the site fires for
//! instance `i` when `hash(seed, site, i)` lands under the threshold)
//! or `#K` (the site fires for instances `0..K` — "the first K
//! attempts"), and `ms=N` parameterizes duration-carrying sites such as
//! `sweep.point.slow`.
//!
//! Sites are **disabled by default and zero-cost when absent**: every
//! seam holds an `Option<FaultInjector>` that is `None` unless the env
//! var (or an explicit spec) turned chaos on, so release hot paths pay
//! one branch at most.

use crate::error::LibraError;

/// Environment variable holding the fault-plan spec.
pub const ENV_VAR: &str = "LIBRA_FAULT_PLAN";

/// Environment variable carrying the spawn-attempt ordinal into shard
/// worker children (set by `libra dispatch --spawn --retries`), so the
/// `dispatch.shard.crash` site can fail early attempts and let retries
/// through deterministically.
pub const ATTEMPT_ENV_VAR: &str = "LIBRA_FAULT_ATTEMPT";

/// The sweep engine returns an injected per-point solver error
/// (instance = global grid index).
pub const SWEEP_POINT_ERROR: &str = "sweep.point.error";
/// The sweep engine panics mid-eval (instance = global grid index) —
/// exercises the per-point `catch_unwind` isolation.
pub const SWEEP_POINT_PANIC: &str = "sweep.point.panic";
/// The sweep engine sleeps `ms` before solving (instance = global grid
/// index) — a hung solve for the server's job-deadline watchdog.
pub const SWEEP_POINT_SLOW: &str = "sweep.point.slow";
/// The store writes half of one record then dies (instance = flush
/// ordinal) — a torn append the loader must heal on reopen.
pub const STORE_FLUSH_TORN: &str = "store.flush.torn";
/// The store's flush fails outright before writing (instance = flush
/// ordinal).
pub const STORE_FLUSH_FAIL: &str = "store.flush.fail";
/// The server severs the records response mid-stream (instance = job
/// ordinal, 0-based).
pub const SERVER_RESPONSE_DROP: &str = "server.response.drop";
/// A sweep worker panics instead of running the job (instance = job
/// ordinal, 0-based) — must fail only that job.
pub const SERVER_WORKER_PANIC: &str = "server.worker.panic";
/// A spawned shard worker exits abnormally (instance = spawn attempt) —
/// exercises `dispatch --spawn --retries`.
pub const DISPATCH_SHARD_CRASH: &str = "dispatch.shard.crash";

/// Every known injection site, for spec validation (a typo in a chaos
/// spec must fail loudly, not silently disable the fault).
pub const ALL_SITES: &[&str] = &[
    SWEEP_POINT_ERROR,
    SWEEP_POINT_PANIC,
    SWEEP_POINT_SLOW,
    STORE_FLUSH_TORN,
    STORE_FLUSH_FAIL,
    SERVER_RESPONSE_DROP,
    SERVER_WORKER_PANIC,
    DISPATCH_SHARD_CRASH,
];

// The store's pinned FNV-1a constants (see `store::Fnv1a`): the same
// stable, Rust-release-independent hash powers fault decisions, so a
// plan's firing set never shifts under a toolchain upgrade.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable decision hash over (seed, site, instance index):
/// length-prefixed FNV-1a with pinned constants.
fn decision_hash(seed: u64, site: &str, index: u64) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&seed.to_le_bytes());
    eat(&(site.len() as u64).to_le_bytes());
    eat(site.as_bytes());
    eat(&index.to_le_bytes());
    h
}

/// When a site fires for a given instance index.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fires when the decision hash lands under `p · 2⁶⁴`.
    Probability(f64),
    /// Fires for instance indices `0..k` — "the first K attempts".
    FirstN(u64),
}

#[derive(Debug, Clone, PartialEq)]
struct Site {
    name: String,
    trigger: Trigger,
    /// Duration parameter (`ms=N`) for sites that sleep; 0 when unset.
    millis: u64,
}

/// A parsed chaos plan: the decision seed plus the armed sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    sites: Vec<Site>,
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    /// [`LibraError::BadRequest`] on malformed clauses, unknown site
    /// names, out-of-range probabilities, or duplicate clauses.
    pub fn parse(spec: &str) -> Result<FaultPlan, LibraError> {
        let bad = |what: String| LibraError::BadRequest(format!("bad fault plan: {what}"));
        let mut seed = 0u64;
        let mut seen_seed = false;
        let mut sites: Vec<Site> = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| bad(format!("clause {clause:?} is not KEY=VALUE")))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                if seen_seed {
                    return Err(bad("duplicate seed clause".to_string()));
                }
                seen_seed = true;
                seed = value
                    .parse::<u64>()
                    .map_err(|_| bad(format!("seed wants a u64 (got {value:?})")))?;
                continue;
            }
            if !ALL_SITES.contains(&key) {
                return Err(bad(format!(
                    "unknown site {key:?}; known sites: {}",
                    ALL_SITES.join(", ")
                )));
            }
            if sites.iter().any(|s| s.name == key) {
                return Err(bad(format!("duplicate site {key:?}")));
            }
            let mut parts = value.split(',');
            let trigger_text = parts.next().unwrap_or_default().trim();
            let trigger = if let Some(k) = trigger_text.strip_prefix('#') {
                Trigger::FirstN(
                    k.parse::<u64>()
                        .map_err(|_| bad(format!("{key}: #K wants a count (got {k:?})")))?,
                )
            } else {
                let p: f64 = trigger_text.parse().map_err(|_| {
                    bad(format!("{key}: trigger wants a probability or #K (got {trigger_text:?})"))
                })?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(format!("{key}: probability {p} is outside [0, 1]")));
                }
                Trigger::Probability(p)
            };
            let mut millis = 0u64;
            for extra in parts {
                let extra = extra.trim();
                let Some(ms) = extra.strip_prefix("ms=") else {
                    return Err(bad(format!("{key}: unknown parameter {extra:?} (want ms=N)")));
                };
                millis = ms
                    .parse::<u64>()
                    .map_err(|_| bad(format!("{key}: ms wants a count (got {ms:?})")))?;
            }
            sites.push(Site { name: key.to_string(), trigger, millis });
        }
        Ok(FaultPlan { seed, sites })
    }
}

/// A live injector over a parsed plan — the object the seams hold.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector over an explicit spec (the test seam — no
    /// environment involved).
    ///
    /// # Errors
    /// Propagates [`FaultPlan::parse`] failures.
    pub fn from_spec(spec: &str) -> Result<FaultInjector, LibraError> {
        Ok(FaultInjector { plan: FaultPlan::parse(spec)? })
    }

    /// The injector named by `LIBRA_FAULT_PLAN`, or `None` when the
    /// variable is unset or empty (the release default).
    ///
    /// # Panics
    /// Panics on a malformed spec: a chaos run whose plan silently
    /// failed to arm would pass its assertions vacuously.
    pub fn from_env() -> Option<FaultInjector> {
        let spec = std::env::var(ENV_VAR).ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::from_spec(&spec) {
            Ok(injector) => Some(injector),
            Err(e) => panic!("{ENV_VAR}: {e}"),
        }
    }

    /// The plan's decision seed.
    pub fn seed(&self) -> u64 {
        self.plan.seed
    }

    /// Whether `site` fires for instance `index` — fully deterministic
    /// in (seed, site, index), `false` for sites the plan never armed.
    pub fn fires(&self, site: &str, index: u64) -> bool {
        let Some(s) = self.plan.sites.iter().find(|s| s.name == site) else {
            return false;
        };
        match s.trigger {
            Trigger::FirstN(k) => index < k,
            Trigger::Probability(p) => {
                if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    // Threshold compare in u64 space; the f64→u64 cast
                    // saturates, which is exactly right at p→1.
                    decision_hash(self.plan.seed, site, index) < (p * (u64::MAX as f64)) as u64
                }
            }
        }
    }

    /// The `ms=N` parameter of `site` (0 when unset or the site is not
    /// armed).
    pub fn millis(&self, site: &str) -> u64 {
        self.plan.sites.iter().find(|s| s.name == site).map_or(0, |s| s.millis)
    }
}

/// The spawn-attempt ordinal a shard worker child was launched with
/// (`LIBRA_FAULT_ATTEMPT`), 0 when unset or unparseable.
pub fn attempt_from_env() -> u64 {
    std::env::var(ATTEMPT_ENV_VAR).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(0)
}

/// Deterministic exponential backoff with seeded jitter for retry
/// loops: `base·2^(attempt−1)` plus a hash-derived jitter in
/// `[0, base)`, capped at `cap` — no wall clock, no OS randomness, so a
/// retrying dispatch's timing schedule is a pure function of its seed.
pub fn backoff_delay_ms(seed: u64, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX));
    let jitter = decision_hash(seed, "retry.backoff", u64::from(attempt)) % base;
    exp.saturating_add(jitter).min(cap_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42; sweep.point.error=0.25 ;sweep.point.slow=#1,ms=500;dispatch.shard.crash=#2",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.sites.len(), 3);
        assert_eq!(plan.sites[0].trigger, Trigger::Probability(0.25));
        assert_eq!(
            plan.sites[1],
            Site { name: SWEEP_POINT_SLOW.to_string(), trigger: Trigger::FirstN(1), millis: 500 }
        );
        assert_eq!(plan.sites[2].trigger, Trigger::FirstN(2));
        // Empty specs parse to an empty plan (no sites armed).
        assert_eq!(FaultPlan::parse("").unwrap().sites.len(), 0);
    }

    #[test]
    fn rejects_malformed_specs() {
        for spec in [
            "seed=nope",
            "seed=1;seed=2",
            "no.such.site=0.5",
            "sweep.point.error",
            "sweep.point.error=1.5",
            "sweep.point.error=-0.1",
            "sweep.point.error=#x",
            "sweep.point.error=0.5;sweep.point.error=0.5",
            "sweep.point.slow=#1,sec=5",
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "spec {spec:?} should be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::from_spec("seed=1;sweep.point.error=0.5").unwrap();
        let b = FaultInjector::from_spec("seed=1;sweep.point.error=0.5").unwrap();
        let c = FaultInjector::from_spec("seed=2;sweep.point.error=0.5").unwrap();
        let fires = |inj: &FaultInjector| -> Vec<bool> {
            (0..256).map(|i| inj.fires(SWEEP_POINT_ERROR, i)).collect()
        };
        assert_eq!(fires(&a), fires(&b), "same seed, same firing set");
        assert_ne!(fires(&a), fires(&c), "different seed, different firing set");
        let hit = fires(&a).iter().filter(|&&f| f).count();
        // ~50% at p=0.5; generous bounds keep this hash-stable, not flaky.
        assert!((64..=192).contains(&hit), "p=0.5 fired {hit}/256 times");
    }

    #[test]
    fn first_n_trigger_counts_instances() {
        let inj = FaultInjector::from_spec("dispatch.shard.crash=#2").unwrap();
        assert!(inj.fires(DISPATCH_SHARD_CRASH, 0));
        assert!(inj.fires(DISPATCH_SHARD_CRASH, 1));
        assert!(!inj.fires(DISPATCH_SHARD_CRASH, 2));
        // Unarmed sites never fire; probability edges are exact.
        assert!(!inj.fires(SWEEP_POINT_ERROR, 0));
        let never = FaultInjector::from_spec("sweep.point.error=0").unwrap();
        let always = FaultInjector::from_spec("sweep.point.error=1").unwrap();
        assert!((0..64).all(|i| !never.fires(SWEEP_POINT_ERROR, i)));
        assert!((0..64).all(|i| always.fires(SWEEP_POINT_ERROR, i)));
    }

    #[test]
    fn millis_parameter_round_trips() {
        let inj = FaultInjector::from_spec("sweep.point.slow=1,ms=250").unwrap();
        assert_eq!(inj.millis(SWEEP_POINT_SLOW), 250);
        assert_eq!(inj.millis(SWEEP_POINT_ERROR), 0);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let d1 = backoff_delay_ms(7, 1, 10, 2_000);
        assert_eq!(d1, backoff_delay_ms(7, 1, 10, 2_000));
        assert!((10..20).contains(&d1), "attempt 1: base + jitter<base, got {d1}");
        let d2 = backoff_delay_ms(7, 2, 10, 2_000);
        assert!((20..30).contains(&d2), "attempt 2 doubles, got {d2}");
        // The cap holds even at absurd attempt counts (no overflow).
        assert_eq!(backoff_delay_ms(7, 200, 10, 2_000), 2_000);
    }
}
