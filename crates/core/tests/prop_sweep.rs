//! Property tests for the sweep grid and the shape notation it enumerates:
//! parse/display round-trips, duplicate-free enumeration, deterministic
//! order.

use std::collections::HashSet;

use libra_core::network::{NetworkShape, UnitTopology};
use libra_core::opt::Objective;
use libra_core::sweep::{GridPoint, SweepGrid};
use proptest::prelude::*;

/// Random valid shapes, 1–4 dims of size 2–64.
fn arb_shape() -> impl Strategy<Value = NetworkShape> {
    prop::collection::vec((0u8..3, 2u64..=64), 1..=4).prop_map(|dims| {
        let dims: Vec<(UnitTopology, u64)> = dims
            .into_iter()
            .map(|(t, s)| {
                let topo = match t {
                    0 => UnitTopology::Ring,
                    1 => UnitTopology::FullyConnected,
                    _ => UnitTopology::Switch,
                };
                (topo, s)
            })
            .collect();
        NetworkShape::new(&dims).unwrap()
    })
}

fn arb_objectives() -> impl Strategy<Value = Vec<Objective>> {
    prop_oneof![
        Just(vec![Objective::Perf]),
        Just(vec![Objective::PerfPerCost]),
        Just(vec![Objective::Perf, Objective::PerfPerCost]),
        Just(vec![Objective::PerfPerCost, Objective::Perf]),
    ]
}

/// A hashable identity for a grid point (budgets compared bit-exactly).
fn key(p: &GridPoint) -> (usize, usize, u64, Objective) {
    (p.shape, p.workload, p.budget.to_bits(), p.objective)
}

proptest! {
    /// `"RI(8)_SW(4)"`-style notation round-trips: struct → string → struct
    /// and string → struct → string.
    #[test]
    fn shape_parse_display_round_trip(shape in arb_shape()) {
        let text = shape.to_string();
        let back: NetworkShape = text.parse().unwrap();
        prop_assert_eq!(&back, &shape);
        prop_assert_eq!(back.to_string(), text);
    }

    /// Grid enumeration contains no duplicate points.
    #[test]
    fn grid_enumeration_has_no_duplicates(
        shapes in prop::collection::vec(arb_shape(), 1..=4),
        budgets in prop::collection::vec(10.0f64..1000.0, 1..=5),
        objectives in arb_objectives(),
        n_workloads in 1usize..=4,
    ) {
        let grid = SweepGrid::new()
            .with_shapes(shapes)
            .with_budgets(budgets)
            .with_objectives(objectives);
        let points = grid.points(n_workloads);
        prop_assert_eq!(points.len(), grid.len(n_workloads));
        let uniq: HashSet<_> = points.iter().map(key).collect();
        prop_assert_eq!(uniq.len(), points.len(), "duplicate grid points");
    }

    /// Enumeration order is deterministic (identical across calls) and
    /// shape-major lexicographic over (shape, workload, budget, objective)
    /// axis indices.
    #[test]
    fn grid_enumeration_is_deterministic_and_ordered(
        shapes in prop::collection::vec(arb_shape(), 1..=3),
        budgets in prop::collection::vec(10.0f64..1000.0, 1..=4),
        objectives in arb_objectives(),
        n_workloads in 1usize..=3,
    ) {
        let grid = SweepGrid::new()
            .with_shapes(shapes)
            .with_budgets(budgets)
            .with_objectives(objectives);
        let a = grid.points(n_workloads);
        let b = grid.points(n_workloads);
        prop_assert_eq!(&a, &b, "two enumerations differ");
        let axis_index = |p: &GridPoint| {
            let bi = grid.budgets().iter().position(|&x| x == p.budget).unwrap();
            let oi = grid.objectives().iter().position(|&o| o == p.objective).unwrap();
            (p.shape, p.workload, bi, oi)
        };
        for w in a.windows(2) {
            prop_assert!(
                axis_index(&w[0]) < axis_index(&w[1]),
                "points out of order: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    /// Inserting duplicates (shapes, budgets, objectives) never changes the
    /// enumeration.
    #[test]
    fn grid_insertion_dedups(
        shapes in prop::collection::vec(arb_shape(), 1..=3),
        budgets in prop::collection::vec(10.0f64..1000.0, 1..=4),
        objectives in arb_objectives(),
    ) {
        let base = SweepGrid::new()
            .with_shapes(shapes.clone())
            .with_budgets(budgets.clone())
            .with_objectives(objectives.clone());
        let doubled = base
            .clone()
            .with_shapes(shapes)
            .with_budgets(budgets)
            .with_objectives(objectives);
        prop_assert_eq!(base.points(2), doubled.points(2));
    }
}

/// The ISSUE's concrete example, pinned outside proptest.
#[test]
fn ri8_sw4_round_trips_exactly() {
    let shape: NetworkShape = "RI(8)_SW(4)".parse().unwrap();
    assert_eq!(shape.ndims(), 2);
    assert_eq!(shape.npus(), 32);
    assert_eq!(shape.dims()[0].topology, UnitTopology::Ring);
    assert_eq!(shape.dims()[0].size, 8);
    assert_eq!(shape.dims()[1].topology, UnitTopology::Switch);
    assert_eq!(shape.dims()[1].size, 4);
    assert_eq!(shape.to_string(), "RI(8)_SW(4)");
    let rebuilt = NetworkShape::new(&[(UnitTopology::Ring, 8), (UnitTopology::Switch, 4)]).unwrap();
    assert_eq!(rebuilt, shape);
}
