//! Property test of the warm-start seeding contract: a solve seeded from a
//! neighboring budget's optimum converges to the same design as a cold
//! solve, within solver tolerance — over random shapes, payload mixes, and
//! budget pairs. This is the guarantee that lets the sweep engine seed
//! every non-anchor grid point without changing what a sweep reports.

use libra_core::comm::{Collective, CommModel, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::network::{NetworkShape, UnitTopology};
use libra_core::opt::{self, Constraint, DesignRequest, Objective};
use proptest::prelude::*;

/// Random valid shapes, 2–4 dims of size 2–32.
fn arb_shape() -> impl Strategy<Value = NetworkShape> {
    prop::collection::vec((0u8..3, 2u64..=32), 2..=4).prop_map(|dims| {
        let dims: Vec<(UnitTopology, u64)> = dims
            .into_iter()
            .map(|(t, s)| {
                let topo = match t {
                    0 => UnitTopology::Ring,
                    1 => UnitTopology::FullyConnected,
                    _ => UnitTopology::Switch,
                };
                (topo, s)
            })
            .collect();
        NetworkShape::new(&dims).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeding a Perf solve from the optimum at a different budget lands on
    /// the cold solve's objective (relative agreement ≤ 1e-4) and respects
    /// the budget.
    #[test]
    fn warm_started_solves_match_cold_solves(
        shape in arb_shape(),
        gb in 1.0f64..64.0,
        anchor_budget in 100.0f64..500.0,
        budget_scale in 1.1f64..8.0,
    ) {
        let cm = CostModel::default();
        let comm = CommModel::default();
        let expr = comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(&shape));
        let req_at = |budget: f64| DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr.clone())],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(budget)],
            cost_model: &cm,
        };
        let anchor = opt::optimize(&req_at(anchor_budget)).unwrap();
        let budget = anchor_budget * budget_scale;
        let cold = opt::optimize(&req_at(budget)).unwrap();
        let warm = opt::optimize_seeded(&req_at(budget), Some(&anchor.bw)).unwrap();

        let rel = (warm.weighted_time - cold.weighted_time).abs()
            / cold.weighted_time.max(1e-300);
        prop_assert!(
            rel <= 1e-4,
            "warm {} vs cold {} (rel {rel}) on {shape} at {budget}",
            warm.weighted_time,
            cold.weighted_time
        );
        let total: f64 = warm.bw.iter().sum();
        prop_assert!(total <= budget * (1.0 + 1e-6), "budget violated: {total} > {budget}");
        // The allocations themselves agree dimension-wise (the Perf optimum
        // of a single All-Reduce target is unique).
        for (w, c) in warm.bw.iter().zip(&cold.bw) {
            prop_assert!(
                (w - c).abs() <= 1e-3 * budget,
                "allocation drifted: warm {:?} vs cold {:?}",
                warm.bw,
                cold.bw
            );
        }
    }

    /// A garbage seed never breaks a solve — it just falls back cold.
    #[test]
    fn unusable_seeds_fall_back_to_cold(
        shape in arb_shape(),
        gb in 1.0f64..32.0,
        budget in 100.0f64..800.0,
    ) {
        let cm = CostModel::default();
        let comm = CommModel::default();
        let expr = comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(&shape));
        let req = DesignRequest {
            shape: &shape,
            targets: vec![(1.0, expr)],
            objective: Objective::Perf,
            constraints: vec![Constraint::TotalBw(budget)],
            cost_model: &cm,
        };
        let cold = opt::optimize(&req).unwrap();
        // Wrong length and non-finite entries are both rejected gracefully.
        let short = opt::optimize_seeded(&req, Some(&[1.0])).unwrap();
        let poisoned: Vec<f64> = vec![f64::NAN; shape.ndims()];
        let nan = opt::optimize_seeded(&req, Some(&poisoned)).unwrap();
        for d in [&short, &nan] {
            let rel = (d.weighted_time - cold.weighted_time).abs()
                / cold.weighted_time.max(1e-300);
            prop_assert!(rel <= 1e-6, "fallback drifted: {} vs {}", d.weighted_time, cold.weighted_time);
        }
    }
}
