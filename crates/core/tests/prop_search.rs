//! Property tests of the adaptive search driver's headline contracts,
//! over random small grids and search knobs:
//!
//! 1. **Exactness** — on any grid small enough to sweep exhaustively,
//!    the adaptive front equals the exhaustive
//!    `SweepReport::pareto_front()` exactly: same designs, same order.
//! 2. **Determinism** — search replays bit-identically: the parallel
//!    fold, the serial fold, and a warm-from-store re-run all stream
//!    the same JSONL bytes and assemble the same report.

use std::sync::atomic::{AtomicUsize, Ordering};

use libra_core::comm::{Collective, CommModel, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::network::NetworkShape;
use libra_core::opt::Objective;
use libra_core::scenario::{JsonLinesSink, Session};
use libra_core::search::{run_grid, SearchConfig, SearchReport};
use libra_core::sweep::{ExecMode, FnWorkload, SweepEngine, SweepGrid};
use proptest::prelude::*;

fn allreduce_workload(name: String, gb: f64) -> FnWorkload {
    FnWorkload::new(name, move |shape: &NetworkShape| {
        let comm = CommModel::default();
        Ok(vec![(1.0, comm.time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape)))])
    })
}

/// Random small grids biased toward one-dimensional shapes (fast to
/// price in debug builds) but always exercising ≥ 2 budget levels and
/// both objectives some of the time.
fn arb_case() -> impl Strategy<Value = (SweepGrid, Vec<FnWorkload>)> {
    const SHAPE_POOL: [&str; 4] = ["RI(4)", "RI(8)", "SW(8)", "SW(16)"];
    (
        (0usize..4, prop::bool::ANY),
        3usize..=11,
        prop::collection::vec(1.0f64..16.0, 1..=2),
        0u8..3,
        10.0f64..60.0,
    )
        .prop_map(|((first_shape, two_shapes), n_bud, gbs, obj_pick, step)| {
            let mut shapes = vec![SHAPE_POOL[first_shape]];
            if two_shapes {
                shapes.push(SHAPE_POOL[(first_shape + 1) % SHAPE_POOL.len()]);
            }
            let objectives = match obj_pick {
                0 => vec![Objective::Perf],
                1 => vec![Objective::PerfPerCost],
                _ => vec![Objective::Perf, Objective::PerfPerCost],
            };
            let mut grid = SweepGrid::new()
                .with_budgets((0..n_bud).map(|i| 100.0 + step * i as f64))
                .with_objectives(objectives);
            for s in shapes {
                grid = grid.with_shape(s.parse().unwrap());
            }
            let wls = gbs
                .iter()
                .enumerate()
                .map(|(i, &g)| allreduce_workload(format!("wl-{i}"), g))
                .collect();
            (grid, wls)
        })
}

fn arb_config() -> impl Strategy<Value = SearchConfig> {
    (2usize..=6, 1usize..=2).prop_map(|(seed_budgets, refine_radius)| SearchConfig {
        seed_budgets,
        refine_radius,
        ..SearchConfig::default()
    })
}

/// A unique throwaway store path per invocation (proptest cases run
/// concurrently inside one process).
fn scratch_store() -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("libra-prop-search-{}-{n}.jsonl", std::process::id()))
}

fn run_search(
    mode: ExecMode,
    store: Option<&std::path::Path>,
    grid: &SweepGrid,
    workloads: &[FnWorkload],
    config: &SearchConfig,
) -> (SearchReport, String) {
    let cm = CostModel::default();
    let mut session = Session::from_engine(SweepEngine::new(&cm)).with_mode(mode);
    if let Some(path) = store {
        session = session.with_store(path).expect("store attaches");
    }
    let mut out = Vec::new();
    let report = {
        let mut sink = JsonLinesSink::new(&mut out);
        run_grid(&session, grid, workloads, config, &mut [&mut sink]).expect("search runs")
    };
    (report, String::from_utf8(out).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adaptive front == exhaustive `pareto_front()`, exactly, and the
    /// search never evaluates more cells than the grid holds.
    #[test]
    fn search_front_is_exact_on_sweepable_grids(
        case in arb_case(),
        config in arb_config(),
    ) {
        let (grid, wls) = case;
        let cm = CostModel::default();
        let exhaustive = Session::from_engine(SweepEngine::new(&cm)).run(&grid, &wls, &[]).sweep;
        let (report, _) = run_search(ExecMode::Parallel, None, &grid, &wls, &config);

        prop_assert!(report.evals <= grid.len(wls.len()));
        let expected: Vec<_> = exhaustive.pareto_front().into_iter().cloned().collect();
        let got: Vec<_> = report.front().into_iter().cloned().collect();
        prop_assert_eq!(
            got,
            expected,
            "front diverged (seed_budgets={} radius={})",
            config.seed_budgets,
            config.refine_radius
        );
    }

    /// Parallel ≡ serial ≡ warm-from-store, bit for bit: reports and
    /// streamed JSONL bytes.
    #[test]
    fn search_replays_bit_identically(
        case in arb_case(),
        config in arb_config(),
    ) {
        let (grid, wls) = case;
        let (parallel, parallel_jsonl) =
            run_search(ExecMode::Parallel, None, &grid, &wls, &config);
        let (serial, serial_jsonl) = run_search(ExecMode::Serial, None, &grid, &wls, &config);
        // Cache counters are engine-lifetime bookkeeping, not part of
        // the determinism contract — compare the points and the bytes.
        prop_assert_eq!(&parallel.sweep.results, &serial.sweep.results);
        prop_assert_eq!(&parallel.sweep.errors, &serial.sweep.errors);
        prop_assert_eq!(&parallel.rounds, &serial.rounds);
        prop_assert_eq!(&parallel_jsonl, &serial_jsonl);

        // Warm-from-store: the first store-attached run stages every
        // solve; the second replays them from disk. Both must stream
        // the cold run's exact bytes.
        let store = scratch_store();
        let (_, cold_staging) =
            run_search(ExecMode::Parallel, Some(&store), &grid, &wls, &config);
        let (warm, warm_jsonl) =
            run_search(ExecMode::Parallel, Some(&store), &grid, &wls, &config);
        let _ = std::fs::remove_file(&store);
        prop_assert_eq!(&cold_staging, &parallel_jsonl);
        prop_assert_eq!(&warm_jsonl, &parallel_jsonl);
        prop_assert_eq!(&warm.sweep.results, &parallel.sweep.results);
        prop_assert_eq!(&warm.sweep.errors, &parallel.sweep.errors);
        prop_assert_eq!(&warm.rounds, &parallel.rounds);
    }
}
