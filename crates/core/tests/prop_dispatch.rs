//! Property test of the shard dispatcher's headline contract: for random
//! grids and random shard counts K ∈ 1..=8, shard-then-merge equals the
//! unsharded `Session::run` **bit for bit** — every record and the
//! summary line — including with warm-start enabled, whose range-
//! restricted drives must re-solve out-of-range group anchors to publish
//! exactly the seeds the full run would have.

use libra_core::comm::{Collective, CommModel, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::dispatch::Dispatcher;
use libra_core::eval::CommPlan;
use libra_core::network::NetworkShape;
use libra_core::opt::Objective;
use libra_core::scenario::{BackendRegistry, CollectorSink, JsonLinesSink, Scenario};
use libra_core::sweep::FnWorkload;
use libra_core::workload::CommOp;
use proptest::prelude::*;

fn planned_workload(name: String, gb: f64) -> FnWorkload {
    let make = move |shape: &NetworkShape| {
        CommModel::default().time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape))
    };
    let plan_gb = gb;
    FnWorkload::new(name, move |shape: &NetworkShape| Ok(vec![(1.0, make(shape))])).with_plan(
        move |shape: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                plan_gb * 1e9,
                GroupSpan::full(shape),
            )]))
        },
    )
}

/// Small random scenarios: 1–2 shapes from a fixed pool, 1–3 budgets,
/// 1–2 objectives, 1–2 workloads — grids of 1..=24 points, enough to
/// exercise shard boundaries everywhere while keeping solve counts sane.
fn arb_scenario() -> impl Strategy<Value = (Scenario, Vec<f64>, bool)> {
    let shapes = prop::collection::vec(0usize..3, 1..=2);
    let budgets = prop::collection::vec(1u64..=40, 1..=3);
    let objectives = 0usize..3;
    let workloads = prop::collection::vec(1u64..=6, 1..=2);
    let warm = prop::bool::ANY;
    (shapes, budgets, objectives, workloads, warm).prop_map(
        |(shapes, budgets, objectives, workloads, warm)| {
            let pool = ["RI(4)_SW(8)", "FC(8)_SW(4)", "SW(16)_SW(4)"];
            let objs: &[Objective] = match objectives {
                0 => &[Objective::Perf],
                1 => &[Objective::PerfPerCost],
                _ => &[Objective::Perf, Objective::PerfPerCost],
            };
            let gbs: Vec<f64> = workloads.iter().map(|&g| g as f64).collect();
            let scenario = Scenario::builder("prop-dispatch")
                .with_shapes(shapes.iter().map(|&i| pool[i].parse().unwrap()))
                .with_budgets(budgets.iter().map(|&b| 50.0 * b as f64))
                .with_objectives(objs.iter().copied())
                .with_workloads(gbs.iter().map(|g| format!("wl-{g}")))
                .with_backends(["analytical", "analytical-offload"])
                .with_tolerance(0.25)
                .with_warm_start(warm)
                .build()
                .unwrap();
            (scenario, gbs, warm)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shard_then_merge_is_bit_identical_to_the_unsharded_run(
        case in arb_scenario(),
        shards in 1usize..=8,
    ) {
        let (scenario, gbs, warm) = case;
        let wls: Vec<FnWorkload> =
            gbs.iter().map(|&g| planned_workload(format!("wl-{g}"), g)).collect();
        let cm = CostModel::default();
        let registry = BackendRegistry::new();

        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let mut collector = CollectorSink::new();
        let report = scenario
            .session(&cm)
            .run_scenario_with_sinks(&scenario, &wls, &registry, &mut [&mut sink, &mut collector])
            .unwrap();
        let single = String::from_utf8(sink.into_inner()).unwrap();

        let merged = Dispatcher::new(&scenario, shards)
            .unwrap()
            .run_in_process(&cm, &wls, &registry)
            .unwrap();

        // Records: bit-for-bit, in grid order (indices are global).
        prop_assert_eq!(&merged.rows, &collector.rows, "warm_start={} K={}", warm, shards);
        // The whole stream — header, records, summary — byte-identical.
        prop_assert_eq!(&merged.to_jsonl(), &single, "warm_start={} K={}", warm, shards);
        // And the re-judged verdict agrees with the single run's.
        prop_assert_eq!(merged.within_tolerance(), report.divergence.within_tolerance());
        prop_assert_eq!(merged.exit_code(), i32::from(!report.divergence.within_tolerance()) * 2);
    }
}
