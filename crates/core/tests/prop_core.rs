//! Property-based tests of libra-core's modeling invariants.

use libra_core::comm::{traffic_per_dim, Collective, CommModel, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::expr::BwExpr;
use libra_core::network::NetworkShape;
use proptest::prelude::*;

fn arb_span() -> impl Strategy<Value = GroupSpan> {
    prop::collection::vec(2u64..=16, 1..=4)
        .prop_map(|ext| GroupSpan::new(ext.into_iter().enumerate().collect()))
}

fn arb_collective() -> impl Strategy<Value = Collective> {
    prop_oneof![
        Just(Collective::AllReduce),
        Just(Collective::ReduceScatter),
        Just(Collective::AllGather),
        Just(Collective::AllToAll),
        Just(Collective::PointToPoint),
    ]
}

proptest! {
    /// Communication time is homothetic: scaling every bandwidth by k
    /// divides every comm delay by k.
    #[test]
    fn comm_time_scale_invariance(
        span in arb_span(),
        coll in arb_collective(),
        bytes in 1e6f64..1e10,
        k in 1.1f64..8.0,
    ) {
        let expr = CommModel::default().time_expr(coll, bytes, &span);
        let n = span.extents().last().map(|&(d, _)| d + 1).unwrap_or(1);
        let bw: Vec<f64> = (0..n).map(|i| 10.0 + 7.0 * i as f64).collect();
        let scaled: Vec<f64> = bw.iter().map(|b| b * k).collect();
        let t1 = expr.eval(&bw);
        let t2 = expr.eval(&scaled);
        prop_assert!((t1 / k - t2).abs() <= 1e-9 * (1.0 + t1));
    }

    /// All-Reduce traffic = Reduce-Scatter + All-Gather traffic, per dim.
    #[test]
    fn allreduce_decomposes(span in arb_span(), bytes in 1e3f64..1e9) {
        let ar = traffic_per_dim(Collective::AllReduce, bytes, &span);
        let rs = traffic_per_dim(Collective::ReduceScatter, bytes, &span);
        let ag = traffic_per_dim(Collective::AllGather, bytes, &span);
        for ((a, r), g) in ar.iter().zip(&rs).zip(&ag) {
            prop_assert!((a.1 - (r.1 + g.1)).abs() <= 1e-6 * (1.0 + a.1));
        }
    }

    /// Collective traffic never exceeds 2× the payload on any dimension,
    /// and strictly decreases across dimensions for the shrinking family.
    #[test]
    fn traffic_bounds_and_monotonicity(span in arb_span(), bytes in 1e3f64..1e9) {
        let ar = traffic_per_dim(Collective::AllReduce, bytes, &span);
        for &(_, t) in &ar {
            prop_assert!(t <= 2.0 * bytes + 1e-6);
            prop_assert!(t >= 0.0);
        }
        for pair in ar.windows(2) {
            prop_assert!(pair[1].1 <= pair[0].1 + 1e-9, "traffic grows outward: {ar:?}");
        }
    }

    /// Network cost is linear: cost(a·B + b·B') = a·cost(B) + b·cost(B').
    #[test]
    fn cost_linearity(
        b1 in prop::collection::vec(1.0f64..500.0, 4),
        b2 in prop::collection::vec(1.0f64..500.0, 4),
        a in 0.1f64..5.0,
    ) {
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let cm = CostModel::default();
        let combo: Vec<f64> = b1.iter().zip(&b2).map(|(x, y)| a * x + y).collect();
        let lhs = cm.network_cost(&shape, &combo);
        let rhs = a * cm.network_cost(&shape, &b1) + cm.network_cost(&shape, &b2);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs()));
    }

    /// Shape notation round-trips for arbitrary valid shapes.
    #[test]
    fn shape_round_trip(
        dims in prop::collection::vec((0u8..3, 2u64..64), 1..=4),
    ) {
        use libra_core::network::UnitTopology;
        let dims: Vec<(UnitTopology, u64)> = dims
            .into_iter()
            .map(|(t, s)| {
                let topo = match t {
                    0 => UnitTopology::Ring,
                    1 => UnitTopology::FullyConnected,
                    _ => UnitTopology::Switch,
                };
                (topo, s)
            })
            .collect();
        let shape = NetworkShape::new(&dims).unwrap();
        let back: NetworkShape = shape.to_string().parse().unwrap();
        prop_assert_eq!(shape, back);
    }

    /// BwExpr::sum/max_of never change the evaluated value relative to the
    /// naive fold (normalization is semantics-preserving).
    #[test]
    fn expr_normalization_preserves_value(
        coeffs in prop::collection::vec(0.1f64..100.0, 1..6),
        consts in prop::collection::vec(0.0f64..2.0, 1..4),
        b in 1.0f64..200.0,
    ) {
        let parts: Vec<BwExpr> = coeffs
            .iter()
            .map(|&c| BwExpr::Ratio { coeff: c, dim: 0 })
            .chain(consts.iter().map(|&c| BwExpr::Const(c)))
            .collect();
        let bw = [b];
        let naive_sum: f64 = parts.iter().map(|p| p.eval(&bw)).sum();
        let naive_max: f64 =
            parts.iter().map(|p| p.eval(&bw)).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((BwExpr::sum(parts.clone()).eval(&bw) - naive_sum).abs() < 1e-9 * (1.0 + naive_sum));
        prop_assert!((BwExpr::max_of(parts).eval(&bw) - naive_max).abs() < 1e-9 * (1.0 + naive_max.abs()));
    }
}
