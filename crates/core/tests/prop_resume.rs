//! Property test of the resume path's headline contract: for random
//! grids, interrupting a run after a random prefix of its JSON-lines
//! stream (optionally mid-line, the way a killed writer tears its last
//! record) and resuming via [`resume_scenario`] reproduces the
//! uninterrupted run **bit for bit** — every record, the summary line,
//! and the exit verdict — with warm start on and off, and with or
//! without the persistent solve store backing the re-priced ranges.

use std::sync::atomic::{AtomicUsize, Ordering};

use libra_core::comm::{Collective, CommModel, GroupSpan};
use libra_core::cost::CostModel;
use libra_core::dispatch::resume_scenario;
use libra_core::eval::CommPlan;
use libra_core::network::NetworkShape;
use libra_core::opt::Objective;
use libra_core::scenario::{BackendRegistry, JsonLinesSink, Scenario};
use libra_core::sweep::{ExecMode, FnWorkload};
use libra_core::workload::CommOp;
use proptest::prelude::*;

fn planned_workload(name: String, gb: f64) -> FnWorkload {
    let make = move |shape: &NetworkShape| {
        CommModel::default().time_expr(Collective::AllReduce, gb * 1e9, &GroupSpan::full(shape))
    };
    let plan_gb = gb;
    FnWorkload::new(name, move |shape: &NetworkShape| Ok(vec![(1.0, make(shape))])).with_plan(
        move |shape: &NetworkShape| {
            Ok(CommPlan::serial([CommOp::new(
                Collective::AllReduce,
                plan_gb * 1e9,
                GroupSpan::full(shape),
            )]))
        },
    )
}

/// Small random scenarios: 1–2 shapes from a fixed pool, 1–3 budgets,
/// 1–2 objectives, 1–2 workloads — grids of 1..=24 points, so the
/// interrupt lands on every kind of boundary (before the header's first
/// record, mid-grid, on the last record) across cases.
fn arb_scenario() -> impl Strategy<Value = (Scenario, Vec<f64>, bool)> {
    let shapes = prop::collection::vec(0usize..3, 1..=2);
    let budgets = prop::collection::vec(1u64..=40, 1..=3);
    let objectives = 0usize..3;
    let workloads = prop::collection::vec(1u64..=6, 1..=2);
    let warm = prop::bool::ANY;
    (shapes, budgets, objectives, workloads, warm).prop_map(
        |(shapes, budgets, objectives, workloads, warm)| {
            let pool = ["RI(4)_SW(8)", "FC(8)_SW(4)", "SW(16)_SW(4)"];
            let objs: &[Objective] = match objectives {
                0 => &[Objective::Perf],
                1 => &[Objective::PerfPerCost],
                _ => &[Objective::Perf, Objective::PerfPerCost],
            };
            let gbs: Vec<f64> = workloads.iter().map(|&g| g as f64).collect();
            let scenario = Scenario::builder("prop-resume")
                .with_shapes(shapes.iter().map(|&i| pool[i].parse().unwrap()))
                .with_budgets(budgets.iter().map(|&b| 50.0 * b as f64))
                .with_objectives(objs.iter().copied())
                .with_workloads(gbs.iter().map(|g| format!("wl-{g}")))
                .with_backends(["analytical", "analytical-offload"])
                .with_tolerance(0.25)
                .with_warm_start(warm)
                .build()
                .unwrap();
            (scenario, gbs, warm)
        },
    )
}

/// A unique throwaway store path per invocation (proptest cases run
/// concurrently inside one process).
fn scratch_store() -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("libra-prop-resume-{}-{n}.jsonl", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn resuming_an_interrupted_stream_is_bit_identical(
        case in arb_scenario(),
        cut in 0.0f64..1.0,
        tear in prop::bool::ANY,
        with_store in prop::bool::ANY,
    ) {
        let (scenario, gbs, warm) = case;
        let wls: Vec<FnWorkload> =
            gbs.iter().map(|&g| planned_workload(format!("wl-{g}"), g)).collect();
        let cm = CostModel::default();
        let registry = BackendRegistry::new();

        // The uninterrupted reference stream.
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        let report = scenario
            .session(&cm)
            .run_scenario_with_sinks(&scenario, &wls, &registry, &mut [&mut sink])
            .unwrap();
        let full = String::from_utf8(sink.into_inner()).unwrap();

        // Interrupt after a random prefix of its lines (header always
        // survives: a writer emits it before any record), optionally
        // tearing the next line mid-byte like a killed process would.
        let lines: Vec<&str> = full.lines().collect();
        let keep = 1 + ((lines.len() - 1) as f64 * cut) as usize;
        let keep = keep.min(lines.len());
        let mut partial: String =
            lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        if tear && keep < lines.len() {
            let next = lines[keep];
            partial.push_str(&next[..next.len() / 2]);
        }

        let store = with_store.then(scratch_store);
        let merged = resume_scenario(
            &scenario,
            &wls,
            &registry,
            &cm,
            &partial,
            ExecMode::Parallel,
            store.as_deref(),
        )
        .unwrap();
        if let Some(path) = &store {
            let _ = std::fs::remove_file(path);
        }

        prop_assert_eq!(
            &merged.to_jsonl(),
            &full,
            "warm_start={} keep={}/{} tear={} store={}",
            warm, keep, lines.len(), tear, with_store
        );
        prop_assert_eq!(merged.within_tolerance(), report.divergence.within_tolerance());
        prop_assert_eq!(merged.exit_code(), i32::from(!report.divergence.within_tolerance()) * 2);
    }
}
