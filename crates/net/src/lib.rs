//! # libra-net
//!
//! The **network-layer α-β simulation backend**: a third
//! [`EvalBackend`] alongside `libra_core::eval::Analytical` and
//! `libra_sim::EventSimBackend`, pricing [`CommPlan`]s with the terms a
//! pure bandwidth model cannot express (paper §IV-C / §V, and the
//! astra-sim lineage the paper builds on):
//!
//! * **α (hop latency)** — every chunk-stage pays a fixed,
//!   bandwidth-independent latency determined by the dimension's unit
//!   topology: a Ring of extent `e` relays store-and-forward through
//!   `e − 1` hops, a FullyConnected dimension is one direct hop, a Switch
//!   dimension is two hops (NPU → switch → NPU).
//! * **β (serialization)** — bytes over bandwidth, exactly as the chunked
//!   event engine already models it; `libra-net` drives that same engine
//!   (`libra_sim::run_batch_ext`) rather than reimplementing it.
//! * **switch traversal** — an extra per-message cost
//!   ([`LinkParams::switch_ps`]) on Switch dimensions: arbitration,
//!   crossbar, and (for offloaded collectives) the reduction ALU.
//! * **in-network offload** — [`NetSimBackend::offloaded`] performs
//!   switch-resident reduction on Switch dimensions: offloadable
//!   collectives cross them in a single ascending pass carrying the §IV-C
//!   injection traffic `m / Π_{j<i} e_j` with no All-Gather replay. This
//!   gives offloaded plans an event-driven price — before this crate they
//!   were analytical-only.
//!
//! Per-dimension topology kinds and link parameters ride on the plan's
//! [`NetSpec`] side channel (`CommPlan::with_net`); dimensions the plan
//! does not describe fall back to the backend's default (zero-latency
//! Switch), so a plan with no side channel prices identically to the pure
//! bandwidth backends.
//!
//! # Agreement with the analytical backend
//!
//! In the β-dominated limit (α → 0, `switch_ps` → 0) every stage
//! degenerates to its serialization time and the engine **is** the event
//! simulator, so the analytical model brackets it within the documented
//! chunk-pipeline fill/drain bound, `2 · ndims / chunks`
//! ([`NetSimBackend::agreement_bound`]) — for offloaded plans the single
//! ascending pass has only `ndims` stages per chunk, so the same bound
//! holds a fortiori. In the α-dominated regime (many small messages) the
//! backends *must* diverge — the per-message latency the analytical model
//! ignores is `chunks × stages × α` of real time — and the repo's tests
//! pin both behaviours: convergence under α → 0, divergence beyond the
//! bound when α dominates.

use std::cell::RefCell;

use libra_core::eval::{CommPlan, DimTopology, EvalBackend, LinkParams};
use libra_core::network::UnitTopology;
use libra_core::LibraError;

use libra_sim::backend::{eval_plan_on_engine, EventSimBackend};
use libra_sim::collective::BatchExt;
use libra_sim::event::{secs_to_ps, Time};

thread_local! {
    /// Reusable per-thread buffer for the resolved per-dimension
    /// topologies, so `eval_plan` allocates nothing in steady state (the
    /// chunk engine underneath already runs on its own thread-local
    /// scratch).
    static DIMS_SCRATCH: RefCell<Vec<DimTopology>> = const { RefCell::new(Vec::new()) };
}

#[allow(unused_imports)] // doc links
use libra_sim::collective::run_batch_ext;

#[allow(unused_imports)] // doc links
use libra_core::eval::{CommPhase, NetSpec};

/// The fixed α-side overhead one chunk-stage pays crossing a dimension of
/// the given topology at extent `extent`:
///
/// * Ring — `(extent − 1) · alpha_ps` (store-and-forward relay around the
///   ring; a 2-node ring is a single hop);
/// * FullyConnected — `alpha_ps` (one direct hop);
/// * Switch — `2 · alpha_ps + switch_ps` (up to the switch, through its
///   crossbar/ALU, back down — extent-independent).
///
/// Saturates onto the integer-picosecond timeline; NaN or negative
/// parameters contribute zero.
pub fn stage_overhead_ps(dim: DimTopology, extent: u64) -> Time {
    let alpha = sanitize(dim.link.alpha_ps);
    let ps = match dim.kind {
        UnitTopology::Ring => alpha * extent.saturating_sub(1) as f64,
        UnitTopology::FullyConnected => alpha,
        UnitTopology::Switch => 2.0 * alpha + sanitize(dim.link.switch_ps),
    };
    // Saturating f64-ps → integer-ps conversion (secs_to_ps rounds to the
    // nearest tick and clamps NaN/negative/overflow).
    secs_to_ps(ps / 1e12)
}

fn sanitize(ps: f64) -> f64 {
    if ps.is_nan() || ps < 0.0 {
        0.0
    } else {
        ps
    }
}

/// The network-layer simulation backend.
///
/// Drives `libra_sim`'s latency-carrying chunk engine
/// ([`run_batch_ext`]) with per-dimension α-β stage overheads derived from
/// the plan's [`NetSpec`] and — in offload mode — in-network reduction
/// flags on Switch dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSimBackend {
    /// Chunks per collective (the paper's evaluation uses 64, §V-B).
    pub chunks: usize,
    /// Perform in-network (switch-resident) reduction on Switch
    /// dimensions: offloadable collectives cross them in a single pass
    /// carrying `m / Π_{j<i} e_j` (§IV-C).
    pub offload: bool,
    /// Topology assumed for dimensions the plan's [`NetSpec`] does not
    /// cover (or when the plan has no spec at all). The default —
    /// zero-latency Switch — makes unspecified plans price identically to
    /// the pure bandwidth backends in endpoint mode, and fully offloaded
    /// (every dimension is a switch) in offload mode, matching
    /// `Analytical { in_network_offload: true }`'s all-dims rule.
    pub default_dim: DimTopology,
}

impl Default for NetSimBackend {
    fn default() -> Self {
        NetSimBackend::new(64)
    }
}

impl NetSimBackend {
    /// An endpoint-driven network-layer backend with `chunks` pipelined
    /// chunks per collective and zero-latency-Switch defaults.
    ///
    /// # Panics
    /// Panics if `chunks == 0`.
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0, "collectives need at least one chunk");
        NetSimBackend { chunks, offload: false, default_dim: DimTopology::zero_switch() }
    }

    /// A backend performing in-network reduction on Switch dimensions.
    ///
    /// # Panics
    /// Panics if `chunks == 0`.
    pub fn offloaded(chunks: usize) -> Self {
        NetSimBackend { offload: true, ..NetSimBackend::new(chunks) }
    }

    /// Overrides the topology assumed for dimensions the plan's spec does
    /// not describe.
    #[must_use]
    pub fn with_default_dim(mut self, dim: DimTopology) -> Self {
        self.default_dim = dim;
        self
    }

    /// Keeps the default kind but applies `link` parameters to
    /// undescribed dimensions.
    #[must_use]
    pub fn with_default_link(mut self, link: LinkParams) -> Self {
        self.default_dim.link = link;
        self
    }

    /// Documented upper bound on the symmetric relative error between this
    /// backend and the matching analytical model (`Analytical` for
    /// endpoint mode, `Analytical { in_network_offload: true }` for
    /// offload mode over all-Switch specs) **in the β-dominated limit**
    /// (α → 0, `switch_ps` → 0), for plans whose phases hold a single
    /// collective each: `min(1, 2 · ndims / chunks)` — the chunk
    /// pipeline's fill/drain bubble, delegated to
    /// [`EventSimBackend::agreement_bound`] because the engines coincide
    /// at zero latency (one formula, not two copies). No bound is claimed
    /// once α dominates: the per-message latency is precisely what the
    /// closed form does not model, and the divergence is the point of
    /// this backend.
    pub fn agreement_bound(&self, n_dims: usize) -> f64 {
        EventSimBackend::new(self.chunks).agreement_bound(n_dims)
    }

    /// Resolves the per-dimension topologies in effect for an `n_dims`
    /// fabric into `dims`: the plan's spec where present, the backend
    /// default elsewhere.
    fn resolve_dims_into(&self, n_dims: usize, plan: &CommPlan, dims: &mut Vec<DimTopology>) {
        dims.clear();
        dims.extend(
            (0..n_dims)
                .map(|d| plan.net.as_ref().and_then(|n| n.dim(d)).unwrap_or(self.default_dim)),
        );
    }

    /// Writes the [`BatchExt`] of one phase into `ext` (arrives cleared):
    /// per-dimension stage overheads (the worst extent of any op spanning
    /// the dimension, for multi-op phases) and offload flags.
    fn phase_ext(
        &self,
        n_dims: usize,
        dims: &[DimTopology],
        phase: &CommPhase,
        ext: &mut BatchExt,
    ) {
        ext.stage_overhead_ps.resize(n_dims, 0 as Time);
        for op in &phase.ops {
            for &(d, e) in op.span.extents() {
                ext.stage_overhead_ps[d] =
                    ext.stage_overhead_ps[d].max(stage_overhead_ps(dims[d], e));
            }
        }
        ext.offload_dims
            .extend(dims.iter().map(|t| self.offload && t.kind == UnitTopology::Switch));
    }
}

impl EvalBackend for NetSimBackend {
    fn name(&self) -> &str {
        if self.offload {
            "net-sim-offload"
        } else {
            "net-sim"
        }
    }

    fn eval_plan(&self, n_dims: usize, bw: &[f64], plan: &CommPlan) -> Result<f64, LibraError> {
        // Taken out (not borrowed) so a reentrant evaluation on this
        // thread warms a fresh buffer instead of panicking.
        let mut dims = DIMS_SCRATCH.take();
        self.resolve_dims_into(n_dims, plan, &mut dims);
        let result = eval_plan_on_engine(n_dims, bw, plan, self.chunks, |phase, ext| {
            self.phase_ext(n_dims, &dims, phase, ext)
        });
        DIMS_SCRATCH.replace(dims);
        result
    }
}

/// Registers this crate's backends with a scenario
/// [`BackendRegistry`](libra_core::scenario::BackendRegistry):
/// `"net-sim"` ([`NetSimBackend::new`], endpoint mode) and
/// `"net-sim-offload"` ([`NetSimBackend::offloaded`], switch-resident
/// reduction), both chunked by
/// [`BackendConfig::chunks`](libra_core::scenario::BackendConfig).
///
/// # Errors
/// Propagates duplicate-name rejections (registering twice into the same
/// registry).
pub fn register_backends(
    registry: &mut libra_core::scenario::BackendRegistry,
) -> Result<(), LibraError> {
    registry.register_described(
        "net-sim",
        "network-layer simulation with per-hop alpha latency and switch-traversal cost",
        |cfg| Box::new(NetSimBackend::new(cfg.chunks)),
    )?;
    registry.register_described(
        "net-sim-offload",
        "net-sim with switch-resident in-network reduction of switch-dimension collectives",
        |cfg| Box::new(NetSimBackend::offloaded(cfg.chunks)),
    )
}

/// The registry holding every backend the workspace ships:
/// `"analytical"` / `"analytical-offload"` (libra-core), `"event-sim"`
/// (libra-sim), and `"net-sim"` / `"net-sim-offload"` (this crate) — the
/// names scenario files use. Defined here, in the most-derived backend
/// crate (the only one that sees core, sim, and net at once), and
/// re-exported by the facade and `libra-bench` so there is exactly one
/// copy to extend when a new backend crate lands.
pub fn default_registry() -> libra_core::scenario::BackendRegistry {
    let mut registry = libra_core::scenario::BackendRegistry::new();
    libra_sim::register_backends(&mut registry).expect("fresh registry");
    register_backends(&mut registry).expect("fresh registry");
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_core::comm::{Collective, GroupSpan};
    use libra_core::eval::{rel_error, Analytical, CommPhase, NetSpec};
    use libra_core::workload::CommOp;
    use libra_sim::EventSimBackend;

    fn ar(gb: f64, span: GroupSpan) -> CommOp {
        CommOp::new(Collective::AllReduce, gb * 1e9, span)
    }

    fn span2() -> GroupSpan {
        GroupSpan::new(vec![(0, 4), (1, 8)])
    }

    fn switch_spec(n: usize, alpha_ps: f64, switch_ps: f64) -> NetSpec {
        NetSpec::uniform(
            n,
            UnitTopology::Switch,
            LinkParams::latency(alpha_ps).with_switch_ps(switch_ps),
        )
    }

    #[test]
    fn zero_latency_equals_event_sim_exactly() {
        let plan = CommPlan::serial([ar(4.0, span2()), ar(1.5, GroupSpan::new(vec![(0, 4)]))]);
        let bw = [60.0, 20.0];
        for chunks in [1, 8, 64] {
            let net = NetSimBackend::new(chunks).eval_plan(2, &bw, &plan).unwrap();
            let ev = EventSimBackend::new(chunks).eval_plan(2, &bw, &plan).unwrap();
            assert_eq!(net, ev, "chunks={chunks}: α=0 NetSim must equal EventSim bit-for-bit");
        }
    }

    #[test]
    fn hop_latency_follows_topology_kind() {
        let link = LinkParams::latency(1000.0);
        // Ring: (e−1)·α.
        let ring = DimTopology::new(UnitTopology::Ring, link);
        assert_eq!(stage_overhead_ps(ring, 2), 1000);
        assert_eq!(stage_overhead_ps(ring, 8), 7000);
        // FullyConnected: one hop regardless of extent.
        let fc = DimTopology::new(UnitTopology::FullyConnected, link);
        assert_eq!(stage_overhead_ps(fc, 2), 1000);
        assert_eq!(stage_overhead_ps(fc, 8), 1000);
        // Switch: 2 hops + traversal, extent-independent.
        let sw = DimTopology::new(UnitTopology::Switch, link.with_switch_ps(500.0));
        assert_eq!(stage_overhead_ps(sw, 2), 2500);
        assert_eq!(stage_overhead_ps(sw, 32), 2500);
        // switch_ps is ignored off-switch; garbage params contribute zero.
        assert_eq!(
            stage_overhead_ps(DimTopology::new(UnitTopology::Ring, link.with_switch_ps(9e9)), 2),
            1000
        );
        let nan = LinkParams { alpha_ps: f64::NAN, switch_ps: -5.0 };
        assert_eq!(stage_overhead_ps(DimTopology::new(UnitTopology::Switch, nan), 4), 0);
    }

    #[test]
    fn two_node_ring_allreduce_alpha_beta_exact() {
        // 2 GB All-Reduce over a 2-node ring, 2 chunks, 10 GB/s, α = 10 ms:
        // four serialized stages of (0.05 s β + 0.01 s α) = 0.24 s, i.e. the
        // analytical 0.2 s plus 4 α.
        let span = GroupSpan::new(vec![(0, 2)]);
        let plan = CommPlan::serial([ar(2.0, span)]).with_net(NetSpec::uniform(
            1,
            UnitTopology::Ring,
            LinkParams::latency(1e10),
        ));
        let bw = [10.0];
        let net = NetSimBackend::new(2).eval_plan(1, &bw, &plan).unwrap();
        assert!((net - 0.24).abs() < 1e-12, "got {net}");
        let ana = Analytical::new().eval_plan(1, &bw, &plan).unwrap();
        assert!((net - ana - 4.0 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn alpha_dominated_small_messages_diverge_beyond_bound() {
        // 1 MB over a big-α 2-dim switch fabric: latency dwarfs
        // serialization, so NetSim must exceed the β-only agreement bound —
        // the documented Fig. 12-regime divergence.
        let plan = CommPlan::serial([ar(0.001, span2())]).with_net(switch_spec(2, 1e9, 0.0));
        let bw = [100.0, 100.0];
        let backend = NetSimBackend::new(64);
        let net = backend.eval_plan(2, &bw, &plan).unwrap();
        let ana = Analytical::new().eval_plan(2, &bw, &plan).unwrap();
        assert!(
            rel_error(ana, net) > backend.agreement_bound(2),
            "α-dominated plan should diverge: net {net}, ana {ana}"
        );
        // And the latency term is additive: zeroing α restores agreement.
        let calm = CommPlan { net: Some(switch_spec(2, 0.0, 0.0)), ..plan };
        let net0 = backend.eval_plan(2, &bw, &calm).unwrap();
        assert!(rel_error(ana, net0) <= backend.agreement_bound(2));
    }

    #[test]
    fn offloaded_backend_matches_analytical_offload_on_switch_fabrics() {
        let plan = CommPlan::serial([ar(4.0, span2())]).with_net(switch_spec(2, 0.0, 0.0));
        let bw = [40.0, 15.0];
        let backend = NetSimBackend::offloaded(64);
        assert_eq!(backend.name(), "net-sim-offload");
        let net = backend.eval_plan(2, &bw, &plan).unwrap();
        let ana = Analytical { in_network_offload: true }.eval_plan(2, &bw, &plan).unwrap();
        assert!(net >= ana * (1.0 - 1e-9), "offloaded sim below analytical lower bound");
        assert!(
            rel_error(ana, net) <= backend.agreement_bound(2),
            "offloaded rel err {} above bound {}",
            rel_error(ana, net),
            backend.agreement_bound(2)
        );
        // Offload strictly beats endpoint execution for All-Reduce.
        let endpoint = NetSimBackend::new(64).eval_plan(2, &bw, &plan).unwrap();
        assert!(net < endpoint);
    }

    #[test]
    fn offload_spares_non_switch_dimensions() {
        // Ring dim 0 stays endpoint-driven, switch dim 1 offloads: the
        // result must sit strictly between all-endpoint and all-offload.
        let mixed = NetSpec {
            dims: vec![
                DimTopology::new(UnitTopology::Ring, LinkParams::zero()),
                DimTopology::new(UnitTopology::Switch, LinkParams::zero()),
            ],
        };
        // Dim 1 is the bottleneck, so offloading it (or not) moves the
        // makespan strictly.
        let bw = [40.0, 5.0];
        let base = CommPlan::serial([ar(4.0, span2())]);
        let backend = NetSimBackend::offloaded(8);
        let t_mixed = backend.eval_plan(2, &bw, &base.clone().with_net(mixed)).unwrap();
        let t_all_off =
            backend.eval_plan(2, &bw, &base.clone().with_net(switch_spec(2, 0.0, 0.0))).unwrap();
        let t_endpoint = NetSimBackend::new(8).eval_plan(2, &bw, &base).unwrap();
        assert!(t_all_off < t_mixed, "all-offload {t_all_off} vs mixed {t_mixed}");
        assert!(t_mixed < t_endpoint, "mixed {t_mixed} vs endpoint {t_endpoint}");
    }

    #[test]
    fn default_dims_cover_missing_spec_entries() {
        // Spec shorter than the fabric: dim 1 falls back to the backend
        // default (here a ring with latency), and the makespan shows it.
        let backend = NetSimBackend::new(1)
            .with_default_dim(DimTopology::new(UnitTopology::Ring, LinkParams::latency(1e9)));
        let spec = NetSpec { dims: vec![DimTopology::zero_switch()] };
        let plan = CommPlan::serial([ar(1.0, span2())]).with_net(spec);
        let bw = [10.0, 10.0];
        let with_default = backend.eval_plan(2, &bw, &plan).unwrap();
        let zero = NetSimBackend::new(1).eval_plan(2, &bw, &plan).unwrap();
        // Dim 1 (extent 8, ring) pays 7 ms per stage × 2 stages.
        assert!((with_default - zero - 2.0 * 7e-3).abs() < 1e-9);
    }

    #[test]
    fn repeat_and_phases_compose_like_other_backends() {
        let once = CommPlan::serial([ar(2.0, span2())]).with_net(switch_spec(2, 1e7, 0.0));
        let thrice = CommPlan {
            phases: vec![CommPhase::solo(ar(2.0, span2())).repeated(3)],
            net: Some(switch_spec(2, 1e7, 0.0)),
        };
        let bw = [30.0, 15.0];
        let backend = NetSimBackend::new(8);
        let t1 = backend.eval_plan(2, &bw, &once).unwrap();
        let t3 = backend.eval_plan(2, &bw, &thrice).unwrap();
        assert!((t3 - 3.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs_like_other_backends() {
        let plan = CommPlan::serial([ar(1.0, span2())]);
        let backend = NetSimBackend::default();
        assert!(backend.eval_plan(2, &[10.0, 0.0], &plan).is_err());
        assert!(backend.eval_plan(1, &[10.0], &plan).is_err());
        assert_eq!(backend.eval_plan(2, &[1.0, 1.0], &CommPlan::new()).unwrap(), 0.0);
    }

    #[test]
    fn agreement_bound_shrinks_with_chunks() {
        assert!(
            NetSimBackend::new(64).agreement_bound(2) < NetSimBackend::new(8).agreement_bound(2)
        );
        assert_eq!(NetSimBackend::new(1).agreement_bound(4), 1.0);
        assert_eq!(
            NetSimBackend::new(64).agreement_bound(3),
            EventSimBackend::new(64).agreement_bound(3),
            "at α=0 the engines coincide, so the bounds must too"
        );
    }
}
