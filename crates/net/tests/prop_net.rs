//! Differential property tests for the network-layer backend.
//!
//! Three laws, over random shapes, collectives, payloads, bandwidths,
//! chunk counts, and link parameters:
//!
//! 1. **β-dominated limit**: at α = 0 (and zero switch cost) NetSim is
//!    bit-identical to EventSim, hence bracketed by the analytical model
//!    within the documented chunk-pipeline bound.
//! 2. **Monotonicity in α**: adding latency can only slow a plan down,
//!    and the slowdown vanishes as α → 0 — the rel-err-to-analytical of a
//!    shrinking-α sequence is non-increasing down to the β-only bound.
//! 3. **Offload pricing**: on all-Switch fabrics the offloaded backend is
//!    bracketed by `Analytical { in_network_offload: true }` within the
//!    same bound at α = 0, and never beats that closed form from below.

use libra_core::comm::{Collective, GroupSpan};
use libra_core::eval::EvalBackend;
use libra_core::eval::{rel_error, Analytical, CommPlan, LinkParams, NetSpec};
use libra_core::network::UnitTopology;
use libra_core::workload::CommOp;
use libra_net::NetSimBackend;
use libra_sim::EventSimBackend;
use proptest::prelude::*;

/// `(extent, bandwidth GB/s)` per dimension: 1–4 dims, extents 2/4/8.
fn arb_dims() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((prop_oneof![Just(2u64), Just(4u64), Just(8u64)], 5.0f64..200.0), 1..5)
}

fn arb_collective() -> impl Strategy<Value = Collective> {
    prop_oneof![
        Just(Collective::AllReduce),
        Just(Collective::ReduceScatter),
        Just(Collective::AllGather),
        Just(Collective::AllToAll),
        Just(Collective::PointToPoint),
    ]
}

fn arb_kind() -> impl Strategy<Value = UnitTopology> {
    prop_oneof![
        Just(UnitTopology::Ring),
        Just(UnitTopology::FullyConnected),
        Just(UnitTopology::Switch),
    ]
}

fn arb_chunks() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(8), Just(32), Just(64)]
}

fn plan_for(
    collective: Collective,
    gb: f64,
    dims: &[(u64, f64)],
    kinds: &[UnitTopology],
    link: LinkParams,
) -> (usize, Vec<f64>, CommPlan) {
    let ndims = dims.len();
    let span = GroupSpan::new(dims.iter().enumerate().map(|(d, &(e, _))| (d, e)).collect());
    let bw: Vec<f64> = dims.iter().map(|&(_, b)| b).collect();
    let spec = NetSpec {
        dims: kinds.iter().map(|&k| libra_core::eval::DimTopology::new(k, link)).collect(),
    };
    let plan = CommPlan::serial([CommOp::new(collective, gb * 1e9, span)]).with_net(spec);
    (ndims, bw, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Law 1: the β-dominated limit is exactly the event simulator.
    #[test]
    fn zero_alpha_is_event_sim_and_within_analytical_bound(
        dims in arb_dims(),
        kinds in prop::collection::vec(arb_kind(), 4),
        collective in arb_collective(),
        chunks in arb_chunks(),
        gb in 0.01f64..8.0,
    ) {
        let (ndims, bw, plan) =
            plan_for(collective, gb, &dims, &kinds[..dims.len()], LinkParams::zero());
        let net = NetSimBackend::new(chunks).eval_plan(ndims, &bw, &plan).unwrap();
        let ev = EventSimBackend::new(chunks).eval_plan(ndims, &bw, &plan).unwrap();
        prop_assert_eq!(net, ev, "α=0 NetSim diverged from EventSim");
        let ana = Analytical::new().eval_plan(ndims, &bw, &plan).unwrap();
        prop_assert!(
            rel_error(ana, net) <= NetSimBackend::new(chunks).agreement_bound(ndims) + 1e-9,
            "β-only rel err {} above bound", rel_error(ana, net)
        );
    }

    /// Law 2: rel-err to the analytical model is non-increasing as α
    /// shrinks, and reaches the β-only bound at α = 0.
    #[test]
    fn rel_err_to_analytical_vanishes_as_alpha_shrinks(
        dims in arb_dims(),
        kinds in prop::collection::vec(arb_kind(), 4),
        collective in arb_collective(),
        chunks in arb_chunks(),
        gb in 0.01f64..8.0,
        alpha0 in 1e6f64..1e9, // 1 µs .. 1 ms per hop, then ÷100 each step
    ) {
        let ndims = dims.len();
        let backend = NetSimBackend::new(chunks);
        let ana = {
            let (n, bw, plan) =
                plan_for(collective, gb, &dims, &kinds[..ndims], LinkParams::zero());
            Analytical::new().eval_plan(n, &bw, &plan).unwrap()
        };
        let mut last_err = f64::INFINITY;
        let mut last_t = f64::INFINITY;
        for step in 0..4 {
            let alpha = if step == 3 { 0.0 } else { alpha0 / 100f64.powi(step) };
            let (n, bw, plan) =
                plan_for(collective, gb, &dims, &kinds[..ndims], LinkParams::latency(alpha));
            let t = backend.eval_plan(n, &bw, &plan).unwrap();
            // Latency only ever slows the plan (picosecond rounding slack).
            prop_assert!(t <= last_t + 1e-9, "shrinking α sped the plan up: {t} > {last_t}");
            let err = rel_error(ana, t);
            prop_assert!(err <= last_err + 1e-9, "rel err grew as α shrank");
            last_err = err;
            last_t = t;
        }
        prop_assert!(
            last_err <= backend.agreement_bound(ndims) + 1e-9,
            "α→0 rel err {last_err} did not reach the β-only bound {}",
            backend.agreement_bound(ndims)
        );
    }

    /// Law 3: offloaded plans are bracketed by the offloaded closed form
    /// on all-Switch fabrics.
    #[test]
    fn offloaded_brackets_analytical_offload(
        dims in arb_dims(),
        chunks in arb_chunks(),
        collective in arb_collective(),
        gb in 0.01f64..8.0,
    ) {
        let ndims = dims.len();
        let kinds = vec![UnitTopology::Switch; ndims];
        let (n, bw, plan) = plan_for(collective, gb, &dims, &kinds, LinkParams::zero());
        let backend = NetSimBackend::offloaded(chunks);
        let net = backend.eval_plan(n, &bw, &plan).unwrap();
        let ana =
            Analytical { in_network_offload: true }.eval_plan(n, &bw, &plan).unwrap();
        // Per-stage picosecond rounding slack (≤ chunks · 2 · ndims stages).
        let eps = (chunks * 2 * ndims) as f64 * 0.5e-12 + 1e-12;
        prop_assert!(net >= ana - eps, "offloaded sim {net} beat the closed form {ana}");
        prop_assert!(
            rel_error(ana, net) <= backend.agreement_bound(ndims) + 1e-9,
            "offloaded rel err {} above bound {} ({collective:?}, {chunks} chunks)",
            rel_error(ana, net),
            backend.agreement_bound(ndims)
        );
    }
}
