//! # libra-tacos
//!
//! A TACOS-style **topology-aware collective algorithm synthesizer** — the
//! substrate for the paper's Fig. 20 co-design study (LIBRA + TACOS).
//!
//! TACOS (Won et al.) synthesizes collective algorithms for arbitrary
//! topologies by greedily matching chunks to links on a time-expanded
//! network graph. This crate implements the same scheme for All-Gather:
//!
//! 1. every node starts with its own shard (split into sub-chunks);
//! 2. whenever a link is free, it greedily picks a chunk its source holds
//!    and its destination has not yet been promised, preferring the
//!    *rarest* chunk network-wide (ties broken deterministically, with an
//!    optional seeded shuffle);
//! 3. the resulting per-link send lists form a [`LinkSchedule`] that the
//!    `libra-sim` link simulator executes and validates.
//!
//! Reduce-Scatter is the time-reversal of All-Gather on the same schedule,
//! so a synthesized All-Reduce costs exactly twice the All-Gather makespan
//! — the composition the paper's Fig. 20 experiment uses.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use libra_sim::event::{transfer_ps, EventQueue, Time};
use libra_sim::linksim::{execute, is_allgather_complete, ChunkSend, LinkGraph, LinkSchedule};

/// Synthesis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// Sub-chunks each node's shard is split into (the paper's Fig. 20 run
    /// uses 8 chunks).
    pub chunks_per_shard: usize,
    /// Seed for tie-breaking among equally attractive chunks.
    pub seed: u64,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig { chunks_per_shard: 8, seed: 0x7ac05 }
    }
}

/// A synthesized All-Gather algorithm.
#[derive(Debug, Clone)]
pub struct SynthesizedCollective {
    /// Per-link ordered sends.
    pub schedule: LinkSchedule,
    /// Predicted All-Gather makespan (ps).
    pub allgather_ps: Time,
    /// Total chunks in flight (`n_nodes × chunks_per_shard`).
    pub n_chunks: usize,
    /// Bytes per chunk.
    pub chunk_bytes: f64,
}

impl SynthesizedCollective {
    /// All-Reduce time: Reduce-Scatter (time-reversed All-Gather) followed
    /// by the All-Gather itself.
    pub fn allreduce_ps(&self) -> Time {
        2 * self.allgather_ps
    }

    /// The initial owner of a chunk (`chunk / chunks_per_shard`).
    pub fn owner(&self, chunk: usize, chunks_per_shard: usize) -> usize {
        chunk / chunks_per_shard
    }
}

#[derive(Debug)]
enum Ev {
    LinkFree(usize),
    Arrival { node: usize },
}

/// Synthesizes an All-Gather schedule for `bytes_per_node`-byte shards on a
/// topology graph.
///
/// # Panics
/// Panics if the graph has no links, `chunks_per_shard == 0`, or
/// `bytes_per_node <= 0`.
pub fn synthesize_allgather(
    graph: &LinkGraph,
    bytes_per_node: f64,
    config: &SynthesisConfig,
) -> SynthesizedCollective {
    assert!(!graph.links().is_empty(), "graph has no links");
    assert!(config.chunks_per_shard > 0, "need at least one chunk per shard");
    assert!(bytes_per_node > 0.0, "shard bytes must be positive");

    let n = graph.n_nodes();
    let cps = config.chunks_per_shard;
    let n_chunks = n * cps;
    let chunk_bytes = bytes_per_node / cps as f64;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // arrival[node][chunk]: when the chunk is (or will be) at the node.
    let mut arrival: Vec<Vec<Option<Time>>> = vec![vec![None; n_chunks]; n];
    // promised[node][chunk]: a send delivering the chunk is already queued.
    let mut promised: Vec<Vec<bool>> = vec![vec![false; n_chunks]; n];
    let mut copies = vec![0usize; n_chunks];
    for c in 0..n_chunks {
        let o = c / cps;
        arrival[o][c] = Some(0);
        promised[o][c] = true;
        copies[c] = 1;
    }

    let out_links: Vec<&[usize]> = (0..n).map(|v| graph.out_links(v)).collect();
    let in_links: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            graph.links().iter().enumerate().filter(|(_, l)| l.dst == v).map(|(i, _)| i).collect()
        })
        .collect();
    let mut free_at = vec![0 as Time; graph.links().len()];
    let mut per_link: Vec<Vec<ChunkSend>> = vec![Vec::new(); graph.links().len()];
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for li in 0..graph.links().len() {
        queue.push(0, Ev::LinkFree(li));
    }
    let mut makespan: Time = 0;
    let mut remaining: usize = n_chunks * n - n_chunks; // (node, chunk) pairs to deliver

    // Greedy time-expanded matching with ETA deferral: when a link frees up
    // (or data arrives at its source), it ships the rarest chunk its
    // destination still needs — *unless* a sibling in-link of the same
    // destination could deliver that chunk strictly earlier, in which case
    // the slow link defers and retries at that alternative's ETA. This is
    // what keeps slow dimensions of a LIBRA-shaped (heterogeneous) fabric
    // from turning their full-size transfers into end-of-collective
    // stragglers.
    let try_schedule = |li: usize,
                        now: Time,
                        arrival: &mut Vec<Vec<Option<Time>>>,
                        promised: &mut Vec<Vec<bool>>,
                        copies: &mut Vec<usize>,
                        free_at: &mut Vec<Time>,
                        per_link: &mut Vec<Vec<ChunkSend>>,
                        queue: &mut EventQueue<Ev>,
                        makespan: &mut Time,
                        remaining: &mut usize,
                        rng: &mut StdRng| {
        if free_at[li] > now {
            return;
        }
        let link = graph.links()[li];
        let my_dur = transfer_ps(chunk_bytes, link.gbps);
        // Candidate chunks: at src now, not yet promised to dst.
        let mut cands: Vec<usize> = (0..n_chunks)
            .filter(|&c| !promised[link.dst][c] && arrival[link.src][c].is_some_and(|t| t <= now))
            .collect();
        if cands.is_empty() {
            return;
        }
        // Rarest-first; shuffle first so equal-rarity ties break randomly
        // but reproducibly.
        cands.shuffle(rng);
        cands.sort_by_key(|&c| copies[c]);
        let mut retry_at: Option<Time> = None;
        for &chunk in &cands {
            // Best alternative ETA over sibling in-links holding the chunk.
            let my_eta = now + my_dur;
            let alt = in_links[link.dst]
                .iter()
                .filter(|&&lj| lj != li)
                .filter_map(|&lj| {
                    let l2 = graph.links()[lj];
                    let avail = arrival[l2.src][chunk]?;
                    Some(free_at[lj].max(avail).max(now) + transfer_ps(chunk_bytes, l2.gbps))
                })
                .min();
            if let Some(alt_eta) = alt {
                if alt_eta < my_eta {
                    retry_at = Some(retry_at.map_or(alt_eta, |r: Time| r.min(alt_eta)));
                    continue; // a sibling delivers this chunk sooner
                }
            }
            let end = now + my_dur;
            free_at[li] = end;
            promised[link.dst][chunk] = true;
            per_link[li].push(ChunkSend { chunk, bytes: chunk_bytes });
            arrival[link.dst][chunk] = Some(end);
            copies[chunk] += 1;
            *remaining -= 1;
            *makespan = (*makespan).max(end);
            queue.push(end, Ev::LinkFree(li));
            queue.push(end, Ev::Arrival { node: link.dst });
            return;
        }
        // Every candidate deferred: revisit when the best alternative
        // should have acted.
        if let Some(t) = retry_at {
            queue.push(t.max(now + 1), Ev::LinkFree(li));
        }
    };

    while remaining > 0 {
        let Some((now, ev)) = queue.pop() else { break };
        match ev {
            Ev::LinkFree(li) => {
                try_schedule(
                    li,
                    now,
                    &mut arrival,
                    &mut promised,
                    &mut copies,
                    &mut free_at,
                    &mut per_link,
                    &mut queue,
                    &mut makespan,
                    &mut remaining,
                    &mut rng,
                );
            }
            Ev::Arrival { node } => {
                for &li in out_links[node] {
                    try_schedule(
                        li,
                        now,
                        &mut arrival,
                        &mut promised,
                        &mut copies,
                        &mut free_at,
                        &mut per_link,
                        &mut queue,
                        &mut makespan,
                        &mut remaining,
                        &mut rng,
                    );
                }
            }
        }
    }
    assert_eq!(remaining, 0, "synthesis failed to cover all (node, chunk) pairs");

    SynthesizedCollective {
        schedule: LinkSchedule { per_link },
        allgather_ps: makespan,
        n_chunks,
        chunk_bytes,
    }
}

/// Validates a synthesized schedule by executing it on the link simulator.
///
/// Returns the executed makespan, which must complete the All-Gather.
///
/// # Panics
/// Panics if the schedule deadlocks or leaves a node without some chunk —
/// both indicate a synthesizer bug.
pub fn validate(graph: &LinkGraph, synth: &SynthesizedCollective, cps: usize) -> Time {
    let (makespan, arrival) = execute(graph, &synth.schedule, synth.n_chunks, |c| c / cps)
        .expect("synthesized schedule must be executable");
    assert!(is_allgather_complete(&arrival), "synthesized All-Gather incomplete");
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_on_a_ring() {
        let g = LinkGraph::ring(8, 10.0);
        let cfg = SynthesisConfig { chunks_per_shard: 4, seed: 1 };
        let s = synthesize_allgather(&g, 1e9, &cfg);
        let t = validate(&g, &s, cfg.chunks_per_shard);
        assert_eq!(t, s.allgather_ps, "execution must match prediction");
    }

    #[test]
    fn completes_on_a_3d_torus() {
        let g = LinkGraph::torus(&[(4, 10.0), (4, 10.0), (4, 10.0)]);
        let cfg = SynthesisConfig::default();
        let s = synthesize_allgather(&g, 0.5e9, &cfg);
        validate(&g, &s, cfg.chunks_per_shard);
    }

    /// The greedy schedule on a ring is near the (n−1)-round optimum.
    #[test]
    fn near_optimal_on_uniform_ring() {
        let n = 8;
        let g = LinkGraph::ring(n, 10.0);
        let cfg = SynthesisConfig { chunks_per_shard: 1, seed: 42 };
        let bytes = 1e9;
        let s = synthesize_allgather(&g, bytes, &cfg);
        // Lower bound: each node must receive n−1 shards over 2 incoming
        // links → (n−1)/2 serialized transfers.
        let lower = transfer_ps(bytes, 10.0) * ((n as u64 - 1) / 2);
        let upper = transfer_ps(bytes, 10.0) * (n as u64 - 1);
        assert!(s.allgather_ps >= lower);
        assert!(
            s.allgather_ps <= upper,
            "greedy {} should beat one-directional ring {upper}",
            s.allgather_ps
        );
    }

    /// Faster links finish sooner: scaling every link 2× halves the time.
    #[test]
    fn scales_with_bandwidth() {
        let cfg = SynthesisConfig { chunks_per_shard: 2, seed: 7 };
        let slow = synthesize_allgather(&LinkGraph::ring(6, 10.0), 1e9, &cfg);
        let fast = synthesize_allgather(&LinkGraph::ring(6, 20.0), 1e9, &cfg);
        let ratio = slow.allgather_ps as f64 / fast.allgather_ps as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }

    /// Determinism for a fixed seed; different seeds may differ.
    #[test]
    fn deterministic_per_seed() {
        let g = LinkGraph::torus(&[(4, 10.0), (2, 5.0)]);
        let cfg = SynthesisConfig { chunks_per_shard: 2, seed: 3 };
        let a = synthesize_allgather(&g, 1e9, &cfg);
        let b = synthesize_allgather(&g, 1e9, &cfg);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.allgather_ps, b.allgather_ps);
    }

    /// All-Reduce is exactly twice the All-Gather.
    #[test]
    fn allreduce_doubles_allgather() {
        let g = LinkGraph::ring(4, 10.0);
        let s = synthesize_allgather(&g, 1e9, &SynthesisConfig::default());
        assert_eq!(s.allreduce_ps(), 2 * s.allgather_ps);
    }

    /// Heterogeneous (LIBRA-shaped) tori still complete, and weighting
    /// bandwidth toward dim 0 helps when most traffic is local.
    #[test]
    fn heterogeneous_torus_completes() {
        let equal = LinkGraph::torus(&[(4, 111.0), (4, 111.0), (4, 111.0)]);
        let libra = LinkGraph::torus(&[(4, 254.0), (4, 63.0), (4, 16.0)]);
        let cfg = SynthesisConfig::default();
        let a = synthesize_allgather(&equal, 1e9 / 64.0, &cfg);
        let b = synthesize_allgather(&libra, 1e9 / 64.0, &cfg);
        validate(&equal, &a, cfg.chunks_per_shard);
        validate(&libra, &b, cfg.chunks_per_shard);
    }
}
