//! Property tests for the `.wl` workload text format: `parse(to_wl(w))`
//! must reproduce `w` exactly over generated workloads (full `f64`
//! precision included), and malformed inputs must fail with the precise
//! line number and reason the parser documents.

use libra_core::comm::{Collective, GroupSpan};
use libra_core::error::LibraError;
use libra_core::workload::{CommOp, Layer, Workload};
use libra_workloads::format::{from_wl, to_wl};
use proptest::prelude::*;
use proptest::TestCaseError;

fn arb_collective() -> impl Strategy<Value = Collective> {
    prop_oneof![
        Just(Collective::AllReduce),
        Just(Collective::ReduceScatter),
        Just(Collective::AllGather),
        Just(Collective::AllToAll),
        Just(Collective::PointToPoint),
    ]
}

/// A non-trivial span over 1–4 ascending dimensions (the format cannot
/// represent empty spans — a trivial group performs no collective, so
/// generators never emit one).
fn arb_span() -> impl Strategy<Value = GroupSpan> {
    prop::collection::vec(prop_oneof![Just(2u64), Just(4), Just(8), Just(32)], 1..5)
        .prop_map(|extents| GroupSpan::new(extents.into_iter().enumerate().collect()))
}

/// An optional communication op: present ~2/3 of the time.
fn arb_comm() -> impl Strategy<Value = Option<CommOp>> {
    (0u8..3, arb_collective(), 0.0f64..9e9, arb_span()).prop_map(
        |(present, collective, bytes, span)| {
            (present > 0).then(|| CommOp::new(collective, bytes, span))
        },
    )
}

/// A layer with float-precision compute times and up to three comm ops.
fn arb_layer() -> impl Strategy<Value = Layer> {
    (0u32..1000, (0.0f64..2.0, 0.0f64..2.0, 0.0f64..2.0), arb_comm(), arb_comm(), arb_comm())
        .prop_map(|(id, (fwd, igrad, wgrad), fwd_comm, tp_comm, dp_comm)| Layer {
            name: format!("layer-{id}"),
            fwd_compute: fwd,
            fwd_comm,
            igrad_compute: igrad,
            tp_comm,
            wgrad_compute: wgrad,
            dp_comm,
        })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (0u32..1000, prop::collection::vec(arb_layer(), 0..8))
        .prop_map(|(id, layers)| Workload::new(format!("model-{id}"), layers))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The round-trip law: serialization is lossless, down to the last
    /// bit of every `f64` (Rust's shortest-round-trip float formatting).
    #[test]
    fn wl_round_trip_is_identity(w in arb_workload()) {
        let text = to_wl(&w);
        let back = from_wl(&text).map_err(|e| {
            TestCaseError::fail(format!("generated workload failed to parse: {e:?}\n{text}"))
        })?;
        prop_assert_eq!(&back, &w, "round trip changed the workload");
        // And serialization is deterministic: a second lap is textual.
        prop_assert_eq!(to_wl(&back), text);
    }
}

/// Asserts `from_wl(text)` fails at `line` with a reason containing
/// `needle`.
fn assert_parse_error(text: &str, line: usize, needle: &str) {
    match from_wl(text) {
        Err(LibraError::ParseWorkload { line: got_line, reason }) => {
            assert_eq!(got_line, line, "wrong line for {text:?} (reason {reason:?})");
            assert!(
                reason.contains(needle),
                "reason {reason:?} does not mention {needle:?} for {text:?}"
            );
        }
        other => panic!("expected ParseWorkload for {text:?}, got {other:?}"),
    }
}

#[test]
fn malformed_span_errors_are_precise() {
    let head = "WORKLOAD t\nLAYER l\n";
    // Missing SPAN keyword entirely.
    assert_parse_error(&format!("{head}  DP_COMM ALLREDUCE 1"), 3, "expected SPAN keyword");
    // SPAN keyword present but the list is missing.
    assert_parse_error(&format!("{head}  DP_COMM ALLREDUCE 1 SPAN"), 3, "missing span list");
    // Entries must be dim:extent pairs.
    assert_parse_error(
        &format!("{head}  DP_COMM ALLREDUCE 1 SPAN 4"),
        3,
        "span entries must look like dim:extent",
    );
    // Dims must be integers, strictly ascending; extents at least 2.
    assert_parse_error(
        &format!("{head}  DP_COMM ALLREDUCE 1 SPAN x:4"),
        3,
        "span dim is not an integer",
    );
    assert_parse_error(
        &format!("{head}  DP_COMM ALLREDUCE 1 SPAN 0:y"),
        3,
        "span extent is not an integer",
    );
    assert_parse_error(
        &format!("{head}  DP_COMM ALLREDUCE 1 SPAN 2:4,1:2"),
        3,
        "span dims must be strictly ascending",
    );
    assert_parse_error(
        &format!("{head}  DP_COMM ALLREDUCE 1 SPAN 0:1"),
        3,
        "span extent must be at least 2",
    );
}

#[test]
fn missing_field_errors_are_precise() {
    // Missing top-level directives and names.
    assert_parse_error("LAYER l\n", 0, "missing WORKLOAD directive");
    assert_parse_error("WORKLOAD\n", 1, "WORKLOAD needs a name");
    assert_parse_error("WORKLOAD t\nLAYER\n", 2, "LAYER needs a name");
    // Missing comm fields, with the line number pointing at the comm line.
    let head = "WORKLOAD t\nLAYER l\n";
    assert_parse_error(&format!("{head}  TP_COMM"), 3, "missing collective name");
    assert_parse_error(&format!("{head}  TP_COMM ALLREDUCE"), 3, "missing byte count");
    assert_parse_error(&format!("{head}  TP_COMM FROBNICATE 1 SPAN 0:4"), 3, "unknown collective");
    assert_parse_error(&format!("{head}  TP_COMM ALLREDUCE nan SPAN 0:4"), 3, "byte count");
    // Missing compute values, and garbage ones.
    assert_parse_error(&format!("{head}  FWD_COMPUTE"), 3, "missing compute value");
    assert_parse_error(
        &format!("{head}  WGRAD_COMPUTE banana"),
        3,
        "compute value is not a number",
    );
    // Structure errors: content before its parent directive.
    assert_parse_error("WORKLOAD t\n  FWD_COMPUTE 1\n", 2, "compute line before any LAYER");
    assert_parse_error(
        "WORKLOAD t\n  DP_COMM ALLREDUCE 1 SPAN 0:4\n",
        2,
        "comm line before any LAYER",
    );
    // Duplicate workload directive names its line.
    assert_parse_error("WORKLOAD a\nWORKLOAD b\n", 2, "duplicate WORKLOAD directive");
}
