//! # libra-workloads
//!
//! DNN workload generators and parsers for LIBRA — the "Workload Parser"
//! input stage of the paper's Fig. 3 and the Table II model zoo:
//!
//! | Workload   | Params | TP size          |
//! |------------|--------|------------------|
//! | Turing-NLG | 17B    | 1                |
//! | GPT-3      | 175B   | 16               |
//! | MSFT-1T    | 1T     | 128              |
//! | DLRM       | 57M (MLP only) | all NPUs |
//! | ResNet-50  | 25.6M  | 1                |
//!
//! Components:
//! * [`compute`] — FLOPs → seconds (234 TFLOPS ≈ 75 %-efficient A100, §V-B).
//! * [`parallel`] — HP-(m, n) hybrid parallelism mapped onto network dims.
//! * [`transformer`] — Megatron-style transformer LLMs with ZeRO-2.
//! * [`vision`] — ResNet-50 (data parallel).
//! * [`dlrm`] — DLRM with all-NPU embedding All-to-All.
//! * [`format`] — the `.wl` text serialization of workloads.
//! * [`zoo`] — the Table II presets, sized for a given network.

pub mod compute;
pub mod dlrm;
pub mod format;
pub mod parallel;
pub mod transformer;
pub mod vision;
pub mod zoo;

pub use compute::ComputeModel;
pub use parallel::{map_hybrid, GroupMap};
pub use zoo::{workload_for, PaperModel};
