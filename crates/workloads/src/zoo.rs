//! The Table II model zoo: one constructor per paper workload, sized for a
//! given network.

use libra_core::error::LibraError;
use libra_core::network::NetworkShape;
use libra_core::workload::Workload;

use crate::compute::ComputeModel;
use crate::dlrm::DlrmConfig;
use crate::transformer::TransformerConfig;
use crate::vision::ResNet50Config;

/// The five evaluation workloads of the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperModel {
    /// Turing-NLG, 17B parameters, TP-1.
    TuringNlg,
    /// GPT-3, 175B parameters, TP-16.
    Gpt3,
    /// MSFT-1T, 1T parameters, TP-128.
    Msft1T,
    /// DLRM, 57M MLP parameters, embedding TP across all NPUs.
    Dlrm,
    /// ResNet-50, 25.6M parameters, TP-1.
    ResNet50,
}

impl PaperModel {
    /// All five models, in Table II order.
    pub fn all() -> [PaperModel; 5] {
        [
            PaperModel::TuringNlg,
            PaperModel::Gpt3,
            PaperModel::Msft1T,
            PaperModel::Dlrm,
            PaperModel::ResNet50,
        ]
    }

    /// The three transformer LLMs (used in Figs. 13/14/17a).
    pub fn llms() -> [PaperModel; 3] {
        [PaperModel::TuringNlg, PaperModel::Gpt3, PaperModel::Msft1T]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperModel::TuringNlg => "Turing-NLG",
            PaperModel::Gpt3 => "GPT-3",
            PaperModel::Msft1T => "MSFT-1T",
            PaperModel::Dlrm => "DLRM",
            PaperModel::ResNet50 => "ResNet-50",
        }
    }

    /// Looks a model up by its display name, case-insensitively and
    /// ignoring `-`/`_` separators (`"GPT-3"`, `"gpt3"`, and `"gpt_3"`
    /// all resolve) — how scenario files reference Table II workloads.
    pub fn by_name(name: &str) -> Option<PaperModel> {
        fn canon(s: &str) -> String {
            s.chars().filter(|c| *c != '-' && *c != '_').flat_map(char::to_lowercase).collect()
        }
        let key = canon(name);
        PaperModel::all().into_iter().find(|m| canon(m.name()) == key)
    }
}

/// Builds the workload for a paper model on the given network using the
/// default (234 TFLOPS) compute model.
///
/// # Errors
/// Fails when the model's TP degree cannot be mapped onto the network (e.g.
/// MSFT-1T's TP-128 on a 64-NPU torus).
pub fn workload_for(model: PaperModel, shape: &NetworkShape) -> Result<Workload, LibraError> {
    workload_with_compute(model, shape, &ComputeModel::default())
}

/// [`workload_for`] with an explicit compute model.
///
/// # Errors
/// See [`workload_for`].
pub fn workload_with_compute(
    model: PaperModel,
    shape: &NetworkShape,
    compute: &ComputeModel,
) -> Result<Workload, LibraError> {
    match model {
        PaperModel::TuringNlg => TransformerConfig::turing_nlg().build(shape, compute),
        PaperModel::Gpt3 => TransformerConfig::gpt3().build(shape, compute),
        PaperModel::Msft1T => TransformerConfig::msft_1t().build(shape, compute),
        PaperModel::Dlrm => DlrmConfig::default().build(shape, compute),
        PaperModel::ResNet50 => ResNet50Config::default().build(shape, compute),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_on_4d_4k() {
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        for m in PaperModel::all() {
            let w = workload_for(m, &shape).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert_eq!(w.name, m.name());
            assert!(w.total_comm_bytes() > 0.0, "{} must communicate", m.name());
        }
    }

    /// Fig. 1's ordering: per-iteration communication grows with model size
    /// across the LLM family.
    #[test]
    fn comm_size_ordering_matches_fig1() {
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let t = workload_for(PaperModel::TuringNlg, &shape).unwrap().total_comm_bytes();
        let g = workload_for(PaperModel::Gpt3, &shape).unwrap().total_comm_bytes();
        let m = workload_for(PaperModel::Msft1T, &shape).unwrap().total_comm_bytes();
        let r = workload_for(PaperModel::ResNet50, &shape).unwrap().total_comm_bytes();
        assert!(r < t && t < g && g < m, "resnet {r} < t-nlg {t} < gpt3 {g} < msft-1t {m}");
    }

    #[test]
    fn msft_1t_needs_128_npus() {
        let small: NetworkShape = "RI(4)_RI(4)_RI(4)".parse().unwrap();
        assert!(workload_for(PaperModel::Msft1T, &small).is_err());
    }
}
