//! Hybrid-parallelism mapping: placing HP-(m, n) groups onto the physical
//! dimensions of a network (paper §II-B).
//!
//! LIBRA places tensor-parallel (TP) groups on the *innermost* dimensions —
//! TP communicates activations every layer, so it should ride the
//! cheapest/fastest fabric — and data-parallel (DP) groups on whatever is
//! left. A TP group may occupy a *fraction* of a dimension: TP-16 on
//! `RI(4)_FC(8)_…` becomes extents `[(0,4), (1,4)]`, leaving the remaining
//! ×2 of dimension 1 (plus all outer dimensions) to DP. This sub-extent
//! mapping is what reproduces the paper's "mismatching TP size" note for
//! GPT-3 on the 4D-4K topology.

use libra_core::comm::GroupSpan;
use libra_core::error::LibraError;
use libra_core::network::NetworkShape;

/// The TP and DP spans of an HP-(tp, dp) placement.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMap {
    /// Tensor-parallel group span (innermost dimensions).
    pub tp: GroupSpan,
    /// Data-parallel group span (everything left over).
    pub dp: GroupSpan,
}

/// The TP, PP and DP spans of an HP-(tp, pp, dp) placement
/// (tensor-parallel innermost, pipeline stages next, data-parallel last).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMap3 {
    /// Tensor-parallel group span.
    pub tp: GroupSpan,
    /// Pipeline-parallel span (stage-to-stage transfers cross these dims).
    pub pp: GroupSpan,
    /// Data-parallel group span.
    pub dp: GroupSpan,
}

impl GroupMap3 {
    /// The dimension crossed when moving from pipeline stage `s` to `s+1`:
    /// the lowest pipeline dimension whose mixed-radix digit changes.
    ///
    /// # Panics
    /// Panics if `s + 1` is not a valid stage index or the map has no
    /// pipeline span.
    pub fn pp_boundary_dim(&self, s: u64) -> usize {
        assert!(!self.pp.is_trivial(), "no pipeline span");
        let mut rem = s;
        for &(dim, e) in self.pp.extents() {
            let digit = rem % e;
            if digit != e - 1 {
                return dim;
            }
            rem /= e;
        }
        // s was the last stage; there is no boundary s → s+1.
        panic!("stage {s} has no successor");
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Maps HP-(tp, npus/tp) onto a network: TP fills dimensions from the
/// innermost outward (taking the largest factor of the dimension size that
/// divides the remaining TP degree); DP receives each dimension's leftover.
///
/// # Errors
/// Returns [`LibraError::GroupMapping`] when `tp` does not divide the NPU
/// count or cannot be factored into the dimension sizes (e.g. TP-6 on a
/// power-of-two machine).
pub fn map_hybrid(shape: &NetworkShape, tp: u64) -> Result<GroupMap, LibraError> {
    let npus = shape.npus();
    let err = |reason: String| LibraError::GroupMapping { group: tp, dims: shape.sizes(), reason };
    if tp == 0 {
        return Err(err("TP degree must be at least 1".into()));
    }
    if !npus.is_multiple_of(tp) {
        return Err(err(format!("TP degree must divide the NPU count {npus}")));
    }
    let mut remaining = tp;
    let mut tp_extents: Vec<(usize, u64)> = Vec::new();
    let mut dp_extents: Vec<(usize, u64)> = Vec::new();
    for (i, d) in shape.dims().iter().enumerate() {
        let e = gcd(remaining, d.size);
        // Take the largest factor of this dim that divides what's left of
        // the TP degree. (gcd is exactly that for the common power-of-two
        // shapes; for mixed radices it is the canonical greedy choice.)
        if e > 1 {
            tp_extents.push((i, e));
            remaining /= e;
        }
        let leftover = d.size / e;
        if leftover > 1 {
            dp_extents.push((i, leftover));
        }
    }
    if remaining != 1 {
        return Err(err(format!(
            "TP degree has a residual factor {remaining} not present in the dims"
        )));
    }
    Ok(GroupMap { tp: GroupSpan::new(tp_extents), dp: GroupSpan::new(dp_extents) })
}

/// Maps HP-(tp, pp, npus/(tp·pp)) onto a network: TP fills the innermost
/// dimensions, pipeline stages take the next factors, and DP receives the
/// rest.
///
/// # Errors
/// Returns [`LibraError::GroupMapping`] when `tp·pp` does not divide the
/// NPU count or cannot be factored into the dimension sizes.
pub fn map_hybrid3(shape: &NetworkShape, tp: u64, pp: u64) -> Result<GroupMap3, LibraError> {
    let npus = shape.npus();
    let err = |group: u64, reason: String| LibraError::GroupMapping {
        group,
        dims: shape.sizes(),
        reason,
    };
    if tp == 0 || pp == 0 {
        return Err(err(tp.max(pp), "degrees must be at least 1".into()));
    }
    if !npus.is_multiple_of(tp * pp) {
        return Err(err(tp * pp, format!("TP·PP must divide the NPU count {npus}")));
    }
    let mut rem_tp = tp;
    let mut rem_pp = pp;
    let mut tp_extents: Vec<(usize, u64)> = Vec::new();
    let mut pp_extents: Vec<(usize, u64)> = Vec::new();
    let mut dp_extents: Vec<(usize, u64)> = Vec::new();
    for (i, d) in shape.dims().iter().enumerate() {
        let mut leftover = d.size;
        let e_tp = gcd(rem_tp, leftover);
        if e_tp > 1 {
            tp_extents.push((i, e_tp));
            rem_tp /= e_tp;
            leftover /= e_tp;
        }
        // PP only starts claiming factors once TP is fully placed, keeping
        // the stages contiguous just outside the TP group.
        if rem_tp == 1 {
            let e_pp = gcd(rem_pp, leftover);
            if e_pp > 1 {
                pp_extents.push((i, e_pp));
                rem_pp /= e_pp;
                leftover /= e_pp;
            }
        }
        if leftover > 1 {
            dp_extents.push((i, leftover));
        }
    }
    if rem_tp != 1 || rem_pp != 1 {
        return Err(err(
            tp * pp,
            format!("residual factors tp={rem_tp}, pp={rem_pp} not present in the dims"),
        ));
    }
    Ok(GroupMap3 {
        tp: GroupSpan::new(tp_extents),
        pp: GroupSpan::new(pp_extents),
        dp: GroupSpan::new(dp_extents),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(s: &str) -> NetworkShape {
        s.parse().unwrap()
    }

    #[test]
    fn tp1_leaves_everything_to_dp() {
        let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
        let m = map_hybrid(&s, 1).unwrap();
        assert!(m.tp.is_trivial());
        assert_eq!(m.dp.size(), 4096);
    }

    /// GPT-3's TP-16 on 4D-4K: TP spans dim 0 fully and *half* of dim 1;
    /// DP gets the remaining ×2 of dim 1 plus dims 2–3 (the paper's
    /// "mismatching TP size" case).
    #[test]
    fn tp16_on_4d_4k_splits_dim1() {
        let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
        let m = map_hybrid(&s, 16).unwrap();
        assert_eq!(m.tp.extents(), &[(0, 4), (1, 4)]);
        assert_eq!(m.dp.extents(), &[(1, 2), (2, 4), (3, 32)]);
        assert_eq!(m.tp.size() * m.dp.size(), 4096);
    }

    /// MSFT-1T's TP-128 on 4D-4K consumes dims 0–2 exactly.
    #[test]
    fn tp128_on_4d_4k_consumes_three_dims() {
        let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
        let m = map_hybrid(&s, 128).unwrap();
        assert_eq!(m.tp.extents(), &[(0, 4), (1, 8), (2, 4)]);
        assert_eq!(m.dp.extents(), &[(3, 32)]);
    }

    #[test]
    fn tp128_on_3d_4k() {
        let s = shape("RI(16)_FC(8)_SW(32)");
        let m = map_hybrid(&s, 128).unwrap();
        assert_eq!(m.tp.extents(), &[(0, 16), (1, 8)]);
        assert_eq!(m.dp.extents(), &[(2, 32)]);
    }

    #[test]
    fn full_machine_tp_has_no_dp() {
        let s = shape("RI(4)_RI(4)_RI(4)");
        let m = map_hybrid(&s, 64).unwrap();
        assert_eq!(m.tp.size(), 64);
        assert!(m.dp.is_trivial());
    }

    #[test]
    fn rejects_non_dividing_tp() {
        let s = shape("RI(4)_FC(8)");
        assert!(matches!(map_hybrid(&s, 3), Err(LibraError::GroupMapping { .. })));
        assert!(matches!(map_hybrid(&s, 0), Err(LibraError::GroupMapping { .. })));
    }

    #[test]
    fn rejects_unfactorable_tp() {
        // 6 divides 24 but its factor 3 never fits the power-of-two dims.
        let s = shape("RI(4)_FC(8)_SW(6)");
        // npus = 192, tp = 6: gcd(6,4)=2, rem 3; gcd(3,8)=1; gcd(3,6)=3 → ok!
        let m = map_hybrid(&s, 6).unwrap();
        assert_eq!(m.tp.extents(), &[(0, 2), (2, 3)]);
        // But TP-9 cannot be factored (only one factor of 3 available).
        assert!(map_hybrid(&s, 9).is_err());
    }

    #[test]
    fn spans_are_orthogonal_partitions() {
        for tp in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
            let m = map_hybrid(&s, tp).unwrap();
            assert_eq!(m.tp.size() * m.dp.size(), s.npus(), "tp={tp}");
        }
    }

    #[test]
    fn hybrid3_partitions_three_ways() {
        let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
        let m = map_hybrid3(&s, 16, 8).unwrap();
        assert_eq!(m.tp.extents(), &[(0, 4), (1, 4)]);
        assert_eq!(m.pp.extents(), &[(1, 2), (2, 4)]);
        assert_eq!(m.dp.extents(), &[(3, 32)]);
        assert_eq!(m.tp.size() * m.pp.size() * m.dp.size(), s.npus());
    }

    #[test]
    fn hybrid3_degenerates_to_hybrid_when_pp_is_1() {
        let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
        let two = map_hybrid(&s, 16).unwrap();
        let three = map_hybrid3(&s, 16, 1).unwrap();
        assert_eq!(two.tp, three.tp);
        assert_eq!(two.dp, three.dp);
        assert!(three.pp.is_trivial());
    }

    #[test]
    fn pp_boundary_dims_follow_mixed_radix() {
        let s = shape("RI(4)_FC(8)_RI(4)_SW(32)");
        let m = map_hybrid3(&s, 16, 8).unwrap();
        // PP extents: [(1,2), (2,4)] → stage digits (d1, d2) in radix (2,4).
        // Boundary 0→1 flips the dim-1 digit; 1→2 wraps it, crossing dim 2.
        assert_eq!(m.pp_boundary_dim(0), 1);
        assert_eq!(m.pp_boundary_dim(1), 2);
        assert_eq!(m.pp_boundary_dim(2), 1);
        assert_eq!(m.pp_boundary_dim(3), 2);
    }

    #[test]
    fn hybrid3_rejects_oversized_groups() {
        let s = shape("RI(4)_FC(8)");
        assert!(map_hybrid3(&s, 16, 4).is_err(), "tp·pp = 64 > 32 NPUs");
        assert!(map_hybrid3(&s, 0, 2).is_err());
    }
}
