//! The `.wl` workload text format.
//!
//! A line-oriented serialization of [`Workload`]s in the spirit of
//! ASTRA-sim's workload files, so workloads can be generated once, inspected
//! by hand, and replayed:
//!
//! ```text
//! # optional comments
//! WORKLOAD GPT-3
//! LAYER transformer
//!   FWD_COMPUTE 0.015873
//!   FWD_COMM ALLREDUCE 805306368 SPAN 0:4,1:4
//!   IGRAD_COMPUTE 0.015873
//!   TP_COMM ALLREDUCE 805306368 SPAN 0:4,1:4
//!   WGRAD_COMPUTE 0.015873
//!   DP_COMM ALLREDUCE 226492416 SPAN 1:2,2:4,3:32
//! ```
//!
//! Bytes are written with full precision; compute times in seconds. A layer
//! omits the `*_COMM` lines it does not perform.

use libra_core::comm::{Collective, GroupSpan};
use libra_core::error::LibraError;
use libra_core::workload::{CommOp, Layer, Workload};
use std::fmt::Write as _;

/// Serializes a workload to the `.wl` text format.
pub fn to_wl(workload: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "WORKLOAD {}", workload.name);
    for layer in &workload.layers {
        let _ = writeln!(out, "LAYER {}", layer.name);
        let _ = writeln!(out, "  FWD_COMPUTE {}", layer.fwd_compute);
        write_comm(&mut out, "FWD_COMM", &layer.fwd_comm);
        let _ = writeln!(out, "  IGRAD_COMPUTE {}", layer.igrad_compute);
        write_comm(&mut out, "TP_COMM", &layer.tp_comm);
        let _ = writeln!(out, "  WGRAD_COMPUTE {}", layer.wgrad_compute);
        write_comm(&mut out, "DP_COMM", &layer.dp_comm);
    }
    out
}

fn write_comm(out: &mut String, key: &str, op: &Option<CommOp>) {
    if let Some(c) = op {
        let span =
            c.span.extents().iter().map(|(d, e)| format!("{d}:{e}")).collect::<Vec<_>>().join(",");
        let _ = writeln!(out, "  {key} {} {} SPAN {span}", c.collective.code(), c.bytes);
    }
}

/// Parses a workload from the `.wl` text format.
///
/// # Errors
/// Returns [`LibraError::ParseWorkload`] with a 1-based line number for any
/// malformed line, unknown keyword, or misplaced directive.
pub fn from_wl(text: &str) -> Result<Workload, LibraError> {
    let err =
        |line: usize, reason: &str| LibraError::ParseWorkload { line, reason: reason.to_string() };
    let mut name: Option<String> = None;
    let mut layers: Vec<Layer> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line has a first token");
        match key {
            "WORKLOAD" => {
                let rest: Vec<&str> = tokens.collect();
                if rest.is_empty() {
                    return Err(err(lineno, "WORKLOAD needs a name"));
                }
                if name.is_some() {
                    return Err(err(lineno, "duplicate WORKLOAD directive"));
                }
                name = Some(rest.join(" "));
            }
            "LAYER" => {
                let rest: Vec<&str> = tokens.collect();
                if rest.is_empty() {
                    return Err(err(lineno, "LAYER needs a name"));
                }
                layers.push(Layer { name: rest.join(" "), ..Default::default() });
            }
            "FWD_COMPUTE" | "IGRAD_COMPUTE" | "WGRAD_COMPUTE" => {
                let layer = layers
                    .last_mut()
                    .ok_or_else(|| err(lineno, "compute line before any LAYER"))?;
                let v: f64 = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing compute value"))?
                    .parse()
                    .map_err(|_| err(lineno, "compute value is not a number"))?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(err(lineno, "compute value must be non-negative"));
                }
                match key {
                    "FWD_COMPUTE" => layer.fwd_compute = v,
                    "IGRAD_COMPUTE" => layer.igrad_compute = v,
                    _ => layer.wgrad_compute = v,
                }
            }
            "FWD_COMM" | "TP_COMM" | "DP_COMM" => {
                let op = parse_comm(&mut tokens, lineno)?;
                let layer =
                    layers.last_mut().ok_or_else(|| err(lineno, "comm line before any LAYER"))?;
                match key {
                    "FWD_COMM" => layer.fwd_comm = Some(op),
                    "TP_COMM" => layer.tp_comm = Some(op),
                    _ => layer.dp_comm = Some(op),
                }
            }
            other => return Err(err(lineno, &format!("unknown keyword {other:?}"))),
        }
    }
    let name = name.ok_or_else(|| err(0, "missing WORKLOAD directive"))?;
    Ok(Workload::new(name, layers))
}

fn parse_comm<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<CommOp, LibraError> {
    let err = |reason: &str| LibraError::ParseWorkload { line: lineno, reason: reason.to_string() };
    let coll = tokens.next().ok_or_else(|| err("missing collective name"))?;
    let collective =
        Collective::from_code(coll).ok_or_else(|| err(&format!("unknown collective {coll:?}")))?;
    let bytes: f64 = tokens
        .next()
        .ok_or_else(|| err("missing byte count"))?
        .parse()
        .map_err(|_| err("byte count is not a number"))?;
    if !(bytes.is_finite() && bytes >= 0.0) {
        return Err(err("byte count must be non-negative"));
    }
    match tokens.next() {
        Some("SPAN") => {}
        _ => return Err(err("expected SPAN keyword")),
    }
    let span_str = tokens.next().ok_or_else(|| err("missing span list"))?;
    let mut extents = Vec::new();
    for part in span_str.split(',') {
        let (d, e) =
            part.split_once(':').ok_or_else(|| err("span entries must look like dim:extent"))?;
        let d: usize = d.parse().map_err(|_| err("span dim is not an integer"))?;
        let e: u64 = e.parse().map_err(|_| err("span extent is not an integer"))?;
        if e < 2 {
            return Err(err("span extent must be at least 2"));
        }
        if let Some(&(last, _)) = extents.last() {
            if d <= last {
                return Err(err("span dims must be strictly ascending"));
            }
        }
        extents.push((d, e));
    }
    Ok(CommOp::new(collective, bytes, GroupSpan::new(extents)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeModel;
    use crate::transformer::TransformerConfig;
    use libra_core::network::NetworkShape;

    fn sample() -> Workload {
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        TransformerConfig::gpt3().build(&shape, &ComputeModel::default()).unwrap()
    }

    #[test]
    fn round_trip_preserves_workload() {
        let w = sample();
        let text = to_wl(&w);
        let back = from_wl(&text).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nWORKLOAD toy\n# mid\nLAYER l0\n  FWD_COMPUTE 0.5\n";
        let w = from_wl(text).unwrap();
        assert_eq!(w.name, "toy");
        assert_eq!(w.layers.len(), 1);
        assert_eq!(w.layers[0].fwd_compute, 0.5);
    }

    #[test]
    fn missing_workload_directive_is_an_error() {
        let e = from_wl("LAYER l0\n").unwrap_err();
        assert!(matches!(e, LibraError::ParseWorkload { .. }));
    }

    #[test]
    fn error_reports_line_number() {
        let text = "WORKLOAD t\nLAYER l\n  FWD_COMPUTE banana\n";
        match from_wl(text).unwrap_err() {
            LibraError::ParseWorkload { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_comm_before_layer() {
        let text = "WORKLOAD t\n  DP_COMM ALLREDUCE 10 SPAN 0:4\n";
        assert!(from_wl(text).is_err());
    }

    #[test]
    fn rejects_unknown_collective_and_bad_span() {
        assert!(from_wl("WORKLOAD t\nLAYER l\n  DP_COMM FROBNICATE 1 SPAN 0:4\n").is_err());
        assert!(from_wl("WORKLOAD t\nLAYER l\n  DP_COMM ALLREDUCE 1 SPAN 4\n").is_err());
        assert!(from_wl("WORKLOAD t\nLAYER l\n  DP_COMM ALLREDUCE 1 SPAN 2:4,1:2\n").is_err());
        assert!(from_wl("WORKLOAD t\nLAYER l\n  DP_COMM ALLREDUCE 1 SPAN 0:1\n").is_err());
    }

    #[test]
    fn duplicate_workload_rejected() {
        assert!(from_wl("WORKLOAD a\nWORKLOAD b\n").is_err());
    }
}
