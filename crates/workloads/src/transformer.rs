//! Megatron-style transformer workload generator (Turing-NLG, GPT-3,
//! MSFT-1T) with ZeRO-2 data parallelism.
//!
//! Per transformer layer with hidden size `h`, sequence `s`, per-replica
//! microbatch `b`, TP degree `t`:
//!
//! * parameters: `12 h²` (4h² attention + 8h² MLP; embeddings excluded, as
//!   they are a ≤2 % correction for these models);
//! * forward FLOPs: `24 b s h² + 4 b s² h`, sharded `÷ t` per NPU;
//! * backward ≈ 2× forward, split evenly between input-gradient ("TP
//!   compute") and weight-gradient ("DP compute") GEMMs;
//! * TP communication (Megatron): two activation All-Reduces of `b·s·h`
//!   elements per pass — modeled as one All-Reduce of `2·b·s·h` elements in
//!   forward and one in backward;
//! * DP communication (ZeRO-2): gradient Reduce-Scatter + parameter
//!   All-Gather of the local shard (`12h²/t` elements each). Their combined
//!   traffic equals a single All-Reduce of the shard, which is how it is
//!   emitted.
//!
//! All tensors are FP16 (2 bytes), matching Fig. 1.

use crate::compute::ComputeModel;
use crate::parallel::map_hybrid3;
use libra_core::comm::{Collective, GroupSpan};
use libra_core::error::LibraError;
use libra_core::network::NetworkShape;
use libra_core::workload::{CommOp, Layer, Workload};

/// Bytes per FP16 element.
pub const BYTES_PER_ELEMENT: f64 = 2.0;

/// A transformer model + training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Model name.
    pub name: String,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: u64,
    /// Sequence length.
    pub seq: u64,
    /// Per-DP-replica microbatch size.
    pub batch_per_replica: u64,
    /// Tensor-parallel degree (Table II "TP Size").
    pub tp: u64,
    /// Pipeline-parallel degree (1 = no pipelining; §IV-C extension).
    pub pp: u64,
}

impl TransformerConfig {
    /// Turing-NLG: 17B parameters, TP-1 (pure data parallel).
    ///
    /// The paper trains DP workloads with a *global* minibatch of 32
    /// (Fig. 1), which is far below the thousands of DP replicas in the
    /// evaluated systems — so each replica processes a single microbatch.
    pub fn turing_nlg() -> Self {
        TransformerConfig {
            name: "Turing-NLG".into(),
            layers: 78,
            hidden: 4256,
            seq: 1024,
            batch_per_replica: 1,
            tp: 1,
            pp: 1,
        }
    }

    /// GPT-3: 175B parameters, TP-16.
    pub fn gpt3() -> Self {
        TransformerConfig {
            name: "GPT-3".into(),
            layers: 96,
            hidden: 12288,
            seq: 2048,
            batch_per_replica: 8,
            tp: 16,
            pp: 1,
        }
    }

    /// MSFT-1T: 1T parameters, TP-128.
    pub fn msft_1t() -> Self {
        TransformerConfig {
            name: "MSFT-1T".into(),
            layers: 128,
            hidden: 25600,
            seq: 2048,
            batch_per_replica: 16,
            tp: 128,
            pp: 1,
        }
    }

    /// Returns a copy with a different TP degree (used by the Fig. 21
    /// parallelization co-search).
    pub fn with_tp(mut self, tp: u64) -> Self {
        self.tp = tp;
        self
    }

    /// Returns a copy with a different per-replica microbatch. When
    /// comparing parallelization strategies at a fixed *global* batch, set
    /// this to `global_batch / dp` (Fig. 21).
    pub fn with_batch(mut self, batch_per_replica: u64) -> Self {
        self.batch_per_replica = batch_per_replica;
        self
    }

    /// Returns a copy with a pipeline-parallel degree. Layers are divided
    /// into `pp` stages; each stage boundary adds a point-to-point
    /// activation transfer (forward) and gradient transfer (backward) of
    /// `b·s·h` elements across the dimension separating the stages.
    pub fn with_pp(mut self, pp: u64) -> Self {
        self.pp = pp;
        self
    }

    /// Parameters per transformer layer (`12 h²`).
    pub fn params_per_layer(&self) -> f64 {
        12.0 * (self.hidden as f64) * (self.hidden as f64)
    }

    /// Total parameters across all layers.
    pub fn total_params(&self) -> f64 {
        self.params_per_layer() * self.layers as f64
    }

    /// Forward FLOPs per layer per TP shard.
    fn fwd_flops_per_shard(&self) -> f64 {
        let (b, s, h) = (self.batch_per_replica as f64, self.seq as f64, self.hidden as f64);
        (24.0 * b * s * h * h + 4.0 * b * s * s * h) / self.tp as f64
    }

    /// Activation All-Reduce payload per pass (two Megatron All-Reduces of
    /// `b·s·h` FP16 elements, merged).
    fn tp_comm_bytes(&self) -> f64 {
        let (b, s, h) = (self.batch_per_replica as f64, self.seq as f64, self.hidden as f64);
        2.0 * b * s * h * BYTES_PER_ELEMENT
    }

    /// ZeRO-2 gradient/parameter shard bytes per layer per NPU.
    fn dp_comm_bytes(&self) -> f64 {
        self.params_per_layer() / self.tp as f64 * BYTES_PER_ELEMENT
    }

    /// Activation bytes crossing one pipeline-stage boundary per microbatch.
    fn pp_comm_bytes(&self) -> f64 {
        let (b, s, h) = (self.batch_per_replica as f64, self.seq as f64, self.hidden as f64);
        b * s * h * BYTES_PER_ELEMENT
    }

    /// Builds the per-iteration [`Workload`] for this model on a network.
    ///
    /// With `pp > 1`, each NPU hosts `layers / pp` of the stack, and each
    /// stage boundary contributes a zero-compute boundary "layer" carrying
    /// the forward activation send and the backward gradient send across
    /// the dimension that separates the stages.
    ///
    /// # Errors
    /// Fails when the TP (or TP·PP) degree cannot be mapped onto the
    /// network's dimensions (see [`map_hybrid3`]), or `pp` exceeds the
    /// layer count.
    pub fn build(
        &self,
        shape: &NetworkShape,
        compute: &ComputeModel,
    ) -> Result<Workload, LibraError> {
        let map = map_hybrid3(shape, self.tp, self.pp)?;
        if self.pp as usize > self.layers {
            return Err(LibraError::GroupMapping {
                group: self.pp,
                dims: shape.sizes(),
                reason: format!("PP degree exceeds the {}-layer stack", self.layers),
            });
        }
        let fwd = compute.seconds(self.fwd_flops_per_shard());
        let comm = |collective: Collective, bytes: f64, span: &GroupSpan| {
            if span.is_trivial() || bytes <= 0.0 {
                None
            } else {
                Some(CommOp::new(collective, bytes, span.clone()))
            }
        };
        let layer = Layer {
            name: "transformer".into(),
            fwd_compute: fwd,
            fwd_comm: comm(Collective::AllReduce, self.tp_comm_bytes(), &map.tp),
            igrad_compute: fwd,
            tp_comm: comm(Collective::AllReduce, self.tp_comm_bytes(), &map.tp),
            wgrad_compute: fwd,
            // ZeRO-2 Reduce-Scatter + All-Gather ≡ one All-Reduce in traffic.
            dp_comm: comm(Collective::AllReduce, self.dp_comm_bytes(), &map.dp),
        };
        // Each NPU holds layers/pp of the stack (pipeline model
        // parallelism); boundary layers carry the stage-to-stage
        // activations forward and gradients backward.
        let per_stage = self.layers / self.pp as usize;
        let mut layers: Vec<Layer> = Vec::with_capacity(per_stage + self.pp as usize);
        layers.extend(std::iter::repeat_n(layer, per_stage.max(1)));
        for s in 0..self.pp.saturating_sub(1) {
            let dim = map.pp_boundary_dim(s);
            let span = GroupSpan::new(vec![(dim, 2)]);
            layers.push(Layer {
                name: format!("pp-boundary-{s}"),
                fwd_comm: comm(Collective::PointToPoint, self.pp_comm_bytes(), &span),
                tp_comm: comm(Collective::PointToPoint, self.pp_comm_bytes(), &span),
                ..Default::default()
            });
        }
        Ok(Workload::new(self.name.clone(), layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_core::network::NetworkShape;

    fn shape_4d4k() -> NetworkShape {
        "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap()
    }

    #[test]
    fn table_ii_parameter_counts() {
        // 17B / 175B / 1T within 5 %.
        let t = TransformerConfig::turing_nlg();
        assert!((t.total_params() / 17e9 - 1.0).abs() < 0.05, "{}", t.total_params());
        let g = TransformerConfig::gpt3();
        assert!((g.total_params() / 175e9 - 1.0).abs() < 0.05, "{}", g.total_params());
        let m = TransformerConfig::msft_1t();
        assert!((m.total_params() / 1e12 - 1.0).abs() < 0.05, "{}", m.total_params());
    }

    #[test]
    fn table_ii_tp_sizes() {
        assert_eq!(TransformerConfig::turing_nlg().tp, 1);
        assert_eq!(TransformerConfig::gpt3().tp, 16);
        assert_eq!(TransformerConfig::msft_1t().tp, 128);
    }

    #[test]
    fn turing_nlg_is_pure_dp() {
        let w =
            TransformerConfig::turing_nlg().build(&shape_4d4k(), &ComputeModel::default()).unwrap();
        let l = &w.layers[0];
        assert!(l.fwd_comm.is_none(), "TP-1 has no TP communication");
        assert!(l.tp_comm.is_none());
        let dp = l.dp_comm.as_ref().unwrap();
        assert_eq!(dp.span.size(), 4096);
        // Shard = whole layer (TP-1): 12·4256²·2 bytes.
        assert!((dp.bytes - 12.0 * 4256.0 * 4256.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn gpt3_has_both_tp_and_dp_comm() {
        let w = TransformerConfig::gpt3().build(&shape_4d4k(), &ComputeModel::default()).unwrap();
        let l = &w.layers[0];
        assert_eq!(l.tp_comm.as_ref().unwrap().span.size(), 16);
        assert_eq!(l.dp_comm.as_ref().unwrap().span.size(), 256);
        assert_eq!(w.layers.len(), 96);
    }

    #[test]
    fn compute_time_scales_inverse_with_tp() {
        let shape = shape_4d4k();
        let cm = ComputeModel::default();
        let base = TransformerConfig::gpt3().with_tp(16).build(&shape, &cm).unwrap();
        let wide = TransformerConfig::gpt3().with_tp(32).build(&shape, &cm).unwrap();
        let r = base.layers[0].fwd_compute / wide.layers[0].fwd_compute;
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn larger_models_communicate_more() {
        let shape = shape_4d4k();
        let cm = ComputeModel::default();
        let t = TransformerConfig::turing_nlg().build(&shape, &cm).unwrap();
        let m = TransformerConfig::msft_1t().build(&shape, &cm).unwrap();
        assert!(m.total_comm_bytes() > t.total_comm_bytes());
    }

    #[test]
    fn unmappable_tp_is_an_error() {
        let shape: NetworkShape = "RI(4)_SW(4)".parse().unwrap();
        // TP-128 does not fit a 16-NPU machine.
        assert!(TransformerConfig::msft_1t().build(&shape, &ComputeModel::default()).is_err());
    }

    #[test]
    fn pipeline_parallel_adds_boundary_layers() {
        let shape = shape_4d4k();
        let w =
            TransformerConfig::gpt3().with_pp(8).build(&shape, &ComputeModel::default()).unwrap();
        // 96 layers / 8 stages per NPU + 7 boundary transfers.
        assert_eq!(w.layers.len(), 96 / 8 + 7);
        let boundary = w.layers.iter().find(|l| l.name.starts_with("pp-boundary")).unwrap();
        let fwd = boundary.fwd_comm.as_ref().unwrap();
        assert_eq!(fwd.collective, Collective::PointToPoint);
        // b·s·h·2 bytes = 8·2048·12288·2.
        assert!((fwd.bytes - 8.0 * 2048.0 * 12288.0 * 2.0).abs() < 1.0);
        assert_eq!(boundary.fwd_compute, 0.0);
    }

    #[test]
    fn pipeline_reduces_per_npu_compute() {
        let shape = shape_4d4k();
        let cm = ComputeModel::default();
        let plain = TransformerConfig::gpt3().build(&shape, &cm).unwrap();
        let piped = TransformerConfig::gpt3().with_pp(8).build(&shape, &cm).unwrap();
        assert!((plain.total_compute() / piped.total_compute() - 8.0).abs() < 0.01);
    }

    #[test]
    fn pp_cannot_exceed_layer_count() {
        let shape = shape_4d4k();
        let cfg = TransformerConfig {
            name: "tiny".into(),
            layers: 2,
            hidden: 1024,
            seq: 128,
            batch_per_replica: 1,
            tp: 1,
            pp: 4,
        };
        assert!(cfg.build(&shape, &ComputeModel::default()).is_err());
    }
}
