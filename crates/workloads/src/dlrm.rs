//! DLRM workload generator (recommendation, Table II).
//!
//! DLRM shards its embedding tables across **all** NPUs (the Table II entry
//! "TP Size: across all NPUs"), so every iteration performs a forward and a
//! backward All-to-All over the whole machine to exchange embedding lookups
//! (paper §II-C notes All-to-All is required for embedding-table TP). The
//! dense MLPs are replicated and trained data-parallel with an All-Reduce.
//!
//! MLP sizes are synthetic, chosen so the dense-parameter count matches the
//! paper's 57M ("MLP layers only"); embedding-table parameters are excluded
//! from the count just as the paper excludes them.

use crate::compute::ComputeModel;
use crate::transformer::BYTES_PER_ELEMENT;
use libra_core::comm::{Collective, GroupSpan};
use libra_core::error::LibraError;
use libra_core::network::NetworkShape;
use libra_core::workload::{CommOp, Layer, Workload};

/// DLRM training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmConfig {
    /// Bottom-MLP layer widths (dense features → embedding dimension).
    pub bottom_mlp: Vec<u64>,
    /// Top-MLP layer widths (feature interactions → CTR logit).
    pub top_mlp: Vec<u64>,
    /// Embedding dimension.
    pub emb_dim: u64,
    /// Number of sparse features (embedding tables).
    pub tables: u64,
    /// Per-NPU minibatch.
    pub batch_per_npu: u64,
}

impl Default for DlrmConfig {
    /// Synthetic production-scale MLPs totalling ≈57M dense parameters.
    fn default() -> Self {
        DlrmConfig {
            bottom_mlp: vec![2048, 4096, 2048, 128],
            top_mlp: vec![4096, 4096, 4096, 1024, 1],
            emb_dim: 128,
            tables: 512,
            batch_per_npu: 1024,
        }
    }
}

fn mlp_params(widths: &[u64]) -> f64 {
    widths.windows(2).map(|w| (w[0] * w[1]) as f64).sum()
}

impl DlrmConfig {
    /// Dense (MLP-only) parameter count, the Table II "57M" figure.
    pub fn mlp_params(&self) -> f64 {
        mlp_params(&self.bottom_mlp) + mlp_params(&self.top_mlp)
    }

    /// Bytes each NPU contributes to one embedding All-to-All.
    pub fn alltoall_bytes(&self) -> f64 {
        (self.batch_per_npu * self.tables * self.emb_dim) as f64 * BYTES_PER_ELEMENT
    }

    /// Builds the workload: an embedding-exchange layer (All-to-All forward
    /// and backward) followed by one layer per MLP with DP All-Reduce.
    ///
    /// # Errors
    /// Currently infallible for valid shapes; fallible for interface
    /// symmetry.
    pub fn build(
        &self,
        shape: &NetworkShape,
        compute: &ComputeModel,
    ) -> Result<Workload, LibraError> {
        let all = GroupSpan::full(shape);
        let b = self.batch_per_npu as f64;
        let mut layers = Vec::new();

        // Embedding exchange: All-to-All forward (lookups out) and backward
        // (gradients back). Lookup compute is negligible next to the MLPs.
        layers.push(Layer {
            name: "embedding-exchange".into(),
            fwd_compute: 0.0,
            fwd_comm: Some(CommOp::new(Collective::AllToAll, self.alltoall_bytes(), all.clone())),
            igrad_compute: 0.0,
            tp_comm: Some(CommOp::new(Collective::AllToAll, self.alltoall_bytes(), all.clone())),
            wgrad_compute: 0.0,
            dp_comm: None,
        });

        for (name, widths) in [("bottom-mlp", &self.bottom_mlp), ("top-mlp", &self.top_mlp)] {
            let params = mlp_params(widths);
            let fwd = compute.seconds(2.0 * params * b);
            layers.push(Layer {
                name: name.into(),
                fwd_compute: fwd,
                fwd_comm: None,
                igrad_compute: fwd,
                tp_comm: None,
                wgrad_compute: fwd,
                dp_comm: Some(CommOp::new(
                    Collective::AllReduce,
                    params * BYTES_PER_ELEMENT,
                    all.clone(),
                )),
            });
        }
        Ok(Workload::new("DLRM", layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_params_near_57m() {
        let p = DlrmConfig::default().mlp_params();
        assert!((p / 57e6 - 1.0).abs() < 0.10, "DLRM MLP params {p} should be ≈57M");
    }

    #[test]
    fn alltoall_spans_all_npus() {
        let shape: NetworkShape = "RI(4)_FC(8)_RI(4)_SW(32)".parse().unwrap();
        let w = DlrmConfig::default().build(&shape, &ComputeModel::default()).unwrap();
        let emb = &w.layers[0];
        let a2a = emb.fwd_comm.as_ref().unwrap();
        assert_eq!(a2a.collective, Collective::AllToAll);
        assert_eq!(a2a.span.size(), 4096);
        assert!(emb.tp_comm.is_some(), "backward All-to-All present");
    }

    #[test]
    fn mlps_use_dp_allreduce() {
        let shape: NetworkShape = "RI(4)_SW(8)".parse().unwrap();
        let cfg = DlrmConfig::default();
        let w = cfg.build(&shape, &ComputeModel::default()).unwrap();
        let dp_bytes: f64 =
            w.layers.iter().filter_map(|l| l.dp_comm.as_ref()).map(|c| c.bytes).sum();
        assert!((dp_bytes - cfg.mlp_params() * 2.0).abs() < 1.0);
    }

    #[test]
    fn alltoall_bytes_formula() {
        let cfg = DlrmConfig::default();
        assert!(
            (cfg.alltoall_bytes() - (1024.0 * 512.0 * 128.0 * 2.0)).abs() < 1.0,
            "batch × tables × dim × 2B"
        );
    }
}
