//! NPU compute-time model.
//!
//! The paper's evaluation measures A100 GPUs at 75 % average efficacy —
//! 234 TFLOPS — and uses that single number to convert layer FLOP counts to
//! seconds (§V-B "Compute Model"). Communication is modeled separately; the
//! compute model deliberately ignores memory bandwidth and reduction costs
//! (§IV-C "LIBRA Modeling").

/// Converts FLOPs to seconds at a fixed effective throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Sustained FLOP/s per NPU.
    pub effective_flops: f64,
}

impl Default for ComputeModel {
    /// 234 TFLOPS: A100 peak (312 TFLOPS BF16) at the 75 % measured
    /// efficacy used in the paper.
    fn default() -> Self {
        ComputeModel { effective_flops: 234e12 }
    }
}

impl ComputeModel {
    /// A model with the given sustained throughput in TFLOPS.
    pub fn from_tflops(tflops: f64) -> Self {
        ComputeModel { effective_flops: tflops * 1e12 }
    }

    /// Seconds to execute `flops` floating-point operations.
    pub fn seconds(&self, flops: f64) -> f64 {
        flops / self.effective_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_234_tflops() {
        let m = ComputeModel::default();
        assert!((m.seconds(234e12) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_tflops_scales() {
        let m = ComputeModel::from_tflops(100.0);
        assert!((m.seconds(1e12) - 0.01).abs() < 1e-15);
    }
}
