//! ResNet-50 workload generator (data-parallel vision training, Table II).
//!
//! The generator encodes the standard ResNet-50 architecture at stage
//! granularity: the 7×7 stem, four bottleneck stages (3/4/6/3 blocks at
//! 56²/28²/14²/7² spatial resolution), and the final classifier. Parameter
//! counts per stage follow the published architecture and sum to ≈25.6M.
//! Training is pure data parallelism with ZeRO-2-style gradient
//! synchronization (Reduce-Scatter + All-Gather ≡ All-Reduce traffic).

use crate::compute::ComputeModel;
use crate::transformer::BYTES_PER_ELEMENT;
use libra_core::comm::{Collective, GroupSpan};
use libra_core::error::LibraError;
use libra_core::network::NetworkShape;
use libra_core::workload::{CommOp, Layer, Workload};

/// One ResNet stage: `blocks` bottleneck blocks at a given spatial size.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stage {
    name: &'static str,
    /// Number of bottleneck blocks.
    blocks: u64,
    /// Input spatial resolution (H = W).
    spatial: u64,
    /// Bottleneck width (the 3×3 conv channel count).
    width: u64,
}

/// ResNet-50 stage table (post-stem).
const STAGES: [Stage; 4] = [
    Stage { name: "conv2_x", blocks: 3, spatial: 56, width: 64 },
    Stage { name: "conv3_x", blocks: 4, spatial: 28, width: 128 },
    Stage { name: "conv4_x", blocks: 6, spatial: 14, width: 256 },
    Stage { name: "conv5_x", blocks: 3, spatial: 7, width: 512 },
];

/// ResNet-50 training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ResNet50Config {
    /// Per-NPU minibatch (the paper's DP workloads use 32).
    pub batch_per_npu: u64,
    /// Classifier classes (ImageNet-1k).
    pub classes: u64,
}

impl Default for ResNet50Config {
    fn default() -> Self {
        ResNet50Config { batch_per_npu: 32, classes: 1000 }
    }
}

/// Parameters of one bottleneck block of width `w` (1×1 w, 3×3 w, 1×1 4w
/// convs; `shortcut` adds the 1×1 projection used by each stage's first
/// block).
fn block_params(width: u64, in_channels: u64, shortcut: bool) -> f64 {
    let w = width as f64;
    let cin = in_channels as f64;
    // 1×1: cin→w; 3×3: w→w (×9); 1×1: w→4w.
    let mut p = cin * w + 9.0 * w * w + w * 4.0 * w;
    if shortcut {
        p += cin * 4.0 * w; // 1×1 projection cin → 4w
    }
    p
}

/// FLOPs of one bottleneck block per image (2 × MACs).
fn block_flops(width: u64, in_channels: u64, spatial: u64, shortcut: bool) -> f64 {
    let hw = (spatial * spatial) as f64;
    2.0 * hw * block_params(width, in_channels, shortcut)
}

impl ResNet50Config {
    /// Total parameter count of the generated model.
    pub fn total_params(&self) -> f64 {
        let mut p = 7.0 * 7.0 * 3.0 * 64.0; // stem
        let mut cin = 64u64;
        for s in STAGES {
            p += block_params(s.width, cin, true);
            cin = 4 * s.width;
            p += (s.blocks - 1) as f64 * block_params(s.width, cin, false);
        }
        p += (2048 * self.classes) as f64; // classifier
        p
    }

    /// Builds the data-parallel workload: one layer per stage, each with a
    /// gradient All-Reduce over the whole machine.
    ///
    /// # Errors
    /// Currently infallible for any valid shape, but kept fallible for
    /// interface symmetry with the other generators.
    pub fn build(
        &self,
        shape: &NetworkShape,
        compute: &ComputeModel,
    ) -> Result<Workload, LibraError> {
        let dp = GroupSpan::full(shape);
        let b = self.batch_per_npu as f64;
        let mut layers = Vec::new();
        let mut push = |name: &str, params: f64, flops_per_image: f64| {
            let fwd = compute.seconds(flops_per_image * b);
            layers.push(Layer {
                name: name.to_string(),
                fwd_compute: fwd,
                fwd_comm: None,
                igrad_compute: fwd,
                tp_comm: None,
                wgrad_compute: fwd,
                dp_comm: Some(CommOp::new(
                    Collective::AllReduce,
                    params * BYTES_PER_ELEMENT,
                    dp.clone(),
                )),
            });
        };
        // Stem: 7×7/2 conv at 112² output.
        let stem_params = 7.0 * 7.0 * 3.0 * 64.0;
        push("stem", stem_params, 2.0 * 112.0 * 112.0 * stem_params);
        let mut cin = 64u64;
        for s in STAGES {
            let mut params = block_params(s.width, cin, true);
            let mut flops = block_flops(s.width, cin, s.spatial, true);
            cin = 4 * s.width;
            params += (s.blocks - 1) as f64 * block_params(s.width, cin, false);
            flops += (s.blocks - 1) as f64 * block_flops(s.width, cin, s.spatial, false);
            push(s.name, params, flops);
        }
        let fc_params = (2048 * self.classes) as f64;
        push("fc", fc_params, 2.0 * fc_params);
        Ok(Workload::new("ResNet-50", layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_near_25_6m() {
        let p = ResNet50Config::default().total_params();
        assert!(
            (p / 25.6e6 - 1.0).abs() < 0.08,
            "ResNet-50 params {p} should be within 8% of 25.6M"
        );
    }

    #[test]
    fn workload_is_pure_dp() {
        let shape: NetworkShape = "RI(4)_SW(8)".parse().unwrap();
        let w = ResNet50Config::default().build(&shape, &ComputeModel::default()).unwrap();
        for l in &w.layers {
            assert!(l.tp_comm.is_none());
            assert!(l.fwd_comm.is_none());
            assert_eq!(l.dp_comm.as_ref().unwrap().span.size(), 32);
        }
    }

    #[test]
    fn comm_bytes_are_twice_params() {
        let shape: NetworkShape = "RI(4)_SW(8)".parse().unwrap();
        let cfg = ResNet50Config::default();
        let w = cfg.build(&shape, &ComputeModel::default()).unwrap();
        assert!((w.total_comm_bytes() - cfg.total_params() * 2.0).abs() < 1.0);
    }

    #[test]
    fn compute_dominates_communication_at_modest_bw() {
        // ResNet-50 is the paper's "small, less communication-critical"
        // model: even at 10 GB/s total, comm time is modest relative to the
        // large LLMs. Just sanity-check compute is non-trivial.
        let shape: NetworkShape = "RI(4)_SW(8)".parse().unwrap();
        let w = ResNet50Config::default().build(&shape, &ComputeModel::default()).unwrap();
        assert!(w.total_compute() > 0.0);
        assert!(w.total_comm_bytes() > 0.0);
    }
}
