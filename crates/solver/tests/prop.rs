//! Property-based tests: the interior-point optimum must never lose to any
//! feasible point, and must agree with an independent projected-subgradient
//! run on canonical LIBRA-shaped problems.

use libra_solver::convex::{ConvexProblem, RatioTerm};
use libra_solver::subgrad::{minimize_projected, project_capped_box};
use proptest::prelude::*;

/// Builds the canonical LIBRA problem: minimize the bottleneck
/// `max_i c_i / B_i` subject to `Σ B_i ≤ total` for `c_i > 0`.
fn bottleneck_problem(coeffs: &[f64], total: f64) -> ConvexProblem {
    let n = coeffs.len();
    let t = n; // epigraph variable index
    let mut p = ConvexProblem::new(n + 1);
    p.minimize(&[(t, 1.0)]);
    for (i, &c) in coeffs.iter().enumerate() {
        p.add_ratio_le(RatioTerm::new(vec![(i, c)]).minus_var(t));
        p.set_lower(i, 1e-4);
    }
    let cap: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
    p.add_lin_le(&cap, total);
    p
}

/// Analytic optimum of the bottleneck problem: all terms equalized, so
/// `B_i ∝ c_i` and the value is `Σc / total`.
fn bottleneck_optimum(coeffs: &[f64], total: f64) -> f64 {
    coeffs.iter().sum::<f64>() / total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver matches the closed-form optimum of the pure bottleneck
    /// allocation problem for 2–5 dimensions.
    #[test]
    fn matches_analytic_bottleneck(
        coeffs in prop::collection::vec(0.1f64..50.0, 2..=5),
        total in 1.0f64..500.0,
    ) {
        let p = bottleneck_problem(&coeffs, total);
        let sol = p.solve().expect("bottleneck problem is always feasible");
        let expect = bottleneck_optimum(&coeffs, total);
        prop_assert!(
            (sol.objective - expect).abs() <= 1e-4 * (1.0 + expect.abs()),
            "got {} expected {expect}", sol.objective
        );
        // The optimizer allocation is proportional to the coefficients.
        for (i, &c) in coeffs.iter().enumerate() {
            let expect_b = total * c / coeffs.iter().sum::<f64>();
            prop_assert!(
                (sol.x[i] - expect_b).abs() <= 1e-2 * (1.0 + expect_b),
                "B[{i}]={} expected {expect_b}", sol.x[i]
            );
        }
    }

    /// The optimum never loses to random feasible points (global optimality
    /// on a convex problem).
    #[test]
    fn never_beaten_by_random_feasible_points(
        coeffs in prop::collection::vec(0.1f64..50.0, 2..=4),
        total in 1.0f64..200.0,
        fractions in prop::collection::vec(0.05f64..1.0, 2..=4),
    ) {
        let n = coeffs.len().min(fractions.len());
        let coeffs = &coeffs[..n];
        let fractions = &fractions[..n];
        let p = bottleneck_problem(coeffs, total);
        let sol = p.solve().unwrap();
        // Random feasible candidate: normalize fractions to the cap.
        let fsum: f64 = fractions.iter().sum();
        let cand: Vec<f64> = fractions.iter().map(|f| f / fsum * total).collect();
        let cand_obj = coeffs
            .iter()
            .zip(&cand)
            .map(|(c, b)| c / b)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(
            sol.objective <= cand_obj * (1.0 + 1e-6) + 1e-9,
            "solver {} beaten by candidate {cand_obj}", sol.objective
        );
    }

    /// Capped-box projection always returns a feasible point that is no
    /// farther from the input than any other feasible point we try.
    #[test]
    fn projection_is_feasible_and_idempotent(
        x in prop::collection::vec(-10.0f64..30.0, 1..=6),
        total in 1.0f64..40.0,
    ) {
        let n = x.len();
        let lower = vec![0.0; n];
        let upper = vec![20.0; n];
        let mut p1 = x.clone();
        project_capped_box(&mut p1, total, &lower, &upper);
        let sum: f64 = p1.iter().sum();
        prop_assert!(sum <= total + 1e-6);
        for &v in &p1 {
            prop_assert!((-1e-9..=20.0 + 1e-9).contains(&v));
        }
        let mut p2 = p1.clone();
        project_capped_box(&mut p2, total, &lower, &upper);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-6, "projection not idempotent");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interior point and projected subgradient agree on sum-of-ratios
    /// objectives (two independent algorithms, same convex problem).
    #[test]
    fn agrees_with_subgradient(
        coeffs in prop::collection::vec(0.5f64..20.0, 2..=3),
        total in 5.0f64..100.0,
    ) {
        let n = coeffs.len();
        // Interior point: minimize Σ c_i / B_i via one epigraph var per term.
        let mut p = ConvexProblem::new(n + 1);
        p.minimize(&[(n, 1.0)]);
        let all: Vec<(usize, f64)> =
            coeffs.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        p.add_ratio_le(RatioTerm::new(all).minus_var(n));
        for i in 0..n {
            p.set_lower(i, 1e-4);
        }
        let cap: Vec<(usize, f64)> = (0..n).map(|i| (i, 1.0)).collect();
        p.add_lin_le(&cap, total);
        let ip = p.solve().unwrap();

        let lower = vec![1e-4; n];
        let upper = vec![total; n];
        let f = |x: &[f64]| {
            let v: f64 = coeffs.iter().zip(x).map(|(c, b)| c / b).sum();
            let g: Vec<f64> =
                coeffs.iter().zip(x).map(|(c, b)| -c / (b * b)).collect();
            (v, g)
        };
        let proj = |x: &mut [f64]| project_capped_box(x, total, &lower, &upper);
        let sg = minimize_projected(f, proj, vec![total / n as f64; n], total / 4.0, 10_000);
        prop_assert!(
            (ip.objective - sg.value).abs() <= 1e-2 * (1.0 + sg.value.abs()),
            "interior point {} vs subgradient {}", ip.objective, sg.value
        );
    }
}
