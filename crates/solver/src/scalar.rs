//! One-dimensional minimizers.
//!
//! LIBRA's perf-per-cost objective `time(B) × cost(B)` is handled
//! parametrically: for each candidate cost budget the inner convex problem is
//! solved, and the outer 1-D budget search uses the routines here.

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// Returns `(x_min, f(x_min))`. If `f` is not unimodal the result is a local
/// minimum of the bracket; pair with [`grid_then_golden`] for robustness.
///
/// # Panics
/// Panics if `a > b` or `tol <= 0`.
pub fn golden_section<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> (f64, f64) {
    assert!(a <= b, "invalid bracket");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut lo, mut hi) = (a, b);
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    while hi - lo > tol {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    let xm = 0.5 * (lo + hi);
    (xm, f(xm))
}

/// Robust 1-D minimization: coarse grid scan (`n_grid` points, inclusive of
/// both endpoints) followed by golden-section refinement around the best
/// grid cell. Handles multi-modal objectives that defeat pure golden
/// section.
///
/// # Panics
/// Panics if `n_grid < 2`, `a > b`, or `tol <= 0`.
pub fn grid_then_golden<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    n_grid: usize,
    tol: f64,
) -> (f64, f64) {
    assert!(n_grid >= 2, "need at least two grid points");
    assert!(a <= b, "invalid bracket");
    let step = (b - a) / (n_grid - 1) as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::INFINITY;
    for i in 0..n_grid {
        let x = a + step * i as f64;
        let v = f(x);
        if v < best_v {
            best_v = v;
            best_i = i;
        }
    }
    let lo = a + step * best_i.saturating_sub(1) as f64;
    let hi = (a + step * (best_i + 1) as f64).min(b);
    let (x, v) = golden_section(&mut f, lo, hi, tol);
    if v <= best_v {
        (x, v)
    } else {
        (a + step * best_i as f64, best_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let (x, v) = golden_section(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0, 1e-8);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        let (x, _) = golden_section(|x| x, 2.0, 5.0, 1e-8);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn grid_recovers_from_multimodality() {
        // Two valleys; the deeper one is near x = 8.
        let f = |x: f64| (x - 2.0).powi(2).min((x - 8.0).powi(2) - 1.0);
        let (x, v) = grid_then_golden(f, 0.0, 10.0, 41, 1e-8);
        assert!((x - 8.0).abs() < 1e-4, "x={x}");
        assert!((v + 1.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_bracket_is_ok() {
        let (x, v) = golden_section(|x| x * x, 4.0, 4.0, 1e-8);
        assert_eq!(x, 4.0);
        assert_eq!(v, 16.0);
    }
}
